"""Update-throughput benchmark: the live write path vs rebuild-from-scratch.

Before the delta overlay existed, making one new triple queryable cost a
full ``StoreBuilder`` rebuild.  This benchmark quantifies the live path:

* **insert throughput** (inserts/sec) into the delta, batch by batch —
  including a batch ingested *after* compaction, so the before/after rates
  are directly comparable;
* **query latency degradation vs delta size**: representative queries
  measured at every delta fill level and again after ``compact()`` restores
  pure-succinct reads;
* **compaction cost** (duration, operations folded) and the rebuild
  baseline it replaces;
* correctness: the final overlay answers match a from-scratch rebuild.

Results land in ``benchmarks/results/update_throughput.txt``.
"""

from __future__ import annotations

import time

from repro.bench.harness import format_table, record_table
from repro.bench.measure import measure_best_of, measure_call
from repro.rdf.graph import Graph
from repro.store.delta import MANUAL_COMPACTION
from repro.store.succinct_edge import SuccinctEdge
from repro.store.updatable import UpdatableSuccinctEdge

#: Queries measured at every delta fill level (catalog identifiers).
_QUERY_IDS = ("S2", "S8", "S13", "M1")

#: Share of the LUBM graph held back and streamed in as live inserts.
_LIVE_SHARE = 0.10

#: Number of insert batches; the last one runs after compaction.
_BATCHES = 4


def _canonical(result):
    return sorted(result.to_tuples(), key=lambda row: tuple(repr(v) for v in row))


def test_update_throughput(context, results_dir):
    triples = list(context.lubm.graph)
    split = int(len(triples) * (1.0 - _LIVE_SHARE))
    base_graph = Graph(triples[:split])
    live = triples[split:]
    queries = {qid: context.catalog.by_identifier()[qid] for qid in _QUERY_IDS}

    # The cost the delta path replaces: one full construction of the final
    # dataset (what every single insert used to require).
    rebuild = measure_call(
        lambda: SuccinctEdge.from_graph(context.lubm.graph, ontology=context.lubm.ontology)
    )
    reference = rebuild.result

    store = UpdatableSuccinctEdge.from_graph(
        base_graph, ontology=context.lubm.ontology, policy=MANUAL_COMPACTION
    )

    batch_size = max(1, len(live) // _BATCHES)
    batches = [live[i : i + batch_size] for i in range(0, len(live), batch_size)][:_BATCHES]
    leftover = live[batch_size * _BATCHES :]

    insert_rates = []  # (label, inserts/sec, mean us/insert)
    latency_rows = {qid: [] for qid in _QUERY_IDS}
    delta_sizes = []

    def measure_queries(label: str) -> None:
        delta_sizes.append(f"{label}\n(delta={store.delta_operation_count})")
        for qid, query in queries.items():
            measured = measure_best_of(
                lambda q=query: store.query(q.sparql, reasoning=q.requires_reasoning)
            )
            latency_rows[qid].append(measured.measured_ms)

    def ingest(label: str, batch) -> None:
        started = time.perf_counter()
        for triple in batch:
            store.insert(triple)
        elapsed = time.perf_counter() - started
        rate = len(batch) / elapsed if elapsed else float("inf")
        insert_rates.append((label, rate, 1e6 * elapsed / max(len(batch), 1)))
        measure_queries(label)

    measure_queries("base only")
    for index, batch in enumerate(batches[:-1], start=1):
        ingest(f"batch {index}", batch)

    report = store.compact()
    measure_queries("compacted")
    ingest("post-compact batch", batches[-1])
    for triple in leftover:
        store.insert(triple)

    # Correctness: the overlay must answer exactly like the rebuild.
    assert store.triple_count == reference.triple_count
    for qid, query in queries.items():
        left = store.query(query.sparql, reasoning=query.requires_reasoning)
        right = reference.query(query.sparql, reasoning=query.requires_reasoning)
        assert _canonical(left) == _canonical(right), qid

    # The headline claim: visibility without rebuild.  One insert must be
    # orders of magnitude cheaper than the full construction it replaces.
    mean_insert_ms = sum(rate[2] for rate in insert_rates) / len(insert_rates) / 1000.0
    assert mean_insert_ms < rebuild.measured_ms / 10, (
        f"a delta insert ({mean_insert_ms:.3f} ms) should be far cheaper than "
        f"a full rebuild ({rebuild.measured_ms:.1f} ms)"
    )

    throughput_table = format_table(
        f"Insert throughput — LUBM {len(triples)} triples, "
        f"{len(live)} streamed live ({_BATCHES} batches, last after compaction)",
        ["inserts/sec", "us/insert"],
        {label: [rate, micros] for label, rate, micros in insert_rates},
    )
    latency_table = format_table(
        "Query latency vs delta size (best-of-3, ms)",
        [label.split("\n")[0] for label in delta_sizes],
        latency_rows,
        unit="ms",
    )
    summary = "\n".join(
        [
            "Compaction and rebuild baseline",
            "-" * 48,
            f"full rebuild (StoreBuilder): {rebuild.measured_ms:>10.1f} ms",
            f"compact() of {report.operations_folded} pending ops: "
            f"{report.duration_ms:>6.1f} ms (presorted path)",
            f"mean delta insert: {mean_insert_ms * 1000:>10.1f} us",
            f"final store: {store.triple_count} triples, "
            f"epoch {store.compaction_epoch}.{store.data_epoch}",
        ]
    )
    record_table(
        results_dir,
        "update_throughput",
        "\n\n".join([throughput_table, latency_table, summary]),
    )
