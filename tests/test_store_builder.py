"""Tests for the store builder and the SuccinctEdge facade (matching layer)."""

from __future__ import annotations

import pytest

from repro.rdf.graph import Graph
from repro.rdf.namespaces import RDF, RDFS
from repro.rdf.terms import BlankNode, Literal, Triple
from repro.store.builder import StoreBuilder
from repro.store.succinct_edge import SuccinctEdge
from tests.conftest import EX


class TestTriplePartitioning:
    def test_three_layouts_cover_all_triples(self, toy_store, toy_data):
        object_count, datatype_count, type_count = toy_store.lubm_style_summary()
        assert object_count + datatype_count + type_count == len(toy_data)
        assert toy_store.triple_count == len(toy_data)

    def test_rdf_type_triples_go_to_type_store(self, toy_store, toy_data):
        explicit_types = sum(1 for t in toy_data if t.predicate == RDF.type)
        assert len(toy_store.type_store) == explicit_types

    def test_literal_objects_go_to_datatype_store(self, toy_store, toy_data):
        literal_triples = sum(1 for t in toy_data if isinstance(t.object, Literal))
        assert len(toy_store.datatype_store) == literal_triples

    def test_schema_triples_in_data_feed_schema_not_store(self):
        data = Graph(
            [
                Triple(EX.Student, RDFS.subClassOf, EX.Person),
                Triple(EX.alice, RDF.type, EX.Student),
            ]
        )
        store = SuccinctEdge.from_graph(data)
        assert store.triple_count == 1
        assert store.schema.concept_parent(EX.Student) == EX.Person

    def test_schema_triples_kept_when_requested(self):
        data = Graph(
            [
                Triple(EX.Student, RDFS.subClassOf, EX.Person),
                Triple(EX.alice, RDF.type, EX.Student),
            ]
        )
        store = StoreBuilder(include_schema_triples=True).build(data)
        assert store.triple_count == 2

    def test_untyped_rdf_type_object_skipped(self):
        data = Graph([Triple(EX.alice, RDF.type, Literal("oops"))])
        store = SuccinctEdge.from_graph(data)
        assert store.triple_count == 0
        assert store.skipped_triples == 1

    def test_blank_node_subjects_and_objects(self):
        data = Graph(
            [
                Triple(BlankNode("r"), RDF.type, EX.Result),
                Triple(EX.obs, EX.hasResult, BlankNode("r")),
                Triple(BlankNode("r"), EX.value, Literal(3.5)),
            ]
        )
        store = SuccinctEdge.from_graph(data)
        assert store.triple_count == 3
        assert len(list(store.match(None, EX.hasResult, BlankNode("r")))) == 1

    def test_empty_graph(self):
        store = SuccinctEdge.from_graph(Graph())
        assert store.triple_count == 0
        assert list(store.match(None, None, None)) == []


class TestDictionaries:
    def test_statistics_recorded(self, toy_store):
        statistics = toy_store.statistics
        assert statistics.concept_cardinality(EX.Department, with_hierarchy=False) == 2
        assert statistics.property_cardinality(EX.memberOf, with_hierarchy=False) == 2
        # Hierarchy-aware counts include headOf and worksFor occurrences.
        assert statistics.property_cardinality(EX.memberOf) == 4

    def test_concepts_carry_litemat_intervals(self, toy_store):
        low, high = toy_store.concepts.interval(EX.Person)
        for concept in (EX.GraduateStudent, EX.Professor, EX.FullProfessor):
            assert low <= toy_store.concepts.locate(concept) < high

    def test_decode_helpers(self, toy_store):
        alice_id = toy_store.instances.locate(EX.alice)
        assert toy_store.decode_instance(alice_id) == EX.alice
        person_id = toy_store.concepts.locate(EX.Person)
        assert toy_store.decode_concept(person_id) == EX.Person
        name_id = toy_store.properties.locate(EX.name)
        assert toy_store.decode_property(name_id) == EX.name

    def test_size_accounting_positive(self, toy_store):
        assert toy_store.dictionary_size_in_bytes() > 0
        assert toy_store.triple_storage_size_in_bytes() > 0
        assert toy_store.memory_footprint_in_bytes() == (
            toy_store.dictionary_size_in_bytes() + toy_store.triple_storage_size_in_bytes()
        )


class TestMatchAgainstGraphOracle:
    """store.match must agree with linear-scan matching over the source graph."""

    @pytest.mark.parametrize(
        "pattern_name,subject,predicate,obj",
        [
            ("all-wildcards", None, None, None),
            ("by-subject", EX.alice, None, None),
            ("by-predicate", None, EX.memberOf, None),
            ("by-type", None, RDF.type, EX.Department),
            ("by-object-uri", None, None, EX.dept1),
            ("by-object-literal", None, EX.name, Literal("Bob")),
            ("fully-bound", EX.alice, EX.memberOf, EX.dept1),
            ("fully-bound-miss", EX.alice, EX.memberOf, EX.dept2),
            ("subject-predicate", EX.bob, EX.headOf, None),
            ("unknown-term", EX.nobody, None, None),
        ],
    )
    def test_match_equals_oracle(self, toy_store, toy_data, pattern_name, subject, predicate, obj):
        expected = set(toy_data.triples(subject, predicate, obj))
        actual = set(toy_store.match(subject, predicate, obj))
        assert actual == expected, pattern_name

    def test_export_graph_round_trip(self, toy_store, toy_data):
        exported = toy_store.export_graph()
        assert set(exported) == set(toy_data)

    def test_small_lubm_match_sample(self, small_lubm, small_lubm_store):
        from repro.rdf.namespaces import LUBM

        graph = small_lubm.graph
        for predicate in (LUBM.worksFor, LUBM.takesCourse, LUBM.name):
            expected = set(graph.triples(None, predicate, None))
            actual = set(small_lubm_store.match(None, predicate, None))
            assert actual == expected

    def test_small_lubm_type_match(self, small_lubm, small_lubm_store):
        from repro.rdf.namespaces import LUBM

        expected = set(small_lubm.graph.triples(None, RDF.type, LUBM.GraduateStudent))
        actual = set(small_lubm_store.match(None, RDF.type, LUBM.GraduateStudent))
        assert actual == expected
