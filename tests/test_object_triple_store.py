"""Tests for the PSO wavelet-tree/bitmap object-triple store."""

from __future__ import annotations


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store.triple_store import ObjectTripleStore

TRIPLES = [
    # (property, subject, object), deliberately unsorted with duplicates.
    (3, 10, 20),
    (3, 10, 21),
    (3, 11, 20),
    (5, 10, 22),
    (5, 12, 20),
    (5, 12, 23),
    (5, 12, 23),  # duplicate
    (7, 13, 24),
]


class TestConstruction:
    def test_duplicates_removed(self):
        store = ObjectTripleStore(TRIPLES)
        assert len(store) == 7

    def test_empty_store(self):
        store = ObjectTripleStore([])
        assert len(store) == 0
        assert store.properties == []
        assert store.objects_for(1, 1) == []
        assert store.subjects_for(1, 1) == []
        assert list(store.iter_triples()) == []
        assert store.count_triples_with_property(1) == 0

    def test_properties_sorted_and_distinct(self):
        store = ObjectTripleStore(TRIPLES)
        assert store.properties == [3, 5, 7]
        assert store.has_property(5)
        assert not store.has_property(4)

    def test_iter_triples_in_pso_order(self):
        store = ObjectTripleStore(TRIPLES)
        assert list(store.iter_triples()) == sorted(set(TRIPLES))


class TestAlgorithm2Counting:
    def test_count_triples_per_property(self):
        store = ObjectTripleStore(TRIPLES)
        assert store.count_triples_with_property(3) == 3
        assert store.count_triples_with_property(5) == 3
        assert store.count_triples_with_property(7) == 1
        assert store.count_triples_with_property(99) == 0

    def test_count_subjects_per_property(self):
        store = ObjectTripleStore(TRIPLES)
        assert store.count_subjects_with_property(3) == 2
        assert store.count_subjects_with_property(5) == 2
        assert store.count_subjects_with_property(7) == 1


class TestAlgorithm3And4:
    def test_objects_for_subject_property(self):
        store = ObjectTripleStore(TRIPLES)
        assert store.objects_for(10, 3) == [20, 21]
        assert store.objects_for(12, 5) == [20, 23]
        assert store.objects_for(10, 5) == [22]
        assert store.objects_for(99, 3) == []
        assert store.objects_for(10, 99) == []

    def test_subjects_for_property_object(self):
        store = ObjectTripleStore(TRIPLES)
        assert store.subjects_for(3, 20) == [10, 11]
        assert store.subjects_for(5, 23) == [12]
        assert store.subjects_for(5, 99) == []
        assert store.subjects_for(99, 20) == []

    def test_pairs_for_property(self):
        store = ObjectTripleStore(TRIPLES)
        assert list(store.pairs_for_property(3)) == [(10, 20), (10, 21), (11, 20)]
        assert list(store.pairs_for_property(99)) == []

    def test_contains(self):
        store = ObjectTripleStore(TRIPLES)
        assert store.contains(10, 3, 21)
        assert not store.contains(10, 3, 23)

    def test_last_property_run_uses_sentinel(self):
        # The last property's run must be correctly delimited by the trailing
        # sentinel bit rather than running off the end of the bitmap.
        store = ObjectTripleStore(TRIPLES)
        assert store.objects_for(13, 7) == [24]
        assert store.subjects_for(7, 24) == [13]


class TestPropertyIntervalAccess:
    def test_interval_enumerates_matching_properties_only(self):
        store = ObjectTripleStore(TRIPLES)
        result = list(store.pairs_for_property_interval(3, 6))
        expected = sorted((p, s, o) for p, s, o in set(TRIPLES) if 3 <= p < 6)
        assert result == expected

    def test_interval_with_no_match(self):
        store = ObjectTripleStore(TRIPLES)
        assert list(store.pairs_for_property_interval(100, 200)) == []


class TestSizeAccounting:
    def test_size_positive_and_grows(self):
        small = ObjectTripleStore(TRIPLES)
        large = ObjectTripleStore([(p, s + i, o + i) for i in range(50) for p, s, o in TRIPLES])
        assert small.size_in_bytes() > 0
        assert large.size_in_bytes() > small.size_in_bytes()


# --------------------------------------------------------------------------- #
# property-based: the store is equivalent to a naive set of triples
# --------------------------------------------------------------------------- #

encoded_triples = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=1, max_value=30),
    ),
    max_size=120,
)


@settings(max_examples=40, deadline=None)
@given(triples=encoded_triples)
def test_property_store_matches_naive_semantics(triples):
    store = ObjectTripleStore(triples)
    reference = set(triples)
    assert len(store) == len(reference)
    assert list(store.iter_triples()) == sorted(reference)
    properties = {p for p, _, _ in reference}
    for prop in properties:
        assert store.count_triples_with_property(prop) == sum(1 for p, _, _ in reference if p == prop)
        subjects = {s for p, s, _ in reference if p == prop}
        for subject in subjects:
            expected_objects = sorted(o for p, s, o in reference if p == prop and s == subject)
            assert store.objects_for(subject, prop) == expected_objects
        objects = {o for p, _, o in reference if p == prop}
        for obj in objects:
            expected_subjects = sorted(s for p, s, o in reference if p == prop and o == obj)
            assert store.subjects_for(prop, obj) == expected_subjects


@settings(max_examples=30, deadline=None)
@given(triples=encoded_triples, low=st.integers(min_value=0, max_value=12), span=st.integers(min_value=0, max_value=6))
def test_property_interval_access_matches_filter(triples, low, span):
    store = ObjectTripleStore(triples)
    high = low + span
    expected = sorted((p, s, o) for p, s, o in set(triples) if low <= p < high)
    assert list(store.pairs_for_property_interval(low, high)) == expected
