"""Namespaces and the vocabularies used by the paper.

The motivating example of the paper (Section 2) annotates sensor data with
SOSA and QUDT; the evaluation uses the LUBM univ-bench ontology.  This module
centralises the namespace IRIs so that workload generators, queries and tests
all agree on the exact terms.
"""

from __future__ import annotations

from repro.rdf.terms import URI


class Namespace:
    """A factory of :class:`~repro.rdf.terms.URI` sharing a common prefix.

    >>> SOSA = Namespace("http://www.w3.org/ns/sosa/")
    >>> SOSA.Sensor
    URI('http://www.w3.org/ns/sosa/Sensor')
    >>> SOSA["observes"]
    URI('http://www.w3.org/ns/sosa/observes')
    """

    def __init__(self, prefix: str) -> None:
        self._prefix = prefix

    @property
    def prefix(self) -> str:
        """The namespace IRI prefix."""
        return self._prefix

    def __getattr__(self, name: str) -> URI:
        if name.startswith("_"):
            raise AttributeError(name)
        return URI(self._prefix + name)

    def __getitem__(self, name: str) -> URI:
        return URI(self._prefix + name)

    def __contains__(self, uri: URI) -> bool:
        return isinstance(uri, URI) and uri.value.startswith(self._prefix)

    def __repr__(self) -> str:
        return f"Namespace({self._prefix!r})"


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
SOSA = Namespace("http://www.w3.org/ns/sosa/")
QUDT = Namespace("http://qudt.org/schema/qudt/")
QUDT_UNIT = Namespace("http://qudt.org/vocab/unit/")
LUBM = Namespace("http://swat.cse.lehigh.edu/onto/univ-bench.owl#")

#: Prefix map used by the SPARQL parser and the serialisers.
WELL_KNOWN_PREFIXES = {
    "rdf": RDF.prefix,
    "rdfs": RDFS.prefix,
    "owl": OWL.prefix,
    "xsd": XSD.prefix,
    "sosa": SOSA.prefix,
    "qudt": QUDT.prefix,
    "unit": QUDT_UNIT.prefix,
    "lubm": LUBM.prefix,
}

#: ``rdf:type`` is special-cased throughout SuccinctEdge (RDFType store).
RDF_TYPE = RDF.type
RDFS_SUBCLASSOF = RDFS.subClassOf
RDFS_SUBPROPERTYOF = RDFS.subPropertyOf
RDFS_DOMAIN = RDFS.domain
RDFS_RANGE = RDFS.range
OWL_THING = OWL.Thing
