"""Unit tests pinning :class:`~repro.edge.device.SimulatedNetwork` exactly.

The cluster's fault-injection suites lean on this class for every injected
failure, so its semantics are pinned here at the unit level: the latency
math of both legs of a hop (``transmission_ms`` for the response,
``one_way_ms`` for the request), the partition / heal / drop-next fault
knobs, and the traffic counters the tests assert against.
"""

from __future__ import annotations

import pytest

from repro.edge.device import (
    EDGE_UPLINK,
    LOCAL_LAN,
    LTE_UPLINK,
    DeviceProfile,
    EdgeDevice,
    NetworkPartitioned,
    NetworkProfile,
    SimulatedNetwork,
)


# --------------------------------------------------------------------------- #
# latency math
# --------------------------------------------------------------------------- #


def test_transmission_ms_is_rtt_plus_serialisation():
    profile = NetworkProfile(name="t", rtt_ms=40.0, bandwidth_kbps=500.0)
    # rtt + bytes * 8 bits / kbps: 1000 bytes over 500 kbps = 16 ms on the wire.
    assert profile.transmission_ms(1000) == pytest.approx(40.0 + 16.0)
    assert profile.transmission_ms(0) == pytest.approx(40.0)


def test_one_way_ms_is_half_rtt_plus_serialisation():
    profile = NetworkProfile(name="t", rtt_ms=40.0, bandwidth_kbps=500.0)
    # The request leg charges half the round trip but the full payload time.
    assert profile.one_way_ms(1000) == pytest.approx(20.0 + 16.0)
    assert profile.one_way_ms(0) == pytest.approx(20.0)


def test_zero_bandwidth_charges_latency_only():
    profile = NetworkProfile(name="t", rtt_ms=30.0, bandwidth_kbps=0.0)
    # bandwidth <= 0 means "don't model serialisation time" — any payload
    # costs the bare latency, never a division by zero.
    assert profile.transmission_ms(10_000_000) == pytest.approx(30.0)
    assert profile.one_way_ms(10_000_000) == pytest.approx(15.0)


@pytest.mark.parametrize("profile", [EDGE_UPLINK, LTE_UPLINK, LOCAL_LAN])
def test_builtin_profiles_are_consistent(profile):
    # one_way never exceeds transmission for the same payload, and both
    # grow monotonically with payload size (when bandwidth is modelled).
    for payload in (0, 512, 65_536):
        assert profile.one_way_ms(payload) <= profile.transmission_ms(payload)
    if profile.bandwidth_kbps > 0:
        assert profile.transmission_ms(2048) > profile.transmission_ms(1024)


def test_local_lan_is_free():
    network = SimulatedNetwork(LOCAL_LAN)
    assert network.transmit(1_000_000) == 0.0
    assert network.transmit_request(1_000_000) == 0.0


# --------------------------------------------------------------------------- #
# counters
# --------------------------------------------------------------------------- #


def test_counters_track_both_legs():
    network = SimulatedNetwork(LOCAL_LAN)
    network.transmit(100)
    network.transmit(50)
    network.transmit_request(25)
    assert network.transmissions == 2
    assert network.requests == 1
    assert network.bytes_transmitted == 175
    assert network.drops == 0


def test_device_energy_is_charged_for_both_legs():
    profile = DeviceProfile(name="d", ram_bytes=1 << 20, network_energy_joule_per_kb=0.05)
    device = EdgeDevice(profile)
    network = SimulatedNetwork(LOCAL_LAN, device=device)
    network.transmit(1024)
    network.transmit_request(1024)
    # 2 KiB at 0.05 J/KB: both legs charge the device, symmetrically.
    assert device.energy_spent_joules == pytest.approx(2 * 0.05)
    assert device.bytes_sent == 2048


# --------------------------------------------------------------------------- #
# fault injection
# --------------------------------------------------------------------------- #


def test_partition_downs_both_legs_until_heal():
    network = SimulatedNetwork(LOCAL_LAN)
    network.partition()
    with pytest.raises(NetworkPartitioned):
        network.transmit(10)
    with pytest.raises(NetworkPartitioned):
        network.transmit_request(10)
    assert network.drops == 2
    # Nothing was delivered while down.
    assert network.transmissions == 0
    assert network.requests == 0
    assert network.bytes_transmitted == 0
    network.heal()
    network.transmit(10)
    network.transmit_request(10)
    assert (network.transmissions, network.requests) == (1, 1)


def test_partition_raises_a_connection_error():
    # The cluster transport catches ConnectionError for real sockets; the
    # simulated failure must flow through the same handler.
    network = SimulatedNetwork(LOCAL_LAN)
    network.partition()
    with pytest.raises(ConnectionError):
        network.transmit(1)


def test_drop_next_drops_exactly_n_then_recovers():
    network = SimulatedNetwork(LOCAL_LAN)
    network.drop_next(2)
    with pytest.raises(NetworkPartitioned):
        network.transmit(10)
    with pytest.raises(NetworkPartitioned):
        network.transmit_request(10)
    # Budget exhausted: the third transmission sails through.
    network.transmit(10)
    assert network.drops == 2
    assert network.transmissions == 1


def test_drop_budgets_accumulate():
    network = SimulatedNetwork(LOCAL_LAN)
    network.drop_next()
    network.drop_next()
    for _ in range(2):
        with pytest.raises(NetworkPartitioned):
            network.transmit(1)
    network.transmit(1)
    assert network.drops == 2
