"""Fixed-width packed integer sequence.

SuccinctEdge stores flat identifier layers (for example the pointers from
datatype-property subjects into the literal store) as packed integer arrays:
every value is stored with ``ceil(log2(max_value + 1))`` bits, which keeps the
memory footprint close to the information-theoretic minimum while retaining
O(1) random access.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence


class IntSequence:
    """Immutable fixed-width integer array with O(1) access.

    Values are packed into a single Python integer used as a bit buffer; the
    width is derived from the maximum value unless given explicitly.
    """

    __slots__ = ("_buffer", "_width", "_length", "_mask")

    def __init__(self, values: Sequence[int], width: int | None = None) -> None:
        data = list(values)
        for value in data:
            if value < 0:
                raise ValueError(f"IntSequence values must be non-negative, got {value}")
        if width is None:
            width = max(1, max(data).bit_length()) if data else 1
        if data and max(data).bit_length() > width:
            raise ValueError(
                f"value {max(data)} does not fit in declared width {width}"
            )
        self._width = width
        self._length = len(data)
        self._mask = (1 << width) - 1
        buffer = 0
        for index, value in enumerate(data):
            buffer |= value << (index * width)
        self._buffer = buffer

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[int]:
        for index in range(self._length):
            yield self.access(index)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntSequence):
            return NotImplemented
        return (
            self._length == other._length
            and self._width == other._width
            and self._buffer == other._buffer
        )

    def __hash__(self) -> int:
        return hash((self._length, self._width, self._buffer))

    def __repr__(self) -> str:
        preview = ", ".join(str(v) for v in list(self)[:8])
        suffix = ", ..." if self._length > 8 else ""
        return f"IntSequence([{preview}{suffix}], width={self._width})"

    @property
    def width(self) -> int:
        """Number of bits used per value."""
        return self._width

    def access(self, index: int) -> int:
        """Return the value stored at ``index``."""
        if not 0 <= index < self._length:
            raise IndexError(f"index {index} out of range [0, {self._length})")
        return (self._buffer >> (index * self._width)) & self._mask

    __getitem__ = access

    def to_list(self) -> List[int]:
        """Materialise the sequence as a plain list."""
        return list(self)

    def size_in_bytes(self) -> int:
        """Approximate packed storage footprint in bytes."""
        return (self._length * self._width + 7) // 8

    @classmethod
    def from_iterable(cls, values: Iterable[int], width: int | None = None) -> "IntSequence":
        """Build from any iterable of non-negative integers."""
        return cls(list(values), width=width)
