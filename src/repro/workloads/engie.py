"""ENGIE water-distribution sensor workload (paper Section 2 and Figure 1).

The paper's real-world datasets are measurement graphs harvested from the
potable-water distribution of an ENGIE building (250 and 500 triples).  The
data itself is proprietary, so this module generates a synthetic equivalent
with the same topology and annotations:

* two (or more) monitoring *stations* (``sosa:Platform``), each hosting a
  pressure sensor and a chemistry sensor;
* station 1 annotates its measures with ``qudt:PressureOrStressUnit`` /
  ``qudt:Chemistry`` and expresses pressure in **bar**, station 2 with
  ``qudt:Pressure`` / ``qudt:AmountOfSubstanceUnit`` in **hectopascal** — the
  heterogeneity the motivating example relies on;
* each sensor emits a stream of ``sosa:Observation`` instances with a blank
  node ``sosa:Result`` carrying ``qudt:numericValue`` and ``qudt:unit``;
* a configurable fraction of the observations are anomalies (pressure outside
  the 3.00-4.50 bar operating range).
"""

from __future__ import annotations

import random

from repro.rdf.graph import Graph
from repro.rdf.namespaces import QUDT, QUDT_UNIT, RDF, RDFS, SOSA
from repro.rdf.terms import BlankNode, Literal, Triple, URI

_DATA_PREFIX = "http://engie.example.org/water/"

#: Operating range (in bar) outside of which a pressure measure is an anomaly.
PRESSURE_RANGE_BAR = (3.0, 4.5)


def engie_ontology() -> Graph:
    """The QUDT/SOSA hierarchy fragment of the motivating example.

    Axioms (Section 2)::

        qudt:AmountOfSubstanceUnit ⊑ qudt:Chemistry ⊑ qudt:ScienceUnit
        qudt:PressureOrStressUnit ⊑ qudt:PressureUnit ⊑ qudt:MechanicsUnit
        qudt:Pressure             ⊑ qudt:PressureUnit
    """
    graph = Graph()
    axioms = [
        (QUDT.AmountOfSubstanceUnit, QUDT.Chemistry),
        (QUDT.Chemistry, QUDT.ScienceUnit),
        (QUDT.PressureOrStressUnit, QUDT.PressureUnit),
        (QUDT.Pressure, QUDT.PressureUnit),
        (QUDT.PressureUnit, QUDT.MechanicsUnit),
    ]
    for child, parent in axioms:
        graph.add(Triple(child, RDFS.subClassOf, parent))
    # SOSA observation classes (flat, but declared so LiteMat encodes them).
    for concept in (SOSA.Platform, SOSA.Sensor, SOSA.Observation, SOSA.Result):
        graph.add(Triple(concept, RDFS.subClassOf, URI("http://www.w3.org/2002/07/owl#Thing")))
    return graph


def water_distribution_graph(
    observations_per_sensor: int = 14,
    stations: int = 2,
    anomaly_rate: float = 0.15,
    seed: int = 7,
) -> Graph:
    """Generate a measurement graph following the Figure 1 topology.

    Each station contributes a platform, two sensors and
    ``observations_per_sensor`` observations per sensor; every observation
    adds 7 triples, so the default parameters yield roughly
    ``stations * (5 + 2 * observations_per_sensor * 7)`` triples.
    """
    rng = random.Random(seed)
    graph = Graph()
    for station_index in range(1, stations + 1):
        _add_station(graph, rng, station_index, observations_per_sensor, anomaly_rate)
    return graph


def water_distribution_250(seed: int = 7) -> Graph:
    """The paper's 250-triple real-world dataset (synthetic equivalent)."""
    return _sized_graph(250, seed)


def water_distribution_500(seed: int = 7) -> Graph:
    """The paper's 500-triple real-world dataset (synthetic equivalent)."""
    return _sized_graph(500, seed)


def _sized_graph(target_triples: int, seed: int) -> Graph:
    """A two-station graph truncated/extended to ``target_triples`` triples."""
    per_sensor = max(1, (target_triples // 2 - 5) // 14 + 1)
    graph = water_distribution_graph(observations_per_sensor=per_sensor, stations=2, seed=seed)
    if len(graph) < target_triples:
        extra = water_distribution_graph(
            observations_per_sensor=per_sensor, stations=2, seed=seed + 1
        )
        graph.update(extra)
    return graph.head(target_triples)


# --------------------------------------------------------------------------- #
# generation details
# --------------------------------------------------------------------------- #


def _add_station(
    graph: Graph,
    rng: random.Random,
    station_index: int,
    observations_per_sensor: int,
    anomaly_rate: float,
) -> None:
    station = URI(_DATA_PREFIX + f"Station{station_index}")
    pressure_sensor = URI(_DATA_PREFIX + f"Station{station_index}/PressureSensor")
    chemistry_sensor = URI(_DATA_PREFIX + f"Station{station_index}/ChemistrySensor")

    graph.add(Triple(station, RDF.type, SOSA.Platform))
    graph.add(Triple(station, SOSA.hosts, pressure_sensor))
    graph.add(Triple(station, SOSA.hosts, chemistry_sensor))
    graph.add(Triple(pressure_sensor, RDF.type, SOSA.Sensor))
    graph.add(Triple(chemistry_sensor, RDF.type, SOSA.Sensor))

    # Station 1 annotates with the more specific concepts and measures in bar;
    # station 2 uses sibling concepts and hectopascal — the heterogeneity of
    # the motivating example.
    if station_index % 2 == 1:
        pressure_unit_concept = QUDT.PressureOrStressUnit
        pressure_unit = QUDT_UNIT.BAR
        chemistry_concept = QUDT.Chemistry
    else:
        pressure_unit_concept = QUDT.Pressure
        pressure_unit = QUDT_UNIT.HectoPA
        chemistry_concept = QUDT.AmountOfSubstanceUnit

    for obs_index in range(observations_per_sensor):
        _add_observation(
            graph,
            rng,
            sensor=pressure_sensor,
            station_index=station_index,
            obs_index=obs_index,
            kind="pressure",
            unit=pressure_unit,
            unit_concept=pressure_unit_concept,
            anomaly_rate=anomaly_rate,
        )
        _add_observation(
            graph,
            rng,
            sensor=chemistry_sensor,
            station_index=station_index,
            obs_index=obs_index,
            kind="chemistry",
            unit=QUDT_UNIT.MilliGM_PER_L,
            unit_concept=chemistry_concept,
            anomaly_rate=anomaly_rate,
        )


def _add_observation(
    graph: Graph,
    rng: random.Random,
    sensor: URI,
    station_index: int,
    obs_index: int,
    kind: str,
    unit: URI,
    unit_concept: URI,
    anomaly_rate: float,
) -> None:
    observation = URI(f"{sensor.value}/Observation{obs_index}")
    result = BlankNode(f"result_s{station_index}_{kind}_{obs_index}")

    graph.add(Triple(sensor, SOSA.observes, observation))
    graph.add(Triple(observation, RDF.type, SOSA.Observation))
    graph.add(Triple(observation, SOSA.hasResult, result))
    graph.add(
        Triple(
            observation,
            SOSA.resultTime,
            Literal(
                f"2020-06-0{1 + obs_index % 9}T{obs_index % 24:02d}:00:00",
                datatype="http://www.w3.org/2001/XMLSchema#dateTime",
            ),
        )
    )
    graph.add(Triple(result, RDF.type, SOSA.Result))
    graph.add(Triple(result, QUDT.numericValue, Literal(_measure_value(rng, kind, unit, anomaly_rate))))
    graph.add(Triple(result, QUDT.unit, unit))
    graph.add(Triple(unit, RDF.type, unit_concept))


def _measure_value(rng: random.Random, kind: str, unit: URI, anomaly_rate: float) -> float:
    """A plausible measurement, anomalous with probability ``anomaly_rate``."""
    anomalous = rng.random() < anomaly_rate
    if kind == "pressure":
        low, high = PRESSURE_RANGE_BAR
        if anomalous:
            value_bar = rng.choice([rng.uniform(0.5, low - 0.5), rng.uniform(high + 0.5, high + 2.0)])
        else:
            value_bar = rng.uniform(low + 0.1, high - 0.1)
        if unit == QUDT_UNIT.HectoPA:
            return round(value_bar * 1000.0, 1)
        return round(value_bar, 3)
    # Chemistry: chlorine-like concentration in mg/L, nominal range 0.2-0.5.
    if anomalous:
        return round(rng.uniform(0.8, 2.0), 3)
    return round(rng.uniform(0.2, 0.5), 3)


_MONITORING_PREFIXES = (
    "PREFIX sosa: <http://www.w3.org/ns/sosa/>\n"
    "PREFIX qudt: <http://qudt.org/schema/qudt/>\n"
)


def station_pressure_profile_query() -> str:
    """Per-station pressure statistics (GROUP BY + COUNT/AVG/MIN/MAX).

    Uses LiteMat reasoning over ``qudt:PressureUnit`` so both the
    ``PressureOrStressUnit``-annotated bar readings and the
    ``Pressure``-annotated hectopascal readings contribute.
    """
    return _MONITORING_PREFIXES + (
        "SELECT ?x (COUNT(?v) AS ?n) (AVG(?v) AS ?mean) (MIN(?v) AS ?low) (MAX(?v) AS ?peak)\n"
        "WHERE {\n"
        "  ?x a sosa:Platform ; sosa:hosts ?s .\n"
        "  ?s sosa:observes ?o . ?o sosa:hasResult ?y .\n"
        "  ?y qudt:numericValue ?v ; qudt:unit ?u .\n"
        "  ?u a qudt:PressureUnit .\n"
        "} GROUP BY ?x ORDER BY ?x"
    )


def top_pressure_readings_query(k: int = 10) -> str:
    """The ``k`` highest pressure readings (ORDER BY DESC + LIMIT top-k)."""
    return _MONITORING_PREFIXES + (
        "SELECT ?s ?ts ?v WHERE {\n"
        "  ?s sosa:observes ?o . ?o sosa:hasResult ?y ; sosa:resultTime ?ts .\n"
        "  ?y qudt:numericValue ?v ; qudt:unit ?u .\n"
        "  ?u a qudt:PressureUnit .\n"
        f"}} ORDER BY DESC(?v) ?ts LIMIT {k}"
    )


def sensor_inventory_query() -> str:
    """Sensors per platform with their chemistry readings left-outer joined.

    Pressure sensors have no chemistry results, so the OPTIONAL group stays
    unbound for them — the inventory still lists every sensor.
    """
    return _MONITORING_PREFIXES + (
        "SELECT ?x ?s ?v WHERE {\n"
        "  ?x a sosa:Platform ; sosa:hosts ?s .\n"
        "  OPTIONAL {\n"
        "    ?s sosa:observes ?o . ?o sosa:hasResult ?y .\n"
        "    ?y qudt:numericValue ?v ; qudt:unit <http://qudt.org/vocab/unit/MilliGM_PER_L> .\n"
        "  }\n"
        "}"
    )


def has_pressure_anomaly_query(low: float = 3.0, high: float = 4.5) -> str:
    """ASK whether any bar-denominated pressure reading is outside the range.

    Streaming evaluation stops at the first offending observation instead of
    materializing the full answer set.
    """
    return _MONITORING_PREFIXES + (
        "ASK {\n"
        "  ?y qudt:numericValue ?v ; qudt:unit <http://qudt.org/vocab/unit/BAR> .\n"
        f"  FILTER(?v < {low} || ?v > {high})\n"
        "}"
    )


def anomaly_detection_query() -> str:
    """The motivating example's anomaly-detection SPARQL query (Section 2)."""
    return """
    PREFIX sosa: <http://www.w3.org/ns/sosa/>
    PREFIX qudt: <http://qudt.org/schema/qudt/>
    SELECT ?x ?s ?ts ?v1 WHERE {
      ?x a sosa:Platform ; sosa:hosts ?s .
      ?s sosa:observes ?o ; a sosa:Sensor .
      ?o sosa:hasResult ?y ; a sosa:Observation ; sosa:resultTime ?ts .
      ?y a sosa:Result ; qudt:numericValue ?v1 ; qudt:unit ?u1 .
      ?u1 a qudt:PressureUnit .
      FILTER (?newV < 3.00 || ?newV > 4.50)
      BIND(if(regex(str(?u1), "http://qudt.org/vocab/unit/BAR"), ?v1,
           if(regex(str(?u1), "http://qudt.org/vocab/unit/HectoPA"), ?v1 / 1000, 0)) as ?newV)
    }
    """
