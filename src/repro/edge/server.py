"""Central administration server.

In the paper's deployment (Section 4) a central computer, operated by the
building administrator, (i) registers the IoT devices, (ii) pre-encodes the
stable ontologies with LiteMat and broadcasts the resulting dictionaries to
every SuccinctEdge instance running at the edge, and (iii) receives the
alerts those instances raise.  This module simulates that server so the whole
deployment loop can be exercised end to end.

Devices register in one of two ingestion modes (see
:mod:`repro.edge.stream` and ``docs/update_lifecycle.md``):

* the paper's rebuild-per-instance mode (:class:`GraphStreamProcessor`), and
* the live-update mode (``live=True``, :class:`LiveStreamProcessor`), where
  readings become delta inserts into one long-lived updatable store and old
  instances are evicted through tombstones.

Live devices can additionally be *served*: :meth:`AdministrationServer.query_service`
builds a :class:`~repro.serve.service.QueryService` over the device's live
store (admission control, result cache keyed on the store's snapshot epoch,
timeouts), and :meth:`AdministrationServer.start_query_server` exposes it as
SPARQL over HTTP — the front door of ``docs/operations.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.edge.alerts import Alert, AlertSink, AnomalyRule
from repro.edge.device import DeviceProfile, EdgeDevice, RASPBERRY_PI_3B_PLUS
from repro.edge.stream import GraphStreamProcessor, LiveStreamProcessor
from repro.ontology.litemat import LiteMatEncoder, LiteMatEncoding
from repro.ontology.schema import OntologySchema
from repro.rdf.graph import Graph
from repro.store.delta import CompactionPolicy


@dataclass(frozen=True)
class OntologyBundle:
    """The pre-encoded ontology broadcast to the edge devices.

    It carries the schema (for query rewriting helpers) and the LiteMat
    encodings of the concept and property hierarchies; devices reuse them so
    that every SuccinctEdge instance assigns the same identifiers — the
    property the paper relies on when the server later interprets alerts.
    """

    schema: OntologySchema
    concepts: LiteMatEncoding
    properties: LiteMatEncoding

    @classmethod
    def from_ontology(cls, ontology: Graph) -> "OntologyBundle":
        """Encode an ontology graph once, centrally."""
        schema = OntologySchema.from_graph(ontology)
        encoder = LiteMatEncoder(schema)
        return cls(
            schema=schema,
            concepts=encoder.encode_concepts(),
            properties=encoder.encode_properties(),
        )

    def size_in_bytes(self) -> int:
        """Rough payload size of one broadcast (terms + identifiers)."""
        total = 0
        for encoding in (self.concepts, self.properties):
            for term in encoding.terms():
                total += len(str(term).encode("utf-8")) + 8
        return total


@dataclass
class RegisteredDevice:
    """One edge device registered at the server."""

    name: str
    processor: Union[GraphStreamProcessor, LiveStreamProcessor]
    device: EdgeDevice
    sink: AlertSink
    location: str = ""

    @property
    def live(self) -> bool:
        """Whether the device ingests readings into a live updatable store."""
        return isinstance(self.processor, LiveStreamProcessor)


class AdministrationServer:
    """Registers devices, broadcasts the ontology, aggregates alerts."""

    def __init__(self, ontology: Graph, rules: Optional[List[AnomalyRule]] = None) -> None:
        self.ontology = ontology
        self.bundle = OntologyBundle.from_ontology(ontology)
        self.rules: List[AnomalyRule] = list(rules or [])
        self.devices: Dict[str, RegisteredDevice] = {}
        self.received_alerts: List[Alert] = []
        #: HTTP query servers started via :meth:`start_query_server`.
        self.query_servers: Dict[str, object] = {}

    # ------------------------------------------------------------------ #
    # administration
    # ------------------------------------------------------------------ #

    def register_rule(self, rule: AnomalyRule) -> None:
        """Add a continuous query; it applies to devices registered afterwards."""
        self.rules.append(rule)

    def register_device(
        self,
        name: str,
        profile: DeviceProfile = RASPBERRY_PI_3B_PLUS,
        location: str = "",
        live: bool = False,
        policy: Optional[CompactionPolicy] = None,
        retention_instances: Optional[int] = None,
        background_compaction: bool = False,
    ) -> RegisteredDevice:
        """Register a new edge device and ship it the rules and the ontology.

        With ``live=True`` the device runs a
        :class:`~repro.edge.stream.LiveStreamProcessor`: readings are
        ingested as delta inserts into one long-lived updatable store
        (``policy`` sets its compaction thresholds, ``retention_instances``
        bounds the sliding window, ``background_compaction`` moves triggered
        compactions onto a worker thread).  Without it the device rebuilds a
        fresh store per graph instance, the paper's native mode.
        """
        if name in self.devices:
            raise ValueError(f"device {name!r} is already registered")
        device = EdgeDevice(profile)
        sink = AlertSink(callback=self._receive_alert)
        processor: Union[GraphStreamProcessor, LiveStreamProcessor]
        if live:
            processor = LiveStreamProcessor(
                ontology=self.ontology,
                rules=list(self.rules),
                sink=sink,
                device=device,
                policy=policy,
                retention_instances=retention_instances,
                background_compaction=background_compaction,
            )
        else:
            processor = GraphStreamProcessor(
                ontology=self.ontology, rules=list(self.rules), sink=sink, device=device
            )
        registered = RegisteredDevice(
            name=name, processor=processor, device=device, sink=sink, location=location
        )
        self.devices[name] = registered
        return registered

    def _receive_alert(self, alert: Alert) -> None:
        self.received_alerts.append(alert)

    # ------------------------------------------------------------------ #
    # serving (SPARQL front door over a live device's store)
    # ------------------------------------------------------------------ #

    def query_service(self, device_name: str, **service_options):
        """A :class:`~repro.serve.service.QueryService` over a live device.

        Queries route through admission control, the per-epoch result cache
        and cooperative timeouts; concurrent ingestion (and background
        compaction) invalidates cached results through the store's snapshot
        epochs.  Only live devices carry a long-lived store to serve;
        rebuild-per-instance devices raise.  ``service_options`` are passed
        to the service constructor (``worker_slots``, ``cache_capacity``,
        ``default_timeout_s``, ``parallel``...).
        """
        from repro.serve.service import QueryService  # deferred: keeps edge importable alone

        if device_name not in self.devices:
            raise KeyError(f"unknown device {device_name!r}")
        registered = self.devices[device_name]
        if not registered.live:
            raise ValueError(
                f"device {device_name!r} rebuilds a fresh store per instance; "
                "register it with live=True to serve queries over a long-lived store"
            )
        return QueryService(registered.processor.store, **service_options)

    def start_query_server(
        self,
        device_name: str,
        host: str = "127.0.0.1",
        port: int = 0,
        network=None,
        **service_options,
    ):
        """Start (and track) an HTTP query server over a live device's store.

        Returns the started :class:`~repro.serve.server.QueryServer`; its
        concrete address is ``server.url``.  Starting again for the same
        device is a restart: the previous server is stopped (and its service
        closed) before the replacement comes up, so no port, serve thread or
        engine pool leaks.  :meth:`shutdown_query_servers` stops every
        server started this way.
        """
        from repro.serve.server import QueryServer  # deferred: keeps edge importable alone

        previous = self.query_servers.pop(device_name, None)
        if previous is not None:
            previous.stop()
            previous.service.close()
        service = self.query_service(device_name, **service_options)
        server = QueryServer(service, host=host, port=port, network=network).start()
        self.query_servers[device_name] = server
        return server

    def shutdown_query_servers(self) -> int:
        """Stop every tracked query server; returns how many were stopped."""
        stopped = 0
        for server in self.query_servers.values():
            server.stop()
            server.service.close()
            stopped += 1
        self.query_servers.clear()
        return stopped

    # ------------------------------------------------------------------ #
    # operation
    # ------------------------------------------------------------------ #

    def ingest(self, device_name: str, graph: Graph) -> List[Alert]:
        """Deliver one measurement graph instance to a registered device."""
        if device_name not in self.devices:
            raise KeyError(f"unknown device {device_name!r}")
        return self.devices[device_name].processor.process_instance(graph)

    def alerts_by_device(self) -> Dict[str, List[Alert]]:
        """Received alerts grouped by the device that raised them."""
        grouped: Dict[str, List[Alert]] = {name: [] for name in self.devices}
        for name, registered in self.devices.items():
            grouped[name] = list(registered.sink.alerts)
        return grouped

    def fleet_statistics(self) -> Dict[str, Dict[str, float]]:
        """Per-device stream statistics (instances, alerts, mean latency).

        Live devices additionally report their store's visible triple count,
        snapshot epochs and compaction count.
        """
        summary: Dict[str, Dict[str, float]] = {}
        for name, registered in self.devices.items():
            statistics = registered.processor.statistics
            entry: Dict[str, float] = {
                "instances": statistics.instances_processed,
                "triples": statistics.triples_processed,
                "alerts": statistics.alerts_raised,
                "mean_ms": statistics.mean_processing_ms,
                "energy_joules": registered.device.energy_spent_joules,
            }
            if isinstance(registered.processor, LiveStreamProcessor):
                store = registered.processor.store
                entry["live_triples"] = store.triple_count
                entry["compaction_epoch"] = store.compaction_epoch
                entry["data_epoch"] = store.data_epoch
                entry["compactions"] = registered.processor.statistics.compactions
            summary[name] = entry
        return summary
