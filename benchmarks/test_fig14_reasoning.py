"""Figure 14 — queries requiring RDFS reasoning.

SuccinctEdge answers R1-R6 natively through LiteMat identifier intervals; the
baselines run the UNION-of-subqueries rewriting the paper hands them.
RDF4Led does not support UNION and therefore reports no value, exactly as in
the paper's Figure 14.
"""

from __future__ import annotations

from repro.bench.harness import record_table

from repro.baselines.registry import SYSTEM_ORDER
from repro.bench.harness import format_table, query_latency_row


def test_fig14_reasoning_queries(benchmark, context, loaded_systems, results_dir):
    """Regenerate the Figure 14 series (reasoning query latency)."""
    queries = context.catalog.reasoning_queries()
    succinct = loaded_systems["SuccinctEdge"]
    sizes = {query.identifier: len(succinct.query(query.sparql, reasoning=True)) for query in queries}
    columns = [f"{query.identifier}({sizes[query.identifier]})" for query in queries]

    rows = {}
    for system_name in SYSTEM_ORDER:
        system = loaded_systems[system_name]
        cells = []
        for query in queries:
            measurement = query_latency_row(system, query, reasoning=True, repetitions=1)
            cells.append(None if measurement is None else measurement.total_ms)
        rows[system_name] = cells
    table = format_table(
        "Figure 14: queries with RDFS reasoning R1-R6 (answer-set size in parentheses)",
        columns,
        rows,
        unit="ms, measured + simulated",
    )
    record_table(results_dir, "fig14_reasoning", table)

    benchmark.pedantic(lambda: succinct.query(queries[0].sparql, reasoning=True), rounds=1, iterations=1)

    # RDF4Led cannot answer reasoning queries (no UNION support).
    assert all(value is None for value in rows["RDF4Led"])
    # The UNION-capable systems agree with SuccinctEdge on the answer sets.
    for query in queries:
        expected = succinct.query(query.sparql, reasoning=True).to_set()
        for system_name in ("RDF4J", "Jena_InMem"):
            assert loaded_systems[system_name].query(query.sparql, reasoning=True).to_set() == expected
