"""Latency measurement helpers.

Every latency this reproduction reports is split into two components:

* ``measured_ms`` — wall-clock CPU time of the pure-Python implementation on
  the machine running the benchmarks;
* ``simulated_ms`` — the documented environment cost charged by the baseline
  analogues (JVM query-setup overhead, SD-card page I/O); zero for
  SuccinctEdge.

``total_ms`` (the sum) is what the paper-style tables print; the raw
components are always available so the calibration stays transparent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Tuple


@dataclass(frozen=True)
class Measurement:
    """One measured operation."""

    measured_ms: float
    simulated_ms: float
    result: Any = None

    @property
    def total_ms(self) -> float:
        """Measured plus simulated latency."""
        return self.measured_ms + self.simulated_ms


def measure_call(
    callable_: Callable[[], Any],
    simulated_cost_getter: Callable[[], float] = lambda: 0.0,
) -> Measurement:
    """Run ``callable_`` once and capture its latency.

    ``simulated_cost_getter`` is read *after* the call (the baseline stores
    update their ``last_simulated_cost_ms`` during execution).
    """
    started = time.perf_counter()
    result = callable_()
    measured_ms = (time.perf_counter() - started) * 1000.0
    simulated_ms = float(simulated_cost_getter())
    return Measurement(measured_ms=measured_ms, simulated_ms=simulated_ms, result=result)


def measure_best_of(
    callable_: Callable[[], Any],
    simulated_cost_getter: Callable[[], float] = lambda: 0.0,
    repetitions: int = 3,
) -> Measurement:
    """Best-of-N measurement (hot runs, as in the paper's Section 7.3.3)."""
    best: Measurement | None = None
    for _ in range(max(1, repetitions)):
        current = measure_call(callable_, simulated_cost_getter)
        if best is None or current.total_ms < best.total_ms:
            best = current
    assert best is not None
    return best
