"""Common interface and generic query engine for every evaluated system.

The benchmark harness treats SuccinctEdge and the baselines uniformly through
:class:`EdgeRDFStore`: build from a graph, answer triple-pattern ``match``
calls, answer SPARQL SELECT queries, and report storage/cost accounting.

The generic query engine implemented here (BGP with greedy ordering + bind
propagation, FILTER, BIND, UNION, projection) is what the baseline systems
use; SuccinctEdge has its own engine (:mod:`repro.query.engine`) built on SDS
operations and LiteMat intervals.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Union as TypingUnion

from repro.ontology.rewriting import rewrite_query_with_unions
from repro.ontology.schema import OntologySchema
from repro.rdf.graph import Graph
from repro.rdf.terms import Term, Triple, URI
from repro.sparql.algebra import apply_solution_modifiers, values_bindings
from repro.sparql.ast import (
    AskQuery,
    GroupGraphPattern,
    Query,
    SelectQuery,
    TriplePattern,
    Variable,
)
from repro.sparql.bindings import AskResult, Binding, ResultSet
from repro.sparql.expressions import evaluate_bind, evaluate_filter
from repro.sparql.parser import parse_query


class UnsupportedFeatureError(RuntimeError):
    """Raised when a system does not support a query feature (e.g. UNION)."""


class EdgeRDFStore:
    """Base class of every evaluated system.

    Subclasses must implement :meth:`load`, :meth:`match` and the storage
    accounting methods; they inherit a complete SPARQL SELECT engine working
    on top of :meth:`match`.
    """

    #: Human-readable system name (overridden by the registry profiles).
    name: str = "abstract"
    #: Whether the system supports the UNION clause (RDF4Led does not).
    supports_union: bool = True
    #: Whether the system keeps its data in main memory.
    in_memory: bool = True

    def __init__(self) -> None:
        self._schema: Optional[OntologySchema] = None
        #: Simulated environment cost (milliseconds) accumulated by the last operation.
        self.last_simulated_cost_ms: float = 0.0

    # ------------------------------------------------------------------ #
    # loading
    # ------------------------------------------------------------------ #

    def load(self, data: Graph, ontology: Optional[Graph] = None) -> None:
        """Build the system's storage from ``data`` (and remember the ontology)."""
        raise NotImplementedError

    @property
    def schema(self) -> OntologySchema:
        """The ontology schema available for UNION-rewriting reasoning."""
        if self._schema is None:
            return OntologySchema()
        return self._schema

    def _remember_schema(self, data: Graph, ontology: Optional[Graph]) -> None:
        schema = OntologySchema()
        if ontology is not None:
            schema = OntologySchema.from_graph(ontology)
        for triple in data:
            schema._ingest(triple)  # noqa: SLF001 — loading is a friend operation
        self._schema = schema

    # ------------------------------------------------------------------ #
    # matching (to be provided by subclasses)
    # ------------------------------------------------------------------ #

    def match(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[URI] = None,
        obj: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """Yield stored triples matching the pattern (``None`` = wildcard)."""
        raise NotImplementedError

    def triple_count(self) -> int:
        """Number of stored triples."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # storage accounting (to be provided by subclasses)
    # ------------------------------------------------------------------ #

    def dictionary_size_in_bytes(self) -> int:
        """Serialised dictionary size (Figure 9)."""
        raise NotImplementedError

    def triple_storage_size_in_bytes(self) -> int:
        """Serialised triple/index size without dictionaries (Figure 10)."""
        raise NotImplementedError

    def memory_footprint_in_bytes(self) -> int:
        """Resident main-memory footprint (Figure 11)."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # SPARQL (generic engine over match)
    # ------------------------------------------------------------------ #

    def query(
        self,
        query: TypingUnion[str, Query],
        reasoning: bool = False,
    ) -> TypingUnion[ResultSet, AskResult]:
        """Answer a SELECT or ASK query.

        With ``reasoning`` the query is first rewritten into a UNION of
        inference-free queries against the remembered ontology — the strategy
        the paper applies to every baseline.  Systems that do not support
        UNION raise :class:`UnsupportedFeatureError`.  Solution modifiers
        (GROUP BY + aggregates, ORDER BY, OFFSET, LIMIT) are applied through
        the shared algebra (:mod:`repro.sparql.algebra`), so the baselines
        answer the same query forms as SuccinctEdge — materialized rather
        than streamed.
        """
        parsed = parse_query(query) if isinstance(query, str) else query
        if isinstance(parsed, AskQuery):
            # ASK shares the SELECT path: the reasoning rewrite and the
            # UNION capability check apply to its WHERE clause too.
            probe = SelectQuery(projection=None, where=parsed.where)
            if reasoning:
                probe = rewrite_query_with_unions(probe, self.schema)
            if probe.where.unions and not self.supports_union:
                raise UnsupportedFeatureError(f"{self.name} does not support the UNION clause")
            return AskResult(bool(self._evaluate_group(probe.where)))
        if reasoning:
            parsed = rewrite_query_with_unions(parsed, self.schema)
        if parsed.where.unions and not self.supports_union:
            raise UnsupportedFeatureError(f"{self.name} does not support the UNION clause")
        bindings = self._evaluate_group(parsed.where)
        return apply_solution_modifiers(parsed, bindings)

    # -- group evaluation ------------------------------------------------ #

    def _evaluate_group(
        self, group: GroupGraphPattern, seed: Optional[Binding] = None
    ) -> List[Binding]:
        bindings = self._evaluate_bgp(list(group.bgp.patterns), seed or Binding())
        for union in group.unions:
            union_bindings: List[Binding] = []
            for branch in union.branches:
                union_bindings.extend(self._evaluate_group(branch))
            bindings = self._combine(bindings, union_bindings)
        for optional in group.optionals:
            joined: List[Binding] = []
            for binding in bindings:
                extensions = self._evaluate_group(optional, seed=binding)
                joined.extend(extensions if extensions else [binding])
            bindings = joined
        for block in group.values:
            table = values_bindings(block)
            merged_rows: List[Binding] = []
            for binding in bindings:
                for row in table:
                    merged = binding.merged(row)
                    if merged is not None:
                        merged_rows.append(merged)
            bindings = merged_rows
        for bind in group.binds:
            updated: List[Binding] = []
            for binding in bindings:
                value = evaluate_bind(bind.expression, binding)
                updated.append(binding if value is None else binding.extended(bind.variable.name, value))
            bindings = updated
        for constraint in group.filters:
            bindings = [b for b in bindings if evaluate_filter(constraint.expression, b)]
        return bindings

    @staticmethod
    def _combine(left: List[Binding], right: List[Binding]) -> List[Binding]:
        if not left:
            return right
        if not right:
            return []
        combined: List[Binding] = []
        for left_binding in left:
            for right_binding in right:
                merged = left_binding.merged(right_binding)
                if merged is not None:
                    combined.append(merged)
        return combined

    # -- BGP evaluation --------------------------------------------------- #

    def _evaluate_bgp(self, patterns: List[TriplePattern], seed: Binding) -> List[Binding]:
        if not patterns:
            return [seed]
        ordered = self._order_patterns(patterns)
        bindings = [seed]
        for pattern in ordered:
            next_bindings: List[Binding] = []
            for binding in bindings:
                next_bindings.extend(self._evaluate_pattern(pattern, binding))
            bindings = next_bindings
            if not bindings:
                return []
        return bindings

    def _order_patterns(self, patterns: List[TriplePattern]) -> List[TriplePattern]:
        """Greedy ordering: most-bound pattern first, then connected patterns."""
        remaining = list(patterns)
        ordered: List[TriplePattern] = []
        bound_variables: set = set()

        def rank(pattern: TriplePattern) -> tuple:
            constants = sum(
                0 if isinstance(slot, Variable) and slot.name not in bound_variables else 1
                for slot in (pattern.subject, pattern.predicate, pattern.object)
            )
            connected = any(name in bound_variables for name in pattern.variable_names())
            return (-constants, not connected)

        while remaining:
            remaining.sort(key=rank)
            chosen = remaining.pop(0)
            ordered.append(chosen)
            bound_variables.update(chosen.variable_names())
        return ordered

    def _evaluate_pattern(self, pattern: TriplePattern, binding: Binding) -> Iterator[Binding]:
        def resolve(slot):
            if isinstance(slot, Variable):
                return binding.get(slot.name), slot.name
            return slot, None

        subject, subject_var = resolve(pattern.subject)
        predicate, predicate_var = resolve(pattern.predicate)
        obj, object_var = resolve(pattern.object)
        if predicate is not None and not isinstance(predicate, URI):
            return
        for triple in self.match(subject, predicate, obj):
            current = binding
            consistent = True
            for name, value in (
                (subject_var, triple.subject),
                (predicate_var, triple.predicate),
                (object_var, triple.object),
            ):
                if name is None:
                    continue
                existing = current.get(name)
                if existing is not None:
                    if existing != value:
                        consistent = False
                        break
                    continue
                current = current.extended(name, value)
            if consistent:
                yield current
