"""Tests for the baseline stores (multi-index memory store, paged disk store)."""

from __future__ import annotations

import pytest

from repro.baselines.base import UnsupportedFeatureError
from repro.baselines.disk_store import PagedDiskStore
from repro.baselines.multi_index_store import MultiIndexMemoryStore
from repro.baselines.registry import (
    SYSTEM_ORDER,
    SuccinctEdgeSystem,
    available_systems,
    create_system,
    get_profile,
)
from repro.rdf.namespaces import RDF
from repro.rdf.terms import Literal
from tests.conftest import EX, build_toy_data, build_toy_ontology, hierarchy_closure, naive_query
from repro.ontology.schema import OntologySchema


@pytest.fixture(scope="module")
def toy_pair():
    return build_toy_data(), build_toy_ontology()


def loaded(store, toy_pair):
    data, ontology = toy_pair
    store.load(data, ontology=ontology)
    return store


class TestMultiIndexMemoryStore:
    def test_match_equals_graph_oracle(self, toy_pair):
        data, _ = toy_pair
        store = loaded(MultiIndexMemoryStore(), toy_pair)
        patterns = [
            (None, None, None),
            (EX.alice, None, None),
            (None, EX.memberOf, None),
            (None, None, EX.dept1),
            (None, RDF.type, EX.Department),
            (EX.bob, EX.headOf, EX.dept1),
            (None, EX.name, Literal("Alice")),
        ]
        for subject, predicate, obj in patterns:
            assert set(store.match(subject, predicate, obj)) == set(
                data.triples(subject, predicate, obj)
            )

    def test_duplicate_load_is_idempotent_per_triple(self, toy_pair):
        data, ontology = toy_pair
        store = MultiIndexMemoryStore()
        store.load(data, ontology=ontology)
        assert store.triple_count() == len(data)

    def test_query_without_reasoning(self, toy_pair):
        data, _ = toy_pair
        store = loaded(MultiIndexMemoryStore(), toy_pair)
        query = "SELECT ?x ?d WHERE { ?x <http://example.org/memberOf> ?d }"
        assert store.query(query).to_set() == naive_query(data, query).to_set()

    def test_query_with_union_rewriting_reasoning(self, toy_pair):
        data, ontology = toy_pair
        store = loaded(MultiIndexMemoryStore(), toy_pair)
        schema = OntologySchema.from_graph(ontology)
        query = "SELECT ?x WHERE { ?x a <http://example.org/Person> }"
        expected = naive_query(hierarchy_closure(data, schema), query).to_set()
        assert store.query(query, reasoning=True).to_set() == expected

    def test_simulated_cost_recorded(self, toy_pair):
        store = MultiIndexMemoryStore(per_query_overhead_ms=3.0, per_result_overhead_ms=0.5)
        loaded(store, toy_pair)
        result = store.query("SELECT ?x WHERE { ?x <http://example.org/memberOf> ?d }")
        assert store.last_simulated_cost_ms == pytest.approx(3.0 + 0.5 * len(result))

    def test_storage_accounting_uses_constants(self, toy_pair):
        store = loaded(MultiIndexMemoryStore(bytes_per_index_entry=100), toy_pair)
        assert store.triple_storage_size_in_bytes() == store.triple_count() * 3 * 100
        assert store.memory_footprint_in_bytes() > store.triple_storage_size_in_bytes()


class TestPagedDiskStore:
    def test_match_equals_graph_oracle(self, toy_pair):
        data, _ = toy_pair
        store = loaded(PagedDiskStore(), toy_pair)
        patterns = [
            (None, None, None),
            (EX.alice, None, None),
            (None, EX.memberOf, None),
            (None, None, EX.dept1),
            (EX.bob, EX.headOf, EX.dept1),
        ]
        for subject, predicate, obj in patterns:
            assert set(store.match(subject, predicate, obj)) == set(
                data.triples(subject, predicate, obj)
            )

    def test_construction_charges_page_writes(self, toy_pair):
        store = loaded(PagedDiskStore(page_write_ms=2.0), toy_pair)
        assert store.last_construction_cost_ms > 0

    def test_queries_charge_page_reads(self, toy_pair):
        store = loaded(PagedDiskStore(page_read_ms=1.0, per_query_overhead_ms=2.0), toy_pair)
        store.reset_cache()
        store.query("SELECT ?x WHERE { ?x <http://example.org/memberOf> ?d }")
        assert store.last_simulated_cost_ms >= 2.0 + 1.0

    def test_page_cache_absorbs_repeated_reads(self, toy_pair):
        store = loaded(PagedDiskStore(page_read_ms=1.0, per_query_overhead_ms=0.0, cache_pages=64), toy_pair)
        store.reset_cache()
        query = "SELECT ?x WHERE { ?x <http://example.org/memberOf> ?d }"
        store.query(query)
        cold_cost = store.last_simulated_cost_ms
        store.query(query)
        warm_cost = store.last_simulated_cost_ms
        assert warm_cost < cold_cost

    def test_memory_footprint_excludes_disk_payload(self, toy_pair):
        disk = loaded(PagedDiskStore(), toy_pair)
        memory = loaded(MultiIndexMemoryStore(), toy_pair)
        assert disk.triple_storage_size_in_bytes() > 0
        # The disk store keeps only cache + bookkeeping in RAM.
        assert disk.memory_footprint_in_bytes() < disk.triple_storage_size_in_bytes() + disk.dictionary_size_in_bytes() + 200_000

    def test_query_results_match_memory_store(self, toy_pair):
        disk = loaded(PagedDiskStore(), toy_pair)
        memory = loaded(MultiIndexMemoryStore(), toy_pair)
        query = (
            "SELECT ?x ?n WHERE { ?x <http://example.org/memberOf> ?d . ?x <http://example.org/name> ?n }"
        )
        assert disk.query(query).to_set() == memory.query(query).to_set()


class TestRegistry:
    def test_available_systems_match_paper(self):
        assert available_systems() == ["SuccinctEdge", "RDF4Led", "Jena_TDB", "Jena_InMem", "RDF4J"]

    def test_profiles_have_descriptions(self):
        for name in SYSTEM_ORDER:
            profile = get_profile(name)
            assert profile.description
            assert profile.name == name

    def test_unknown_system_raises(self):
        with pytest.raises(KeyError):
            get_profile("Virtuoso")

    def test_rdf4led_rejects_union(self, toy_pair):
        store = loaded(create_system("RDF4Led"), toy_pair)
        with pytest.raises(UnsupportedFeatureError):
            store.query("SELECT ?x WHERE { ?x a <http://example.org/Person> }", reasoning=True)

    def test_all_systems_agree_on_plain_query(self, toy_pair):
        data, _ = toy_pair
        query = (
            "SELECT ?x ?d WHERE { ?x <http://example.org/memberOf> ?d . "
            "?d a <http://example.org/Department> }"
        )
        expected = naive_query(data, query).to_set()
        for name in SYSTEM_ORDER:
            system = loaded(create_system(name), toy_pair)
            assert system.query(query, reasoning=False).to_set() == expected, name

    def test_union_capable_systems_agree_on_reasoning_query(self, toy_pair):
        data, ontology = toy_pair
        schema = OntologySchema.from_graph(ontology)
        query = "SELECT ?x ?d WHERE { ?x <http://example.org/worksFor> ?d }"
        expected = naive_query(hierarchy_closure(data, schema), query).to_set()
        for name in SYSTEM_ORDER:
            system = loaded(create_system(name), toy_pair)
            if not system.supports_union and name != "SuccinctEdge":
                continue
            assert system.query(query, reasoning=True).to_set() == expected, name

    def test_succinct_edge_adapter_exposes_store(self, toy_pair):
        system = loaded(SuccinctEdgeSystem(), toy_pair)
        assert system.triple_count() == system.store.triple_count
        assert system.memory_footprint_in_bytes() == system.store.memory_footprint_in_bytes()

    def test_succinct_edge_adapter_requires_load(self):
        with pytest.raises(RuntimeError):
            SuccinctEdgeSystem().store  # noqa: B018 — property access must raise

    def test_memory_footprint_ordering_matches_paper(self, toy_pair):
        # SuccinctEdge must be the smallest of the in-memory systems (Figure 11).
        footprints = {}
        for name in ("SuccinctEdge", "Jena_InMem", "RDF4J"):
            system = loaded(create_system(name), toy_pair)
            footprints[name] = system.memory_footprint_in_bytes()
        assert footprints["SuccinctEdge"] < footprints["RDF4J"] < footprints["Jena_InMem"]

    def test_dictionary_size_ordering_matches_paper(self, toy_pair):
        # Figure 9: Jena TDB largest, SuccinctEdge roughly half of RDF4Led.
        sizes = {}
        for name in ("SuccinctEdge", "RDF4Led", "Jena_TDB"):
            system = loaded(create_system(name), toy_pair)
            sizes[name] = system.dictionary_size_in_bytes()
        assert sizes["SuccinctEdge"] < sizes["RDF4Led"] < sizes["Jena_TDB"]
