"""ParallelExecutor / ParallelQueryEngine: ordered fan-out, byte-identity.

The parallel engine's contract is *no observable difference*: identical
plans (the optimizer keeps its sequential runtime estimator) and identical
emission order (ordered batch gather; property-major, shard-minor leaf
scatter).  The differential matrix checks that on the full paper workload
against the sequential engine over the monolithic store.
"""

from __future__ import annotations

import pytest

from repro.query.engine import QueryEngine
from repro.query.parallel import ParallelExecutor, ParallelQueryEngine
from repro.query.tp_eval import TriplePatternEvaluator
from repro.sparql.ast import TriplePattern, Variable
from repro.sparql.bindings import AskResult, Binding
from repro.sparql.parser import parse_query
from repro.store.sharding import ShardedStore

ALL_QUERY_IDS = (
    [f"S{i}" for i in range(1, 16)]
    + [f"M{i}" for i in range(1, 6)]
    + [f"R{i}" for i in range(1, 7)]
    + [f"A{i}" for i in range(1, 7)]
)


@pytest.fixture(scope="module")
def sharded(small_lubm_store):
    return ShardedStore.from_store(small_lubm_store, shards=4)


def _rows(result):
    if isinstance(result, AskResult):
        return result.boolean
    return (result.variables, result.to_tuples())


@pytest.mark.parametrize("identifier", ALL_QUERY_IDS)
def test_parallel_engine_byte_identical(sharded, small_lubm_store, small_lubm_catalog, identifier):
    # Engines are per-query so both reasoning modes are exercised; the heavy
    # part (store construction) is module-scoped.
    query = small_lubm_catalog.by_identifier()[identifier]
    sequential = QueryEngine(small_lubm_store, reasoning=query.requires_reasoning)
    parallel = ParallelQueryEngine(sharded, reasoning=query.requires_reasoning, batch_size=7)
    try:
        assert _rows(parallel.execute(query.sparql)) == _rows(sequential.execute(query.sparql))
    finally:
        parallel.close()


# --------------------------------------------------------------------------- #
# executor-level behaviour
# --------------------------------------------------------------------------- #

LUBM = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#"


def _pattern(sparql_fragment: str) -> TriplePattern:
    query = parse_query(f"SELECT * WHERE {{ {sparql_fragment} }}")
    return query.where.bgp.patterns[0]


def test_evaluate_many_preserves_upstream_order(sharded, small_lubm_store):
    pattern = _pattern(f"?x <{LUBM}name> ?n")
    sequential = TriplePatternEvaluator(small_lubm_store)
    upstream_pattern = _pattern(f"?x <{LUBM}worksFor> ?d")
    upstream = list(sequential.evaluate(upstream_pattern, Binding()))
    assert len(upstream) > 20

    with ParallelExecutor(sharded, batch_size=5) as executor:
        parallel_out = list(executor.evaluate_many(pattern, iter(upstream)))
    sequential_out = list(sequential.evaluate_many(pattern, iter(upstream)))
    assert parallel_out == sequential_out


def test_leaf_scatter_matches_sequential_scan(sharded, small_lubm_store):
    sequential = TriplePatternEvaluator(small_lubm_store)
    for fragment in (
        f"?x <{LUBM}worksFor> ?y",  # (?s, p, ?o) two-layout scan
        f"?x <{LUBM}memberOf> ?y",  # reasoning: property interval
        f"?x a <{LUBM}Student>",  # rdf:type concept interval
    ):
        pattern = _pattern(fragment)
        with ParallelExecutor(sharded, batch_size=5) as executor:
            scattered = list(executor.evaluate(pattern, Binding()))
        assert scattered == list(sequential.evaluate(pattern, Binding()))


def test_bound_subject_is_pruned_not_scattered(sharded, small_lubm):
    subject = small_lubm.landmark_uri("student_takes_4")
    pattern = _pattern(f"<{subject}> <{LUBM}takesCourse> ?c")
    with ParallelExecutor(sharded) as executor:
        assert executor._try_scatter(pattern, Binding()) is None  # pruning path
        results = list(executor.evaluate(pattern, Binding()))
    assert len(results) == 4  # the S1 landmark cardinality


def test_single_shard_store_never_scatters(small_lubm_store):
    pattern = _pattern(f"?x <{LUBM}worksFor> ?y")
    with ParallelExecutor(small_lubm_store) as executor:
        assert executor._try_scatter(pattern, Binding()) is None
        assert list(executor.evaluate(pattern, Binding()))


def test_executor_close_is_idempotent_and_reusable(sharded):
    executor = ParallelExecutor(sharded)
    pattern = _pattern(f"?x a <{LUBM}Department>")
    first = list(executor.evaluate(pattern, Binding()))
    executor.close()
    executor.close()  # idempotent
    # A later call lazily re-creates the pool.
    assert list(executor.evaluate(pattern, Binding())) == first
    executor.close()


def test_estimates_delegate_to_sequential(sharded, small_lubm_store):
    pattern = _pattern(f"?x <{LUBM}worksFor> ?y")
    with ParallelExecutor(sharded) as executor:
        assert executor.estimate_cardinality(pattern) == TriplePatternEvaluator(
            small_lubm_store
        ).estimate_cardinality(pattern)


# --------------------------------------------------------------------------- #
# per-shard cardinalities (PR 5): scatter pruning + batch sizing
# --------------------------------------------------------------------------- #


def test_shard_property_cardinalities_sum_to_monolithic(sharded, small_lubm_store):
    for property_id in list(small_lubm_store.object_store.properties)[:5]:
        per_shard = sharded.shard_property_cardinalities(property_id)
        assert len(per_shard) == sharded.shard_count
        expected = small_lubm_store.object_store.count_triples_with_property(
            property_id
        ) + small_lubm_store.datatype_store.count_triples_with_property(property_id)
        assert sum(per_shard) == expected


def test_shard_concept_cardinalities_sum_to_monolithic(sharded, small_lubm_store):
    concept_ids = sorted({c for _s, c in small_lubm_store.type_store.iter_triples()})[:3]
    for concept_id in concept_ids:
        per_shard = sharded.shard_concept_cardinalities(concept_id, concept_id + 1)
        assert sum(per_shard) == small_lubm_store.type_store.count_concept(concept_id)


def test_scatter_skips_empty_shards(sharded):
    executor = ParallelExecutor(sharded)
    try:
        property_id = next(iter(sharded.object_store.properties))
        counts = executor._property_shard_counts(property_id)
        holding = executor._shards_holding(counts)
        assert len(holding) == len([c for c in counts if c])
        # A second lookup is served from the epoch-keyed cache.
        assert executor._property_shard_counts(property_id) is counts
    finally:
        executor.close()


def test_adaptive_batch_sizing(sharded):
    executor = ParallelExecutor(sharded, batch_size=64)
    try:
        # A bound-object probe has sub-row fan-out: keep the static batch.
        selective = _pattern("?s <http://swat.cse.lehigh.edu/onto/univ-bench.owl#headOf> ?o")
        assert executor._sized_batch(selective) == 64
        # An unbound-predicate pattern cannot be estimated: static batch too.
        unknown = _pattern("?s ?p ?o")
        assert executor._sized_batch(unknown) == 64
    finally:
        executor.close()


def test_adaptive_batch_shrinks_for_high_fanout(small_lubm_store):
    executor = ParallelExecutor(small_lubm_store)
    try:
        pattern = _pattern("?s <http://swat.cse.lehigh.edu/onto/univ-bench.owl#name> ?o")
        estimate = executor._cardinality.estimate_pattern(pattern)
        sized = executor._sized_batch(pattern)
        fanout = estimate.rows / max(1.0, estimate.subject_distinct)
        if fanout > 4:  # only high-fan-out patterns shrink
            assert sized < executor.batch_size
        assert sized >= 8
    finally:
        executor.close()
