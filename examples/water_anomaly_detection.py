"""Water-distribution anomaly detection (the paper's motivating example).

Reproduces Section 2 of the paper: two monitoring stations annotate their
pressure measurements with *different* QUDT concepts and units (bar vs
hectopascal).  A single SPARQL query written against the abstract
``qudt:PressureUnit`` concept — with a BIND converting units — detects
out-of-range pressures on both stations, because LiteMat reasoning expands
the concept to every annotation actually used by the sensors.

Run with::

    python examples/water_anomaly_detection.py
"""

from __future__ import annotations

from repro.store import SuccinctEdge
from repro.workloads.engie import (
    anomaly_detection_query,
    engie_ontology,
    water_distribution_graph,
)


def main() -> None:
    graph = water_distribution_graph(observations_per_sensor=20, stations=2, anomaly_rate=0.25, seed=17)
    ontology = engie_ontology()
    store = SuccinctEdge.from_graph(graph, ontology=ontology)

    print(f"Measurement graph instance: {len(graph)} triples")
    print(f"Store layouts (object / datatype / rdf:type): {store.lubm_style_summary()}")
    print(f"In-memory footprint: {store.memory_footprint_in_bytes() / 1024:.1f} KiB\n")

    query = anomaly_detection_query()
    print("Anomaly-detection query (abstract qudt:PressureUnit concept):")
    print(query)

    with_reasoning = store.query(query, reasoning=True)
    without_reasoning = store.query(query, reasoning=False)

    print(f"Anomalies found WITH LiteMat reasoning   : {len(with_reasoning)}")
    print(f"Anomalies found WITHOUT reasoning        : {len(without_reasoning)}")
    print("(each station annotates pressure with a sub-concept of qudt:PressureUnit,")
    print(" so the non-reasoning run cannot match any of them)\n")

    print("Detected anomalies:")
    for row in with_reasoning:
        platform = row["x"]
        timestamp = row["ts"]
        raw_value = float(row["v1"].lexical)
        unit = "hPa" if raw_value > 100 else "bar"
        value_bar = raw_value / 1000.0 if unit == "hPa" else raw_value
        print(
            f"  [{timestamp}] {platform.local_name}: pressure {raw_value:g} {unit} "
            f"(= {value_bar:.2f} bar, outside 3.00-4.50)"
        )


if __name__ == "__main__":
    main()
