"""Object-property triple store: the PSO wavelet-tree / bitmap layout.

This is the core single-index layout of Figure 5(b):

* ``wt_p`` — the property layer: every *distinct* property identifier, in
  ascending order (one entry per property);
* ``bm_ps`` — one bit per distinct ``(property, subject)`` pair, a ``1``
  marking the first subject of each property run (plus a trailing sentinel
  ``1`` so that "end of run" lookups need no special case);
* ``wt_s`` — the subject layer: subject identifiers grouped by property,
  ascending inside each property run;
* ``bm_so`` — one bit per triple, a ``1`` marking the first object of each
  ``(property, subject)`` pair (plus a trailing sentinel ``1``);
* ``wt_o`` — the object layer: object identifiers grouped by ``(p, s)`` pair,
  ascending inside each pair.

Every triple-pattern evaluation is a sequence of ``select`` / ``rank`` /
``access`` / ``range_search`` operations on these five structures, i.e. the
store is *decompression-free* (paper contribution ii).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.sds.bitvector import BitVector, BitVectorBuilder
from repro.sds.wavelet_tree import WaveletTree

#: An encoded object-property triple ``(property_id, subject_id, object_id)``.
EncodedTriple = Tuple[int, int, int]


class ObjectTripleStore:
    """Immutable PSO store over integer-encoded object-property triples."""

    def __init__(self, triples: Sequence[EncodedTriple]) -> None:
        ordered = sorted(set(triples))
        self._triple_count = len(ordered)

        property_layer: List[int] = []
        subject_layer: List[int] = []
        object_layer: List[int] = []
        ps_bits = BitVectorBuilder()
        so_bits = BitVectorBuilder()

        previous_property: Optional[int] = None
        previous_pair: Optional[Tuple[int, int]] = None
        for prop, subject, obj in ordered:
            if prop != previous_property:
                property_layer.append(prop)
                previous_property = prop
                new_property = True
            else:
                new_property = False
            pair = (prop, subject)
            if pair != previous_pair:
                subject_layer.append(subject)
                ps_bits.append(1 if new_property else 0)
                previous_pair = pair
                new_pair = True
            else:
                new_pair = False
            object_layer.append(obj)
            so_bits.append(1 if new_pair else 0)
        # Trailing sentinels: one virtual run start past the end of each layer.
        ps_bits.append(1)
        so_bits.append(1)

        max_symbol = max(property_layer + subject_layer + object_layer, default=0)
        alphabet = max_symbol + 1
        self.wt_p = WaveletTree(property_layer, alphabet_size=alphabet)
        self.wt_s = WaveletTree(subject_layer, alphabet_size=alphabet)
        self.wt_o = WaveletTree(object_layer, alphabet_size=alphabet)
        self.bm_ps: BitVector = ps_bits.build()
        self.bm_so: BitVector = so_bits.build()

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._triple_count

    def __repr__(self) -> str:
        return f"ObjectTripleStore({self._triple_count} triples, {len(self.wt_p)} properties)"

    @property
    def properties(self) -> List[int]:
        """Distinct property identifiers, ascending."""
        return self.wt_p.to_list()

    def has_property(self, property_id: int) -> bool:
        """Whether the store holds at least one triple with ``property_id``."""
        return self.wt_p.count(property_id) > 0

    # ------------------------------------------------------------------ #
    # navigation primitives (paper Algorithms 2-4)
    # ------------------------------------------------------------------ #

    def _property_index(self, property_id: int) -> Optional[int]:
        """Position of ``property_id`` in the property layer, or ``None``."""
        if self.wt_p.count(property_id) == 0:
            return None
        return self.wt_p.select(1, property_id)

    def _subject_run(self, property_index: int) -> Tuple[int, int]:
        """Subject-layer interval ``[begin, end)`` of the property at ``property_index``."""
        begin = self.bm_ps.select(property_index + 1, 1)
        end = self.bm_ps.select(property_index + 2, 1)
        return begin, end

    def _object_run(self, subject_index: int) -> Tuple[int, int]:
        """Object-layer interval ``[begin, end)`` of the subject at ``subject_index``."""
        begin = self.bm_so.select(subject_index + 1, 1)
        end = self.bm_so.select(subject_index + 2, 1)
        return begin, end

    def count_triples_with_property(self, property_id: int) -> int:
        """Algorithm 2: number of triples carrying ``property_id``.

        Computed purely from the bitmaps: the object run spanning the whole
        subject run of the property.
        """
        property_index = self._property_index(property_id)
        if property_index is None:
            return 0
        subject_begin, subject_end = self._subject_run(property_index)
        object_begin = self.bm_so.select(subject_begin + 1, 1)
        object_end = self.bm_so.select(subject_end + 1, 1)
        return object_end - object_begin

    def count_subjects_with_property(self, property_id: int) -> int:
        """Number of distinct subjects attached to ``property_id`` (run length)."""
        property_index = self._property_index(property_id)
        if property_index is None:
            return 0
        subject_begin, subject_end = self._subject_run(property_index)
        return subject_end - subject_begin

    # ------------------------------------------------------------------ #
    # triple pattern evaluation
    # ------------------------------------------------------------------ #

    def objects_for(self, subject_id: int, property_id: int) -> List[int]:
        """Algorithm 3 core: objects of ``(subject, property, ?o)``, ascending."""
        property_index = self._property_index(property_id)
        if property_index is None:
            return []
        subject_begin, subject_end = self._subject_run(property_index)
        results: List[int] = []
        for subject_index in self.wt_s.range_search(subject_begin, subject_end, subject_id):
            object_begin, object_end = self._object_run(subject_index)
            for object_index in range(object_begin, object_end):
                results.append(self.wt_o.access(object_index))
        return results

    def subjects_for(self, property_id: int, object_id: int) -> List[int]:
        """Algorithm 4 core: subjects of ``(?s, property, object)``, ascending."""
        property_index = self._property_index(property_id)
        if property_index is None:
            return []
        subject_begin, subject_end = self._subject_run(property_index)
        object_begin = self.bm_so.select(subject_begin + 1, 1)
        object_end = self.bm_so.select(subject_end + 1, 1)
        results: List[int] = []
        for object_index in self.wt_o.range_search(object_begin, object_end, object_id):
            subject_index = self.bm_so.rank(object_index + 1, 1) - 1
            results.append(self.wt_s.access(subject_index))
        return results

    def pairs_for_property(self, property_id: int) -> Iterator[Tuple[int, int]]:
        """All ``(subject, object)`` pairs of ``(?s, property, ?o)``, in PSO order."""
        property_index = self._property_index(property_id)
        if property_index is None:
            return
        subject_begin, subject_end = self._subject_run(property_index)
        for subject_index in range(subject_begin, subject_end):
            subject_id = self.wt_s.access(subject_index)
            object_begin, object_end = self._object_run(subject_index)
            for object_index in range(object_begin, object_end):
                yield subject_id, self.wt_o.access(object_index)

    def contains(self, subject_id: int, property_id: int, object_id: int) -> bool:
        """Whether the fully-bound triple is stored."""
        return object_id in self.objects_for(subject_id, property_id)

    def pairs_for_property_interval(
        self, property_low: int, property_high: int
    ) -> Iterator[Tuple[int, int, int]]:
        """All ``(property, subject, object)`` triples whose property identifier
        falls in the LiteMat interval ``[property_low, property_high)``.

        This is the reasoning access path of Section 5.2: instead of running
        one query per sub-property, the property layer is probed once per
        *stored* property inside the interval.
        """
        for position, property_id in self.wt_p.range_search_symbols(
            0, len(self.wt_p), property_low, property_high
        ):
            subject_begin, subject_end = self._subject_run(position)
            for subject_index in range(subject_begin, subject_end):
                subject_id = self.wt_s.access(subject_index)
                object_begin, object_end = self._object_run(subject_index)
                for object_index in range(object_begin, object_end):
                    yield property_id, subject_id, self.wt_o.access(object_index)

    def iter_triples(self) -> Iterator[EncodedTriple]:
        """All stored triples in PSO order."""
        for position in range(len(self.wt_p)):
            property_id = self.wt_p.access(position)
            subject_begin, subject_end = self._subject_run(position)
            for subject_index in range(subject_begin, subject_end):
                subject_id = self.wt_s.access(subject_index)
                object_begin, object_end = self._object_run(subject_index)
                for object_index in range(object_begin, object_end):
                    yield property_id, subject_id, self.wt_o.access(object_index)

    # ------------------------------------------------------------------ #
    # storage accounting
    # ------------------------------------------------------------------ #

    def size_in_bytes(self) -> int:
        """Approximate storage footprint of the five SDS structures."""
        return (
            self.wt_p.size_in_bytes()
            + self.wt_s.size_in_bytes()
            + self.wt_o.size_in_bytes()
            + self.bm_ps.size_in_bytes()
            + self.bm_so.size_in_bytes()
        )
