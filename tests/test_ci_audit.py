"""CI-configuration audit: slow-marked tests must actually run somewhere.

The tier-1 suite deselects everything carrying ``@pytest.mark.slow``
(``addopts = "-m 'not slow'"`` in pyproject.toml).  That exclusion is only
safe while some CI job opts back in with ``-m slow`` — otherwise a
slow-marked test silently never runs anywhere.  This audit walks the test
tree and the workflow file and fails when a slow-marked module falls
through the gap, which is exactly how the raised-example-count path fuzz
would have vanished from CI.
"""

from __future__ import annotations

import pathlib
import re

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
WORKFLOW = REPO_ROOT / ".github" / "workflows" / "ci.yml"


def _slow_marked_test_files() -> list:
    """Test modules under tests/ and benchmarks/ containing a slow marker.

    ``benchmarks/conftest.py`` force-marks every benchmark module, so the
    whole directory counts; under tests/ only explicit markers do.
    """
    marker = re.compile(r"^\s*@pytest\.mark\.slow\b", re.MULTILINE)
    files = sorted(REPO_ROOT.glob("benchmarks/test_*.py"))
    for path in sorted(REPO_ROOT.glob("tests/test_*.py")):
        if marker.search(path.read_text(encoding="utf-8")):
            files.append(path)
    return files


def test_tier1_excludes_slow_tests():
    pyproject = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
    assert "-m 'not slow'" in pyproject
    assert re.search(r'markers\s*=\s*\[\s*"slow', pyproject), "slow marker unregistered"


def test_every_slow_marked_module_runs_in_some_ci_job():
    workflow = WORKFLOW.read_text(encoding="utf-8")
    # Steps that re-include slow tests do it per module (`pytest <path> -m slow`);
    # collect every module path mentioned anywhere in the workflow.
    invoked = set(re.findall(r"(?:tests|benchmarks)/test_\w+\.py", workflow))
    missing = []
    for path in _slow_marked_test_files():
        relative = path.relative_to(REPO_ROOT).as_posix()
        if relative not in invoked:
            missing.append(relative)
    # Benchmark modules are representative-sampled in CI (the smoke jobs run
    # a fixed subset); tests/ modules with explicit slow markers must ALL be
    # wired up — they exist precisely because tier-1 skips them.
    missing_tests = [name for name in missing if name.startswith("tests/")]
    assert not missing_tests, (
        f"slow-marked test modules never selected by any CI job: {missing_tests} — "
        "add a `-m slow` step to .github/workflows/ci.yml"
    )


def test_some_ci_step_reincludes_each_slow_marked_tests_module():
    # Running the module is not enough: `addopts` still deselects the slow
    # tests unless the step passes `-m slow`.  A plain invocation (the fast
    # subset) may coexist, but at least one step must opt back in.
    workflow = WORKFLOW.read_text(encoding="utf-8")
    for path in _slow_marked_test_files():
        relative = path.relative_to(REPO_ROOT).as_posix()
        if not relative.startswith("tests/"):
            continue
        reincluded = any(
            relative in line and "-m slow" in line for line in workflow.splitlines()
        )
        assert reincluded, (
            f"no CI step runs {relative} with `-m slow`; its slow-marked tests "
            "never execute anywhere"
        )
