"""Word-level SDS kernel helpers shared by the succinct structures.

The rank/select/scan primitives of :mod:`repro.sds` all bottom out in a small
set of word-level kernels collected here:

* ``popcount`` — number of set bits in a 64-bit word.  Uses the native
  ``int.bit_count`` (CPython >= 3.10, a single CPU instruction) and falls back
  to a 16-bit lookup table on older interpreters, mirroring the classic
  sdsl-lite table-driven popcount;
* ``nth_set_bit`` — offset of the n-th set bit inside a word, skipping 16-bit
  chunks through the same table;
* ``set_offsets`` — decode every set-bit offset of a word in one pass
  (lowest-set-bit stripping), the building block of the batched
  ``scan_ones`` / ``select_range`` kernels.

The module also hosts the **kernel-call counters** used by the benchmark
harness: every public rank/select/scan entry point on the SDS structures
counts as one kernel call, so a batched primitive that replaces O(results)
round-trips registers as a single call.  ``measure_call`` snapshots the
counters around each measured operation and reports the delta alongside wall
time.
"""

from __future__ import annotations

import os
import sys
from array import array
from typing import Dict, List, Union

WORD_BITS = 64
WORD_MASK = (1 << WORD_BITS) - 1

#: Buffer types the word-level kernels accept interchangeably: the mutable
#: ``array('Q')`` produced by the builders, or a read-only ``memoryview``
#: aliasing a mapped store image (persistence v4).  Both support indexing,
#: ``len``, iteration and ``tobytes`` — everything the kernels use.
WordBuffer = Union["array", memoryview]


def words_view(buffer: Union[bytes, bytearray, memoryview]) -> WordBuffer:
    """Expose a bytes-like buffer as read-only little-endian 64-bit words.

    On little-endian hosts this is a zero-copy ``memoryview.cast('Q')`` —
    the caller keeps aliasing the underlying buffer (typically an ``mmap``
    of a store image), so no decode pass happens.  Big-endian hosts fall
    back to one byteswapped ``array('Q')`` copy with identical indexing
    semantics; the on-disk format stays little-endian either way.
    """
    view = memoryview(buffer)
    if view.nbytes % 8:
        raise ValueError(f"word buffer length {view.nbytes} is not a multiple of 8 bytes")
    if sys.byteorder == "little":
        return view.toreadonly().cast("Q")
    copied = array("Q")
    copied.frombytes(view.tobytes())
    copied.byteswap()
    return copied

#: 16-bit popcount lookup table (64 KiB, shared by every structure).
POPCOUNT16 = bytes(bin(value).count("1") for value in range(1 << 16))

_HAS_BIT_COUNT = hasattr(int, "bit_count")

if _HAS_BIT_COUNT:

    def popcount(word: int) -> int:
        """Number of set bits in a 64-bit word (native ``int.bit_count``)."""
        return word.bit_count()  # type: ignore[attr-defined]

else:

    def popcount(word: int) -> int:
        """Number of set bits in a 64-bit word (16-bit table fallback)."""
        table = POPCOUNT16
        return (
            table[word & 0xFFFF]
            + table[(word >> 16) & 0xFFFF]
            + table[(word >> 32) & 0xFFFF]
            + table[(word >> 48) & 0xFFFF]
        )


def nth_set_bit(word: int, n: int) -> int:
    """Offset (0-based) of the ``n``-th (1-based) set bit inside ``word``.

    Skips 16-bit chunks via the popcount table, then strips low set bits
    inside the final chunk.
    """
    table = POPCOUNT16
    offset = 0
    w = word
    while True:
        chunk = w & 0xFFFF
        count = table[chunk]
        if n > count:
            n -= count
            w >>= 16
            offset += 16
            if not w:
                raise ValueError(f"word {word:#x} has fewer set bits than requested")
            continue
        for _ in range(n - 1):
            chunk &= chunk - 1
        return offset + (chunk & -chunk).bit_length() - 1


def set_offsets(word: int) -> List[int]:
    """Offsets of every set bit of ``word``, ascending, as a list."""
    out: List[int] = []
    w = word
    while w:
        low = w & -w
        out.append(low.bit_length() - 1)
        w ^= low
    return out


# --------------------------------------------------------------------------- #
# kernel-call accounting
# --------------------------------------------------------------------------- #

#: Mutable per-operation call counters.  Keys are kernel names (``rank``,
#: ``select``, ``rank_many``, ``select_many``, ``scan``, ``access_range``...).
#: The hot kernels increment their (preset) keys directly.
KERNEL_COUNTS: Dict[str, int] = {}


def kernel_counters() -> Dict[str, int]:
    """A snapshot copy of the per-kernel call counters."""
    return dict(KERNEL_COUNTS)


def total_kernel_calls() -> int:
    """Total kernel calls recorded since the last reset."""
    return sum(KERNEL_COUNTS.values())


def reset_kernel_counters() -> None:
    """Zero every counter (benchmark harness hook).

    Counters are zeroed in place, not removed: the hot kernels increment
    their preset keys directly.
    """
    for name in KERNEL_COUNTS:
        KERNEL_COUNTS[name] = 0


def merge_kernel_counters(deltas: Dict[str, int]) -> None:
    """Fold per-kernel call deltas from elsewhere into this process's totals.

    The process execution backend (:mod:`repro.query.multiproc`) reports
    each worker task's counter delta back to the coordinator; merging keeps
    ``measure_call``'s breakdown complete — kernel work is attributed to the
    measured operation no matter which process ran it.
    """
    for name, count in deltas.items():
        KERNEL_COUNTS[name] = KERNEL_COUNTS.get(name, 0) + count


# A forked worker inherits the parent's counters mid-count; its own work
# must start from zero or the coordinator would double-count the inherited
# calls when the worker reports task deltas.  (Spawned workers start fresh
# interpreters; the pool initializer resets them again, belt and braces.)
if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=reset_kernel_counters)
