"""ρdf (minimal RDFS) inference rules.

The paper reasons over the ρdf subset of RDFS (Muñoz et al. 2009):
``rdfs:subClassOf``, ``rdfs:subPropertyOf``, ``rdfs:domain`` and
``rdfs:range``.  SuccinctEdge never materialises these inferences (LiteMat
intervals answer them at query time); this module exists as the **ground
truth oracle** for tests and as the baseline "full materialisation" strategy
that some competitor systems would use.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from repro.ontology.schema import OntologySchema
from repro.rdf.graph import Graph
from repro.rdf.namespaces import RDF_TYPE
from repro.rdf.terms import Triple, URI


def saturate_types(graph: Graph, schema: OntologySchema) -> Graph:
    """Add the ``rdf:type`` triples entailed by the concept hierarchy.

    For every explicit ``x rdf:type C`` triple, adds ``x rdf:type D`` for
    every super-concept ``D`` of ``C``.
    """
    result = graph.copy()
    for triple in graph:
        if triple.predicate != RDF_TYPE or not isinstance(triple.object, URI):
            continue
        for ancestor in schema.superconcepts(triple.object, include_self=False):
            result.add(Triple(triple.subject, RDF_TYPE, ancestor))
    return result


def saturate_properties(graph: Graph, schema: OntologySchema) -> Graph:
    """Add the triples entailed by the property hierarchy.

    For every triple ``x p y`` where ``p rdfs:subPropertyOf q`` (transitively),
    adds ``x q y``.
    """
    result = graph.copy()
    for triple in graph:
        for ancestor in schema.superproperties(triple.predicate, include_self=False):
            result.add(Triple(triple.subject, ancestor, triple.object))
    return result


def apply_domain_range(graph: Graph, schema: OntologySchema) -> Graph:
    """Add the ``rdf:type`` triples entailed by domain/range declarations."""
    result = graph.copy()
    for triple in graph:
        domain = schema.domain_of(triple.predicate)
        if domain is not None:
            result.add(Triple(triple.subject, RDF_TYPE, domain))
        range_concept = schema.range_of(triple.predicate)
        if range_concept is not None and isinstance(triple.object, URI):
            result.add(Triple(triple.object, RDF_TYPE, range_concept))
    return result


def materialize_rhodf(graph: Graph, schema: OntologySchema, max_rounds: int = 8) -> Graph:
    """Compute the ρdf closure of ``graph`` under ``schema``.

    Applies property saturation, domain/range typing and type saturation to a
    fixed point (a handful of rounds suffices because the rules only feed each
    other through freshly derived triples).
    """
    current = graph.copy()
    for _round in range(max_rounds):
        before = len(current)
        current = saturate_properties(current, schema)
        current = apply_domain_range(current, schema)
        current = saturate_types(current, schema)
        if len(current) == before:
            break
    return current


def entailed_types(
    subject_types: Iterable[URI], schema: OntologySchema
) -> List[URI]:
    """All concepts entailed for a subject given its explicit types."""
    seen: Set[URI] = set()
    result: List[URI] = []
    for concept in subject_types:
        for entailed in schema.superconcepts(concept, include_self=True):
            if entailed not in seen:
                seen.add(entailed)
                result.append(entailed)
    return result
