"""Tests for the edge-device model, graph-stream processing and alerting."""

from __future__ import annotations

import pytest

from repro.edge.alerts import Alert, AlertSink, AnomalyRule
from repro.edge.device import DeviceProfile, EdgeDevice, RASPBERRY_PI_3B_PLUS
from repro.edge.stream import GraphStreamProcessor
from repro.rdf.terms import Literal
from repro.sparql.bindings import Binding, ResultSet
from repro.store.succinct_edge import SuccinctEdge
from repro.workloads.engie import (
    anomaly_detection_query,
    engie_ontology,
    water_distribution_graph,
)


class TestEdgeDevice:
    def test_raspberry_pi_profile(self):
        device = EdgeDevice(RASPBERRY_PI_3B_PLUS)
        assert device.memory_budget_bytes == 512 * 1024 * 1024
        assert "Raspberry" in repr(device)

    def test_memory_admission(self):
        device = EdgeDevice(RASPBERRY_PI_3B_PLUS)
        assert device.fits_in_memory(100 * 1024 * 1024)
        assert not device.fits_in_memory(2 * 1024 * 1024 * 1024)

    def test_max_graph_instances(self):
        device = EdgeDevice(DeviceProfile(name="tiny", ram_bytes=1024, usable_ram_fraction=1.0))
        assert device.max_graph_instances(256) == 4
        assert device.max_graph_instances(0) == 0

    def test_latency_scaling(self):
        device = EdgeDevice(DeviceProfile(name="slow", ram_bytes=1, cpu_factor=0.5))
        assert device.scale_latency_ms(10.0) == pytest.approx(20.0)

    def test_energy_accounting(self):
        device = EdgeDevice(RASPBERRY_PI_3B_PLUS)
        processing = device.charge_processing(1000.0)
        transmission = device.charge_transmission(2048)
        assert processing == pytest.approx(3.5)
        assert transmission == pytest.approx(0.1)
        assert device.energy_spent_joules == pytest.approx(3.6)
        assert device.bytes_sent == 2048

    def test_edge_vs_cloud_energy_favours_edge_for_small_alerts(self):
        device = EdgeDevice(RASPBERRY_PI_3B_PLUS)
        comparison = device.edge_vs_cloud_energy(
            processing_ms=20.0, alert_bytes=200, raw_graph_bytes=50_000
        )
        assert comparison["edge_wins"]
        assert comparison["edge_joules"] < comparison["cloud_joules"]

    def test_succinct_edge_store_fits_on_device(self, engie_store: SuccinctEdge):
        device = EdgeDevice(RASPBERRY_PI_3B_PLUS)
        assert device.fits_in_memory(engie_store.memory_footprint_in_bytes())


class TestAlerts:
    def test_alert_describe(self):
        alert = Alert(rule="pressure", severity="critical", instance_id=3, bindings={"v": Literal(9.0)})
        text = alert.describe()
        assert "pressure" in text and "critical" in text and "9.0" in text

    def test_sink_collects_and_forwards(self):
        received = []
        sink = AlertSink(callback=received.append)
        rule = AnomalyRule(name="r1", query="SELECT ?x WHERE { ?x ?p ?o }")
        results = ResultSet(["x"], [Binding({"x": Literal(1)}), Binding({"x": Literal(2)})])
        produced = sink.emit_result_set(rule, instance_id=0, results=results)
        assert len(produced) == 2
        assert len(sink) == 2
        assert len(received) == 2
        assert sink.by_rule()["r1"] == produced
        assert sink.estimated_payload_bytes() > 0


class TestGraphStreamProcessor:
    @pytest.fixture()
    def rules(self):
        return [
            AnomalyRule(
                name="pressure-out-of-range",
                query=anomaly_detection_query(),
                severity="critical",
                requires_reasoning=True,
                description="Pressure outside 3.0-4.5 bar on any station.",
            )
        ]

    def test_stream_processing_detects_anomalies(self, rules):
        processor = GraphStreamProcessor(ontology=engie_ontology(), rules=rules)
        instances = [
            water_distribution_graph(observations_per_sensor=4, stations=2, anomaly_rate=1.0, seed=i)
            for i in range(3)
        ]
        statistics = processor.process_stream(instances)
        assert statistics.instances_processed == 3
        assert statistics.triples_processed == sum(len(g) for g in instances)
        assert statistics.alerts_raised > 0
        assert statistics.alerts_raised == len(processor.sink)
        assert statistics.mean_processing_ms > 0

    def test_clean_stream_raises_no_alerts(self, rules):
        processor = GraphStreamProcessor(ontology=engie_ontology(), rules=rules)
        clean = water_distribution_graph(observations_per_sensor=4, stations=2, anomaly_rate=0.0, seed=9)
        alerts = processor.process_instance(clean)
        assert alerts == []
        assert len(processor.sink) == 0

    def test_device_accounting_updated(self, rules):
        device = EdgeDevice(RASPBERRY_PI_3B_PLUS)
        processor = GraphStreamProcessor(ontology=engie_ontology(), rules=rules, device=device)
        anomalous = water_distribution_graph(observations_per_sensor=4, stations=2, anomaly_rate=1.0, seed=2)
        processor.process_instance(anomalous)
        assert device.energy_spent_joules > 0

    def test_alerts_reference_reported_instance(self, rules):
        processor = GraphStreamProcessor(ontology=engie_ontology(), rules=rules)
        anomalous = water_distribution_graph(observations_per_sensor=3, stations=2, anomaly_rate=1.0, seed=4)
        processor.process_instance(anomalous)
        processor.process_instance(anomalous)
        instance_ids = {alert.instance_id for alert in processor.sink.alerts}
        assert instance_ids == {0, 1}
