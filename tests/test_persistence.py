"""Tests for SuccinctEdge store persistence (save / load round trips)."""

from __future__ import annotations

import pytest

from repro.store.persistence import (
    PersistenceError,
    dump_store,
    load_store,
    load_store_from_bytes,
    save_store,
    serialized_size_in_bytes,
)
from repro.store.succinct_edge import SuccinctEdge
from tests.conftest import EX


class TestRoundTrip:
    def test_bytes_round_trip_preserves_triples(self, toy_store, toy_data):
        payload = dump_store(toy_store)
        restored = load_store_from_bytes(payload)
        assert restored.triple_count == toy_store.triple_count
        assert set(restored.match(None, None, None)) == set(toy_data)

    def test_file_round_trip(self, toy_store, tmp_path):
        path = tmp_path / "store.sedg"
        written = save_store(toy_store, str(path))
        assert path.stat().st_size == written
        restored = load_store(str(path))
        assert restored.triple_count == toy_store.triple_count

    def test_queries_agree_after_reload(self, toy_store, toy_data):
        restored = load_store_from_bytes(dump_store(toy_store))
        queries = [
            ("SELECT ?x WHERE { ?x a <http://example.org/Person> }", True),
            ("SELECT ?x ?d WHERE { ?x <http://example.org/memberOf> ?d }", True),
            (
                "SELECT ?x ?n WHERE { ?x a <http://example.org/Department> . "
                "?y <http://example.org/memberOf> ?x . ?y <http://example.org/name> ?n }",
                False,
            ),
        ]
        for query, reasoning in queries:
            assert (
                restored.query(query, reasoning=reasoning).to_set()
                == toy_store.query(query, reasoning=reasoning).to_set()
            )

    def test_litemat_intervals_preserved(self, toy_store):
        restored = load_store_from_bytes(dump_store(toy_store))
        for concept in (EX.Person, EX.Student, EX.Department):
            assert restored.concepts.interval(concept) == toy_store.concepts.interval(concept)
        for prop in (EX.memberOf, EX.worksFor, EX.headOf):
            assert restored.properties.interval(prop) == toy_store.properties.interval(prop)

    def test_statistics_preserved(self, toy_store):
        restored = load_store_from_bytes(dump_store(toy_store))
        assert restored.statistics.concept_cardinality(EX.Person) == toy_store.statistics.concept_cardinality(EX.Person)
        assert restored.statistics.property_cardinality(EX.memberOf) == toy_store.statistics.property_cardinality(EX.memberOf)
        assert restored.statistics.instance_cardinality(EX.alice) == toy_store.statistics.instance_cardinality(EX.alice)

    def test_schema_preserved(self, toy_store):
        restored = load_store_from_bytes(dump_store(toy_store))
        assert restored.schema.is_subconcept_of(EX.GraduateStudent, EX.Person)
        assert restored.schema.is_subproperty_of(EX.headOf, EX.memberOf)

    def test_engie_store_round_trip(self, engie_store, engie_graph):
        restored = load_store_from_bytes(dump_store(engie_store))
        assert set(restored.match(None, None, None)) == set(engie_graph)

    def test_small_lubm_round_trip_counts(self, small_lubm_store):
        restored = load_store_from_bytes(dump_store(small_lubm_store))
        assert restored.lubm_style_summary() == small_lubm_store.lubm_style_summary()


class TestSizeAccounting:
    def test_serialized_size_matches_dump(self, toy_store):
        assert serialized_size_in_bytes(toy_store) == len(dump_store(toy_store))

    def test_serialized_size_grows_with_data(self, toy_store, engie_store):
        assert serialized_size_in_bytes(engie_store) > serialized_size_in_bytes(toy_store)


class TestErrorHandling:
    def test_bad_magic_rejected(self):
        with pytest.raises(PersistenceError):
            load_store_from_bytes(b"NOPE" + b"\x00" * 16)

    def test_truncated_payload_rejected(self, toy_store):
        payload = dump_store(toy_store)
        with pytest.raises(PersistenceError):
            load_store_from_bytes(payload[: len(payload) // 2])

    def test_wrong_version_rejected(self, toy_store):
        payload = bytearray(dump_store(toy_store))
        payload[4] = 99  # corrupt the version field
        with pytest.raises(PersistenceError):
            load_store_from_bytes(bytes(payload))

    def test_empty_store_round_trip(self):
        from repro.rdf.graph import Graph

        store = SuccinctEdge.from_graph(Graph())
        restored = load_store_from_bytes(dump_store(store))
        assert restored.triple_count == 0
