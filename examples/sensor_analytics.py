"""Monitoring analytics over the ENGIE water-distribution workload.

Demonstrates the SPARQL 1.1 operator pipeline on the paper's motivating
scenario: per-station pressure profiles (GROUP BY + aggregates), the top-k
highest readings (ORDER BY DESC + LIMIT, evaluated with a bounded top-k
selection), a sensor inventory with chemistry readings left-outer joined
(OPTIONAL), and an anomaly probe (ASK, stopping at the first hit).

Run with::

    python examples/sensor_analytics.py
"""

from __future__ import annotations

from repro.store.succinct_edge import SuccinctEdge
from repro.workloads.engie import (
    engie_ontology,
    has_pressure_anomaly_query,
    sensor_inventory_query,
    station_pressure_profile_query,
    top_pressure_readings_query,
    water_distribution_graph,
)


def main() -> None:
    graph = water_distribution_graph(observations_per_sensor=20, stations=3)
    store = SuccinctEdge.from_graph(graph, ontology=engie_ontology())
    print(f"Loaded {store.triple_count} triples from {3} stations\n")

    print("1. Pressure profile per station (GROUP BY + COUNT/AVG/MIN/MAX):")
    for row in store.query(station_pressure_profile_query()):
        station = str(row["x"]).rsplit("/", 1)[-1]
        print(
            f"   {station}: n={row['n']}  mean={float(row['mean'].lexical):8.2f}"
            f"  min={float(row['low'].lexical):8.2f}  max={float(row['peak'].lexical):8.2f}"
        )

    print("\n2. Five highest pressure readings (ORDER BY DESC + LIMIT top-k):")
    for row in store.query(top_pressure_readings_query(5)):
        sensor = str(row["s"]).rsplit("/", 2)[-2]
        print(f"   {sensor}  {row['ts']}  ->  {row['v']}")

    print("\n3. Sensor inventory with optional chemistry readings (OPTIONAL):")
    inventory = store.query(sensor_inventory_query())
    with_chemistry = sum(1 for row in inventory if row.get("v") is not None)
    print(f"   {len(inventory)} rows, {with_chemistry} carry a chemistry value;")
    print("   pressure sensors appear with the chemistry column unbound.")

    print("\n4. Any pressure anomaly outside 3.0-4.5 bar? (ASK, early exit):")
    print(f"   {bool(store.query(has_pressure_anomaly_query()))}")


if __name__ == "__main__":
    main()
