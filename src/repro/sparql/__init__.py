"""SPARQL substrate (subset).

SuccinctEdge answers SELECT and ASK queries whose WHERE clause is a basic
graph pattern optionally extended with FILTER, BIND, UNION, OPTIONAL and
VALUES, with the solution modifiers GROUP BY (+ aggregates), ORDER BY,
OFFSET and LIMIT.  This package provides:

* :mod:`repro.sparql.ast` — the query abstract syntax tree,
* :mod:`repro.sparql.parser` — a recursive-descent parser for the subset,
* :mod:`repro.sparql.expressions` — FILTER/BIND expression evaluation,
* :mod:`repro.sparql.algebra` — aggregates, ordering keys and the
  materialized solution-modifier pipeline shared with the baselines,
* :mod:`repro.sparql.bindings` — solution mappings (variable bindings).
"""

from repro.sparql.ast import (
    Aggregate,
    AskQuery,
    BasicGraphPattern,
    Bind,
    Filter,
    GroupGraphPattern,
    InlineData,
    OrderCondition,
    SelectExpression,
    SelectQuery,
    TriplePattern,
    Union,
    Variable,
)
from repro.sparql.bindings import AskResult, Binding, ResultSet
from repro.sparql.parser import SparqlParseError, SparqlParser, parse_query

__all__ = [
    "Aggregate",
    "AskQuery",
    "AskResult",
    "BasicGraphPattern",
    "Bind",
    "Binding",
    "Filter",
    "GroupGraphPattern",
    "InlineData",
    "OrderCondition",
    "ResultSet",
    "SelectExpression",
    "SelectQuery",
    "SparqlParseError",
    "SparqlParser",
    "TriplePattern",
    "Union",
    "Variable",
    "parse_query",
]
