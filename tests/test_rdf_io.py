"""Tests for the N-Triples and Turtle parsers/serialisers."""

from __future__ import annotations

import pytest

from repro.rdf.graph import Graph
from repro.rdf.namespaces import RDF, SOSA
from repro.rdf.ntriples import (
    NTriplesParseError,
    parse_ntriples,
    parse_ntriples_line,
    read_ntriples,
    serialize_ntriples,
    write_ntriples,
)
from repro.rdf.terms import BlankNode, Literal, Triple, URI
from repro.rdf.turtle import TurtleParseError, parse_turtle, read_turtle


class TestNTriplesParsing:
    def test_simple_statement(self):
        triple = parse_ntriples_line("<http://s> <http://p> <http://o> .")
        assert triple == Triple(URI("http://s"), URI("http://p"), URI("http://o"))

    def test_literal_object(self):
        triple = parse_ntriples_line('<http://s> <http://p> "hello" .')
        assert triple.object == Literal("hello")

    def test_typed_literal(self):
        line = '<http://s> <http://p> "3.5"^^<http://www.w3.org/2001/XMLSchema#double> .'
        triple = parse_ntriples_line(line)
        assert triple.object.datatype.endswith("double")
        assert triple.object.to_python() == pytest.approx(3.5)

    def test_language_literal(self):
        triple = parse_ntriples_line('<http://s> <http://p> "bonjour"@fr .')
        assert triple.object.language == "fr"

    def test_blank_nodes(self):
        triple = parse_ntriples_line("_:a <http://p> _:b .")
        assert triple.subject == BlankNode("a")
        assert triple.object == BlankNode("b")

    def test_escaped_characters(self):
        triple = parse_ntriples_line('<http://s> <http://p> "line\\nbreak \\"q\\"" .')
        assert triple.object.lexical == 'line\nbreak "q"'

    def test_missing_dot_raises(self):
        with pytest.raises(NTriplesParseError):
            parse_ntriples_line("<http://s> <http://p> <http://o>")

    def test_garbage_raises(self):
        with pytest.raises(NTriplesParseError):
            parse_ntriples_line("this is not a triple .")

    def test_document_with_comments_and_blanks(self):
        document = """
        # a comment
        <http://s> <http://p> <http://o> .

        <http://s> <http://p> "x" .
        """
        graph = parse_ntriples(document)
        assert len(graph) == 2

    def test_round_trip(self):
        graph = Graph(
            [
                Triple(URI("http://s"), RDF.type, SOSA.Sensor),
                Triple(URI("http://s"), URI("http://p"), Literal("v", language="en")),
                Triple(BlankNode("r"), URI("http://q"), Literal(2.5)),
            ]
        )
        text = serialize_ntriples(graph)
        parsed = parse_ntriples(text)
        assert set(parsed) == set(graph)

    def test_file_round_trip(self, tmp_path):
        graph = Graph([Triple(URI("http://s"), URI("http://p"), Literal(1))])
        path = tmp_path / "data.nt"
        written = write_ntriples(graph, str(path))
        assert written == 1
        assert set(read_ntriples(str(path))) == set(graph)


class TestTurtleParsing:
    def test_prefixes_and_a_keyword(self):
        graph = parse_turtle(
            """
            @prefix ex: <http://example.org/> .
            ex:s a ex:Thing .
            """
        )
        assert Triple(URI("http://example.org/s"), RDF.type, URI("http://example.org/Thing")) in graph

    def test_predicate_and_object_lists(self):
        graph = parse_turtle(
            """
            @prefix ex: <http://example.org/> .
            ex:s ex:p ex:o1, ex:o2 ; ex:q "v" .
            """
        )
        assert len(graph) == 3

    def test_numbers_and_booleans(self):
        graph = parse_turtle(
            """
            @prefix ex: <http://example.org/> .
            ex:s ex:int 42 ; ex:dec 3.14 ; ex:flag true .
            """
        )
        objects = {t.predicate.local_name: t.object for t in graph}
        assert objects["int"].to_python() == 42
        assert objects["dec"].to_python() == pytest.approx(3.14)
        assert objects["flag"].to_python() is True

    def test_sparql_style_prefix(self):
        graph = parse_turtle(
            """
            PREFIX ex: <http://example.org/>
            ex:s ex:p ex:o .
            """
        )
        assert len(graph) == 1

    def test_well_known_prefixes_usable_without_declaration(self):
        graph = parse_turtle("<http://x> a sosa:Sensor .")
        assert Triple(URI("http://x"), RDF.type, SOSA.Sensor) in graph

    def test_blank_node_labels(self):
        graph = parse_turtle("_:r <http://p> \"1\" .")
        assert list(graph)[0].subject == BlankNode("r")

    def test_typed_literal_with_prefixed_datatype(self):
        graph = parse_turtle(
            """
            @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
            <http://s> <http://p> "2.0"^^xsd:double .
            """
        )
        assert list(graph)[0].object.datatype.endswith("double")

    def test_unknown_prefix_raises(self):
        with pytest.raises(TurtleParseError):
            parse_turtle("zzz:s zzz:p zzz:o .")

    def test_literal_subject_raises(self):
        with pytest.raises(TurtleParseError):
            parse_turtle('"oops" <http://p> <http://o> .')

    def test_comments_ignored(self):
        graph = parse_turtle(
            """
            # heading comment
            <http://s> <http://p> <http://o> . # trailing comment
            """
        )
        assert len(graph) == 1

    def test_file_reading(self, tmp_path):
        path = tmp_path / "onto.ttl"
        path.write_text("@prefix ex: <http://example.org/> .\nex:A a ex:B .\n", encoding="utf-8")
        graph = read_turtle(str(path))
        assert len(graph) == 1
