"""Join-order optimizer (paper Section 5.1, Algorithm 1).

The optimizer only produces left-deep join trees (memory-friendly on edge
devices) and combines:

* **Heuristic 1** — a triple-pattern priority adapted from Tsialiamanis et
  al. to SuccinctEdge's access paths::

      (s, rdf:type, ?o) > (?s, rdf:type, o) > (s, p, ?o) > (?s, p, o) > (?s, p, ?o)

* **Heuristic 2** — join-type preference induced by the PSO self-index:
  subject-subject joins are preferred over subject-object joins, which are
  preferred over the remaining combinations;
* **Statistics** — per-entry occurrence counts recorded at dictionary
  creation time, aggregated over concept/property hierarchies, plus run-time
  counts computed on the SDS structures (Algorithm 2).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Set, Tuple

from repro.dictionary.statistics import DictionaryStatistics
from repro.query.plan import (
    JoinMethod,
    ModifierOp,
    ModifierStep,
    PhysicalPlan,
    PlanStep,
    classify_access_path,
)
from repro.query.query_graph import QueryGraph, QueryNode
from repro.sparql.ast import SelectQuery, TriplePattern, Variable

#: Heuristic-1 priority ranks (lower executes earlier).
_SHAPE_RANK = {
    "s,p,o": 0,        # fully bound: an existence check, maximally selective
    "s,?p,o": 0,
    "s,p,?o": 2,
    "?s,p,o": 3,
    "s,?p,?o": 4,
    "?s,p,?o": 4,
    "?s,?p,o": 4,
    "?s,?p,?o": 5,
}

#: Heuristic-2 join-type preference (lower is better).
_JOIN_RANK = {"SS": 0, "SO": 1, "OS": 1, "OO": 2, "SP": 3, "PS": 3, "OP": 3, "PO": 3, "PP": 4}


class JoinOrderOptimizer:
    """Computes a left-deep execution order for the triple patterns of a BGP.

    Parameters
    ----------
    statistics:
        Per-entry occurrence counts recorded at dictionary creation time.
    runtime_estimator:
        Optional fallback invoked when the dictionary statistics cannot
        estimate a pattern.  The query engine wires this to
        ``TriplePatternEvaluator.estimate_cardinality``, which computes
        Algorithm-2 counts on the SDS rank/select directories — the same
        directories the batched evaluation kernels use, so the estimate
        comes for free.
    """

    def __init__(
        self,
        statistics: Optional[DictionaryStatistics] = None,
        runtime_estimator: Optional[Callable[[TriplePattern], int]] = None,
    ) -> None:
        self.statistics = statistics
        self.runtime_estimator = runtime_estimator

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def optimize(self, patterns: Sequence[TriplePattern]) -> PhysicalPlan:
        """Produce the physical plan (ordered steps) for ``patterns``."""
        if not patterns:
            return PhysicalPlan(steps=[])
        graph = QueryGraph.from_patterns(patterns)
        order = self.order_patterns(graph)
        steps: List[PlanStep] = []
        done: Set[int] = set()
        bound_variables: Set[str] = set()
        for position, index in enumerate(order):
            node = graph.nodes[index]
            access_path = classify_access_path(node.pattern)
            join_type = ""
            join_method = JoinMethod.NONE
            if position > 0:
                edges = graph.edges_between(done, index)
                if edges:
                    join_type = min(edges[0].join_types, key=lambda t: _JOIN_RANK.get(t, 9))
                    join_method = self._pick_join_method(node, bound_variables)
                else:
                    join_method = JoinMethod.BIND_PROPAGATION  # cartesian fallback
            steps.append(
                PlanStep(
                    pattern_index=index,
                    pattern=node.pattern,
                    access_path=access_path,
                    join_method=join_method,
                    join_type=join_type,
                    estimated_cardinality=self._estimate(node),
                )
            )
            done.add(index)
            bound_variables.update(node.pattern.variable_names())
        return PhysicalPlan(steps=steps)

    def order_patterns(self, graph: QueryGraph) -> List[int]:
        """Algorithm 1: the execution order of the query-graph nodes."""
        if not graph.nodes:
            return []
        order: List[int] = []
        done: Set[int] = set()

        first = self._most_selective_start(graph)
        order.append(first)
        done.add(first)

        while len(done) < len(graph.nodes):
            next_node = self._most_selective_next(graph, done)
            order.append(next_node)
            done.add(next_node)
        return order

    # ------------------------------------------------------------------ #
    # getMostSelective — start node
    # ------------------------------------------------------------------ #

    def _most_selective_start(self, graph: QueryGraph) -> int:
        # Preferred start: an rdf:type TP attached to the rest through an SS join.
        candidates: List[Tuple[Tuple, int]] = []
        for node in graph.nodes:
            if not node.is_rdf_type:
                continue
            edges = graph.neighbours(node.index)
            has_ss = any("SS" in edge.join_types for _other, edge in edges)
            if edges and not has_ss:
                # Only SO-connected rdf:type patterns: de-prioritised by Algorithm 1.
                continue
            candidates.append((self._selectivity_key(node, graph), node.index))
        if candidates:
            return min(candidates)[1]
        # Fallback: any TP, ranked by heuristic shape then statistics.
        all_candidates = [(self._selectivity_key(node, graph), node.index) for node in graph.nodes]
        return min(all_candidates)[1]

    # ------------------------------------------------------------------ #
    # getMostSelective — next node given the current prefix
    # ------------------------------------------------------------------ #

    def _most_selective_next(self, graph: QueryGraph, done: Set[int]) -> int:
        connected: List[Tuple[Tuple, int]] = []
        disconnected: List[Tuple[Tuple, int]] = []
        for node in graph.nodes:
            if node.index in done:
                continue
            edges = graph.edges_between(done, node.index)
            key = self._selectivity_key(node, graph, edges_to_prefix=edges)
            if edges:
                connected.append((key, node.index))
            else:
                disconnected.append((key, node.index))
        if connected:
            return min(connected)[1]
        return min(disconnected)[1]

    # ------------------------------------------------------------------ #
    # ranking helpers
    # ------------------------------------------------------------------ #

    def _selectivity_key(
        self,
        node: QueryNode,
        graph: QueryGraph,
        edges_to_prefix: Optional[List] = None,
    ) -> Tuple:
        shape_rank = self._shape_rank(node)
        if edges_to_prefix:
            join_rank = min(
                _JOIN_RANK.get(label, 9)
                for edge in edges_to_prefix
                for label in edge.join_types
            )
        else:
            join_rank = 5
        cardinality = self._estimate(node)
        if cardinality is None:
            cardinality = 1 << 30
        return (shape_rank, join_rank, cardinality, node.index)

    def _shape_rank(self, node: QueryNode) -> int:
        pattern = node.pattern
        if node.is_rdf_type:
            # rdf:type patterns use the dedicated red-black-tree store, which is
            # cheaper than the SDS navigation — they rank above the PSO shapes:
            # (s, rdf:type, ?o) > (?s, rdf:type, o) > every non-type shape.
            if not isinstance(pattern.subject, Variable):
                return 0
            if not isinstance(pattern.object, Variable):
                return 1
            return 5
        return _SHAPE_RANK.get(pattern.shape(), 5)

    def _estimate(self, node: QueryNode) -> Optional[int]:
        estimate: Optional[int] = None
        if self.statistics is not None:
            pattern = node.pattern
            subject = None if isinstance(pattern.subject, Variable) else pattern.subject
            predicate = None if isinstance(pattern.predicate, Variable) else pattern.predicate
            obj = None if isinstance(pattern.object, Variable) else pattern.object
            estimate = self.statistics.triple_pattern_cardinality(
                subject=subject,
                predicate=predicate,  # type: ignore[arg-type]
                obj=obj,
                is_rdf_type=node.is_rdf_type,
            )
        if estimate is None and self.runtime_estimator is not None:
            estimate = self.runtime_estimator(node.pattern)
        return estimate

    # ------------------------------------------------------------------ #
    # solution-modifier pipeline
    # ------------------------------------------------------------------ #

    @staticmethod
    def plan_modifiers(query: SelectQuery) -> List[ModifierStep]:
        """The ordered solution-modifier operators for a SELECT query.

        Encodes two pipeline optimizations the streaming engine relies on:

        * **LIMIT/OFFSET pushdown** — the slice is a lazy ``islice`` at the
          end of the pipeline, so once ``offset + limit`` rows have passed
          the upstream operators stop being pulled (no further
          triple-pattern probes, hence no further SDS kernel calls);
        * **top-k short circuit** — ``ORDER BY ... LIMIT k`` (without
          DISTINCT, whose duplicate elimination happens after the sort and
          could consume arbitrarily many sorted rows) replaces the full
          sort with a bounded ``heapq.nsmallest(offset + limit)``
          selection.
        """
        steps: List[ModifierStep] = []
        if query.aggregated:
            keys = ", ".join(str(condition) for condition in query.group_by)
            aggregates = ", ".join(str(item.expression) for item in query.select_expressions())
            steps.append(ModifierStep(ModifierOp.AGGREGATE, f"keys=[{keys}] {aggregates}".strip()))
        elif query.select_expressions():
            detail = ", ".join(
                f"{item.expression} AS ?{item.variable.name}"
                for item in query.select_expressions()
            )
            steps.append(ModifierStep(ModifierOp.EXTEND, detail))
        if query.order_by:
            fetch = None
            if query.limit is not None and not query.distinct:
                fetch = (query.offset or 0) + query.limit
            keys = ", ".join(
                ("DESC(%s)" if condition.descending else "%s") % (condition.expression,)
                for condition in query.order_by
            )
            if fetch is not None:
                steps.append(ModifierStep(ModifierOp.TOP_K, f"k={fetch} keys=[{keys}]"))
            else:
                steps.append(ModifierStep(ModifierOp.SORT, f"keys=[{keys}]"))
        steps.append(ModifierStep(ModifierOp.PROJECT, ", ".join(query.projected_names())))
        if query.distinct:
            steps.append(ModifierStep(ModifierOp.DISTINCT))
        if query.limit is not None or query.offset is not None:
            detail = []
            if query.offset is not None:
                detail.append(f"offset={query.offset}")
            if query.limit is not None:
                detail.append(f"limit={query.limit}")
            steps.append(ModifierStep(ModifierOp.SLICE, " ".join(detail)))
        return steps

    @staticmethod
    def _pick_join_method(node: QueryNode, bound_variables: Set[str]) -> JoinMethod:
        """Merge joins apply when the new TP re-enumerates an ordered subject run.

        The PSO layout keeps subjects ordered inside a property run, so a
        star-shaped ``?s p ?o`` pattern whose subject variable is already
        bound by the prefix can be merge-joined; every other case falls back
        to bind propagation (index nested loop), as in the paper.
        """
        pattern = node.pattern
        subject_is_shared_variable = (
            isinstance(pattern.subject, Variable) and pattern.subject.name in bound_variables
        )
        object_unbound = isinstance(pattern.object, Variable) and pattern.object.name not in bound_variables
        predicate_bound = not isinstance(pattern.predicate, Variable)
        if subject_is_shared_variable and object_unbound and predicate_bound and not node.is_rdf_type:
            return JoinMethod.MERGE
        return JoinMethod.BIND_PROPAGATION
