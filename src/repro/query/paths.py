"""SPARQL 1.1 property-path evaluation over the SuccinctEdge layouts.

:class:`PathEvaluator` turns one
:class:`~repro.sparql.ast.PropertyPathPattern` plus a partial solution into
solutions, implementing the SPARQL 1.1 path algebra (§9.3 of the spec) on
top of the batched store accessors:

* **multiset forms** — link, inverse (``^p``), sequence (``p1/p2``),
  alternation (``p1|p2``) and negated property sets (``!(...)``) keep
  duplicate solutions, exactly like the equivalent triple patterns;
* **ALP forms** — ``p?``, ``p*`` and ``p+`` eliminate duplicates per the
  spec's *ArbitraryLengthPath* semantics (a reachability test, not a
  path count), which is what makes them safe on cyclic graphs;
* **zero-length paths** — ``p?``/``p*`` match every term to itself.  With a
  bound endpoint the zero-length solution is included even when the term
  does not occur in the graph (the spec's ALP evaluation starts from the
  given term); with both endpoints unbound the domain is the set of terms
  occurring in *explicit* triples (see :func:`graph_terms`).

Every result list is emitted in the canonical order of
:func:`path_sort_key` — a total order over RDF terms shared with the naive
reference oracle — so results are **byte-identical across all execution
backends by construction**: any correct path evaluation produces the same
sorted sequence.

The transitive forms run a **semi-naive BFS**.  When the closed-over path
flattens into an alternation of plain links and inverse links (the common
shape: ``p+``, ``(p|^q)*`` ...), the BFS runs at the *identifier* level: the
frontier is a sorted list of instance identifiers (coalesced into intervals
for membership tests — LiteMat assigns hierarchy-clustered ids, so real
frontiers coalesce well) and each round is one call to the evaluator's
``expand_frontier`` hook, which the parallel / process / cluster backends
override to scatter per-shard frontier expansion.  Per property the
expansion chooses **probe vs. scan** by the cost model's constants: a small
frontier probes ``objects_for``/``subjects_for`` per id, a large one scans
``pairs_for_property`` once and filters against the interval frontier.
Paths that do not compile to the id level (``rdf:type`` links, nested
closures, sequences under a closure) fall back to a term-level BFS with the
same visited-set fixpoint, so every form terminates on cyclic data.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.rdf.namespaces import RDF_TYPE
from repro.rdf.terms import Literal, Term, URI
from repro.sparql.algebra import term_order_key
from repro.sparql.ast import (
    PathAlternative,
    PathExpression,
    PathInverse,
    PathLink,
    PathNegatedSet,
    PathOneOrMore,
    PathSequence,
    PathZeroOrMore,
    PathZeroOrOne,
    PropertyPathPattern,
)
from repro.sparql.bindings import Binding

#: Probe-vs-scan constants of the frontier expansion, mirroring the planner's
#: :class:`~repro.query.optimizer.CostModel` defaults (kernel-call units): a
#: bound-slot probe costs ~``_PROBE`` calls, one scanned row ~``_ROW``.
_PROBE = 30.0
_SCAN = 8.0
_ROW = 0.4


def path_sort_key(term: Term) -> Tuple:
    """The canonical total order for path results (shared with the oracle).

    :func:`~repro.sparql.algebra.term_order_key` orders term kinds and
    numeric literals; the N-Triples rendering breaks the remaining ties, so
    any two distinct terms compare deterministically.
    """
    return (term_order_key(term), term.n3())


def _sorted_terms(terms: Iterable[Term]) -> List[Term]:
    return sorted(terms, key=path_sort_key)


def invert_path(path: PathExpression) -> PathExpression:
    """The structural inverse of a path (``invert(P)`` relates y→x iff P x→y).

    Inversion is pushed down to the leaves, so the only ``PathInverse``
    nodes in the result wrap plain links — the shape the step evaluators
    handle directly.
    """
    if isinstance(path, PathLink):
        return PathInverse(path)
    if isinstance(path, PathInverse):
        return path.path
    if isinstance(path, PathSequence):
        return PathSequence(tuple(invert_path(step) for step in reversed(path.steps)))
    if isinstance(path, PathAlternative):
        return PathAlternative(tuple(invert_path(branch) for branch in path.branches))
    if isinstance(path, PathZeroOrOne):
        return PathZeroOrOne(invert_path(path.path))
    if isinstance(path, PathZeroOrMore):
        return PathZeroOrMore(invert_path(path.path))
    if isinstance(path, PathOneOrMore):
        return PathOneOrMore(invert_path(path.path))
    if isinstance(path, PathNegatedSet):
        # A forward edge excluded from F becomes an inverse edge excluded
        # from F (and vice versa), so the member lists swap roles.
        return PathNegatedSet(forward=path.inverse, inverse=path.forward)
    raise TypeError(f"cannot invert path node {type(path).__name__}")


# --------------------------------------------------------------------------- #
# the sorted-id-interval frontier
# --------------------------------------------------------------------------- #


class IdFrontier:
    """A BFS frontier of instance identifiers, coalesced into intervals.

    Membership tests bisect over the interval lower bounds — ``O(log k)``
    in the number of *runs*, not ids.  LiteMat assigns hierarchy-clustered
    identifiers, so the frontiers transitive queries produce coalesce into
    few runs (the paper's interval argument, applied to path frontiers).
    """

    __slots__ = ("ids", "lows", "highs")

    def __init__(self, sorted_ids: Sequence[int]) -> None:
        self.ids = list(sorted_ids)
        lows: List[int] = []
        highs: List[int] = []
        for identifier in self.ids:
            if highs and identifier == highs[-1]:
                highs[-1] = identifier + 1
            else:
                lows.append(identifier)
                highs.append(identifier + 1)
        self.lows = lows
        self.highs = highs

    def __len__(self) -> int:
        return len(self.ids)

    def __contains__(self, identifier: int) -> bool:
        position = bisect_right(self.lows, identifier)
        return position > 0 and identifier < self.highs[position - 1]

    @property
    def interval_count(self) -> int:
        """How many coalesced runs the frontier spans."""
        return len(self.lows)


def expand_frontier_local(
    store,
    forward_pids: Sequence[int],
    inverse_pids: Sequence[int],
    frontier_ids: Sequence[int],
    frontier_literals: Sequence[Literal],
) -> Tuple[List[int], List[Literal]]:
    """One BFS round against one store: the sequential frontier expansion.

    Returns the sorted distinct instance identifiers and literals reachable
    in exactly one step — forward over ``forward_pids`` (``objects_for`` /
    ``literals_for`` per probe, ``pairs_for_property`` per scan) and
    backward over ``inverse_pids`` (``subjects_for`` on both layouts).  Per
    (property × direction) the cheaper of probing the frontier and scanning
    the run is chosen with the planner's cost constants; scan mode filters
    with the interval frontier.

    This is the single primitive the execution backends parallelise: the
    thread backend runs it per shard, the process backend ships it as a
    worker op, the cluster backend as an epoch-pinned unit.  It must stay a
    pure function of the store snapshot — the union of sorted distinct
    per-shard results equals the monolithic result.
    """
    frontier = IdFrontier(frontier_ids)
    out_ids: Set[int] = set()
    out_literals: Set[Literal] = set()
    object_store = store.object_store
    datatype_store = store.datatype_store

    for property_id in forward_pids:
        run = object_store.count_triples_with_property(property_id)
        if len(frontier) * _PROBE <= _SCAN + run * _ROW:
            for subject_id in frontier.ids:
                out_ids.update(object_store.objects_for(subject_id, property_id))
                out_literals.update(datatype_store.literals_for(subject_id, property_id))
        else:
            for subject_id, object_id in object_store.pairs_for_property(property_id):
                if subject_id in frontier:
                    out_ids.add(object_id)
            for subject_id, literal in datatype_store.pairs_for_property(property_id):
                if subject_id in frontier:
                    out_literals.add(literal)

    for property_id in inverse_pids:
        run = object_store.count_triples_with_property(property_id)
        if len(frontier) * _PROBE <= _SCAN + run * _ROW:
            for object_id in frontier.ids:
                out_ids.update(object_store.subjects_for(property_id, object_id))
        else:
            for subject_id, object_id in object_store.pairs_for_property(property_id):
                if object_id in frontier:
                    out_ids.add(subject_id)
        for literal in frontier_literals:
            out_ids.update(datatype_store.subjects_for(property_id, literal))

    return sorted(out_ids), _sorted_terms(out_literals)


def merge_expansions(
    replies: Iterable[Tuple[Sequence[int], Sequence[Literal]]]
) -> Tuple[List[int], List[Literal]]:
    """Union per-shard expansion replies back into one sorted pair."""
    ids: Set[int] = set()
    literals: Set[Literal] = set()
    for reply_ids, reply_literals in replies:
        ids.update(reply_ids)
        literals.update(reply_literals)
    return sorted(ids), _sorted_terms(literals)


def compile_link_alternation(
    path: PathExpression, candidate_ids
) -> Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
    """``(forward_pids, inverse_pids)`` when ``path`` is id-level steppable.

    A path compiles when it flattens (through alternation) into plain links
    and inverse links over non-``rdf:type`` predicates; ``candidate_ids``
    maps each predicate to its stored property identifiers (the LiteMat
    interval expansion under reasoning).  Returns ``None`` for every other
    shape — the caller falls back to the term-level BFS.
    """
    forward: Set[int] = set()
    inverse: Set[int] = set()

    def collect(node: PathExpression, inverted: bool) -> bool:
        if isinstance(node, PathAlternative):
            return all(collect(branch, inverted) for branch in node.branches)
        if isinstance(node, PathInverse):
            return collect(node.path, not inverted)
        if isinstance(node, PathLink):
            if node.predicate == RDF_TYPE:
                return False
            (inverse if inverted else forward).update(candidate_ids(node.predicate))
            return True
        return False

    if not collect(path, False):
        return None
    return tuple(sorted(forward)), tuple(sorted(inverse))


def path_access_label(path: PathExpression) -> str:
    """The access label EXPLAIN renders for a path step.

    ``interval-bfs`` marks closures whose inner path is structurally
    id-steppable (links / inverse links over non-``rdf:type`` predicates);
    everything else names the top-level algebra node.
    """

    def steppable(node: PathExpression) -> bool:
        if isinstance(node, PathAlternative):
            return all(steppable(branch) for branch in node.branches)
        if isinstance(node, PathInverse):
            return steppable(node.path)
        return isinstance(node, PathLink) and node.predicate != RDF_TYPE

    if isinstance(path, (PathZeroOrMore, PathOneOrMore)):
        form = "zero-or-more" if isinstance(path, PathZeroOrMore) else "one-or-more"
        return f"{form}/{'interval-bfs' if steppable(path.path) else 'term-bfs'}"
    if isinstance(path, PathZeroOrOne):
        return "zero-or-one"
    if isinstance(path, PathSequence):
        return "sequence"
    if isinstance(path, PathAlternative):
        return "alternation"
    if isinstance(path, PathInverse):
        return "inverse"
    if isinstance(path, PathNegatedSet):
        return "negated-set"
    return "link"


def graph_terms(store) -> List[Term]:
    """Every term occurring in an explicit triple, in canonical order.

    The zero-length-path domain: subjects and objects of the PSO layouts
    (instances and literals) plus subjects and concepts of the type store.
    Inferred terms (hierarchy expansions) are *not* included — the
    zero-length path matches what is stored, a deviation documented in
    ``docs/sparql_support.md``.
    """
    identifiers: Set[int] = set()
    terms: Set[Term] = set()
    object_store = store.object_store
    datatype_store = store.datatype_store
    for property_id in object_store.properties:
        for subject_id, object_id in object_store.pairs_for_property(property_id):
            identifiers.add(subject_id)
            identifiers.add(object_id)
    for property_id in datatype_store.properties:
        for subject_id, literal in datatype_store.pairs_for_property(property_id):
            identifiers.add(subject_id)
            terms.add(literal)
    extract_concept = store.concepts.extract
    for subject_id, concept_id in store.type_store.iter_triples():
        identifiers.add(subject_id)
        concept = extract_concept(concept_id)
        if concept is not None:
            terms.add(concept)
    extract = store.instances.extract
    terms.update(extract(identifier) for identifier in identifiers)
    return _sorted_terms(terms)


# --------------------------------------------------------------------------- #
# the evaluator
# --------------------------------------------------------------------------- #


class PathEvaluator:
    """Evaluates property-path patterns through one execution backend.

    Parameters
    ----------
    evaluator:
        The engine's triple-pattern evaluator — either a plain
        :class:`~repro.query.tp_eval.TriplePatternEvaluator` or one of the
        parallel executors wrapping one.  The path evaluator reads the
        store facade through it (delta overlays included) and drives the
        closure BFS through its ``expand_frontier`` hook, which is what the
        thread / process / cluster backends override to scatter frontier
        expansion.
    """

    def __init__(self, evaluator) -> None:
        self.evaluator = evaluator
        self.store = evaluator.store
        self.reasoning = evaluator.reasoning
        #: The plain sequential evaluator (parallel executors wrap one):
        #: non-closure steps run coordinator-side on the store facade.
        self.inner = getattr(evaluator, "inner", evaluator)

    # ------------------------------------------------------------------ #
    # the TriplePatternEvaluator-shaped surface
    # ------------------------------------------------------------------ #

    def evaluate(
        self, pattern: PropertyPathPattern, binding: Binding
    ) -> Iterator[Binding]:
        """Yield the bindings extending ``binding`` that satisfy ``pattern``."""
        from repro.query.tp_eval import TriplePatternEvaluator

        resolve = TriplePatternEvaluator._resolve
        subject_term, subject_var = resolve(pattern.subject, binding)
        object_term, object_var = resolve(pattern.object, binding)
        path = pattern.path

        if subject_term is not None and object_term is not None:
            if self.holds(path, subject_term, object_term):
                yield binding
            return
        if subject_term is not None:
            extend = binding.extended
            for value in self.targets(path, subject_term):
                yield extend(object_var, value)
            return
        if object_term is not None:
            extend = binding.extended
            for value in self.sources(path, object_term):
                yield extend(subject_var, value)
            return
        diagonal = subject_var == object_var
        base = binding.as_dict()
        adopt = Binding._adopt
        for source, target in self.pairs(path):
            if diagonal:
                if source == target:
                    yield binding.extended(subject_var, source)
                continue
            values = dict(base)
            values[subject_var] = source
            values[object_var] = target
            yield adopt(values)

    def evaluate_many(
        self, pattern: PropertyPathPattern, bindings: Iterable[Binding]
    ) -> Iterator[Binding]:
        """Bind-propagation join of upstream bindings with one path pattern."""
        for binding in bindings:
            yield from self.evaluate(pattern, binding)

    # ------------------------------------------------------------------ #
    # the four endpoint shapes
    # ------------------------------------------------------------------ #

    def targets(self, path: PathExpression, start: Term) -> List[Term]:
        """``o`` with ``start path o``, in canonical order (multiset)."""
        return _sorted_terms(self._eval_from(path, start))

    def sources(self, path: PathExpression, end: Term) -> List[Term]:
        """``s`` with ``s path end``, in canonical order (multiset)."""
        return _sorted_terms(self._eval_from(invert_path(path), end))

    def holds(self, path: PathExpression, start: Term, end: Term) -> bool:
        """Whether ``start path end`` has at least one solution."""
        return end in set(self._eval_from(path, start))

    def pairs(self, path: PathExpression) -> List[Tuple[Term, Term]]:
        """All ``(s, o)`` with ``s path o``, sorted on both keys (multiset)."""
        return sorted(
            self._pairs(path),
            key=lambda pair: (path_sort_key(pair[0]), path_sort_key(pair[1])),
        )

    # ------------------------------------------------------------------ #
    # forward evaluation from one bound term
    # ------------------------------------------------------------------ #

    def _eval_from(self, path: PathExpression, start: Term) -> List[Term]:
        """One-sided path evaluation: the multiset of ends from ``start``."""
        if isinstance(path, PathLink):
            return self._link_targets(path.predicate, start)
        if isinstance(path, PathInverse):
            inner = path.path
            if isinstance(inner, PathLink):
                return self._link_sources(inner.predicate, start)
            return self._eval_from(invert_path(inner), start)
        if isinstance(path, PathSequence):
            frontier: List[Term] = [start]
            for step in path.steps:
                next_frontier: List[Term] = []
                for term in frontier:
                    next_frontier.extend(self._eval_from(step, term))
                frontier = next_frontier
                if not frontier:
                    return []
            return frontier
        if isinstance(path, PathAlternative):
            results: List[Term] = []
            for branch in path.branches:
                results.extend(self._eval_from(branch, start))
            return results
        if isinstance(path, PathZeroOrOne):
            distinct: Set[Term] = {start}
            distinct.update(self._eval_from(path.path, start))
            return list(distinct)
        if isinstance(path, PathZeroOrMore):
            reached = self._reachable(path.path, start)
            reached.add(start)
            return list(reached)
        if isinstance(path, PathOneOrMore):
            return list(self._reachable(path.path, start))
        if isinstance(path, PathNegatedSet):
            return self._negated_targets(path, start)
        raise TypeError(f"unknown path node {type(path).__name__}")

    # -- plain links ----------------------------------------------------- #

    def _link_targets(self, predicate: URI, start: Term) -> List[Term]:
        """One forward link step: ``o`` with ``start predicate o`` stored."""
        store = self.store
        if predicate == RDF_TYPE:
            if isinstance(start, Literal):
                return []
            subject_id = store.instances.try_locate(start)
            if subject_id is None:
                return []
            return list(self.inner._concepts_of_subject(subject_id))
        if isinstance(start, Literal):
            return []  # literals never occur in the subject position
        subject_id = store.instances.try_locate(start)
        if subject_id is None:
            return []
        extract = store.instances.extract
        results: List[Term] = []
        for property_id in self.inner._candidate_property_ids(predicate):
            for object_id in store.object_store.objects_for(subject_id, property_id):
                results.append(extract(object_id))
            results.extend(store.datatype_store.literals_for(subject_id, property_id))
        return results

    def _link_sources(self, predicate: URI, end: Term) -> List[Term]:
        """One backward link step: ``s`` with ``s predicate end`` stored."""
        store = self.store
        if predicate == RDF_TYPE:
            if not isinstance(end, URI):
                return []
            concept_id = store.concepts.try_locate(end)
            if concept_id is None:
                return []
            if self.reasoning:
                low, high = store.concepts.interval(end)
                subject_ids = store.type_store.subjects_of_interval(low, high)
            else:
                subject_ids = store.type_store.subjects_of(concept_id)
            extract = store.instances.extract
            return [extract(subject_id) for subject_id in subject_ids]
        extract = store.instances.extract
        results: List[Term] = []
        if isinstance(end, Literal):
            for property_id in self.inner._candidate_property_ids(predicate):
                for subject_id in store.datatype_store.subjects_for(property_id, end):
                    results.append(extract(subject_id))
            return results
        object_id = store.instances.try_locate(end)
        if object_id is None:
            return []
        for property_id in self.inner._candidate_property_ids(predicate):
            for subject_id in store.object_store.subjects_for(property_id, object_id):
                results.append(extract(subject_id))
        return results

    # -- negated property sets ------------------------------------------- #

    def _stored_predicates(self) -> List[Tuple[int, URI]]:
        """Stored (property id, predicate URI) pairs, ascending by id."""
        store = self.store
        property_ids = sorted(
            set(store.object_store.properties) | set(store.datatype_store.properties)
        )
        pairs: List[Tuple[int, URI]] = []
        for property_id in property_ids:
            predicate = store.properties.extract(property_id)
            if isinstance(predicate, URI):
                pairs.append((property_id, predicate))
        return pairs

    def _negated_targets(self, path: PathNegatedSet, start: Term) -> List[Term]:
        """NPS semantics: explicit stored predicates only, no expansion.

        Matches the engine's unbound-predicate evaluation: each stored
        predicate stands for itself (no LiteMat interval widening), and
        ``rdf:type`` edges match through their explicit concept.
        """
        store = self.store
        results: List[Term] = []
        forward_excluded = set(path.forward)
        extract = store.instances.extract

        if self._nps_wants_forward(path) and not isinstance(start, Literal):
            subject_id = store.instances.try_locate(start)
        else:
            subject_id = None
        if subject_id is not None:
            for property_id, predicate in self._stored_predicates():
                if predicate in forward_excluded:
                    continue
                for object_id in store.object_store.objects_for(subject_id, property_id):
                    results.append(extract(object_id))
                results.extend(
                    store.datatype_store.literals_for(subject_id, property_id)
                )
            if RDF_TYPE not in forward_excluded:
                extract_concept = store.concepts.extract
                for concept_id in store.type_store.concepts_of(subject_id):
                    concept = extract_concept(concept_id)
                    if concept is not None:
                        results.append(concept)

        if self._nps_wants_inverse(path):
            results.extend(self._negated_inverse_targets(path, start))
        return results

    @staticmethod
    def _nps_wants_forward(path: PathNegatedSet) -> bool:
        """Whether the NPS matches forward edges.

        Per §18.2.2.3 a negated set splits into ``NPS(forward members)``
        and ``inv(NPS(inverse members))``; a pure-inverse set like
        ``!(^p)`` therefore matches inverse edges *only* — the forward
        direction applies iff a forward member exists (or the set has no
        inverse members at all).
        """
        return bool(path.forward) or not path.inverse

    @staticmethod
    def _nps_wants_inverse(path: PathNegatedSet) -> bool:
        """Whether the NPS includes an inverse member set (``!(...|^p)``).

        Per the spec a negated set with no ``^`` members matches forward
        edges only; once any inverse member appears, *all* non-excluded
        inverse edges match too.
        """
        return bool(path.inverse)

    def _negated_inverse_targets(self, path: PathNegatedSet, start: Term) -> List[Term]:
        store = self.store
        results: List[Term] = []
        inverse_excluded = set(path.inverse)
        extract = store.instances.extract
        for property_id, predicate in self._stored_predicates():
            if predicate in inverse_excluded:
                continue
            if isinstance(start, Literal):
                for subject_id in store.datatype_store.subjects_for(property_id, start):
                    results.append(extract(subject_id))
                continue
            object_id = store.instances.try_locate(start)
            if object_id is None:
                continue
            for subject_id in store.object_store.subjects_for(property_id, object_id):
                results.append(extract(subject_id))
        if RDF_TYPE not in inverse_excluded and isinstance(start, URI):
            concept_id = store.concepts.try_locate(start)
            if concept_id is not None:
                for subject_id in store.type_store.subjects_of(concept_id):
                    results.append(extract(subject_id))
        return results

    # ------------------------------------------------------------------ #
    # the closure BFS (ALP)
    # ------------------------------------------------------------------ #

    def _reachable(self, inner: PathExpression, start: Term) -> Set[Term]:
        """Terms reachable from ``start`` via one or more ``inner`` steps."""
        compiled = compile_link_alternation(inner, self.inner._candidate_property_ids)
        if compiled is not None:
            return self._reachable_intervals(compiled, start)
        expanded: Set[Term] = set()
        reached: Set[Term] = set()
        frontier: List[Term] = [start]
        while frontier:
            next_frontier: List[Term] = []
            for term in frontier:
                if term in expanded:
                    continue
                expanded.add(term)
                for target in self._eval_from(inner, term):
                    if target not in reached:
                        reached.add(target)
                        next_frontier.append(target)
            frontier = next_frontier
        return reached

    def _reachable_intervals(
        self, compiled: Tuple[Tuple[int, ...], Tuple[int, ...]], start: Term
    ) -> Set[Term]:
        """The id-level BFS: interval frontiers through ``expand_frontier``."""
        forward_pids, inverse_pids = compiled
        store = self.store
        frontier_ids: List[int] = []
        frontier_literals: List[Literal] = []
        if isinstance(start, Literal):
            frontier_literals = [start]
        else:
            start_id = store.instances.try_locate(start)
            if start_id is None:
                return set()  # a term absent from the dictionary has no edges
            frontier_ids = [start_id]
        expand = self._expand_frontier
        expanded_ids: Set[int] = set(frontier_ids)
        expanded_literals: Set[Literal] = set(frontier_literals)
        reached_ids: Set[int] = set()
        reached_literals: Set[Literal] = set()
        while frontier_ids or frontier_literals:
            new_ids, new_literals = expand(
                forward_pids, inverse_pids, frontier_ids, frontier_literals
            )
            reached_ids.update(new_ids)
            reached_literals.update(new_literals)
            frontier_ids = [i for i in new_ids if i not in expanded_ids]
            expanded_ids.update(frontier_ids)
            frontier_literals = [
                literal for literal in new_literals if literal not in expanded_literals
            ]
            expanded_literals.update(frontier_literals)
        extract = store.instances.extract
        reached: Set[Term] = {extract(identifier) for identifier in reached_ids}
        reached.update(reached_literals)
        return reached

    def _expand_frontier(
        self,
        forward_pids: Sequence[int],
        inverse_pids: Sequence[int],
        frontier_ids: Sequence[int],
        frontier_literals: Sequence[Literal],
    ) -> Tuple[List[int], List[Literal]]:
        """One BFS round through the backend's ``expand_frontier`` hook."""
        hook = getattr(self.evaluator, "expand_frontier", None)
        if hook is not None:
            return hook(forward_pids, inverse_pids, frontier_ids, frontier_literals)
        return expand_frontier_local(
            self.store, forward_pids, inverse_pids, frontier_ids, frontier_literals
        )

    # ------------------------------------------------------------------ #
    # unbound-unbound evaluation (the relation of a path)
    # ------------------------------------------------------------------ #

    def _pairs(self, path: PathExpression) -> List[Tuple[Term, Term]]:
        """The multiset of ``(s, o)`` pairs related by ``path``."""
        if isinstance(path, PathLink):
            return self._link_pairs(path.predicate)
        if isinstance(path, PathInverse):
            return [(target, source) for source, target in self._pairs(path.path)]
        if isinstance(path, PathSequence):
            steps = list(path.steps)
            pairs = self._pairs(steps[0])
            for step in steps[1:]:
                if not pairs:
                    return []
                right: dict = {}
                for mid, target in self._pairs(step):
                    right.setdefault(mid, []).append(target)
                pairs = [
                    (source, target)
                    for source, mid in pairs
                    for target in right.get(mid, ())
                ]
            return pairs
        if isinstance(path, PathAlternative):
            results: List[Tuple[Term, Term]] = []
            for branch in path.branches:
                results.extend(self._pairs(branch))
            return results
        if isinstance(path, PathZeroOrOne):
            distinct = {(term, term) for term in graph_terms(self.store)}
            distinct.update(self._pairs(path.path))
            return list(distinct)
        if isinstance(path, PathZeroOrMore):
            return self._closure_pairs(path.path, include_zero=True)
        if isinstance(path, PathOneOrMore):
            return self._closure_pairs(path.path, include_zero=False)
        if isinstance(path, PathNegatedSet):
            return self._negated_pairs(path)
        raise TypeError(f"unknown path node {type(path).__name__}")

    def _link_pairs(self, predicate: URI) -> List[Tuple[Term, Term]]:
        store = self.store
        results: List[Tuple[Term, Term]] = []
        if predicate == RDF_TYPE:
            extract = store.instances.extract
            for subject_id, concept_id in store.type_store.iter_triples():
                subject = extract(subject_id)
                for concept in self.inner._expand_concept(concept_id):
                    results.append((subject, concept))
            return results
        extract = store.instances.extract
        for property_id in self.inner._candidate_property_ids(predicate):
            for subject_id, object_id in store.object_store.pairs_for_property(
                property_id
            ):
                results.append((extract(subject_id), extract(object_id)))
            for subject_id, literal in store.datatype_store.pairs_for_property(
                property_id
            ):
                results.append((extract(subject_id), literal))
        return results

    def _closure_pairs(
        self, inner: PathExpression, include_zero: bool
    ) -> List[Tuple[Term, Term]]:
        """ALP with both endpoints unbound: per-source reachability.

        The inner relation is materialised once and closed per distinct
        source over an adjacency map — semi-naive at the term level; the
        id-level frontier applies per source when the inner path compiles
        (``_reachable`` dispatches), but with the full relation already in
        hand the adjacency walk is the cheaper route.
        """
        relation = set(self._pairs(inner))
        adjacency: dict = {}
        for source, target in relation:
            adjacency.setdefault(source, set()).add(target)
        results: Set[Tuple[Term, Term]] = set()
        for source in adjacency:
            reached: Set[Term] = set()
            frontier = list(adjacency[source])
            while frontier:
                next_frontier: List[Term] = []
                for term in frontier:
                    if term in reached:
                        continue
                    reached.add(term)
                    next_frontier.extend(adjacency.get(term, ()))
                frontier = next_frontier
            results.update((source, target) for target in reached)
        if include_zero:
            results.update((term, term) for term in graph_terms(self.store))
        return list(results)

    def _negated_pairs(self, path: PathNegatedSet) -> List[Tuple[Term, Term]]:
        store = self.store
        results: List[Tuple[Term, Term]] = []
        forward_excluded = set(path.forward)
        extract = store.instances.extract
        if self._nps_wants_forward(path):
            for property_id, predicate in self._stored_predicates():
                if predicate in forward_excluded:
                    continue
                for subject_id, object_id in store.object_store.pairs_for_property(
                    property_id
                ):
                    results.append((extract(subject_id), extract(object_id)))
                for subject_id, literal in store.datatype_store.pairs_for_property(
                    property_id
                ):
                    results.append((extract(subject_id), literal))
            if RDF_TYPE not in forward_excluded:
                extract_concept = store.concepts.extract
                for subject_id, concept_id in store.type_store.iter_triples():
                    concept = extract_concept(concept_id)
                    if concept is not None:
                        results.append((extract(subject_id), concept))
        if self._nps_wants_inverse(path):
            inverse_excluded = set(path.inverse)
            for property_id, predicate in self._stored_predicates():
                if predicate in inverse_excluded:
                    continue
                for subject_id, object_id in store.object_store.pairs_for_property(
                    property_id
                ):
                    results.append((extract(object_id), extract(subject_id)))
                for subject_id, literal in store.datatype_store.pairs_for_property(
                    property_id
                ):
                    results.append((literal, extract(subject_id)))
            if RDF_TYPE not in inverse_excluded:
                extract_concept = store.concepts.extract
                for subject_id, concept_id in store.type_store.iter_triples():
                    concept = extract_concept(concept_id)
                    if concept is not None:
                        results.append((concept, extract(subject_id)))
        return results
