"""Table 2 — data retrieval for a single ``(?s, P, O)`` triple pattern.

The answer-set sizes (5 / 17 / 135 / 283 / 521) are guaranteed by the LUBM
landmark entities.  The access path is the paper's Algorithm 4 (object-bound
navigation of the PSO layout).
"""

from __future__ import annotations

from repro.bench.harness import record_table

from repro.baselines.registry import SYSTEM_ORDER
from repro.bench.harness import format_table, query_latency_row
from repro.workloads.lubm import TABLE2_CARDINALITIES


def test_tab2_single_tp_pos(benchmark, context, loaded_systems, results_dir):
    """Regenerate Table 2 (?s,P,O latency vs answer-set size)."""
    queries = [context.catalog.by_identifier()[f"S{i}"] for i in range(6, 11)]
    columns = [str(size) for size in TABLE2_CARDINALITIES]
    rows = {}
    for system_name in SYSTEM_ORDER:
        system = loaded_systems[system_name]
        cells = []
        for query in queries:
            measurement = query_latency_row(system, query, reasoning=False)
            assert measurement is not None
            assert len(measurement.result) == query.expected_cardinality
            cells.append(measurement.total_ms)
        rows[system_name] = cells
    table = format_table(
        "Table 2: single ?s,P,O triple pattern (answer-set size per column)",
        columns,
        rows,
        unit="ms, measured + simulated",
    )
    record_table(results_dir, "tab2_single_tp_pos", table)

    succinct = loaded_systems["SuccinctEdge"]
    benchmark.pedantic(lambda: succinct.query(queries[0].sparql), rounds=3, iterations=1)

    # Shape check: SuccinctEdge beats the disk-based stores on selective queries.
    assert rows["SuccinctEdge"][0] < rows["RDF4Led"][0]
    assert rows["SuccinctEdge"][0] < rows["Jena_TDB"][0]
