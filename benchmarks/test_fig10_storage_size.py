"""Figure 10 — triple storage size (without dictionaries).

SuccinctEdge's single SDS index is compared against the three-index layouts
of the other systems; the paper reports a much smaller footprint thanks to
the bitmap/wavelet-tree representation.
"""

from __future__ import annotations

from repro.bench.harness import record_table

from repro.baselines.registry import SYSTEM_ORDER, create_system
from repro.bench.harness import format_table


def test_fig10_storage_size(benchmark, context, results_dir):
    """Regenerate the Figure 10 series (triple storage in KiB per dataset)."""
    datasets = ["ENGIE-250", "ENGIE-500"] + sorted(
        (name for name in context.datasets if name.endswith("K")),
        key=lambda name: len(context.datasets[name]),
    )

    def build_rows():
        rows = {}
        for system_name in SYSTEM_ORDER:
            cells = []
            for dataset_name in datasets:
                system = create_system(system_name)
                system.load(context.datasets[dataset_name], ontology=context.lubm.ontology)
                cells.append(system.triple_storage_size_in_bytes() / 1024.0)
            rows[system_name] = cells
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    table = format_table(
        "Figure 10: triple storage size (without dictionary)", datasets, rows, unit="KiB"
    )
    record_table(results_dir, "fig10_storage_size", table)

    # SuccinctEdge must be the most compact layout on the LUBM datasets (on
    # the tiny ENGIE graphs the flat literal store dominates its footprint,
    # which the baselines hide inside their dictionaries instead).
    for index, dataset_name in enumerate(datasets):
        if len(context.datasets[dataset_name]) < 1000:
            continue
        others = [rows[name][index] for name in SYSTEM_ORDER if name != "SuccinctEdge"]
        assert rows["SuccinctEdge"][index] < min(others)
