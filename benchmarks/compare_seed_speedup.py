"""Producer of ``benchmarks/results/pr1_sds_vectorization_speedup.txt``.

Measures the SuccinctEdge store alone (construction plus the fig12 single-TP
and fig13 BGP queries, best-of-3 hot runs) and prints one row per query with
wall time and SDS kernel-call counts.  Run it once per code version and diff
the outputs; the checked-in speedup table was produced by running this
script against the current tree and against the seed commit via a worktree:

    python benchmarks/compare_seed_speedup.py vectorized   # current tree
    git worktree add /tmp/seedtree <seed-commit>
    PYTHONPATH=/tmp/seedtree/src python benchmarks/compare_seed_speedup.py seed
    git worktree remove /tmp/seedtree

(Seed builds predate the kernel counters, so their kernel_calls column
prints ``n/a``.)  This is a standalone script, not a pytest benchmark: it
compares two checkouts, which a single-tree test run cannot do.
"""

from __future__ import annotations

import sys
import time


def main(tag: str) -> None:
    from repro.baselines.registry import create_system
    from repro.bench.harness import prepare_datasets, query_latency_row

    context = prepare_datasets()
    started = time.perf_counter()
    system = create_system("SuccinctEdge")
    system.load(context.full_graph, ontology=context.lubm.ontology)
    build_ms = (time.perf_counter() - started) * 1e3

    singles = [context.catalog.by_identifier()[f"S{i}"] for i in range(11, 16)]
    bgps = list(context.catalog.bgp_queries())

    print(f"### {tag}")
    print(f"build_ms={build_ms:.1f}")
    for query in singles + bgps:
        system.query(query.sparql, reasoning=False)  # warm the store
        measurement = query_latency_row(system, query, reasoning=False)
        assert measurement is not None
        kernel_calls = getattr(measurement, "kernel_calls", None)
        print(
            f"{query.identifier} {measurement.total_ms:.2f} "
            f"kernel_calls={kernel_calls if kernel_calls is not None else 'n/a'}"
        )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "current")
