"""Reasoning by UNION query rewriting (the baselines' strategy).

The paper's evaluation (Section 7.3.5) hands the competitor systems a query
manually rewritten as the union of all non-inferential sub-queries: a triple
pattern ``?x rdf:type C`` becomes the union over every sub-concept of ``C``,
and ``?x p ?y`` over a property hierarchy becomes the union over every
sub-property of ``p``.  This module automates that rewriting so the baseline
stores in this reproduction answer exactly the same reasoning queries as
SuccinctEdge, at the cost the paper describes (one sub-query per entailment).
"""

from __future__ import annotations

import itertools
from typing import List

from repro.ontology.schema import OntologySchema
from repro.rdf.terms import URI
from repro.sparql.ast import BasicGraphPattern, GroupGraphPattern, SelectQuery, TriplePattern


def expand_triple_pattern(pattern: TriplePattern, schema: OntologySchema) -> List[TriplePattern]:
    """All non-inferential variants of one triple pattern.

    * ``?x rdf:type C`` expands over the sub-concepts of ``C``;
    * ``?x p ?y`` expands over the sub-properties of ``p``;
    * other patterns are returned unchanged.
    """
    variants: List[TriplePattern] = []
    if pattern.is_rdf_type and isinstance(pattern.object, URI):
        for concept in schema.subconcepts(pattern.object, include_self=True):
            variants.append(TriplePattern(pattern.subject, pattern.predicate, concept))
        return variants
    if isinstance(pattern.predicate, URI) and not pattern.is_rdf_type:
        subproperties = schema.subproperties(pattern.predicate, include_self=True)
        if len(subproperties) > 1:
            for prop in subproperties:
                variants.append(TriplePattern(pattern.subject, prop, pattern.object))
            return variants
    return [pattern]


def rewrite_bgp_with_unions(
    bgp: BasicGraphPattern, schema: OntologySchema
) -> List[BasicGraphPattern]:
    """Rewrite a BGP into the list of BGPs whose union is inference-complete.

    The result has one BGP per combination of expanded triple patterns (the
    cross product the paper calls "the union of n+1 queries").
    """
    per_pattern = [expand_triple_pattern(pattern, schema) for pattern in bgp.patterns]
    rewritten: List[BasicGraphPattern] = []
    for combination in itertools.product(*per_pattern):
        rewritten.append(BasicGraphPattern(patterns=list(combination)))
    return rewritten


def rewrite_query_with_unions(query: SelectQuery, schema: OntologySchema) -> SelectQuery:
    """Rewrite a SELECT query into its UNION-of-BGPs inference-free form.

    Filters, binds, OPTIONAL groups and VALUES blocks of the original group
    are copied into every branch; the solution modifiers (DISTINCT, LIMIT,
    OFFSET, ORDER BY, GROUP BY) are preserved on the rewritten query.  When
    no pattern needs expansion the query is returned unchanged.
    """
    branches = rewrite_bgp_with_unions(query.where.bgp, schema)
    if len(branches) <= 1:
        return query
    from repro.sparql.ast import Union  # local import to avoid a cycle in docs builds

    union = Union(
        branches=[
            GroupGraphPattern(
                bgp=branch,
                filters=list(query.where.filters),
                binds=list(query.where.binds),
                optionals=list(query.where.optionals),
                values=list(query.where.values),
            )
            for branch in branches
        ]
    )
    rewritten_where = GroupGraphPattern(bgp=BasicGraphPattern(), unions=[union])
    return SelectQuery(
        projection=query.projection,
        where=rewritten_where,
        distinct=query.distinct,
        limit=query.limit,
        offset=query.offset,
        order_by=list(query.order_by),
        group_by=list(query.group_by),
    )


def count_union_branches(query: SelectQuery, schema: OntologySchema) -> int:
    """Number of UNION branches the rewriting would produce (cost metric)."""
    total = 1
    for pattern in query.where.bgp.patterns:
        total *= len(expand_triple_pattern(pattern, schema))
    return total
