"""Benchmark harness.

Shared measurement and reporting code used by the ``benchmarks/`` suite and
by the scripts that regenerate EXPERIMENTS.md: dataset preparation, per-system
loading, latency measurement (measured CPU time and simulated environment
cost reported separately), and paper-style table rendering.
"""

from repro.bench.measure import Measurement, measure_call
from repro.bench.harness import (
    BenchmarkContext,
    format_table,
    load_all_systems,
    prepare_datasets,
    query_latency_row,
)

__all__ = [
    "BenchmarkContext",
    "Measurement",
    "format_table",
    "load_all_systems",
    "measure_call",
    "prepare_datasets",
    "query_latency_row",
]
