"""Flat literal store for datatype-property objects.

Sensor measurements produce a potentially unbounded stream of distinct
numerical literals; creating an instance-dictionary entry for each of them
would make dictionary management "complex and costly" (paper Section 4).
SuccinctEdge therefore stores datatype-property objects as-is, possibly with
redundancy, in a flat append-only structure; the datatype triple store keeps
positional pointers into it.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.rdf.terms import Literal


class LiteralStore:
    """Append-only flat storage of literal values.

    ``append`` returns the position of the stored literal; ``get`` retrieves
    it.  Unlike a dictionary the same literal may be stored several times —
    deduplication is deliberately not attempted.
    """

    def __init__(self) -> None:
        self._values: List[Literal] = []

    def append(self, literal: Literal) -> int:
        """Store ``literal`` and return its position."""
        self._values.append(literal)
        return len(self._values) - 1

    def get(self, position: int) -> Literal:
        """Literal stored at ``position``."""
        if not 0 <= position < len(self._values):
            raise IndexError(f"literal position {position} out of range [0, {len(self._values)})")
        return self._values[position]

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Literal]:
        return iter(self._values)

    def __repr__(self) -> str:
        return f"LiteralStore({len(self._values)} literals)"

    def size_in_bytes(self) -> int:
        """Approximate serialised size of the stored lexical forms."""
        total = 0
        for literal in self._values:
            total += len(literal.lexical.encode("utf-8"))
            if literal.datatype:
                total += 4  # datatype reference (interned)
        return total
