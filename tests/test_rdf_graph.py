"""Tests for the in-memory Graph and the namespaces helpers."""

from __future__ import annotations

from repro.rdf.graph import Graph
from repro.rdf.namespaces import LUBM, Namespace, RDF, SOSA, WELL_KNOWN_PREFIXES
from repro.rdf.terms import Literal, Triple, URI

EX = Namespace("http://example.org/")


def triple(s, p, o) -> Triple:
    return Triple(s, p, o)


class TestNamespace:
    def test_attribute_and_item_access(self):
        assert SOSA.Sensor == URI("http://www.w3.org/ns/sosa/Sensor")
        assert SOSA["observes"] == URI("http://www.w3.org/ns/sosa/observes")

    def test_contains(self):
        assert SOSA.Sensor in SOSA
        assert LUBM.Person not in SOSA

    def test_well_known_prefixes_cover_paper_vocabularies(self):
        for prefix in ("rdf", "rdfs", "sosa", "qudt", "lubm", "unit"):
            assert prefix in WELL_KNOWN_PREFIXES


class TestGraphMutation:
    def test_add_deduplicates(self):
        graph = Graph()
        t = triple(EX.s, EX.p, EX.o)
        assert graph.add(t) is True
        assert graph.add(t) is False
        assert len(graph) == 1

    def test_add_triple_convenience(self):
        graph = Graph()
        assert graph.add_triple(EX.s, EX.p, Literal("x")) is True
        assert len(graph) == 1

    def test_update_counts_new_triples(self):
        graph = Graph()
        triples = [triple(EX.s, EX.p, EX.o), triple(EX.s, EX.p, EX.o2)]
        assert graph.update(triples) == 2
        assert graph.update(triples) == 0

    def test_insertion_order_preserved(self):
        graph = Graph()
        first = triple(EX.b, EX.p, EX.o)
        second = triple(EX.a, EX.p, EX.o)
        graph.add(first)
        graph.add(second)
        assert list(graph) == [first, second]

    def test_contains(self):
        graph = Graph([triple(EX.s, EX.p, EX.o)])
        assert triple(EX.s, EX.p, EX.o) in graph
        assert triple(EX.s, EX.p, EX.o2) not in graph


class TestGraphQueries:
    def setup_method(self):
        self.graph = Graph(
            [
                triple(EX.alice, RDF.type, EX.Person),
                triple(EX.bob, RDF.type, EX.Person),
                triple(EX.alice, EX.knows, EX.bob),
                triple(EX.alice, EX.name, Literal("Alice")),
                triple(EX.bob, EX.name, Literal("Bob")),
            ]
        )

    def test_triples_pattern_matching(self):
        assert len(list(self.graph.triples(EX.alice, None, None))) == 3
        assert len(list(self.graph.triples(None, EX.name, None))) == 2
        assert len(list(self.graph.triples(None, None, EX.bob))) == 1
        assert len(list(self.graph.triples(EX.alice, EX.name, Literal("Alice")))) == 1
        assert len(list(self.graph.triples(EX.alice, EX.name, Literal("Bob")))) == 0

    def test_subjects_objects(self):
        assert set(self.graph.subjects(RDF.type, EX.Person)) == {EX.alice, EX.bob}
        assert list(self.graph.objects(EX.alice, EX.knows)) == [EX.bob]

    def test_predicates_distinct_in_order(self):
        assert self.graph.predicates() == [RDF.type, EX.knows, EX.name]

    def test_types_and_instances(self):
        assert self.graph.types_of(EX.alice) == [EX.Person]
        assert self.graph.instances_of(EX.Person) == [EX.alice, EX.bob]

    def test_term_counts(self):
        subjects, predicates, objects = self.graph.term_counts()
        assert subjects == 2
        assert predicates == 3
        assert objects == 4

    def test_head_slices_in_order(self):
        head = self.graph.head(2)
        assert len(head) == 2
        assert list(head) == list(self.graph)[:2]

    def test_copy_is_independent(self):
        copy = self.graph.copy()
        copy.add(triple(EX.new, EX.p, EX.o))
        assert len(copy) == len(self.graph) + 1

    def test_literals(self):
        assert self.graph.literals() == [Literal("Alice"), Literal("Bob")]
