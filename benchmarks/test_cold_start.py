"""Cold start — instant startup from a memory-mapped v4 store image.

The acceptance benchmark of persistence v4 (``docs/persistence.md``): an
edge node restarting with a warm store on disk should *not* pay a
per-triple decode pass.  Loading a v3 stream rebuilds every succinct
structure in memory; mapping a v4 image hands the kernels ``memoryview``
slices of the page cache, so the load cost is bounded by header + TOC +
dictionary parsing and is independent of the triple count.

Measured here, per LUBM dataset at the active scale: v3 load time, v4
mapped load time, the resulting speedup, and a first-query probe over the
mapped store to show the page-cache path serves immediately.  The mapped
store's query results are additionally asserted byte-identical to the
builder output (the differential suite pins all 32 queries; this smoke
keeps the bar visible next to the numbers).
"""

from __future__ import annotations

import time

from repro.bench.harness import format_table, record_table
from repro.store.persistence import load_store, save_store, save_store_image
from repro.store.succinct_edge import SuccinctEdge

#: The v4-vs-v3 load speedup floor asserted per scale.  The gap widens with
#: triple count (v3 pays a per-triple decode, v4 does not), so the small
#: smoke profile gets a conservative floor while medium/full hold the
#: paper-style 10x bar.
_SPEEDUP_FLOOR = {"small": 3.0, "medium": 10.0, "full": 10.0}


def _best_of(callable_, repeats: int = 3) -> float:
    """Best wall-clock milliseconds over ``repeats`` runs (cache-warm)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        best = min(best, (time.perf_counter() - started) * 1000.0)
    return best


def test_cold_start(benchmark, context, results_dir, tmp_path):
    """Regenerate the cold-start table and assert the v4 speedup floor."""
    from repro.bench.harness import bench_scale

    datasets = sorted(
        (name for name in context.datasets if name.endswith("K")),
        key=lambda name: len(context.datasets[name]),
    )
    if not datasets:
        datasets = ["full"]
    rows = {"v3 load (rebuild)": [], "v4 load (mmap)": [], "speedup": [], "first query": []}
    largest_speedup = None
    probe = "SELECT ?x WHERE { ?x a <http://swat.cse.lehigh.edu/onto/univ-bench.owl#Professor> }"

    for name in datasets:
        graph = context.datasets.get(name, context.full_graph)
        built = SuccinctEdge.from_graph(graph, ontology=context.lubm.ontology)
        v3_path = tmp_path / f"{name}.v3.sedg"
        v4_path = tmp_path / f"{name}.v4.sedg"
        save_store(built, str(v3_path))
        save_store_image(built, str(v4_path), atomic=True)

        v3_ms = _best_of(lambda: load_store(str(v3_path)))
        v4_ms = _best_of(lambda: load_store(str(v4_path), mmap=True))
        mapped = load_store(str(v4_path), mmap=True)
        first_query_ms = _best_of(lambda: mapped.query(probe), repeats=1)

        # Byte-identical serving off the mapping (the differential suite
        # pins the full query matrix; keep the bar visible here too).
        left, right = mapped.query(probe), built.query(probe)
        assert left.variables == right.variables
        assert left.to_tuples() == right.to_tuples()

        speedup = v3_ms / v4_ms if v4_ms else float("inf")
        rows["v3 load (rebuild)"].append(v3_ms)
        rows["v4 load (mmap)"].append(v4_ms)
        rows["speedup"].append(f"{speedup:.1f}x")
        rows["first query"].append(first_query_ms)
        largest_speedup = speedup  # datasets are size-ordered; keep the last

    table = format_table(
        "Cold start: store load time, v3 stream vs v4 mapped image",
        datasets,
        rows,
        unit="ms, best of 3",
    )
    record_table(results_dir, "cold_start", table)

    floor = _SPEEDUP_FLOOR[bench_scale()]
    assert largest_speedup is not None and largest_speedup >= floor, (
        f"v4 mapped load is only {largest_speedup:.1f}x faster than the v3 "
        f"rebuild on {datasets[-1]} (floor at {bench_scale()} scale: {floor}x)"
    )

    # The benchmarked operation: one mapped cold start on the largest image.
    largest_image = tmp_path / f"{datasets[-1]}.v4.sedg"
    benchmark.pedantic(
        lambda: load_store(str(largest_image), mmap=True), rounds=3, iterations=1
    )
