"""Tests for the cost-based DP planner: edge cases and differential checks.

Edge cases the ISSUE pins: unbound-predicate patterns, pure cartesian BGPs
(with the ``CARTESIAN`` marker), single-pattern queries, empty stores, and
the greedy fallback above the DP threshold.  The differential block runs a
query mix through both planners and checks multiset-equal results (join
order may legally permute rows of an unordered SELECT).
"""

from __future__ import annotations

import pytest

from repro.query.engine import QueryEngine
from repro.query.optimizer import (
    CostBasedJoinOrderOptimizer,
    CostModel,
    HeuristicJoinOrderOptimizer,
    JoinOrderOptimizer,
)
from repro.query.plan import AccessPath, JoinMethod
from repro.rdf.graph import Graph
from repro.sparql.parser import parse_query
from repro.store.succinct_edge import SuccinctEdge
from tests.conftest import EX


def patterns_of(query_text: str):
    return list(parse_query(query_text).triple_patterns)


class TestEdgeCases:
    def test_empty_bgp(self):
        plan = CostBasedJoinOrderOptimizer().optimize([])
        assert len(plan) == 0
        assert plan.method == "cost-dp"

    def test_single_pattern(self, toy_store):
        optimizer = CostBasedJoinOrderOptimizer(statistics=toy_store.statistics)
        plan = optimizer.optimize(
            patterns_of("SELECT * WHERE { ?x <http://example.org/name> ?n }")
        )
        assert len(plan) == 1
        step = plan.steps[0]
        assert step.join_method == JoinMethod.NONE
        assert not step.cartesian
        assert step.estimated_rows is not None
        assert step.estimated_cost is not None and step.estimated_cost > 0

    def test_unbound_predicate_pattern(self, toy_store):
        optimizer = CostBasedJoinOrderOptimizer(statistics=toy_store.statistics)
        plan = optimizer.optimize(
            patterns_of("SELECT * WHERE { ?s ?p ?o . ?s <http://example.org/age> ?a }")
        )
        full_scan = [s for s in plan.steps if s.access_path == AccessPath.PSO_FULL]
        assert len(full_scan) == 1
        assert full_scan[0].estimated_cost is not None
        # The highly selective age pattern (2 rows) must anchor the plan; the
        # full scan turns into per-row probes over the stored properties.
        assert plan.steps[0].access_path != AccessPath.PSO_FULL

    def test_pure_cartesian_bgp_is_marked(self, toy_store):
        optimizer = CostBasedJoinOrderOptimizer(statistics=toy_store.statistics)
        plan = optimizer.optimize(
            patterns_of(
                "SELECT * WHERE { ?x <http://example.org/name> ?n . "
                "?y <http://example.org/age> ?a }"
            )
        )
        assert len(plan) == 2
        assert plan.steps[1].cartesian
        assert "CARTESIAN" in plan.explain()

    def test_heuristic_planner_marks_cartesians_too(self, toy_store):
        optimizer = HeuristicJoinOrderOptimizer(statistics=toy_store.statistics)
        plan = optimizer.optimize(
            patterns_of(
                "SELECT * WHERE { ?x <http://example.org/name> ?n . "
                "?y <http://example.org/age> ?a }"
            )
        )
        assert plan.steps[1].cartesian
        assert "CARTESIAN" in plan.explain()

    def test_cartesian_placed_last_when_possible(self, toy_store):
        # Three patterns, two connected: the disconnected one must not sit
        # between the joinable pair (the DP costs the cross product).
        optimizer = CostBasedJoinOrderOptimizer(statistics=toy_store.statistics)
        plan = optimizer.optimize(
            patterns_of(
                "SELECT * WHERE { ?x <http://example.org/memberOf> ?d . "
                "?x <http://example.org/name> ?n . "
                "?z <http://example.org/age> ?a }"
            )
        )
        assert [step.cartesian for step in plan.steps] == [False, False, True]

    def test_empty_store(self):
        store = SuccinctEdge.from_graph(Graph())
        engine = QueryEngine(store)
        plan = engine.plan(
            "SELECT * WHERE { ?x <http://example.org/p> ?y . ?y <http://example.org/q> ?z }"
        )
        assert len(plan) == 2
        result = store.query(
            "SELECT * WHERE { ?x <http://example.org/p> ?y . ?y <http://example.org/q> ?z }"
        )
        assert len(result) == 0

    def test_greedy_fallback_above_threshold(self, toy_store):
        optimizer = CostBasedJoinOrderOptimizer(
            statistics=toy_store.statistics, dp_threshold=2
        )
        plan = optimizer.optimize(
            patterns_of(
                "SELECT * WHERE { ?x a <http://example.org/Person> . "
                "?x <http://example.org/memberOf> ?d . "
                "?d <http://example.org/subOrganizationOf> ?u }"
            )
        )
        assert plan.method == "cost-greedy"
        # The fallback still annotates rows and costs on every step.
        assert all(step.estimated_cost is not None for step in plan.steps)

    def test_default_is_dp_under_threshold(self, toy_store):
        optimizer = JoinOrderOptimizer(statistics=toy_store.statistics)
        plan = optimizer.optimize(
            patterns_of(
                "SELECT * WHERE { ?x a <http://example.org/Person> . "
                "?x <http://example.org/memberOf> ?d }"
            )
        )
        assert plan.method == "cost-dp"

    def test_costs_are_monotone(self, toy_store):
        optimizer = JoinOrderOptimizer(statistics=toy_store.statistics)
        plan = optimizer.optimize(
            patterns_of(
                "SELECT * WHERE { ?x a <http://example.org/Person> . "
                "?x <http://example.org/memberOf> ?d . "
                "?d <http://example.org/subOrganizationOf> ?u }"
            )
        )
        costs = [step.estimated_cost for step in plan.steps]
        assert all(b >= a for a, b in zip(costs, costs[1:]))


class TestCostModel:
    def test_defaults_are_positive(self):
        model = CostModel()
        assert model.pso_probe > 0 and model.pso_scan > 0 and model.pso_row > 0

    def test_calibration_on_a_real_store(self, toy_store):
        model = CostModel.calibrated(toy_store)
        assert model.pso_row > 0
        assert model.pso_scan > 0
        assert model.pso_probe > 0

    def test_calibration_survives_an_empty_store(self):
        store = SuccinctEdge.from_graph(Graph())
        model = CostModel.calibrated(store)
        assert model.pso_probe == CostModel().pso_probe  # defaults kept


class TestPlanCacheInvalidation:
    def test_engine_replans_after_write(self):
        from tests.conftest import build_toy_data, build_toy_ontology
        from repro.store.updatable import UpdatableSuccinctEdge

        store = UpdatableSuccinctEdge(
            SuccinctEdge.from_graph(build_toy_data(), ontology=build_toy_ontology())
        )
        engine = QueryEngine(store)
        query = "SELECT * WHERE { ?x <http://example.org/memberOf> ?d }"
        first = engine.plan(query)
        assert engine.plan(query) is first  # cached at the same version
        from repro.rdf.terms import Triple

        assert store.insert(Triple(EX.someone, EX.memberOf, EX.dept1))
        second = engine.plan(query)
        assert second is not first  # write bumped the statistics version


class TestGroupPlanRendering:
    def test_filter_bind_union_optional_placement(self, toy_store):
        engine = QueryEngine(toy_store)
        text = engine.explain(
            "SELECT * WHERE { ?x <http://example.org/name> ?n . "
            "OPTIONAL { ?x <http://example.org/age> ?a } "
            "BIND(?n AS ?label) FILTER(?n != \"Zed\") }"
        )
        assert "optional:" in text
        assert "bind(" in text and "?label" in text
        assert "filter(" in text
        # The optional's subplan is indented beneath its marker.
        optional_index = text.index("optional:")
        assert "\n  tp" in text[optional_index:]

    def test_union_branches_rendered(self, toy_store):
        engine = QueryEngine(toy_store)
        text = engine.explain(
            "SELECT * WHERE { { ?x <http://example.org/name> ?n } UNION "
            "{ ?x <http://example.org/age> ?n } }"
        )
        assert "union:" in text
        assert text.count("branch:") == 2

    def test_explain_matches_pipeline_plan(self, toy_store):
        engine = QueryEngine(toy_store)
        query = "SELECT DISTINCT ?x WHERE { ?x <http://example.org/name> ?n } LIMIT 3"
        assert engine.explain(query) == engine.pipeline_plan(query).explain()


DIFFERENTIAL_QUERIES = [
    "SELECT * WHERE { ?x a <http://example.org/Person> . ?x <http://example.org/name> ?n }",
    "SELECT * WHERE { ?x <http://example.org/memberOf> ?d . "
    "?d <http://example.org/subOrganizationOf> ?u . ?u a <http://example.org/University> }",
    "SELECT * WHERE { ?x <http://example.org/advisor> ?p . ?p a <http://example.org/Professor> . "
    "?x <http://example.org/name> ?n }",
    "SELECT ?n WHERE { ?x <http://example.org/name> ?n . ?y <http://example.org/age> ?a }",
    "SELECT * WHERE { ?s ?p ?o . ?s <http://example.org/age> ?a }",
    "SELECT ?x WHERE { ?x a <http://example.org/Student> } ORDER BY ?x",
]


class TestPlannerDifferential:
    @pytest.mark.parametrize("query", DIFFERENTIAL_QUERIES)
    @pytest.mark.parametrize("reasoning", [True, False])
    def test_cost_and_heuristic_agree(self, toy_store, query, reasoning):
        cost_engine = QueryEngine(toy_store, reasoning=reasoning, planner="cost")
        heuristic_engine = QueryEngine(toy_store, reasoning=reasoning, planner="heuristic")
        cost_rows = sorted(map(str, cost_engine.execute(query).to_tuples()))
        heuristic_rows = sorted(map(str, heuristic_engine.execute(query).to_tuples()))
        assert cost_rows == heuristic_rows

    def test_paper_queries_agree_on_small_lubm(self, small_lubm_store, small_lubm_catalog):
        for query in small_lubm_catalog.extended_queries():
            cost_engine = QueryEngine(small_lubm_store, planner="cost")
            heuristic_engine = QueryEngine(small_lubm_store, planner="heuristic")
            cost_result = cost_engine.execute(query.sparql)
            heuristic_result = heuristic_engine.execute(query.sparql)
            if hasattr(cost_result, "to_tuples"):
                assert sorted(map(str, cost_result.to_tuples())) == sorted(
                    map(str, heuristic_result.to_tuples())
                ), query.identifier
            else:
                assert cost_result.boolean == heuristic_result.boolean, query.identifier
