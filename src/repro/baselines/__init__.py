"""Baseline RDF stores used by the paper's evaluation.

The paper compares SuccinctEdge against RDF4Led, Jena TDB, Jena in-memory and
RDF4J on a Raspberry Pi 3B+.  Those systems (JVM-based, some disk-backed)
cannot be run in this environment, so this package implements *analogues*
that preserve the behaviour the comparison depends on:

* :class:`~repro.baselines.multi_index_store.MultiIndexMemoryStore` — a
  classic in-memory triple store with SPO/POS/OSP indexes (the design of
  Jena's in-memory store and of RDF4J's MemoryStore);
* :class:`~repro.baselines.disk_store.PagedDiskStore` — a disk-based store
  with B-tree-style pages behind a small page cache and a simulated SD-card
  read/write latency (the design of Jena TDB and RDF4Led);
* :class:`~repro.baselines.base.EdgeRDFStore` — the common interface, plus a
  generic BGP/FILTER/BIND/UNION query engine over ``match`` so every system
  answers exactly the same SPARQL subset;
* :class:`~repro.baselines.registry` — named system profiles ("Jena_TDB",
  "Jena_InMem", "RDF4J", "RDF4Led", "SuccinctEdge") with the documented cost
  model constants used by the benchmark harness.

Reasoning: the baselines do not embed LiteMat; like in the paper they answer
inference queries through a UNION rewriting
(:func:`repro.ontology.rewriting.rewrite_query_with_unions`).  RDF4Led does
not support UNION and therefore cannot answer the reasoning queries at all —
also like in the paper.
"""

from repro.baselines.base import EdgeRDFStore, UnsupportedFeatureError
from repro.baselines.disk_store import PagedDiskStore
from repro.baselines.multi_index_store import MultiIndexMemoryStore
from repro.baselines.registry import (
    SuccinctEdgeSystem,
    SystemProfile,
    available_systems,
    create_system,
)

__all__ = [
    "EdgeRDFStore",
    "MultiIndexMemoryStore",
    "PagedDiskStore",
    "SuccinctEdgeSystem",
    "SystemProfile",
    "UnsupportedFeatureError",
    "available_systems",
    "create_system",
]
