"""Flat literal store for datatype-property objects.

Sensor measurements produce a potentially unbounded stream of distinct
numerical literals; creating an instance-dictionary entry for each of them
would make dictionary management "complex and costly" (paper Section 4).
SuccinctEdge therefore stores datatype-property objects as-is, possibly with
redundancy, in a flat append-only structure; the datatype triple store keeps
positional pointers into it.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.rdf.terms import Literal


class LiteralStore:
    """Append-only flat storage of literal values.

    ``append`` returns the position of the stored literal; ``get`` retrieves
    it.  Unlike a dictionary the same literal may be stored several times —
    deduplication is deliberately not attempted.
    """

    def __init__(self) -> None:
        self._values: List[Literal] = []

    def append(self, literal: Literal) -> int:
        """Store ``literal`` and return its position."""
        self._values.append(literal)
        return len(self._values) - 1

    def get(self, position: int) -> Literal:
        """Literal stored at ``position``."""
        if not 0 <= position < len(self._values):
            raise IndexError(f"literal position {position} out of range [0, {len(self._values)})")
        return self._values[position]

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Literal]:
        return iter(self._values)

    def __repr__(self) -> str:
        return f"LiteralStore({len(self._values)} literals)"

    def size_in_bytes(self) -> int:
        """Approximate serialised size of the stored lexical forms."""
        total = 0
        for literal in self._values:
            total += len(literal.lexical.encode("utf-8"))
            if literal.datatype:
                total += 4  # datatype reference (interned)
        return total


class BufferLiteralStore:
    """Read-only literal store decoding lazily out of a mapped record blob.

    The persistence-v4 counterpart of :class:`LiteralStore`: literal records
    live UTF-8-encoded in one contiguous blob (typically a ``memoryview``
    aliasing a mapped store image) with a flat 64-bit offset directory, and a
    literal is only decoded — once, then cached — when a query actually
    touches its position.  Loading a store therefore costs nothing per
    literal; serving pays exactly for what it reads.

    The store is append-free by design: live writes ride the delta overlay,
    and compaction rebuilds a fresh mutable :class:`LiteralStore`.
    """

    def __init__(self, offsets, blob, count: int) -> None:
        # ``offsets`` holds ``count + 1`` word entries: record ``i`` spans
        # ``blob[offsets[i]:offsets[i + 1]]``.
        self._offsets = offsets
        self._blob = blob
        self._count = count
        self._cache: dict = {}

    @staticmethod
    def encode_record(literal: Literal) -> bytes:
        """One literal as a self-contained record (varint-length-prefixed UTF-8)."""
        out = bytearray()
        for text in (literal.lexical, literal.datatype or "", literal.language or ""):
            payload = text.encode("utf-8")
            length = len(payload)
            while True:
                byte = length & 0x7F
                length >>= 7
                out.append(byte | 0x80 if length else byte)
                if not length:
                    break
            out += payload
        return bytes(out)

    def _decode(self, start: int, end: int) -> Literal:
        blob = self._blob
        fields = []
        cursor = start
        for _ in range(3):
            length = 0
            shift = 0
            while True:
                byte = blob[cursor]
                cursor += 1
                length |= (byte & 0x7F) << shift
                if not byte & 0x80:
                    break
                shift += 7
            fields.append(bytes(blob[cursor : cursor + length]).decode("utf-8"))
            cursor += length
        if cursor > end:
            raise IndexError(f"literal record overruns its slot [{start}, {end})")
        lexical, datatype, language = fields
        if language:
            return Literal(lexical, language=language)
        return Literal(lexical, datatype=datatype or None)

    def get(self, position: int) -> Literal:
        """Literal stored at ``position`` (decoded on first access)."""
        cached = self._cache.get(position)
        if cached is not None:
            return cached
        if not 0 <= position < self._count:
            raise IndexError(f"literal position {position} out of range [0, {self._count})")
        literal = self._decode(self._offsets[position], self._offsets[position + 1])
        self._cache[position] = literal
        return literal

    def append(self, literal: Literal) -> int:
        """Buffer-backed stores are read-only; writes ride the delta overlay."""
        raise TypeError(
            "BufferLiteralStore is immutable (it may alias a mapped store image); "
            "route writes through UpdatableSuccinctEdge instead"
        )

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Literal]:
        for position in range(self._count):
            yield self.get(position)

    def __repr__(self) -> str:
        return f"BufferLiteralStore({self._count} literals, lazy)"

    def size_in_bytes(self) -> int:
        """Exact blob size of the stored records."""
        return len(self._blob)
