"""Documentation must stay executable: doctests over docs/ and the README.

The CI docs job runs the same checks (`python -m doctest docs/*.md` plus the
quickstart smoke test); running them in tier-1 too means documentation rot
is caught before a PR is even pushed.
"""

from __future__ import annotations

import doctest
import pathlib

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DOC_FILES = sorted((REPO_ROOT / "docs").glob("*.md"))


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_docs_code_blocks_execute(path: pathlib.Path):
    results = doctest.testfile(str(path), module_relative=False)
    assert results.attempted > 0, f"{path.name} has no doctest examples"
    assert results.failed == 0


def test_docs_exist_and_are_linked_from_readme():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert DOC_FILES, "docs/ tree is empty"
    for name in (
        "architecture.md",
        "sparql_support.md",
        "update_lifecycle.md",
        "operations.md",
        "performance.md",
        "query_planning.md",
        "persistence.md",
    ):
        assert (REPO_ROOT / "docs" / name).is_file()
        assert name in readme, f"README does not link docs/{name}"


def test_new_docs_pages_are_linked_from_architecture_map():
    architecture = (REPO_ROOT / "docs" / "architecture.md").read_text(encoding="utf-8")
    for name in ("operations.md", "performance.md", "query_planning.md", "persistence.md"):
        assert name in architecture, f"docs/architecture.md does not link {name}"


def test_readme_python_snippets_execute():
    """Every ```python block in the README must run, in order, as written.

    The blocks share one namespace (the Serving snippet builds on the
    Quickstart's ``data`` graph), so README drift — stale imports, renamed
    APIs, a Serving section that stopped matching the code — fails tier-1.
    """
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    blocks = []
    inside = False
    current: list = []
    for line in readme.splitlines():
        if line.strip() == "```python":
            inside = True
            current = []
        elif line.strip() == "```" and inside:
            inside = False
            blocks.append("\n".join(current))
        elif inside:
            current.append(line)
    assert len(blocks) >= 4, "README lost its runnable snippets"
    namespace: dict = {}
    for index, block in enumerate(blocks):
        try:
            exec(compile(block, f"README.md#block{index}", "exec"), namespace)  # noqa: S102
        except Exception as error:  # pragma: no cover - the assert is the report
            raise AssertionError(f"README python block {index} failed: {error!r}\n{block}")


def test_live_updates_example_runs(capsys):
    # The CI docs job executes examples/live_updates.py as a subprocess; the
    # direct import keeps the live-update loop in the tier-1 suite too.
    import runpy
    import sys

    argv = sys.argv
    sys.argv = ["live_updates.py", "3"]
    try:
        runpy.run_path(str(REPO_ROOT / "examples" / "live_updates.py"), run_name="__main__")
    finally:
        sys.argv = argv
    captured = capsys.readouterr()
    assert "Explicit compaction" in captured.out


def test_serving_example_runs(capsys):
    # The CI docs job executes examples/serving.py as a subprocess (the
    # server smoke test); the direct import keeps the serve loop in tier-1.
    import runpy
    import sys

    argv = sys.argv
    sys.argv = ["serving.py", "40"]
    try:
        runpy.run_path(str(REPO_ROOT / "examples" / "serving.py"), run_name="__main__")
    finally:
        sys.argv = argv
    captured = capsys.readouterr()
    assert "Cache hit rate" in captured.out
    assert "Latency p50/p99" in captured.out


def test_quickstart_example_runs(capsys):
    # The CI docs job executes examples/quickstart.py as a subprocess; here a
    # direct import keeps it in the tier-1 suite without process overhead.
    import runpy

    runpy.run_path(str(REPO_ROOT / "examples" / "quickstart.py"), run_name="__main__")
    captured = capsys.readouterr()
    assert "ASK" in captured.out
