"""Tests for the red-black tree backing the RDFType store."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sds.rbtree import RedBlackTree


class TestBasics:
    def test_empty_tree(self):
        tree = RedBlackTree()
        assert len(tree) == 0
        assert list(tree.items()) == []
        assert 5 not in tree
        assert tree.get(5) is None
        tree.check_invariants()

    def test_insert_and_lookup(self):
        tree = RedBlackTree()
        tree.insert(3, "three")
        tree.insert(1, "one")
        tree.insert(2, "two")
        assert tree[1] == "one"
        assert tree[2] == "two"
        assert tree[3] == "three"
        assert len(tree) == 3

    def test_missing_key_raises(self):
        tree = RedBlackTree()
        tree.insert(1, "one")
        with pytest.raises(KeyError):
            tree[2]

    def test_setitem_and_get(self):
        tree = RedBlackTree()
        tree[10] = "a"
        assert tree.get(10) == "a"
        assert tree.get(11, "default") == "default"

    def test_duplicate_insert_overwrites(self):
        tree = RedBlackTree()
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree[1] == "b"
        assert len(tree) == 1

    def test_in_order_iteration(self):
        tree = RedBlackTree()
        for key in [5, 3, 8, 1, 4, 7, 9]:
            tree.insert(key, key * 10)
        assert list(tree.keys()) == [1, 3, 4, 5, 7, 8, 9]
        assert list(tree.values()) == [10, 30, 40, 50, 70, 80, 90]
        assert list(tree) == list(tree.keys())

    def test_min_max(self):
        tree = RedBlackTree()
        for key in [5, 3, 8]:
            tree.insert(key)
        assert tree.min_key() == 3
        assert tree.max_key() == 8

    def test_min_max_empty_raises(self):
        with pytest.raises(KeyError):
            RedBlackTree().min_key()
        with pytest.raises(KeyError):
            RedBlackTree().max_key()

    def test_tuple_keys_range(self):
        tree = RedBlackTree()
        pairs = [(1, 10), (1, 20), (2, 5), (2, 6), (3, 1)]
        for pair in pairs:
            tree.insert(pair)
        selected = [key for key, _ in tree.range_items((2, -1), (3, -1))]
        assert selected == [(2, 5), (2, 6)]

    def test_size_in_bytes(self):
        tree = RedBlackTree()
        for key in range(100):
            tree.insert(key)
        assert tree.size_in_bytes() == 100 * 5 * 8


class TestInvariants:
    def test_sequential_insert_keeps_balance(self):
        tree = RedBlackTree()
        for key in range(500):
            tree.insert(key, key)
        tree.check_invariants()
        assert list(tree.keys()) == list(range(500))

    def test_reverse_insert_keeps_balance(self):
        tree = RedBlackTree()
        for key in reversed(range(500)):
            tree.insert(key, key)
        tree.check_invariants()
        assert list(tree.keys()) == list(range(500))

    def test_random_insert_matches_dict(self):
        rng = random.Random(5)
        tree = RedBlackTree()
        reference = {}
        for _ in range(2000):
            key = rng.randrange(10_000)
            value = rng.randrange(100)
            tree.insert(key, value)
            reference[key] = value
        tree.check_invariants()
        assert list(tree.items()) == sorted(reference.items())


class TestRangeItems:
    def test_range_is_half_open(self):
        tree = RedBlackTree()
        for key in range(10):
            tree.insert(key, key)
        assert [k for k, _ in tree.range_items(3, 7)] == [3, 4, 5, 6]

    def test_range_outside_keys(self):
        tree = RedBlackTree()
        for key in (2, 4, 6):
            tree.insert(key)
        assert list(tree.range_items(7, 100)) == []
        assert [k for k, _ in tree.range_items(-10, 100)] == [2, 4, 6]


@settings(max_examples=40, deadline=None)
@given(keys=st.lists(st.integers(min_value=0, max_value=10_000), max_size=400))
def test_property_invariants_and_order(keys):
    tree = RedBlackTree()
    for key in keys:
        tree.insert(key, key * 2)
    tree.check_invariants()
    assert list(tree.keys()) == sorted(set(keys))


@settings(max_examples=40, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=1000), max_size=200),
    low=st.integers(min_value=0, max_value=1000),
    span=st.integers(min_value=0, max_value=500),
)
def test_property_range_items_matches_filter(keys, low, span):
    tree = RedBlackTree()
    for key in keys:
        tree.insert(key, None)
    high = low + span
    expected = sorted(k for k in set(keys) if low <= k < high)
    assert [k for k, _ in tree.range_items(low, high)] == expected
