"""Differential tests: a mapped v4 store must equal the builder output.

The acceptance bar of persistence v4: for every one of the paper's 26
evaluation queries (S1-S15, M1-M5, R1-R6) plus the A1-A6 analytics, query
results over a memory-mapped store image are **byte-identical** (same
variables, same rows, same order) to the in-memory builder path — straight
after loading, with a live delta riding on the mapped base, and after a
compact-and-swap cycle that re-maps the freshly written image.

Byte-identity is a strong bar on purpose: the mapped store shares no code
path with the builder for its word buffers (``memoryview`` slices of the
mapping vs. heap ``array`` objects), and the v4 meta stream must restore the
cost-based planner's join statistics exactly, or plans — and therefore row
order — silently diverge.
"""

from __future__ import annotations

import pytest

from repro.rdf.graph import Graph
from repro.rdf.terms import Literal, Triple, URI
from repro.sparql.bindings import AskResult
from repro.store.persistence import load_store, save_store_image
from repro.store.succinct_edge import SuccinctEdge

ALL_QUERY_IDS = (
    [f"S{i}" for i in range(1, 16)]
    + [f"M{i}" for i in range(1, 6)]
    + [f"R{i}" for i in range(1, 7)]
    + [f"A{i}" for i in range(1, 7)]
)


def assert_identical(left_store, right_store, sparql, reasoning=True):
    left = left_store.query(sparql, reasoning=reasoning)
    right = right_store.query(sparql, reasoning=reasoning)
    if isinstance(left, AskResult):
        assert isinstance(right, AskResult)
        assert left.boolean == right.boolean
        return
    assert left.variables == right.variables
    assert left.to_tuples() == right.to_tuples()


# --------------------------------------------------------------------------- #
# fixtures: mapped twin of the builder store, mapped base + live delta
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def mapped(small_lubm_store, tmp_path_factory):
    """The reference store, saved as a v4 image and loaded back mapped."""
    path = tmp_path_factory.mktemp("images") / "small_lubm.sedg"
    save_store_image(small_lubm_store, str(path), atomic=True)
    store = load_store(str(path), mmap=True)
    assert store.image is not None and store.image.mapped
    return store


@pytest.fixture(scope="module")
def live_dataset(small_lubm):
    """~80/20 split: base graph plus the triples streamed in live."""
    base = Graph()
    live = []
    for index, triple in enumerate(small_lubm.graph):
        if index % 5 == 4:
            live.append(triple)
        else:
            base.add(triple)
    return base, live


@pytest.fixture(scope="module")
def mapped_live(small_lubm, live_dataset, tmp_path_factory):
    """A live store whose *base* is memory-mapped; deltas arrive via insert()."""
    base, live = live_dataset
    built = SuccinctEdge.from_graph(base, ontology=small_lubm.ontology)
    path = tmp_path_factory.mktemp("live") / "base.sedg"
    save_store_image(built, str(path), atomic=True)
    store = load_store(str(path), mmap=True).updatable(ontology=small_lubm.ontology)
    inserted = sum(1 for triple in live if store.insert(triple))
    assert inserted == len(live)
    return store


@pytest.fixture(scope="module")
def live_reference(small_lubm, live_dataset):
    """Monolithic rebuild over base-then-live data (matches insert order)."""
    base, live = live_dataset
    merged = Graph()
    for triple in base:
        merged.add(triple)
    for triple in live:
        merged.add(triple)
    return SuccinctEdge.from_graph(merged, ontology=small_lubm.ontology)


# --------------------------------------------------------------------------- #
# the differential matrix
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("identifier", ALL_QUERY_IDS)
def test_mapped_results_byte_identical(mapped, small_lubm_store, small_lubm_catalog, identifier):
    query = small_lubm_catalog.by_identifier()[identifier]
    assert_identical(mapped, small_lubm_store, query.sparql, query.requires_reasoning)


@pytest.mark.parametrize("identifier", ALL_QUERY_IDS)
def test_mapped_with_live_delta_byte_identical(
    mapped_live, live_reference, small_lubm_catalog, identifier
):
    # Writes never touch the read-only mapping: they ride the delta overlay,
    # and the overlay's merged enumeration over a mapped base must stay
    # byte-identical to a monolithic rebuild over the same data.
    query = small_lubm_catalog.by_identifier()[identifier]
    assert_identical(mapped_live, live_reference, query.sparql, query.requires_reasoning)


def test_compact_and_swap_changes_nothing(
    mapped_live, live_reference, small_lubm_catalog, tmp_path_factory
):
    # Fold the delta, persist the compacted base as a fresh image, and swap
    # the new mapping in as the serving base — the full image lifecycle.
    path = tmp_path_factory.mktemp("swap") / "compacted.sedg"
    report = mapped_live.compact(image_path=str(path), remap=True)
    assert report.epoch == 1
    assert mapped_live.delta_operation_count == 0
    assert mapped_live.image is not None and mapped_live.image.mapped
    assert str(mapped_live.image.path) == str(path)
    for identifier in ALL_QUERY_IDS:
        query = small_lubm_catalog.by_identifier()[identifier]
        assert_identical(mapped_live, live_reference, query.sparql, query.requires_reasoning)


def test_writes_after_swap_stay_visible(mapped_live):
    # Ordered after the swap test: the remapped base must still compose with
    # the (fresh) delta overlay — post-swap writes serve like any others.
    subject = URI("http://serving.succinct-edge.example/post-swap")
    predicate = URI("http://serving.succinct-edge.example/value")
    assert mapped_live.insert(Triple(subject, predicate, Literal(7)))
    rows = mapped_live.query(
        "SELECT ?v WHERE { <%s> <%s> ?v }" % (subject, predicate), reasoning=False
    )
    assert len(rows) == 1
    assert mapped_live.delete(Triple(subject, predicate, Literal(7)))


def test_match_enumeration_equals_builder(mapped, small_lubm_store):
    left = sorted(tuple(map(str, triple)) for triple in mapped.match())
    right = sorted(tuple(map(str, triple)) for triple in small_lubm_store.match())
    assert left == right


def test_mapped_size_accounting_is_finite(mapped):
    # Sanity: the accounting paths the docs and benchmarks rely on work over
    # buffer-backed layouts (memoryview words, frozen pair trees, lazy
    # literals) without decoding anything.
    assert mapped.image.size_in_bytes() > 0
    assert mapped.triple_storage_size_in_bytes() > 0
    assert mapped.memory_footprint_in_bytes() > 0
