"""The serving layer: QueryService semantics and the HTTP front door.

Covers the satellite requirements of the scale-out PR:

* service semantics — cache hit/miss with epoch invalidation, admission
  rejection under saturation, cooperative timeouts, metrics accounting;
* HTTP lifecycle — start, query (GET/POST), status codes, shutdown;
* concurrency — k client threads issuing paper queries through the server
  while ``compact_in_background()`` folds a delta underneath them: every
  response must equal the expected answer (no torn reads), and the epoch
  bump at swap time must invalidate the cache.
"""

from __future__ import annotations

import threading

import pytest

from repro.rdf.graph import Graph
from repro.rdf.terms import Literal, Triple, URI
from repro.serve import QueryServer, QueryService, SparqlClient
from repro.serve.cache import ResultCache
from repro.serve.metrics import ServingMetrics
from repro.serve.service import QueryRejected, QueryTimeout
from repro.store.delta import MANUAL_COMPACTION
from repro.store.updatable import UpdatableSuccinctEdge

PREFIXES = (
    "PREFIX lubm: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
)
WORKS_FOR = PREFIXES + "SELECT ?x ?y WHERE { ?x lubm:worksFor ?y }"
HEAD_ASK = PREFIXES + "ASK { ?x lubm:headOf ?d }"


# --------------------------------------------------------------------------- #
# cache + metrics units
# --------------------------------------------------------------------------- #


def test_result_cache_lru_eviction_and_counters():
    cache = ResultCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == (True, 1)  # refreshes 'a'
    cache.put("c", 3)  # evicts 'b' (least recently used)
    assert cache.get("b") == (False, None)
    assert cache.get("a") == (True, 1)
    assert cache.get("c") == (True, 3)
    info = cache.info()
    assert info["evictions"] == 1
    assert info["hits"] == 3 and info["misses"] == 1


def test_metrics_percentiles_and_snapshot():
    metrics = ServingMetrics()
    for ms in (1.0, 2.0, 3.0, 4.0, 100.0):
        metrics.record_admission()
        metrics.record_completion(ms, cached=False)
    snap = metrics.snapshot()
    assert snap["completed"] == 5
    assert snap["latency_p50_ms"] == 3.0
    assert snap["latency_p99_ms"] == 100.0
    assert snap["in_flight"] == 0 and snap["peak_in_flight"] == 1


# --------------------------------------------------------------------------- #
# service semantics
# --------------------------------------------------------------------------- #


@pytest.fixture()
def live_store(small_lubm):
    return UpdatableSuccinctEdge.from_graph(
        small_lubm.graph, ontology=small_lubm.ontology, policy=MANUAL_COMPACTION
    )


def test_cache_hits_then_invalidates_on_write(live_store):
    with QueryService(live_store, cache_capacity=16) as service:
        first = service.execute(WORKS_FOR)
        assert not first.cached
        second = service.execute(WORKS_FOR)
        assert second.cached
        assert second.result.to_tuples() == first.result.to_tuples()
        # A write bumps data_epoch: the next lookup must recompute.
        assert live_store.insert(
            Triple(URI("http://x.org/w"), URI("http://x.org/value"), Literal(1))
        )
        third = service.execute(WORKS_FOR)
        assert not third.cached
        assert third.epoch != second.epoch
        assert service.metrics.snapshot()["cache_hits"] == 1


def test_reasoning_modes_are_cached_separately(small_lubm_store):
    query = PREFIXES + "SELECT ?x WHERE { ?x rdf:type lubm:Student }"
    with QueryService(small_lubm_store) as service:
        with_reasoning = service.execute(query, reasoning=True)
        without = service.execute(query, reasoning=False)
        assert not without.cached  # different cache key
        assert len(with_reasoning.result) > len(without.result)


def test_admission_rejects_when_saturated(small_lubm_store):
    service = QueryService(small_lubm_store, worker_slots=1, max_pending=0, cache_capacity=0)
    entered = threading.Event()
    release = threading.Event()
    original_run = service._run

    def gated_run(query, reasoning, started, timeout):
        entered.set()
        release.wait(timeout=30)
        return original_run(query, reasoning, started, timeout)

    service._run = gated_run
    worker = threading.Thread(target=service.execute, args=(HEAD_ASK,), daemon=True)
    worker.start()
    assert entered.wait(timeout=10)
    try:
        with pytest.raises(QueryRejected):
            service.execute(WORKS_FOR)
    finally:
        release.set()
        worker.join(timeout=10)
    snap = service.metrics.snapshot()
    assert snap["rejected"] == 1
    assert snap["completed"] == 1
    service.close()


def test_cooperative_timeout(small_lubm_store):
    with QueryService(small_lubm_store, cache_capacity=0) as service:
        with pytest.raises(QueryTimeout):
            service.execute(WORKS_FOR, timeout_s=0.0)
        assert service.metrics.snapshot()["timeouts"] == 1
        # A sane deadline succeeds and is unaffected by the earlier timeout.
        assert service.execute(WORKS_FOR, timeout_s=30.0).rows > 0


def test_deadline_covers_queue_wait(small_lubm_store):
    # A request whose deadline expires while waiting for a worker slot must
    # fail with a timeout instead of running its query afterwards.
    service = QueryService(small_lubm_store, worker_slots=1, max_pending=4, cache_capacity=0)
    entered = threading.Event()
    release = threading.Event()
    original_run = service._run

    def gated_run(query, reasoning, started, timeout):
        entered.set()
        release.wait(timeout=30)
        return original_run(query, reasoning, started, timeout)

    service._run = gated_run
    worker = threading.Thread(target=service.execute, args=(HEAD_ASK,), daemon=True)
    worker.start()
    assert entered.wait(timeout=10)
    try:
        with pytest.raises(QueryTimeout):
            service.execute(WORKS_FOR, timeout_s=0.05)  # expires in the queue
    finally:
        release.set()
        worker.join(timeout=10)
    snap = service.metrics.snapshot()
    assert snap["timeouts"] == 1
    assert snap["completed"] == 1  # only the gated request executed
    service.close()


def test_unstarted_server_stop_releases_the_port(small_lubm_store):
    service = QueryService(small_lubm_store)
    server = QueryServer(service)  # bound but never started
    server.stop()
    assert server._httpd.socket.fileno() == -1  # listening socket closed
    with pytest.raises(RuntimeError):
        server.start()  # a stopped server cannot be revived
    service.close()


def test_parse_errors_count_as_errors(small_lubm_store):
    from repro.sparql.parser import SparqlParseError

    with QueryService(small_lubm_store) as service:
        with pytest.raises(SparqlParseError):
            service.execute("SELECT ?x WHERE {")
        assert service.metrics.snapshot()["errors"] == 1


# --------------------------------------------------------------------------- #
# HTTP lifecycle
# --------------------------------------------------------------------------- #


def test_http_server_start_query_shutdown(small_lubm_store):
    service = QueryService(small_lubm_store, cache_capacity=16)
    with QueryServer(service) as server:
        client = SparqlClient(server.url)
        health = client.health()
        assert health["status"] == "ok" and health["triples"] == small_lubm_store.triple_count
        rows = client.select_rows(WORKS_FOR)
        assert len(rows) > 0 and all(len(row) == 2 for row in rows)
        assert client.ask(HEAD_ASK) is True
        # Second identical request is served from the cache.
        assert client.query(WORKS_FOR)["_cache"] == "HIT"
        # GET with a URL-encoded query works too.
        from urllib.parse import quote

        document = client._request("/sparql?query=" + quote(HEAD_ASK))
        assert document["boolean"] is True
        metrics = client.metrics()
        assert metrics["completed"] >= 4
        assert client.stats()["store"]["shards"] == 1
    service.close()
    # After shutdown the port no longer accepts connections.
    with pytest.raises(Exception):
        SparqlClient(server.url, timeout_s=0.5).health()


def test_parse_cache_survives_writes_plan_cache_does_not(live_store):
    with QueryService(live_store, cache_capacity=0, plan_cache_capacity=8) as service:
        service.execute(WORKS_FOR)
        service.execute(WORKS_FOR)
        parse_info = service.stats()["parse_cache"]
        assert parse_info["hits"] == 1  # the AST is reused across requests
        # Parsing is epoch-independent: a write must NOT invalidate it.
        assert live_store.insert(
            Triple(URI("http://x.org/w2"), URI("http://x.org/value"), Literal(2))
        )
        service.execute(WORKS_FOR)
        assert service.stats()["parse_cache"]["hits"] == 2
        # The explain-plan cache, by contrast, is epoch-keyed.
        service.explain(WORKS_FOR)
        service.explain(WORKS_FOR)
        assert service.stats()["plan_cache"]["hits"] == 1
        assert live_store.insert(
            Triple(URI("http://x.org/w3"), URI("http://x.org/value"), Literal(3))
        )
        service.explain(WORKS_FOR)
        assert service.stats()["plan_cache"]["misses"] == 2


def test_service_explain_does_not_execute(small_lubm_store):
    with QueryService(small_lubm_store) as service:
        document = service.explain(WORKS_FOR)
        assert document["planner"] == "cost-dp"
        assert "plan [cost-dp]" in document["plan"]
        assert "tp1" in document["plan"]
        # Nothing was admitted/executed for the explain.
        assert service.metrics.snapshot()["completed"] == 0


def test_explain_respects_admission_control(small_lubm_store):
    service = QueryService(
        small_lubm_store, worker_slots=1, max_pending=0, plan_cache_capacity=0
    )
    # Occupy the single worker slot, then explain must be rejected.
    assert service._slots.acquire(timeout=1)
    try:
        service._pending = service.max_pending + service.worker_slots
        with pytest.raises(QueryRejected):
            service.explain(WORKS_FOR)
    finally:
        service._pending = 0
        service._slots.release()
    service.close()


def test_http_explain_mode(small_lubm_store):
    service = QueryService(small_lubm_store, cache_capacity=16)
    with QueryServer(service) as server:
        client = SparqlClient(server.url)
        document = client.explain(WORKS_FOR)
        assert document["planner"] == "cost-dp"
        assert "cost~" in document["plan"]
        # explain of an invalid query is a 400, like execution.
        from urllib.parse import quote

        bad = client._request("/sparql?explain=1&query=" + quote("SELECT ?x WHERE {"))
        assert bad["_status"] == 400
        # explain=0 still executes normally.
        ok = client._request("/sparql?explain=0&query=" + quote(HEAD_ASK))
        assert ok["boolean"] is True
    service.close()


def test_http_error_statuses(small_lubm_store):
    service = QueryService(small_lubm_store, cache_capacity=0)
    with QueryServer(service) as server:
        client = SparqlClient(server.url)
        assert client.query("SELECT ?x WHERE {")["_status"] == 400
        assert client._request("/nope")["_status"] == 404
        assert client._request("/sparql?timeout=abc&query=x")["_status"] == 400
        timed_out = client._request("/sparql?timeout=0", data=WORKS_FOR.encode())
        assert timed_out["_status"] == 504
    service.close()


# --------------------------------------------------------------------------- #
# edge wiring: the fleet controller's SPARQL front door
# --------------------------------------------------------------------------- #


def test_administration_server_serves_live_device(engie_schema_graph, engie_graph):
    from repro.edge import AdministrationServer

    admin = AdministrationServer(engie_schema_graph)
    admin.register_device("pi-live", live=True)
    admin.register_device("pi-rebuild", live=False)
    admin.ingest("pi-live", engie_graph)

    with pytest.raises(ValueError):
        admin.query_service("pi-rebuild")  # no long-lived store to serve
    with pytest.raises(KeyError):
        admin.query_service("pi-unknown")

    server = admin.start_query_server("pi-live", cache_capacity=8)
    try:
        client = SparqlClient(server.url)
        health = client.health()
        assert health["status"] == "ok" and health["triples"] > 0
        assert client.ask("ASK { ?s ?p ?o }") is True
        # Ingestion continues underneath serving: the epoch moves, the
        # cache re-keys.
        first = client.query("ASK { ?s ?p ?o }")
        assert first["_cache"] == "HIT"
        from repro.workloads.engie import water_distribution_graph

        fresh_instance = water_distribution_graph(
            observations_per_sensor=2, stations=1, seed=77
        )
        admin.ingest("pi-live", fresh_instance)
        assert client.query("ASK { ?s ?p ?o }")["_cache"] == "MISS"
    finally:
        assert admin.shutdown_query_servers() == 1
    assert admin.query_servers == {}


# --------------------------------------------------------------------------- #
# concurrent reads during background compaction, through the server path
# --------------------------------------------------------------------------- #


def test_concurrent_reads_during_background_compaction(small_lubm, small_lubm_catalog):
    base = Graph()
    live = []
    for index, triple in enumerate(small_lubm.graph):
        if index % 6 == 5:
            live.append(triple)
        else:
            base.add(triple)
    store = UpdatableSuccinctEdge.from_graph(
        base, ontology=small_lubm.ontology, policy=MANUAL_COMPACTION
    )
    for triple in live:
        store.insert(triple)
    assert store.delta_operation_count > 0

    by_id = small_lubm_catalog.by_identifier()
    probes = ["S2", "S7", "S8", "M1", "A5"]
    service = QueryService(store, worker_slots=8, cache_capacity=32)
    with QueryServer(service) as server:
        clients = [SparqlClient(server.url) for _ in range(4)]
        # Ground truth before compaction starts; compaction must not change it.
        expected = {}
        for identifier in probes:
            query = by_id[identifier]
            if identifier == "A5":
                expected[identifier] = clients[0].ask(query.sparql)
            else:
                expected[identifier] = clients[0].select_rows(query.sparql)
        epoch_before = store.snapshot_epoch

        stop = threading.Event()
        failures = []

        def hammer(client, offset):
            iteration = 0
            while not stop.is_set():
                identifier = probes[(iteration + offset) % len(probes)]
                query = by_id[identifier]
                try:
                    if identifier == "A5":
                        answer = client.ask(query.sparql)
                    else:
                        answer = client.select_rows(query.sparql)
                    if answer != expected[identifier]:
                        failures.append((identifier, "torn read"))
                except Exception as error:  # noqa: BLE001 - collected for the assert
                    failures.append((identifier, repr(error)))
                iteration += 1

        threads = [
            threading.Thread(target=hammer, args=(client, offset), daemon=True)
            for offset, client in enumerate(clients)
        ]
        for thread in threads:
            thread.start()
        compaction = store.compact_in_background()
        compaction.join(timeout=120)
        stop.set()
        for thread in threads:
            thread.join(timeout=30)

        assert not compaction.is_alive()
        assert not failures, failures[:5]
        assert store.compaction_epoch == epoch_before[0] + 1
        assert store.delta_operation_count == 0

        # The epoch bump invalidated the cache: same query, new key, MISS
        # first, HIT afterwards — and the same rows as before compaction.
        document = clients[0].query(by_id["S2"].sparql)
        assert document["_epoch"].startswith(str(store.compaction_epoch))
        follow_up = clients[0].query(by_id["S2"].sparql)
        assert follow_up["_cache"] == "HIT"
        assert clients[0].select_rows(by_id["S2"].sparql) == expected["S2"]
    service.close()
