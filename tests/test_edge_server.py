"""Tests for the central administration server (device registry, broadcast, alerts)."""

from __future__ import annotations

import pytest

from repro.edge.alerts import AnomalyRule
from repro.edge.server import AdministrationServer, OntologyBundle
from repro.rdf.namespaces import QUDT
from repro.workloads.engie import (
    anomaly_detection_query,
    engie_ontology,
    water_distribution_graph,
)


@pytest.fixture()
def pressure_rule():
    return AnomalyRule(
        name="pressure-out-of-range",
        query=anomaly_detection_query(),
        severity="critical",
        requires_reasoning=True,
    )


class TestOntologyBundle:
    def test_bundle_encodes_hierarchies(self):
        bundle = OntologyBundle.from_ontology(engie_ontology())
        assert bundle.concepts.is_descendant(QUDT.PressureOrStressUnit, QUDT.PressureUnit)
        assert bundle.schema.is_subconcept_of(QUDT.Pressure, QUDT.PressureUnit)
        assert bundle.size_in_bytes() > 0

    def test_bundle_identifiers_are_deterministic(self):
        first = OntologyBundle.from_ontology(engie_ontology())
        second = OntologyBundle.from_ontology(engie_ontology())
        assert first.concepts.identifiers() == second.concepts.identifiers()
        assert first.properties.identifiers() == second.properties.identifiers()


class TestDeviceRegistry:
    def test_register_and_duplicate_rejected(self, pressure_rule):
        server = AdministrationServer(engie_ontology(), rules=[pressure_rule])
        server.register_device("building-A", location="plant room")
        assert "building-A" in server.devices
        with pytest.raises(ValueError):
            server.register_device("building-A")

    def test_ingest_unknown_device_rejected(self, pressure_rule):
        server = AdministrationServer(engie_ontology(), rules=[pressure_rule])
        with pytest.raises(KeyError):
            server.ingest("nowhere", water_distribution_graph(observations_per_sensor=2))

    def test_rules_shipped_at_registration(self, pressure_rule):
        server = AdministrationServer(engie_ontology())
        server.register_rule(pressure_rule)
        registered = server.register_device("building-A")
        assert [rule.name for rule in registered.processor.rules] == ["pressure-out-of-range"]


class TestAlertAggregation:
    def test_alerts_flow_back_to_the_server(self, pressure_rule):
        server = AdministrationServer(engie_ontology(), rules=[pressure_rule])
        server.register_device("building-A")
        server.register_device("building-B")
        anomalous = water_distribution_graph(observations_per_sensor=5, stations=2, anomaly_rate=1.0, seed=1)
        clean = water_distribution_graph(observations_per_sensor=5, stations=2, anomaly_rate=0.0, seed=2)

        alerts_a = server.ingest("building-A", anomalous)
        alerts_b = server.ingest("building-B", clean)

        assert alerts_a and not alerts_b
        assert len(server.received_alerts) == len(alerts_a)
        grouped = server.alerts_by_device()
        assert len(grouped["building-A"]) == len(alerts_a)
        assert grouped["building-B"] == []

    def test_fleet_statistics(self, pressure_rule):
        server = AdministrationServer(engie_ontology(), rules=[pressure_rule])
        server.register_device("building-A")
        graph = water_distribution_graph(observations_per_sensor=3, stations=2, anomaly_rate=0.5, seed=5)
        server.ingest("building-A", graph)
        statistics = server.fleet_statistics()
        assert statistics["building-A"]["instances"] == 1
        assert statistics["building-A"]["triples"] == len(graph)
        assert statistics["building-A"]["mean_ms"] > 0
        assert statistics["building-A"]["energy_joules"] > 0
