"""Tests for the dictionaries, literal store and optimizer statistics."""

from __future__ import annotations

import pytest

from repro.dictionary.literal_store import LiteralStore
from repro.dictionary.statistics import DictionaryStatistics
from repro.dictionary.term_dictionary import (
    ConceptDictionary,
    InstanceDictionary,
    PropertyDictionary,
)
from repro.ontology.litemat import LiteMatEncoder
from repro.ontology.schema import OntologySchema
from repro.rdf.namespaces import Namespace
from repro.rdf.terms import BlankNode, Literal

EX = Namespace("http://example.org/")


def build_dictionaries():
    schema = OntologySchema()
    schema.add_subclass(EX.Student, EX.Person)
    schema.add_subclass(EX.GraduateStudent, EX.Student)
    schema.add_subclass(EX.Professor, EX.Person)
    schema.add_subproperty(EX.worksFor, EX.memberOf)
    schema.add_subproperty(EX.headOf, EX.worksFor)
    encoder = LiteMatEncoder(schema)
    concepts = ConceptDictionary(encoder.encode_concepts())
    properties = PropertyDictionary(encoder.encode_properties(extra_properties=[EX.name]))
    instances = InstanceDictionary()
    return concepts, properties, instances


class TestConceptDictionary:
    def test_locate_extract_round_trip(self):
        concepts, _, _ = build_dictionaries()
        for concept in (EX.Person, EX.Student, EX.GraduateStudent):
            assert concepts.extract(concepts.locate(concept)) == concept

    def test_try_locate_unknown(self):
        concepts, _, _ = build_dictionaries()
        assert concepts.try_locate(EX.Unknown) is None
        assert concepts.try_extract(99999) is None

    def test_interval_contains_descendants(self):
        concepts, _, _ = build_dictionaries()
        low, high = concepts.interval(EX.Person)
        assert low <= concepts.locate(EX.GraduateStudent) < high
        assert low <= concepts.locate(EX.Professor) < high

    def test_hierarchical_occurrences(self):
        concepts, _, _ = build_dictionaries()
        concepts.record_occurrence(concepts.locate(EX.GraduateStudent), 5)
        concepts.record_occurrence(concepts.locate(EX.Professor), 2)
        assert concepts.occurrences_of_term(EX.GraduateStudent) == 5
        assert concepts.hierarchical_occurrences(EX.Student) == 5
        assert concepts.hierarchical_occurrences(EX.Person) == 7
        assert concepts.hierarchical_occurrences(EX.Professor) == 2

    def test_size_in_bytes_counts_strings(self):
        concepts, _, _ = build_dictionaries()
        assert concepts.size_in_bytes() > sum(len(str(t)) for t in concepts.terms())

    def test_remapping_conflicts_raise(self):
        concepts, _, _ = build_dictionaries()
        with pytest.raises(ValueError):
            concepts._register(EX.Person, 12345)  # noqa: SLF001 — guarding internal invariant


class TestPropertyDictionary:
    def test_hierarchical_occurrences(self):
        _, properties, _ = build_dictionaries()
        properties.record_occurrence(properties.locate(EX.headOf), 3)
        properties.record_occurrence(properties.locate(EX.worksFor), 4)
        assert properties.hierarchical_occurrences(EX.memberOf) == 7
        assert properties.hierarchical_occurrences(EX.worksFor) == 7
        assert properties.hierarchical_occurrences(EX.headOf) == 3

    def test_plain_property_present(self):
        _, properties, _ = build_dictionaries()
        assert EX.name in properties


class TestInstanceDictionary:
    def test_sequential_identifiers_start_at_one(self):
        instances = InstanceDictionary()
        first = instances.add(EX.alice)
        second = instances.add(EX.bob)
        assert (first, second) == (1, 2)
        assert instances.capacity == 3

    def test_add_is_idempotent(self):
        instances = InstanceDictionary()
        assert instances.add(EX.alice) == instances.add(EX.alice)
        assert len(instances) == 1

    def test_blank_nodes_supported(self):
        instances = InstanceDictionary()
        identifier = instances.add(BlankNode("b1"))
        assert instances.extract(identifier) == BlankNode("b1")

    def test_add_all(self):
        instances = InstanceDictionary()
        instances.add_all([EX.a, EX.b, EX.a])
        assert len(instances) == 2


class TestLiteralStore:
    def test_append_and_get(self):
        store = LiteralStore()
        position = store.append(Literal(3.5))
        assert store.get(position) == Literal(3.5)
        assert len(store) == 1

    def test_duplicates_are_kept(self):
        store = LiteralStore()
        store.append(Literal("x"))
        store.append(Literal("x"))
        assert len(store) == 2

    def test_out_of_range_raises(self):
        with pytest.raises(IndexError):
            LiteralStore().get(0)

    def test_iteration_and_size(self):
        store = LiteralStore()
        store.append(Literal("abc"))
        store.append(Literal(1))
        assert list(store) == [Literal("abc"), Literal(1)]
        assert store.size_in_bytes() > 0


class TestStatistics:
    def build(self) -> DictionaryStatistics:
        concepts, properties, instances = build_dictionaries()
        concepts.record_occurrence(concepts.locate(EX.GraduateStudent), 10)
        concepts.record_occurrence(concepts.locate(EX.Professor), 4)
        properties.record_occurrence(properties.locate(EX.worksFor), 6)
        properties.record_occurrence(properties.locate(EX.headOf), 1)
        properties.record_occurrence(properties.locate(EX.name), 20)
        alice = instances.add(EX.alice)
        instances.record_occurrence(alice, 3)
        return DictionaryStatistics(concepts, properties, instances)

    def test_concept_cardinality_with_hierarchy(self):
        statistics = self.build()
        assert statistics.concept_cardinality(EX.Person) == 14
        assert statistics.concept_cardinality(EX.Person, with_hierarchy=False) == 0
        assert statistics.concept_cardinality(EX.Unknown) == 0

    def test_property_cardinality_with_hierarchy(self):
        statistics = self.build()
        assert statistics.property_cardinality(EX.memberOf) == 7
        assert statistics.property_cardinality(EX.name) == 20
        assert statistics.property_cardinality(EX.Unknown) == 0

    def test_instance_cardinality(self):
        statistics = self.build()
        assert statistics.instance_cardinality(EX.alice) == 3
        assert statistics.instance_cardinality(EX.bob) == 0

    def test_triple_pattern_cardinality_minimum_rule(self):
        statistics = self.build()
        estimate = statistics.triple_pattern_cardinality(
            subject=EX.alice, predicate=EX.name, obj=None, is_rdf_type=False
        )
        assert estimate == 3  # min(instance=3, property=20)
        type_estimate = statistics.triple_pattern_cardinality(
            subject=None, predicate=None, obj=EX.Person, is_rdf_type=True
        )
        assert type_estimate == 14

    def test_fully_unbound_pattern_uses_total_mass(self):
        statistics = self.build()
        estimate = statistics.triple_pattern_cardinality(
            subject=None, predicate=None, obj=None, is_rdf_type=False
        )
        assert estimate == 14 + 27
