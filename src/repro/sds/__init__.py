"""Succinct data structures (SDS) substrate.

SuccinctEdge (EDBT 2021) relies on the sdsl-lite C++ library for its bitmaps
and wavelet trees.  This package is a from-scratch pure-Python replacement
that preserves the operations the paper needs:

* :class:`~repro.sds.bitvector.BitVector` — a compressed-friendly bit sequence
  with O(1) ``rank`` and near-O(1) ``select`` through two-level rank
  directories and sampled select hints.
* :class:`~repro.sds.wavelet_tree.WaveletTree` — a balanced binary wavelet
  tree over an integer alphabet supporting ``access``, ``rank``, ``select``
  and the paper's ``range_search`` primitive in O(log sigma).
* :class:`~repro.sds.int_sequence.IntSequence` — a fixed-width packed integer
  array used for flat layers (e.g. the datatype-property literal pointers).
* :class:`~repro.sds.rbtree.RedBlackTree` — the ordered map backing the
  RDFType store layout (Section 4 of the paper).
"""

from repro.sds.bitvector import BitVector, BitVectorBuilder
from repro.sds.int_sequence import IntSequence
from repro.sds.kernels import (
    kernel_counters,
    reset_kernel_counters,
    total_kernel_calls,
)
from repro.sds.rbtree import RedBlackTree
from repro.sds.wavelet_tree import WaveletTree

__all__ = [
    "BitVector",
    "BitVectorBuilder",
    "IntSequence",
    "RedBlackTree",
    "WaveletTree",
    "kernel_counters",
    "reset_kernel_counters",
    "total_kernel_calls",
]
