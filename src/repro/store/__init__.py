"""SuccinctEdge store: the paper's primary contribution.

The store is split exactly along the paper's architecture (Figure 4):

* :class:`~repro.store.triple_store.ObjectTripleStore` — object-property
  triples in a single PSO index made of wavelet trees linked by bitmaps;
* :class:`~repro.store.datatype_store.DatatypeTripleStore` — datatype-property
  triples whose objects live in a flat literal store;
* :class:`~repro.store.rdftype_store.RDFTypeStore` — ``rdf:type`` triples in a
  red-black tree with SO and OS access paths;
* :class:`~repro.store.builder.StoreBuilder` — dictionary creation (LiteMat),
  triple partitioning and SDS construction;
* :class:`~repro.store.succinct_edge.SuccinctEdge` — the user-facing facade
  (load a graph, run SPARQL queries with or without reasoning);
* :mod:`~repro.store.delta` /
  :class:`~repro.store.updatable.UpdatableSuccinctEdge` — the write path:
  a mutable delta overlay (sorted inserts + tombstones) merged into every
  read, folded into a fresh succinct base by compaction
  (``docs/update_lifecycle.md``).
"""

from repro.store.builder import StoreBuilder
from repro.store.datatype_store import DatatypeTripleStore
from repro.store.delta import MANUAL_COMPACTION, CompactionPolicy, DeltaOverlay
from repro.store.persistence import load_store, save_store, serialized_size_in_bytes
from repro.store.rdftype_store import RDFTypeStore
from repro.store.sharding import ShardedStore, SubjectPartitioner
from repro.store.succinct_edge import SuccinctEdge
from repro.store.triple_store import ObjectTripleStore
from repro.store.updatable import CompactionReport, UpdatableSuccinctEdge

__all__ = [
    "CompactionPolicy",
    "CompactionReport",
    "DatatypeTripleStore",
    "DeltaOverlay",
    "MANUAL_COMPACTION",
    "ObjectTripleStore",
    "RDFTypeStore",
    "ShardedStore",
    "StoreBuilder",
    "SubjectPartitioner",
    "SuccinctEdge",
    "UpdatableSuccinctEdge",
    "load_store",
    "save_store",
    "serialized_size_in_bytes",
]
