"""Tests for the SuccinctEdge query engine against the naive oracle."""

from __future__ import annotations

import pytest

from repro.query.engine import QueryEngine
from repro.query.rewriter import HighLevelQueryBuilder
from repro.rdf.namespaces import QUDT
from repro.rdf.terms import Literal
from tests.conftest import EX, hierarchy_closure, naive_query


def oracle_rows(graph, schema, query, reasoning):
    target = hierarchy_closure(graph, schema) if reasoning else graph
    return naive_query(target, query).to_set()


class TestBasicSelect:
    def test_single_pattern(self, toy_store, toy_data, toy_schema):
        query = "SELECT ?x WHERE { ?x <http://example.org/memberOf> <http://example.org/dept1> }"
        assert toy_store.query(query, reasoning=False).to_set() == oracle_rows(
            toy_data, toy_schema, query, False
        )

    def test_projection_order(self, toy_store):
        query = "SELECT ?n ?x WHERE { ?x <http://example.org/name> ?n }"
        result = toy_store.query(query)
        assert result.variables == ["n", "x"]
        assert all(len(row) == 2 for row in result.to_tuples())

    def test_select_star(self, toy_store, toy_data, toy_schema):
        query = "SELECT * WHERE { ?x <http://example.org/advisor> ?y }"
        assert toy_store.query(query, reasoning=False).to_set() == oracle_rows(
            toy_data, toy_schema, query, False
        )

    def test_distinct(self, toy_store):
        query = "SELECT DISTINCT ?d WHERE { ?x <http://example.org/memberOf> ?d }"
        assert len(toy_store.query(query, reasoning=False)) == 2

    def test_limit(self, toy_store):
        query = "SELECT ?x WHERE { ?x <http://example.org/name> ?n } LIMIT 2"
        assert len(toy_store.query(query)) == 2

    def test_empty_result(self, toy_store):
        query = "SELECT ?x WHERE { ?x <http://example.org/memberOf> <http://example.org/nowhere> }"
        assert len(toy_store.query(query)) == 0

    def test_unknown_constant_terms(self, toy_store):
        query = "SELECT ?x WHERE { ?x <http://example.org/nosuch> ?y }"
        assert len(toy_store.query(query)) == 0


class TestJoins:
    @pytest.mark.parametrize(
        "query",
        [
            # SS star join.
            "SELECT ?x ?n ?d WHERE { ?x <http://example.org/memberOf> ?d . ?x <http://example.org/name> ?n }",
            # Path (OS) join.
            "SELECT ?x ?d ?u WHERE { ?x <http://example.org/memberOf> ?d . "
            "?d <http://example.org/subOrganizationOf> ?u }",
            # Three patterns with an rdf:type anchor.
            "SELECT ?x ?d WHERE { ?x a <http://example.org/Department> . "
            "?y <http://example.org/memberOf> ?x . ?y <http://example.org/name> ?d }",
            # Star around a constant subject.
            "SELECT ?n ?a WHERE { <http://example.org/alice> <http://example.org/name> ?n . "
            "<http://example.org/alice> <http://example.org/age> ?a }",
            # Bound object join.
            "SELECT ?x ?n WHERE { ?x <http://example.org/advisor> <http://example.org/bob> . "
            "?x <http://example.org/name> ?n }",
        ],
    )
    def test_join_results_match_oracle(self, toy_store, toy_data, toy_schema, query):
        assert toy_store.query(query, reasoning=False).to_set() == oracle_rows(
            toy_data, toy_schema, query, False
        )

    def test_join_strategies_agree(self, toy_store):
        query = (
            "SELECT ?x ?n ?d WHERE { ?x <http://example.org/memberOf> ?d . "
            "?x <http://example.org/name> ?n }"
        )
        results = {
            strategy: QueryEngine(toy_store, reasoning=False, join_strategy=strategy)
            .execute(query)
            .to_set()
            for strategy in ("auto", "bind", "merge")
        }
        assert results["auto"] == results["bind"] == results["merge"]

    def test_cartesian_product_supported(self, toy_store, toy_data, toy_schema):
        query = (
            "SELECT ?a ?b WHERE { ?a <http://example.org/headOf> ?x . ?b <http://example.org/age> ?v }"
        )
        assert toy_store.query(query, reasoning=False).to_set() == oracle_rows(
            toy_data, toy_schema, query, False
        )


class TestFiltersAndBind:
    def test_numeric_filter(self, toy_store, toy_data, toy_schema):
        query = (
            "SELECT ?x WHERE { ?x <http://example.org/age> ?v . FILTER(?v > 30) }"
        )
        assert toy_store.query(query).to_set() == oracle_rows(toy_data, toy_schema, query, False)

    def test_string_filter(self, toy_store):
        query = 'SELECT ?x WHERE { ?x <http://example.org/name> ?n . FILTER(?n = "Carol") }'
        assert toy_store.query(query).to_set() == {(EX.carol,)}

    def test_bind_creates_new_variable(self, toy_store):
        query = (
            "SELECT ?x ?half WHERE { ?x <http://example.org/age> ?v . "
            "BIND(?v / 2 AS ?half) . FILTER(?half > 20) }"
        )
        result = toy_store.query(query)
        assert result.to_set() == {(EX.bob, Literal(27.5))}

    def test_filter_on_unbound_variable_removes_rows(self, toy_store):
        query = "SELECT ?x WHERE { ?x <http://example.org/age> ?v . FILTER(?missing > 1) }"
        assert len(toy_store.query(query)) == 0


class TestUnionQueries:
    def test_union_of_concepts(self, toy_store, toy_data, toy_schema):
        query = (
            "SELECT ?x WHERE { { ?x a <http://example.org/GraduateStudent> } UNION "
            "{ ?x a <http://example.org/FullProfessor> } }"
        )
        assert toy_store.query(query, reasoning=False).to_set() == oracle_rows(
            toy_data, toy_schema, query, False
        )

    def test_union_combined_with_bgp(self, toy_store):
        query = (
            "SELECT ?x ?n WHERE { ?x <http://example.org/name> ?n . "
            "{ ?x a <http://example.org/GraduateStudent> } UNION { ?x a <http://example.org/Professor> } }"
        )
        result = toy_store.query(query, reasoning=False)
        assert result.to_set() == {(EX.alice, Literal("Alice")), (EX.dave, Literal("Dave"))}


class TestReasoningQueries:
    def test_concept_hierarchy(self, toy_store, toy_data, toy_schema):
        query = "SELECT ?x WHERE { ?x a <http://example.org/Person> }"
        expected = oracle_rows(toy_data, toy_schema, query, True)
        assert toy_store.query(query, reasoning=True).to_set() == expected
        assert toy_store.query(query, reasoning=False).to_set() != expected

    def test_property_hierarchy(self, toy_store, toy_data, toy_schema):
        query = "SELECT ?x ?d WHERE { ?x <http://example.org/memberOf> ?d }"
        expected = oracle_rows(toy_data, toy_schema, query, True)
        assert toy_store.query(query, reasoning=True).to_set() == expected

    def test_combined_concept_and_property_reasoning(self, toy_store, toy_data, toy_schema):
        query = (
            "SELECT ?x ?d WHERE { ?x a <http://example.org/Person> . "
            "?x <http://example.org/worksFor> ?d . ?d a <http://example.org/Organization> }"
        )
        expected = oracle_rows(toy_data, toy_schema, query, True)
        assert toy_store.query(query, reasoning=True).to_set() == expected
        assert expected  # the query must actually return rows

    def test_reasoning_with_filter(self, toy_store, toy_data, toy_schema):
        query = (
            "SELECT ?x ?n WHERE { ?x a <http://example.org/Student> . "
            "?x <http://example.org/name> ?n . FILTER(?n != \"Carol\") }"
        )
        expected = oracle_rows(toy_data, toy_schema, query, True)
        assert toy_store.query(query, reasoning=True).to_set() == expected


class TestPlanIntrospection:
    def test_plan_returns_physical_plan(self, toy_store):
        engine = QueryEngine(toy_store)
        plan = engine.plan(
            "SELECT ?x WHERE { ?x a <http://example.org/Person> . ?x <http://example.org/name> ?n }"
        )
        assert len(plan) == 2
        assert plan.method == "cost-dp"
        assert sorted(plan.order()) == [0, 1]
        # The cost-based planner starts with the name scan: the per-row type
        # checks then run on the red-black-tree store, which issues no SDS
        # kernel calls (the heuristic planner would start with rdf:type).
        heuristic = QueryEngine(toy_store, planner="heuristic").plan(
            "SELECT ?x WHERE { ?x a <http://example.org/Person> . ?x <http://example.org/name> ?n }"
        )
        assert heuristic.method == "heuristic"
        assert heuristic.steps[0].pattern.is_rdf_type

    def test_invalid_join_strategy_rejected(self, toy_store):
        with pytest.raises(ValueError):
            QueryEngine(toy_store, join_strategy="hash")


class TestHighLevelQueryBuilder:
    def test_generated_query_detects_anomalies(self, engie_store):
        builder = (
            HighLevelQueryBuilder()
            .measuring(QUDT.PressureUnit)
            .outside_range(3.0, 4.5)
        )
        query = builder.build()
        result = engie_store.query(query, reasoning=True)
        # Every returned value must indeed be outside the range or be
        # expressed in hectopascal (values around 3000-4500).
        assert result.variables == ["platform", "sensor", "timestamp", "value", "unit"]
        for row in result:
            value = float(row["value"].lexical)
            assert value < 3.0 or value > 4.5

    def test_builder_without_unit_constraint(self, engie_store):
        query = HighLevelQueryBuilder().outside_range(None, 1000.0).build()
        result = engie_store.query(query, reasoning=True)
        for row in result:
            assert float(row["value"].lexical) > 1000.0
