"""The original list-materializing SELECT engine, kept as a reference oracle.

This is the seed repository's :class:`QueryEngine` evaluation strategy: every
operator consumes and produces a fully materialized ``List[Binding]``.  The
streaming engine (:mod:`repro.query.engine`) replaced it as the production
path, but the materializing evaluator is retained because

* it is an independent implementation the differential tests compare the
  streaming pipeline against (both must return byte-identical results on the
  paper's query workload), and
* the streaming-vs-materializing benchmark uses it to show the kernel-call
  and latency effect of early termination (``LIMIT``/``ASK``/top-k).

Both engines share the same optimizer, triple-pattern evaluator and
solution-modifier algebra (:mod:`repro.sparql.algebra`), so differences can
only come from the operator evaluation strategy under test.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union as TypingUnion

from repro.query.operators import term_join_key
from repro.query.optimizer import create_optimizer
from repro.query.plan import JoinMethod, PhysicalPlan
from repro.query.tp_eval import TriplePatternEvaluator
from repro.sparql.algebra import apply_solution_modifiers, values_bindings
from repro.sparql.ast import AskQuery, GroupGraphPattern, Query, SelectQuery, TriplePattern
from repro.sparql.bindings import AskResult, Binding, ResultSet
from repro.sparql.expressions import evaluate_bind, evaluate_filter
from repro.sparql.parser import parse_query
from repro.store.succinct_edge import SuccinctEdge


class MaterializingQueryEngine:
    """Evaluates queries with fully materialized intermediate binding lists.

    Accepts the same queries and produces the same results (in the same
    order) as the streaming :class:`~repro.query.engine.QueryEngine`; only
    the evaluation strategy differs.  See the module docstring for why it is
    kept.
    """

    def __init__(
        self,
        store: SuccinctEdge,
        reasoning: bool = True,
        join_strategy: str = "auto",
        planner: str = "cost",
    ) -> None:
        if join_strategy not in ("auto", "bind", "merge"):
            raise ValueError(f"unknown join strategy {join_strategy!r}")
        self.store = store
        self.reasoning = reasoning
        self.join_strategy = join_strategy
        self.planner = planner
        self.evaluator = TriplePatternEvaluator(store, reasoning=reasoning)
        self.optimizer = create_optimizer(
            planner,
            statistics=store.statistics,
            runtime_estimator=self.evaluator.estimate_cardinality,
            reasoning=reasoning,
        )
        # Same per-BGP plan cache as the streaming engine: seeded OPTIONAL
        # evaluation would otherwise re-plan the group once per outer row.
        self._plan_cache: Dict[Tuple[TriplePattern, ...], "PhysicalPlan"] = {}

    def _plan_bgp(self, patterns: List[TriplePattern]):
        """The (cached) physical plan for one BGP."""
        key = tuple(patterns)
        plan = self._plan_cache.get(key)
        if plan is None:
            plan = self.optimizer.optimize(patterns)
            self._plan_cache[key] = plan
        return plan

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def execute(
        self, query: TypingUnion[str, Query]
    ) -> TypingUnion[ResultSet, AskResult]:
        """Parse (if needed) and execute a SELECT or ASK query."""
        parsed = parse_query(query) if isinstance(query, str) else query
        if isinstance(parsed, AskQuery):
            return AskResult(bool(self._evaluate_group(parsed.where)))
        assert isinstance(parsed, SelectQuery)
        bindings = self._evaluate_group(parsed.where)
        return apply_solution_modifiers(parsed, bindings)

    # ------------------------------------------------------------------ #
    # group evaluation
    # ------------------------------------------------------------------ #

    def _evaluate_group(
        self, group: GroupGraphPattern, seed: Optional[Binding] = None
    ) -> List[Binding]:
        bindings = self._evaluate_bgp(list(group.bgp.patterns), seed or Binding())
        for union in group.unions:
            union_bindings: List[Binding] = []
            for branch in union.branches:
                union_bindings.extend(self._evaluate_group(branch))
            bindings = self._combine(bindings, union_bindings)
        for optional in group.optionals:
            joined: List[Binding] = []
            for binding in bindings:
                extensions = self._evaluate_group(optional, seed=binding)
                joined.extend(extensions if extensions else [binding])
            bindings = joined
        for block in group.values:
            table = values_bindings(block)
            merged_rows: List[Binding] = []
            for binding in bindings:
                for row in table:
                    merged = binding.merged(row)
                    if merged is not None:
                        merged_rows.append(merged)
            bindings = merged_rows
        for bind in group.binds:
            extended: List[Binding] = []
            for binding in bindings:
                value = evaluate_bind(bind.expression, binding)
                if value is None:
                    extended.append(binding)
                else:
                    extended.append(binding.extended(bind.variable.name, value))
            bindings = extended
        for constraint in group.filters:
            bindings = [b for b in bindings if evaluate_filter(constraint.expression, b)]
        return bindings

    @staticmethod
    def _combine(left: List[Binding], right: List[Binding]) -> List[Binding]:
        """Join two binding sets on their shared variables (nested loop)."""
        if not left:
            return right
        if not right:
            return []
        combined: List[Binding] = []
        for left_binding in left:
            for right_binding in right:
                merged = left_binding.merged(right_binding)
                if merged is not None:
                    combined.append(merged)
        return combined

    # ------------------------------------------------------------------ #
    # BGP evaluation (left-deep plan)
    # ------------------------------------------------------------------ #

    def _evaluate_bgp(self, patterns: List[TriplePattern], seed: Binding) -> List[Binding]:
        if not patterns:
            return [seed]
        plan = self._plan_bgp(patterns)
        current: List[Binding] = [seed]
        for position, step in enumerate(plan.steps):
            if position == 0:
                next_bindings: List[Binding] = []
                for binding in current:
                    next_bindings.extend(self.evaluator.evaluate(step.pattern, binding))
                current = next_bindings
                continue
            if not current:
                return []
            method = self._effective_join_method(step.join_method, step.pattern, current)
            if method == JoinMethod.MERGE:
                current = self._merge_join(current, step.pattern)
            else:
                current = self._bind_propagation_join(current, step.pattern)
        return current

    def _effective_join_method(
        self, planned: JoinMethod, pattern: TriplePattern, current: List[Binding]
    ) -> JoinMethod:
        if self.join_strategy == "bind":
            return JoinMethod.BIND_PROPAGATION
        if self.join_strategy == "merge":
            shared = self._shared_variables(pattern, current)
            return JoinMethod.MERGE if len(shared) == 1 else JoinMethod.BIND_PROPAGATION
        if planned == JoinMethod.MERGE:
            shared = self._shared_variables(pattern, current)
            if len(shared) != 1:
                return JoinMethod.BIND_PROPAGATION
            # A merge join enumerates the pattern's whole property run; it only
            # pays off when the intermediate result is at least comparable in
            # size (otherwise bind propagation probes far fewer entries).
            right_estimate = self.evaluator.estimate_cardinality(pattern)
            if right_estimate > 2 * len(current):
                return JoinMethod.BIND_PROPAGATION
            return JoinMethod.MERGE
        return planned

    @staticmethod
    def _shared_variables(pattern: TriplePattern, current: List[Binding]) -> List[str]:
        if not current:
            return []
        bound_names = set(current[0].as_dict())
        for binding in current[1:]:
            bound_names |= set(binding.as_dict())
        return [name for name in pattern.variable_names() if name in bound_names]

    def _bind_propagation_join(
        self, current: List[Binding], pattern: TriplePattern
    ) -> List[Binding]:
        """Index nested-loop join: propagate each binding into the pattern."""
        results: List[Binding] = []
        for binding in current:
            results.extend(self.evaluator.evaluate(pattern, binding))
        return results

    def _merge_join(self, current: List[Binding], pattern: TriplePattern) -> List[Binding]:
        """Sort-merge join on the single variable shared with the prefix.

        The PSO layout already delivers the right-hand side ordered by subject
        inside a property run; the left-hand side is sorted on the join key,
        then both sides are merged.
        """
        shared = self._shared_variables(pattern, current)
        if len(shared) != 1:
            return self._bind_propagation_join(current, pattern)
        join_name = shared[0]
        right = list(self.evaluator.evaluate(pattern, Binding()))

        def key(binding: Binding) -> tuple:
            return term_join_key(binding.get(join_name))

        left_sorted = sorted(current, key=key)
        right_sorted = sorted(right, key=key)
        results: List[Binding] = []
        left_index = 0
        right_index = 0
        while left_index < len(left_sorted) and right_index < len(right_sorted):
            left_key = key(left_sorted[left_index])
            right_key = key(right_sorted[right_index])
            if left_key < right_key:
                left_index += 1
                continue
            if right_key < left_key:
                right_index += 1
                continue
            # Equal keys: emit the cross product of the two equal runs.
            left_end = left_index
            while left_end < len(left_sorted) and key(left_sorted[left_end]) == left_key:
                left_end += 1
            right_end = right_index
            while right_end < len(right_sorted) and key(right_sorted[right_end]) == right_key:
                right_end += 1
            for i in range(left_index, left_end):
                for j in range(right_index, right_end):
                    merged = left_sorted[i].merged(right_sorted[j])
                    if merged is not None:
                        results.append(merged)
            left_index = left_end
            right_index = right_end
        return results
