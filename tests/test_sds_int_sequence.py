"""Tests for the fixed-width packed integer sequence."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sds.int_sequence import IntSequence


class TestBasics:
    def test_empty(self):
        seq = IntSequence([])
        assert len(seq) == 0
        assert seq.to_list() == []

    def test_round_trip(self):
        values = [5, 0, 17, 3, 255, 1]
        seq = IntSequence(values)
        assert seq.to_list() == values
        assert [seq[i] for i in range(len(values))] == values

    def test_width_derived_from_max_value(self):
        assert IntSequence([0, 1]).width == 1
        assert IntSequence([7]).width == 3
        assert IntSequence([255]).width == 8

    def test_explicit_width(self):
        seq = IntSequence([1, 2, 3], width=16)
        assert seq.width == 16
        assert seq.to_list() == [1, 2, 3]

    def test_value_too_wide_raises(self):
        with pytest.raises(ValueError):
            IntSequence([16], width=4)

    def test_negative_value_raises(self):
        with pytest.raises(ValueError):
            IntSequence([-1])

    def test_access_out_of_range(self):
        seq = IntSequence([1, 2])
        with pytest.raises(IndexError):
            seq.access(2)

    def test_equality_and_hash(self):
        assert IntSequence([1, 2, 3]) == IntSequence([1, 2, 3])
        assert IntSequence([1, 2, 3]) != IntSequence([1, 2, 4])
        assert hash(IntSequence([9])) == hash(IntSequence([9]))

    def test_from_iterable(self):
        assert IntSequence.from_iterable(range(5)).to_list() == [0, 1, 2, 3, 4]

    def test_repr(self):
        assert "IntSequence" in repr(IntSequence([1, 2]))


class TestSizeAccounting:
    def test_packed_size_is_compact(self):
        # 1000 values of width 4 bits -> 500 bytes, far below 1000 * 8.
        seq = IntSequence([i % 16 for i in range(1000)])
        assert seq.size_in_bytes() == (1000 * 4 + 7) // 8

    def test_size_scales_with_width(self):
        narrow = IntSequence([1] * 100)
        wide = IntSequence([1] * 100, width=32)
        assert wide.size_in_bytes() > narrow.size_in_bytes()


@settings(max_examples=60, deadline=None)
@given(values=st.lists(st.integers(min_value=0, max_value=10**9), max_size=300))
def test_property_round_trip(values):
    assert IntSequence(values).to_list() == values
