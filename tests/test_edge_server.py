"""Tests for the central administration server (device registry, broadcast, alerts)."""

from __future__ import annotations

import pytest

from repro.edge.alerts import AnomalyRule
from repro.edge.server import AdministrationServer, OntologyBundle
from repro.rdf.namespaces import QUDT
from repro.workloads.engie import (
    anomaly_detection_query,
    engie_ontology,
    water_distribution_graph,
)


@pytest.fixture()
def pressure_rule():
    return AnomalyRule(
        name="pressure-out-of-range",
        query=anomaly_detection_query(),
        severity="critical",
        requires_reasoning=True,
    )


class TestOntologyBundle:
    def test_bundle_encodes_hierarchies(self):
        bundle = OntologyBundle.from_ontology(engie_ontology())
        assert bundle.concepts.is_descendant(QUDT.PressureOrStressUnit, QUDT.PressureUnit)
        assert bundle.schema.is_subconcept_of(QUDT.Pressure, QUDT.PressureUnit)
        assert bundle.size_in_bytes() > 0

    def test_bundle_identifiers_are_deterministic(self):
        first = OntologyBundle.from_ontology(engie_ontology())
        second = OntologyBundle.from_ontology(engie_ontology())
        assert first.concepts.identifiers() == second.concepts.identifiers()
        assert first.properties.identifiers() == second.properties.identifiers()


class TestDeviceRegistry:
    def test_register_and_duplicate_rejected(self, pressure_rule):
        server = AdministrationServer(engie_ontology(), rules=[pressure_rule])
        server.register_device("building-A", location="plant room")
        assert "building-A" in server.devices
        with pytest.raises(ValueError):
            server.register_device("building-A")

    def test_ingest_unknown_device_rejected(self, pressure_rule):
        server = AdministrationServer(engie_ontology(), rules=[pressure_rule])
        with pytest.raises(KeyError):
            server.ingest("nowhere", water_distribution_graph(observations_per_sensor=2))

    def test_rules_shipped_at_registration(self, pressure_rule):
        server = AdministrationServer(engie_ontology())
        server.register_rule(pressure_rule)
        registered = server.register_device("building-A")
        assert [rule.name for rule in registered.processor.rules] == ["pressure-out-of-range"]


class TestAlertAggregation:
    def test_alerts_flow_back_to_the_server(self, pressure_rule):
        server = AdministrationServer(engie_ontology(), rules=[pressure_rule])
        server.register_device("building-A")
        server.register_device("building-B")
        anomalous = water_distribution_graph(observations_per_sensor=5, stations=2, anomaly_rate=1.0, seed=1)
        clean = water_distribution_graph(observations_per_sensor=5, stations=2, anomaly_rate=0.0, seed=2)

        alerts_a = server.ingest("building-A", anomalous)
        alerts_b = server.ingest("building-B", clean)

        assert alerts_a and not alerts_b
        assert len(server.received_alerts) == len(alerts_a)
        grouped = server.alerts_by_device()
        assert len(grouped["building-A"]) == len(alerts_a)
        assert grouped["building-B"] == []

    def test_fleet_statistics(self, pressure_rule):
        server = AdministrationServer(engie_ontology(), rules=[pressure_rule])
        server.register_device("building-A")
        graph = water_distribution_graph(observations_per_sensor=3, stations=2, anomaly_rate=0.5, seed=5)
        server.ingest("building-A", graph)
        statistics = server.fleet_statistics()
        assert statistics["building-A"]["instances"] == 1
        assert statistics["building-A"]["triples"] == len(graph)
        assert statistics["building-A"]["mean_ms"] > 0
        assert statistics["building-A"]["energy_joules"] > 0


class TestLiveDevices:
    """Live-update mode: readings become delta inserts into one store."""

    def _live_server(self, pressure_rule, **kwargs):
        from repro.store.delta import MANUAL_COMPACTION

        server = AdministrationServer(engie_ontology(), rules=[pressure_rule])
        registered = server.register_device(
            "pi-live", live=True, policy=kwargs.pop("policy", MANUAL_COMPACTION), **kwargs
        )
        return server, registered

    def test_live_device_ingests_as_delta_inserts(self, pressure_rule):
        server, registered = self._live_server(pressure_rule)
        graph = water_distribution_graph(observations_per_sensor=3, stations=1, anomaly_rate=1.0, seed=9)
        alerts = server.ingest("pi-live", graph)
        store = registered.processor.store
        assert registered.live
        assert alerts, "anomalies must fire against the live store without a rebuild"
        assert store.compaction_epoch == 0  # no rebuild happened
        assert store.triple_count == len(graph)
        assert store.delta.insert_count == len(graph)

    def test_live_rules_see_across_instances(self, pressure_rule):
        server, registered = self._live_server(pressure_rule)
        graphs = [
            water_distribution_graph(observations_per_sensor=3, stations=1, anomaly_rate=0.0, seed=seed)
            for seed in (20, 21)
        ]
        for graph in graphs:
            server.ingest("pi-live", graph)
        store = registered.processor.store
        # The live store accumulates the union of both instances (shared
        # topology deduplicates; per-instance reading values pile up), so a
        # query spans the whole window — impossible in rebuild-per-instance
        # mode where each instance gets a fresh store.
        union = {triple for graph in graphs for triple in graph}
        assert store.triple_count == len(union)
        assert store.triple_count > max(len(graph) for graph in graphs)
        count_query = (
            "PREFIX qudt: <http://qudt.org/schema/qudt/> "
            "SELECT (COUNT(?v) AS ?n) WHERE { ?y qudt:numericValue ?v }"
        )
        count = int(str(next(iter(store.query(count_query)))["n"]))
        per_instance = [
            sum(1 for t in graph if str(t.predicate).endswith("numericValue")) for graph in graphs
        ]
        assert count > max(per_instance)  # readings from both instances are visible

    def test_retention_evicts_old_instances_but_keeps_shared_topology(self, pressure_rule):
        server, registered = self._live_server(pressure_rule, retention_instances=2)
        graphs = [
            water_distribution_graph(observations_per_sensor=3, stations=1, anomaly_rate=0.0, seed=seed)
            for seed in (30, 31, 32)
        ]
        for graph in graphs:
            server.ingest("pi-live", graph)
        store = registered.processor.store
        statistics = registered.processor.statistics
        assert statistics.triples_evicted > 0
        # Triples unique to the first instance are gone...
        retained = {triple for graph in graphs[1:] for triple in graph}
        for triple in graphs[0]:
            visible = triple in store.export_graph()
            assert visible == (triple in retained)
        # ...and everything from the retained window is still visible.
        exported = store.export_graph()
        assert all(triple in exported for triple in retained)

    def test_policy_compaction_counts_in_fleet_statistics(self, pressure_rule):
        from repro.store.delta import CompactionPolicy

        server = AdministrationServer(engie_ontology(), rules=[pressure_rule])
        registered = server.register_device(
            "pi-live",
            live=True,
            policy=CompactionPolicy(max_delta_operations=10, max_delta_ratio=None),
        )
        graph = water_distribution_graph(observations_per_sensor=3, stations=1, anomaly_rate=0.0, seed=40)
        server.ingest("pi-live", graph)
        store = registered.processor.store
        assert store.compaction_epoch >= 1
        assert store.delta_operation_count == 0
        statistics = server.fleet_statistics()["pi-live"]
        assert statistics["compactions"] >= 1
        assert statistics["live_triples"] == store.triple_count
        assert statistics["compaction_epoch"] == store.compaction_epoch

    def test_mixed_fleet_statistics(self, pressure_rule):
        server = AdministrationServer(engie_ontology(), rules=[pressure_rule])
        server.register_device("classic")
        server.register_device("live", live=True)
        graph = water_distribution_graph(observations_per_sensor=2, stations=1, anomaly_rate=0.0, seed=50)
        server.ingest("classic", graph)
        server.ingest("live", graph)
        statistics = server.fleet_statistics()
        assert "live_triples" not in statistics["classic"]
        assert statistics["live"]["live_triples"] == len(graph)
