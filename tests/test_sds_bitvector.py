"""Unit and property-based tests for the rank/select bit vector."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sds.bitvector import BitVector, BitVectorBuilder


class TestBasics:
    def test_empty_vector(self):
        bv = BitVector([])
        assert len(bv) == 0
        assert bv.count(1) == 0
        assert bv.count(0) == 0
        assert bv.rank(0, 1) == 0

    def test_access_returns_stored_bits(self):
        bits = [1, 0, 1, 1, 0, 0, 1]
        bv = BitVector(bits)
        assert [bv.access(i) for i in range(len(bits))] == bits
        assert [bv[i] for i in range(len(bits))] == bits

    def test_access_out_of_range_raises(self):
        bv = BitVector([1, 0])
        with pytest.raises(IndexError):
            bv.access(2)
        with pytest.raises(IndexError):
            bv.access(-1)

    def test_len_and_iter(self):
        bits = [0, 1] * 50
        bv = BitVector(bits)
        assert len(bv) == 100
        assert list(bv) == bits
        assert bv.to_list() == bits

    def test_count(self):
        bv = BitVector([1, 1, 0, 1, 0])
        assert bv.count(1) == 3
        assert bv.count(0) == 2

    def test_count_invalid_bit_raises(self):
        with pytest.raises(ValueError):
            BitVector([1]).count(2)

    def test_equality_and_hash(self):
        a = BitVector([1, 0, 1])
        b = BitVector([1, 0, 1])
        c = BitVector([1, 0, 0])
        assert a == b
        assert a != c
        assert hash(a) == hash(b)

    def test_repr_is_readable(self):
        assert "BitVector" in repr(BitVector([1, 0]))


class TestBuilder:
    def test_builder_appends_in_order(self):
        builder = BitVectorBuilder()
        builder.append(1)
        builder.extend([0, 0, 1])
        assert len(builder) == 4
        assert builder.build().to_list() == [1, 0, 0, 1]

    def test_builder_rejects_non_bits(self):
        builder = BitVectorBuilder()
        with pytest.raises(ValueError):
            builder.append(2)

    def test_builder_spanning_many_words(self):
        bits = [i % 3 == 0 for i in range(1000)]
        bits = [1 if b else 0 for b in bits]
        bv = BitVectorBuilder()
        bv.extend(bits)
        assert bv.build().to_list() == bits


class TestRank:
    def test_rank_prefix_counts(self):
        bits = [1, 0, 1, 1, 0, 1]
        bv = BitVector(bits)
        for i in range(len(bits) + 1):
            assert bv.rank(i, 1) == sum(bits[:i])
            assert bv.rank(i, 0) == i - sum(bits[:i])

    def test_rank_full_length(self):
        bits = [1] * 130
        bv = BitVector(bits)
        assert bv.rank(130, 1) == 130
        assert bv.rank(130, 0) == 0

    def test_rank_out_of_range_raises(self):
        bv = BitVector([1, 0])
        with pytest.raises(IndexError):
            bv.rank(3, 1)

    def test_rank_invalid_bit_raises(self):
        bv = BitVector([1, 0])
        with pytest.raises(ValueError):
            bv.rank(1, 5)


class TestSelect:
    def test_select_ones(self):
        bits = [0, 1, 0, 0, 1, 1, 0, 1]
        bv = BitVector(bits)
        ones = [i for i, b in enumerate(bits) if b]
        for occurrence, expected in enumerate(ones, start=1):
            assert bv.select(occurrence, 1) == expected

    def test_select_zeros(self):
        bits = [0, 1, 0, 0, 1, 1, 0, 1]
        bv = BitVector(bits)
        zeros = [i for i, b in enumerate(bits) if not b]
        for occurrence, expected in enumerate(zeros, start=1):
            assert bv.select(occurrence, 0) == expected

    def test_select_beyond_population_raises(self):
        bv = BitVector([1, 0, 1])
        with pytest.raises(ValueError):
            bv.select(3, 1)
        with pytest.raises(ValueError):
            bv.select(2, 0)

    def test_select_zero_occurrence_raises(self):
        bv = BitVector([1])
        with pytest.raises(ValueError):
            bv.select(0, 1)

    def test_select_trailing_padding_not_counted_as_zero(self):
        # The last 64-bit word is padded with zero bits; they are not part of
        # the vector and select(·, 0) must never land on them.
        bits = [1, 1, 1]
        bv = BitVector(bits)
        with pytest.raises(ValueError):
            bv.select(1, 0)

    def test_select_across_word_boundaries(self):
        bits = ([0] * 63) + [1] + ([0] * 63) + [1]
        bv = BitVector(bits)
        assert bv.select(1, 1) == 63
        assert bv.select(2, 1) == 127


class TestRankSelectInverse:
    def test_rank_of_select_identity(self):
        bits = [1, 0, 0, 1, 1, 0, 1, 0, 1, 1]
        bv = BitVector(bits)
        for occurrence in range(1, bv.count(1) + 1):
            position = bv.select(occurrence, 1)
            assert bv.rank(position, 1) == occurrence - 1
            assert bv.access(position) == 1


class TestSizeAccounting:
    def test_size_grows_with_length(self):
        small = BitVector([1] * 64)
        large = BitVector([1] * 6400)
        assert large.size_in_bytes() > small.size_in_bytes()

    def test_size_without_directories_smaller(self):
        bv = BitVector([1, 0] * 500)
        assert bv.size_in_bytes(include_directories=False) < bv.size_in_bytes()


@settings(max_examples=60, deadline=None)
@given(bits=st.lists(st.integers(min_value=0, max_value=1), max_size=600))
def test_property_rank_matches_prefix_sums(bits):
    bv = BitVector(bits)
    for index in range(0, len(bits) + 1, max(1, len(bits) // 7)):
        assert bv.rank(index, 1) == sum(bits[:index])
        assert bv.rank(index, 0) == index - sum(bits[:index])


@settings(max_examples=60, deadline=None)
@given(bits=st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=600))
def test_property_select_inverts_rank(bits):
    bv = BitVector(bits)
    for bit in (0, 1):
        positions = [i for i, b in enumerate(bits) if b == bit]
        for occurrence, expected in enumerate(positions, start=1):
            assert bv.select(occurrence, bit) == expected
