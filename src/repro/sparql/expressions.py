"""Evaluation of FILTER / BIND expressions over solution bindings.

SPARQL effective boolean value (EBV) rules are applied where the paper's
queries need them: numeric comparisons, string regex, ``if`` conditionals and
arithmetic over observation values (the anomaly-detection query of Section 2
converts hectopascal to bar with ``?v1 / 1000`` inside an ``if``).

Aggregates (``COUNT``/``SUM``/...) are *not* row-scoped and therefore do not
evaluate here: :mod:`repro.sparql.algebra` computes them over groups and
substitutes their results before calling :func:`evaluate`.  A bare
:class:`~repro.sparql.ast.Aggregate` node reaching this evaluator is a query
placement error (e.g. an aggregate inside FILTER) and raises
:class:`ExpressionError`.
"""

from __future__ import annotations

import re
from typing import Optional, Union

from repro.rdf.terms import Literal, Term, URI
from repro.rdf.terms import XSD_BOOLEAN, XSD_DOUBLE, XSD_STRING
from repro.sparql.ast import (
    Aggregate,
    Arithmetic,
    BooleanExpression,
    Comparison,
    Expression,
    FunctionCall,
    Negation,
    Variable,
)
from repro.sparql.bindings import Binding


class ExpressionError(ValueError):
    """Raised when an expression cannot be evaluated (SPARQL type error)."""


#: Python-level value of an evaluated expression.
Value = Union[Term, int, float, bool, str, None]


def evaluate(expression: Expression, binding: Binding) -> Value:
    """Evaluate ``expression`` under ``binding``.

    Returns a Python value (number, string, boolean) or an RDF term; returns
    ``None`` when a referenced variable is unbound (SPARQL "error" value,
    which makes enclosing FILTERs evaluate to false).
    """
    if isinstance(expression, Variable):
        return binding.get(expression.name)
    if isinstance(expression, Literal):
        return expression.to_python()
    if isinstance(expression, URI):
        return expression
    if isinstance(expression, Comparison):
        return _evaluate_comparison(expression, binding)
    if isinstance(expression, BooleanExpression):
        return _evaluate_boolean(expression, binding)
    if isinstance(expression, Negation):
        inner = effective_boolean_value(evaluate(expression.operand, binding))
        return None if inner is None else not inner
    if isinstance(expression, Arithmetic):
        return _evaluate_arithmetic(expression, binding)
    if isinstance(expression, FunctionCall):
        return _evaluate_function(expression, binding)
    if isinstance(expression, Aggregate):
        raise ExpressionError(
            f"aggregate {expression.name.upper()}() is only valid in the SELECT "
            "clause of a grouped query, not in a row-scoped expression"
        )
    raise ExpressionError(f"unsupported expression node: {expression!r}")


def evaluate_filter(expression: Expression, binding: Binding) -> bool:
    """FILTER semantics: the effective boolean value, with errors as false."""
    try:
        value = evaluate(expression, binding)
    except ExpressionError:
        return False
    result = effective_boolean_value(value)
    return bool(result)


def evaluate_bind(expression: Expression, binding: Binding) -> Optional[Term]:
    """BIND semantics: evaluate and convert back to an RDF term (or ``None``)."""
    try:
        value = evaluate(expression, binding)
    except ExpressionError:
        return None
    return to_term(value)


# --------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------- #


def to_number(value: Value) -> Optional[float]:
    """Coerce a value to a float, or ``None`` when it is not numeric."""
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, Literal):
        try:
            return float(value.lexical)
        except ValueError:
            return None
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            return None
    return None


def to_string(value: Value) -> Optional[str]:
    """Coerce a value to its string form (the SPARQL ``str()`` builtin)."""
    if value is None:
        return None
    if isinstance(value, URI):
        return value.value
    if isinstance(value, Literal):
        return value.lexical
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def to_term(value: Value) -> Optional[Term]:
    """Convert a Python value back to an RDF term (for BIND results)."""
    if value is None:
        return None
    if isinstance(value, (URI, Literal)):
        return value
    if isinstance(value, bool):
        return Literal("true" if value else "false", datatype=XSD_BOOLEAN)
    if isinstance(value, (int, float)):
        return Literal(repr(float(value)), datatype=XSD_DOUBLE)
    return Literal(str(value), datatype=XSD_STRING)


def effective_boolean_value(value: Value) -> Optional[bool]:
    """SPARQL effective boolean value; ``None`` when undefined."""
    if value is None:
        return None
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, str):
        return len(value) > 0
    if isinstance(value, Literal):
        python_value = value.to_python()
        if isinstance(python_value, bool):
            return python_value
        if isinstance(python_value, (int, float)):
            return python_value != 0
        return len(value.lexical) > 0
    if isinstance(value, URI):
        return True
    return None


def _evaluate_comparison(expression: Comparison, binding: Binding) -> Optional[bool]:
    left = evaluate(expression.left, binding)
    right = evaluate(expression.right, binding)
    if left is None or right is None:
        return None
    left_number = to_number(left)
    right_number = to_number(right)
    if left_number is not None and right_number is not None:
        left_value: Union[float, str] = left_number
        right_value: Union[float, str] = right_number
    else:
        # Fall back to string / term comparison.
        if isinstance(left, (URI, Literal)) or isinstance(right, (URI, Literal)):
            left_str, right_str = to_string(left), to_string(right)
            if left_str is None or right_str is None:
                return None
            left_value, right_value = left_str, right_str
        else:
            left_value, right_value = str(left), str(right)
    operator = expression.operator
    if operator == "=":
        return left_value == right_value
    if operator == "!=":
        return left_value != right_value
    if operator == "<":
        return left_value < right_value
    if operator == "<=":
        return left_value <= right_value
    if operator == ">":
        return left_value > right_value
    if operator == ">=":
        return left_value >= right_value
    raise ExpressionError(f"unknown comparison operator {operator!r}")


def _evaluate_boolean(expression: BooleanExpression, binding: Binding) -> Optional[bool]:
    values = [effective_boolean_value(evaluate(operand, binding)) for operand in expression.operands]
    if expression.operator == "and":
        if any(value is False for value in values):
            return False
        if any(value is None for value in values):
            return None
        return True
    if expression.operator == "or":
        if any(value is True for value in values):
            return True
        if any(value is None for value in values):
            return None
        return False
    raise ExpressionError(f"unknown boolean operator {expression.operator!r}")


def _evaluate_arithmetic(expression: Arithmetic, binding: Binding) -> Optional[float]:
    left = to_number(evaluate(expression.left, binding))
    right = to_number(evaluate(expression.right, binding))
    if left is None or right is None:
        return None
    operator = expression.operator
    if operator == "+":
        return left + right
    if operator == "-":
        return left - right
    if operator == "*":
        return left * right
    if operator == "/":
        if right == 0:
            raise ExpressionError("division by zero")
        return left / right
    raise ExpressionError(f"unknown arithmetic operator {operator!r}")


def _evaluate_function(expression: FunctionCall, binding: Binding) -> Value:
    name = expression.name
    arguments = expression.arguments
    if name == "str":
        _require_arity(name, arguments, 1)
        return to_string(evaluate(arguments[0], binding))
    if name == "regex":
        if len(arguments) not in (2, 3):
            raise ExpressionError("regex() expects 2 or 3 arguments")
        text = to_string(evaluate(arguments[0], binding))
        pattern = to_string(evaluate(arguments[1], binding))
        if text is None or pattern is None:
            return None
        flags = 0
        if len(arguments) == 3:
            flag_text = to_string(evaluate(arguments[2], binding)) or ""
            if "i" in flag_text:
                flags |= re.IGNORECASE
        return re.search(pattern, text, flags) is not None
    if name == "if":
        _require_arity(name, arguments, 3)
        condition = effective_boolean_value(evaluate(arguments[0], binding))
        if condition is None:
            return None
        return evaluate(arguments[1] if condition else arguments[2], binding)
    if name == "bound":
        _require_arity(name, arguments, 1)
        argument = arguments[0]
        if not isinstance(argument, Variable):
            raise ExpressionError("bound() expects a variable")
        return argument.name in binding
    if name == "abs":
        _require_arity(name, arguments, 1)
        number = to_number(evaluate(arguments[0], binding))
        return None if number is None else abs(number)
    if name == "isuri" or name == "isiri":
        _require_arity(name, arguments, 1)
        return isinstance(evaluate(arguments[0], binding), URI)
    if name == "isliteral":
        _require_arity(name, arguments, 1)
        value = evaluate(arguments[0], binding)
        return isinstance(value, (Literal, int, float, str, bool)) and not isinstance(value, URI)
    if name == "xsd:double" or name == "xsd:decimal" or name == "xsd:integer":
        _require_arity(name, arguments, 1)
        return to_number(evaluate(arguments[0], binding))
    raise ExpressionError(f"unsupported function {name!r}")


def _require_arity(name: str, arguments: tuple, arity: int) -> None:
    if len(arguments) != arity:
        raise ExpressionError(f"{name}() expects {arity} argument(s), got {len(arguments)}")
