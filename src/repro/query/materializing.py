"""The original list-materializing SELECT engine, kept as a reference oracle.

This is the seed repository's :class:`QueryEngine` evaluation strategy: every
operator consumes and produces a fully materialized ``List[Binding]``.  The
streaming engine (:mod:`repro.query.engine`) replaced it as the production
path, but the materializing evaluator is retained because

* it is an independent implementation the differential tests compare the
  streaming pipeline against (both must return byte-identical results on the
  paper's query workload), and
* the streaming-vs-materializing benchmark uses it to show the kernel-call
  and latency effect of early termination (``LIMIT``/``ASK``/top-k).

Both engines share the same optimizer, triple-pattern evaluator and
solution-modifier algebra (:mod:`repro.sparql.algebra`), so differences can
only come from the operator evaluation strategy under test.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, Union as TypingUnion

from repro.query.operators import term_join_key
from repro.query.optimizer import create_optimizer
from repro.query.paths import path_sort_key
from repro.query.plan import JoinMethod, PhysicalPlan
from repro.query.tp_eval import TriplePatternEvaluator
from repro.rdf.namespaces import RDF_TYPE
from repro.rdf.terms import Term, URI
from repro.sparql.algebra import apply_solution_modifiers, values_bindings
from repro.sparql.ast import (
    AskQuery,
    GroupGraphPattern,
    PathAlternative,
    PathInverse,
    PathLink,
    PathNegatedSet,
    PathOneOrMore,
    PathSequence,
    PathZeroOrMore,
    PathZeroOrOne,
    Query,
    SelectQuery,
    TriplePattern,
)
from repro.sparql.bindings import AskResult, Binding, ResultSet
from repro.sparql.expressions import evaluate_bind, evaluate_filter
from repro.sparql.parser import parse_query
from repro.store.succinct_edge import SuccinctEdge


class NaivePathOracle:
    """Reference property-path evaluation by naive scans over an edge list.

    The differential counterpart to :class:`~repro.query.paths.PathEvaluator`:
    every explicit triple is materialized once into a flat Python list, each
    path form is evaluated by full scans and term-level fixpoints over that
    list — no id frontiers, no probe/scan choice, no batched accessors — and
    results are emitted in the shared canonical order
    (:func:`~repro.query.paths.path_sort_key`, the only code the two
    implementations have in common).  Reasoning is answered structurally:
    a predicate matches every stored property whose identifier falls in its
    LiteMat interval, and explicit concepts expand through
    ``schema.superconcepts`` — independent re-statements of the interval
    probes the production evaluator issues.
    """

    def __init__(self, store: SuccinctEdge, reasoning: bool = True) -> None:
        self.store = store
        self.reasoning = reasoning
        self._edges: Optional[List[Tuple[Term, Optional[int], Term]]] = None
        self._edges_version: Optional[int] = None

    # -- the materialized edge list ------------------------------------- #

    def edges(self) -> List[Tuple[Term, Optional[int], Term]]:
        """Explicit triples as ``(subject, property id | None, object)`` rows.

        ``None`` in the property slot marks an ``rdf:type`` edge (the object
        is the *explicit* stored concept).  Rebuilt whenever the statistics
        version moves, so delta writes are visible.
        """
        statistics = self.store.statistics
        version = None if statistics is None else statistics.version
        if self._edges is not None and version == self._edges_version:
            return self._edges
        store = self.store
        rows: List[Tuple[Term, Optional[int], Term]] = []
        extract = store.instances.extract
        for property_id in store.object_store.properties:
            for subject_id, object_id in store.object_store.pairs_for_property(property_id):
                rows.append((extract(subject_id), property_id, extract(object_id)))
        for property_id in store.datatype_store.properties:
            for subject_id, literal in store.datatype_store.pairs_for_property(property_id):
                rows.append((extract(subject_id), property_id, literal))
        extract_concept = store.concepts.extract
        for subject_id, concept_id in store.type_store.iter_triples():
            concept = extract_concept(concept_id)
            if concept is not None:
                rows.append((extract(subject_id), None, concept))
        self._edges = rows
        self._edges_version = version
        return rows

    def _matching_property_ids(self, predicate: URI) -> Set[int]:
        """Stored property ids ``predicate`` stands for (interval containment)."""
        store = self.store
        stored = {pid for _, pid, _ in self.edges() if pid is not None}
        if not self.reasoning:
            property_id = store.properties.try_locate(predicate)
            return {property_id} & stored if property_id is not None else set()
        if predicate not in store.properties:
            return set()
        low, high = store.properties.interval(predicate)
        return {pid for pid in stored if low <= pid < high}

    def _expand_concept_term(self, concept: URI) -> List[URI]:
        if not self.reasoning:
            return [concept]
        return self.store.schema.superconcepts(concept, include_self=True)

    def _concept_matches(self, stored: URI, queried: URI) -> bool:
        return queried in self._expand_concept_term(stored)

    def graph_terms(self) -> List[Term]:
        """The zero-length-path domain: terms of explicit triples, sorted."""
        terms: Set[Term] = set()
        for subject, _, obj in self.edges():
            terms.add(subject)
            terms.add(obj)
        return sorted(terms, key=path_sort_key)

    # -- the relation of one path (multiset of pairs) -------------------- #

    def relation(self, path) -> List[Tuple[Term, Term]]:
        """All ``(subject, object)`` pairs of ``path``, as a multiset."""
        if isinstance(path, PathLink):
            return self._link_relation(path.predicate)
        if isinstance(path, PathInverse):
            return [(o, s) for s, o in self.relation(path.path)]
        if isinstance(path, PathSequence):
            pairs = self.relation(path.steps[0])
            for step in path.steps[1:]:
                right = self.relation(step)
                pairs = [
                    (s, o2) for s, o1 in pairs for s2, o2 in right if o1 == s2
                ]
            return pairs
        if isinstance(path, PathAlternative):
            pairs = []
            for branch in path.branches:
                pairs.extend(self.relation(branch))
            return pairs
        if isinstance(path, PathZeroOrOne):
            distinct = {(t, t) for t in self.graph_terms()}
            distinct.update(self.relation(path.path))
            return list(distinct)
        if isinstance(path, PathZeroOrMore):
            closed = self._closure(self.relation(path.path))
            closed.update((t, t) for t in self.graph_terms())
            return list(closed)
        if isinstance(path, PathOneOrMore):
            return list(self._closure(self.relation(path.path)))
        if isinstance(path, PathNegatedSet):
            return self._negated_relation(path)
        raise TypeError(f"unknown path node {type(path).__name__}")

    def _link_relation(self, predicate: URI) -> List[Tuple[Term, Term]]:
        if predicate == RDF_TYPE:
            return [
                (subject, expanded)
                for subject, pid, concept in self.edges()
                if pid is None
                for expanded in self._expand_concept_term(concept)
            ]
        matching = self._matching_property_ids(predicate)
        return [
            (subject, obj)
            for subject, pid, obj in self.edges()
            if pid is not None and pid in matching
        ]

    def _negated_relation(self, path: PathNegatedSet) -> List[Tuple[Term, Term]]:
        """NPS over explicit edges: each stored predicate stands for itself."""
        store = self.store
        extract_property = store.properties.extract
        forward_excluded = set(path.forward)
        pairs: List[Tuple[Term, Term]] = []
        # Per §18.2.2.3 the forward direction applies iff the set has a
        # forward member (or no inverse members at all): ``!(^p)`` matches
        # inverse edges only.
        if path.forward or not path.inverse:
            for subject, pid, obj in self.edges():
                predicate = RDF_TYPE if pid is None else extract_property(pid)
                if predicate not in forward_excluded:
                    pairs.append((subject, obj))
        if path.inverse:
            inverse_excluded = set(path.inverse)
            for subject, pid, obj in self.edges():
                predicate = RDF_TYPE if pid is None else extract_property(pid)
                if predicate not in inverse_excluded:
                    pairs.append((obj, subject))
        return pairs

    @staticmethod
    def _closure(relation: List[Tuple[Term, Term]]) -> Set[Tuple[Term, Term]]:
        """Transitive closure by iterating to a fixpoint (naive, not semi-naive)."""
        closed: Set[Tuple[Term, Term]] = set(relation)
        while True:
            additions = {
                (s, o2)
                for s, o1 in closed
                for o1b, o2 in closed
                if o1 == o1b and (s, o2) not in closed
            }
            if not additions:
                return closed
            closed.update(additions)

    # -- one-sided evaluation (zero-length paths hold off-graph too) ------ #

    def targets(self, path, start: Term) -> List[Term]:
        """The multiset of path ends from ``start``.

        Not a filter over :meth:`relation`: the zero-length forms match
        ``start`` to itself even when it occurs in no explicit triple (the
        spec's ALP evaluation starts from the given term), which a
        graph-pair filter would miss.
        """
        if isinstance(path, PathLink):
            matches = [o for s, o in self._link_relation(path.predicate) if s == start]
            if path.predicate == RDF_TYPE:
                # Mirror triple-pattern evaluation: a bound subject's types
                # are deduplicated across its explicit concepts (two stored
                # concepts sharing a superconcept yield it once).
                return list(set(matches))
            return matches
        if isinstance(path, PathInverse):
            return self.sources(path.path, start)
        if isinstance(path, PathSequence):
            frontier: List[Term] = [start]
            for step in path.steps:
                frontier = [o for term in frontier for o in self.targets(step, term)]
            return frontier
        if isinstance(path, PathAlternative):
            return [o for branch in path.branches for o in self.targets(branch, start)]
        if isinstance(path, PathZeroOrOne):
            return list({start} | set(self.targets(path.path, start)))
        if isinstance(path, PathZeroOrMore):
            closed = self._closure(self.relation(path.path))
            return list({o for s, o in closed if s == start} | {start})
        if isinstance(path, PathOneOrMore):
            closed = self._closure(self.relation(path.path))
            return list({o for s, o in closed if s == start})
        if isinstance(path, PathNegatedSet):
            return [o for s, o in self._negated_relation(path) if s == start]
        raise TypeError(f"unknown path node {type(path).__name__}")

    def sources(self, path, end: Term) -> List[Term]:
        """The multiset of path starts reaching ``end`` (mirror of :meth:`targets`)."""
        if isinstance(path, PathLink):
            return [s for s, o in self._link_relation(path.predicate) if o == end]
        if isinstance(path, PathInverse):
            return self.targets(path.path, end)
        if isinstance(path, PathSequence):
            frontier: List[Term] = [end]
            for step in reversed(path.steps):
                frontier = [s for term in frontier for s in self.sources(step, term)]
            return frontier
        if isinstance(path, PathAlternative):
            return [s for branch in path.branches for s in self.sources(branch, end)]
        if isinstance(path, PathZeroOrOne):
            return list({end} | set(self.sources(path.path, end)))
        if isinstance(path, PathZeroOrMore):
            closed = self._closure(self.relation(path.path))
            return list({s for s, o in closed if o == end} | {end})
        if isinstance(path, PathOneOrMore):
            closed = self._closure(self.relation(path.path))
            return list({s for s, o in closed if o == end})
        if isinstance(path, PathNegatedSet):
            return [s for s, o in self._negated_relation(path) if o == end]
        raise TypeError(f"unknown path node {type(path).__name__}")

    # -- binding evaluation (same four endpoint shapes as production) ----- #

    def evaluate(self, pattern, binding: Binding) -> List[Binding]:
        """Extensions of ``binding`` under ``pattern``, in canonical order."""
        subject_term, subject_var = TriplePatternEvaluator._resolve(
            pattern.subject, binding
        )
        object_term, object_var = TriplePatternEvaluator._resolve(
            pattern.object, binding
        )
        if subject_term is not None and object_term is not None:
            held = object_term in set(self.targets(pattern.path, subject_term))
            return [binding] if held else []
        if subject_term is not None:
            targets = sorted(self.targets(pattern.path, subject_term), key=path_sort_key)
            return [binding.extended(object_var, value) for value in targets]
        if object_term is not None:
            sources = sorted(self.sources(pattern.path, object_term), key=path_sort_key)
            return [binding.extended(subject_var, value) for value in sources]
        ordered = sorted(
            self.relation(pattern.path),
            key=lambda pair: (path_sort_key(pair[0]), path_sort_key(pair[1])),
        )
        results: List[Binding] = []
        if subject_var == object_var:
            for source, target in ordered:
                if source == target:
                    results.append(binding.extended(subject_var, source))
            return results
        base = binding.as_dict()
        for source, target in ordered:
            values = dict(base)
            values[subject_var] = source
            values[object_var] = target
            results.append(Binding._adopt(values))
        return results

    def evaluate_many(self, pattern, bindings: List[Binding]) -> List[Binding]:
        """Bind-propagation join of ``bindings`` with one path pattern."""
        results: List[Binding] = []
        for binding in bindings:
            results.extend(self.evaluate(pattern, binding))
        return results


class MaterializingQueryEngine:
    """Evaluates queries with fully materialized intermediate binding lists.

    Accepts the same queries and produces the same results (in the same
    order) as the streaming :class:`~repro.query.engine.QueryEngine`; only
    the evaluation strategy differs.  See the module docstring for why it is
    kept.
    """

    def __init__(
        self,
        store: SuccinctEdge,
        reasoning: bool = True,
        join_strategy: str = "auto",
        planner: str = "cost",
    ) -> None:
        if join_strategy not in ("auto", "bind", "merge"):
            raise ValueError(f"unknown join strategy {join_strategy!r}")
        self.store = store
        self.reasoning = reasoning
        self.join_strategy = join_strategy
        self.planner = planner
        self.evaluator = TriplePatternEvaluator(store, reasoning=reasoning)
        self.optimizer = create_optimizer(
            planner,
            statistics=store.statistics,
            runtime_estimator=self.evaluator.estimate_cardinality,
            reasoning=reasoning,
        )
        # Same per-BGP plan cache as the streaming engine: seeded OPTIONAL
        # evaluation would otherwise re-plan the group once per outer row.
        self._plan_cache: Dict[Tuple[TriplePattern, ...], "PhysicalPlan"] = {}
        #: The naive reference implementation of property paths (the
        #: differential counterpart of the interval-frontier evaluator).
        self.paths_oracle = NaivePathOracle(store, reasoning=reasoning)

    def _plan_bgp(self, patterns: List[TriplePattern]):
        """The (cached) physical plan for one BGP."""
        key = tuple(patterns)
        plan = self._plan_cache.get(key)
        if plan is None:
            plan = self.optimizer.optimize(patterns)
            self._plan_cache[key] = plan
        return plan

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def execute(
        self, query: TypingUnion[str, Query]
    ) -> TypingUnion[ResultSet, AskResult]:
        """Parse (if needed) and execute a SELECT or ASK query."""
        parsed = parse_query(query) if isinstance(query, str) else query
        if isinstance(parsed, AskQuery):
            return AskResult(bool(self._evaluate_group(parsed.where)))
        assert isinstance(parsed, SelectQuery)
        bindings = self._evaluate_group(parsed.where)
        return apply_solution_modifiers(parsed, bindings)

    # ------------------------------------------------------------------ #
    # group evaluation
    # ------------------------------------------------------------------ #

    def _evaluate_group(
        self, group: GroupGraphPattern, seed: Optional[Binding] = None
    ) -> List[Binding]:
        bindings = self._evaluate_bgp(list(group.bgp.patterns), seed or Binding())
        if group.paths:
            # Same placement as the streaming engine (the shared optimizer
            # orders the steps); only the path evaluation itself is naive.
            bound = {
                name
                for pattern in group.bgp.patterns
                for name in pattern.variable_names()
            }
            for step in self.optimizer.plan_paths(list(group.paths), bound):
                bindings = self.paths_oracle.evaluate_many(step.pattern, bindings)
        for union in group.unions:
            union_bindings: List[Binding] = []
            for branch in union.branches:
                union_bindings.extend(self._evaluate_group(branch))
            bindings = self._combine(bindings, union_bindings)
        for optional in group.optionals:
            joined: List[Binding] = []
            for binding in bindings:
                extensions = self._evaluate_group(optional, seed=binding)
                joined.extend(extensions if extensions else [binding])
            bindings = joined
        for block in group.values:
            table = values_bindings(block)
            merged_rows: List[Binding] = []
            for binding in bindings:
                for row in table:
                    merged = binding.merged(row)
                    if merged is not None:
                        merged_rows.append(merged)
            bindings = merged_rows
        for bind in group.binds:
            extended: List[Binding] = []
            for binding in bindings:
                value = evaluate_bind(bind.expression, binding)
                if value is None:
                    extended.append(binding)
                else:
                    extended.append(binding.extended(bind.variable.name, value))
            bindings = extended
        for constraint in group.filters:
            bindings = [b for b in bindings if evaluate_filter(constraint.expression, b)]
        return bindings

    @staticmethod
    def _combine(left: List[Binding], right: List[Binding]) -> List[Binding]:
        """Join two binding sets on their shared variables (nested loop)."""
        if not left:
            return right
        if not right:
            return []
        combined: List[Binding] = []
        for left_binding in left:
            for right_binding in right:
                merged = left_binding.merged(right_binding)
                if merged is not None:
                    combined.append(merged)
        return combined

    # ------------------------------------------------------------------ #
    # BGP evaluation (left-deep plan)
    # ------------------------------------------------------------------ #

    def _evaluate_bgp(self, patterns: List[TriplePattern], seed: Binding) -> List[Binding]:
        if not patterns:
            return [seed]
        plan = self._plan_bgp(patterns)
        current: List[Binding] = [seed]
        for position, step in enumerate(plan.steps):
            if position == 0:
                next_bindings: List[Binding] = []
                for binding in current:
                    next_bindings.extend(self.evaluator.evaluate(step.pattern, binding))
                current = next_bindings
                continue
            if not current:
                return []
            method = self._effective_join_method(step.join_method, step.pattern, current)
            if method == JoinMethod.MERGE:
                current = self._merge_join(current, step.pattern)
            else:
                current = self._bind_propagation_join(current, step.pattern)
        return current

    def _effective_join_method(
        self, planned: JoinMethod, pattern: TriplePattern, current: List[Binding]
    ) -> JoinMethod:
        if self.join_strategy == "bind":
            return JoinMethod.BIND_PROPAGATION
        if self.join_strategy == "merge":
            shared = self._shared_variables(pattern, current)
            return JoinMethod.MERGE if len(shared) == 1 else JoinMethod.BIND_PROPAGATION
        if planned == JoinMethod.MERGE:
            shared = self._shared_variables(pattern, current)
            if len(shared) != 1:
                return JoinMethod.BIND_PROPAGATION
            # A merge join enumerates the pattern's whole property run; it only
            # pays off when the intermediate result is at least comparable in
            # size (otherwise bind propagation probes far fewer entries).
            right_estimate = self.evaluator.estimate_cardinality(pattern)
            if right_estimate > 2 * len(current):
                return JoinMethod.BIND_PROPAGATION
            return JoinMethod.MERGE
        return planned

    @staticmethod
    def _shared_variables(pattern: TriplePattern, current: List[Binding]) -> List[str]:
        if not current:
            return []
        bound_names = set(current[0].as_dict())
        for binding in current[1:]:
            bound_names |= set(binding.as_dict())
        return [name for name in pattern.variable_names() if name in bound_names]

    def _bind_propagation_join(
        self, current: List[Binding], pattern: TriplePattern
    ) -> List[Binding]:
        """Index nested-loop join: propagate each binding into the pattern."""
        results: List[Binding] = []
        for binding in current:
            results.extend(self.evaluator.evaluate(pattern, binding))
        return results

    def _merge_join(self, current: List[Binding], pattern: TriplePattern) -> List[Binding]:
        """Sort-merge join on the single variable shared with the prefix.

        The PSO layout already delivers the right-hand side ordered by subject
        inside a property run; the left-hand side is sorted on the join key,
        then both sides are merged.
        """
        shared = self._shared_variables(pattern, current)
        if len(shared) != 1:
            return self._bind_propagation_join(current, pattern)
        join_name = shared[0]
        right = list(self.evaluator.evaluate(pattern, Binding()))

        def key(binding: Binding) -> tuple:
            return term_join_key(binding.get(join_name))

        left_sorted = sorted(current, key=key)
        right_sorted = sorted(right, key=key)
        results: List[Binding] = []
        left_index = 0
        right_index = 0
        while left_index < len(left_sorted) and right_index < len(right_sorted):
            left_key = key(left_sorted[left_index])
            right_key = key(right_sorted[right_index])
            if left_key < right_key:
                left_index += 1
                continue
            if right_key < left_key:
                right_index += 1
                continue
            # Equal keys: emit the cross product of the two equal runs.
            left_end = left_index
            while left_end < len(left_sorted) and key(left_sorted[left_end]) == left_key:
                left_end += 1
            right_end = right_index
            while right_end < len(right_sorted) and key(right_sorted[right_end]) == right_key:
                right_end += 1
            for i in range(left_index, left_end):
                for j in range(right_index, right_end):
                    merged = left_sorted[i].merged(right_sorted[j])
                    if merged is not None:
                        results.append(merged)
            left_index = left_end
            right_index = right_end
        return results
