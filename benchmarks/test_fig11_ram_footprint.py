"""Figure 11 — RAM footprint of the in-memory systems.

SuccinctEdge is compared against Jena's in-memory store and RDF4J's
MemoryStore: as the dataset grows, the single compressed index keeps the
footprint well below the multi-index stores.
"""

from __future__ import annotations

from repro.bench.harness import record_table

from repro.baselines.registry import create_system
from repro.bench.harness import format_table

IN_MEMORY_SYSTEMS = ["SuccinctEdge", "Jena_InMem", "RDF4J"]


def test_fig11_ram_footprint(benchmark, context, results_dir):
    """Regenerate the Figure 11 series (RAM footprint in KiB per dataset)."""
    datasets = ["ENGIE-250", "ENGIE-500"] + sorted(
        (name for name in context.datasets if name.endswith("K")),
        key=lambda name: len(context.datasets[name]),
    )

    def build_rows():
        rows = {}
        for system_name in IN_MEMORY_SYSTEMS:
            cells = []
            for dataset_name in datasets:
                system = create_system(system_name)
                system.load(context.datasets[dataset_name], ontology=context.lubm.ontology)
                cells.append(system.memory_footprint_in_bytes() / 1024.0)
            rows[system_name] = cells
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    table = format_table("Figure 11: RAM footprint (in-memory systems)", datasets, rows, unit="KiB")
    record_table(results_dir, "fig11_ram_footprint", table)

    # SuccinctEdge saves memory against both in-memory competitors, and the
    # gap widens as the dataset grows (paper Section 7.3.2).
    largest = len(datasets) - 1
    assert rows["SuccinctEdge"][largest] < rows["RDF4J"][largest] < rows["Jena_InMem"][largest]
    small_gap = rows["RDF4J"][0] / max(rows["SuccinctEdge"][0], 1e-9)
    large_gap = rows["RDF4J"][largest] / max(rows["SuccinctEdge"][largest], 1e-9)
    assert large_gap >= small_gap * 0.5
