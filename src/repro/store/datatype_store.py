"""Datatype-property triple store.

Datatype properties relate an individual to a literal (a measurement value,
a timestamp, a name...).  Creating dictionary entries for every literal would
be wasteful — sensors emit a practically unbounded stream of distinct values —
so SuccinctEdge stores them as-is in a flat literal store and keeps only
positional pointers in the PS layout (paper Section 4, "Datatype-triple-store").

The layout mirrors :class:`~repro.store.triple_store.ObjectTripleStore` for
the property and subject layers (``wt_p``, ``bm_ps``, ``wt_s``, ``bm_so``) but
the object layer is an :class:`~repro.sds.int_sequence.IntSequence` of
positions into the shared :class:`~repro.dictionary.literal_store.LiteralStore`.

As in the object layout, the evaluation entry points are range-materialising:
whole literal runs are decoded with one batched ``access_range`` over the
pointer sequence plus one batched select scan over the run bitmap.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.dictionary.literal_store import LiteralStore
from repro.rdf.terms import Literal
from repro.sds.bitvector import BitVector, BitVectorBuilder
from repro.sds.int_sequence import IntSequence
from repro.sds.wavelet_tree import WaveletTree

#: An encoded datatype triple ``(property_id, subject_id, literal)``.
EncodedDatatypeTriple = Tuple[int, int, Literal]


class DatatypeTripleStore:
    """Immutable PS(+flat literal) store over datatype-property triples.

    ``presorted`` promises that ``triples`` already arrive in (property,
    subject) order, skipping the sort pass.
    """

    def __init__(
        self,
        triples: Sequence[EncodedDatatypeTriple],
        literal_store: Optional[LiteralStore] = None,
        presorted: bool = False,
    ) -> None:
        self.literals = literal_store if literal_store is not None else LiteralStore()
        # Sort by (property, subject); keep literal insertion order within a pair.
        if presorted:
            ordered = list(triples)
        else:
            ordered = sorted(triples, key=lambda triple: (triple[0], triple[1]))
        self._triple_count = len(ordered)

        property_layer: List[int] = []
        subject_layer: List[int] = []
        literal_pointers: List[int] = []
        ps_bits = BitVectorBuilder()
        so_bits = BitVectorBuilder()

        previous_property: Optional[int] = None
        previous_pair: Optional[Tuple[int, int]] = None
        for prop, subject, literal in ordered:
            if prop != previous_property:
                property_layer.append(prop)
                previous_property = prop
                new_property = True
            else:
                new_property = False
            pair = (prop, subject)
            if pair != previous_pair:
                subject_layer.append(subject)
                ps_bits.append(1 if new_property else 0)
                previous_pair = pair
                new_pair = True
            else:
                new_pair = False
            literal_pointers.append(self.literals.append(literal))
            so_bits.append(1 if new_pair else 0)
        ps_bits.append(1)
        so_bits.append(1)

        max_symbol = max(property_layer + subject_layer, default=0)
        alphabet = max_symbol + 1
        self.wt_p = WaveletTree(property_layer, alphabet_size=alphabet)
        self.wt_s = WaveletTree(subject_layer, alphabet_size=alphabet)
        self.object_pointers = IntSequence(literal_pointers)
        self.bm_ps: BitVector = ps_bits.build()
        self.bm_so: BitVector = so_bits.build()
        # Memoised property navigation (see ObjectTripleStore).
        self._property_index_cache: dict = {}
        self._subject_run_cache: dict = {}

    @classmethod
    def _from_components(
        cls,
        wt_p: WaveletTree,
        wt_s: WaveletTree,
        object_pointers: IntSequence,
        bm_ps: BitVector,
        bm_so: BitVector,
        literals,
        triple_count: int,
    ) -> "DatatypeTripleStore":
        """Assemble a store around pre-built layout structures (persistence v4).

        ``literals`` is any literal-store implementation (typically the lazy
        :class:`~repro.dictionary.literal_store.BufferLiteralStore` decoding
        straight out of a mapped image).  Nothing is re-encoded, so
        construction is O(1) in the triple count.
        """
        store = object.__new__(cls)
        store.literals = literals
        store._triple_count = triple_count
        store.wt_p = wt_p
        store.wt_s = wt_s
        store.object_pointers = object_pointers
        store.bm_ps = bm_ps
        store.bm_so = bm_so
        store._property_index_cache = {}
        store._subject_run_cache = {}
        return store

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._triple_count

    def __repr__(self) -> str:
        return f"DatatypeTripleStore({self._triple_count} triples, {len(self.wt_p)} properties)"

    @property
    def properties(self) -> List[int]:
        """Distinct datatype-property identifiers, ascending."""
        return self.wt_p.to_list()

    def has_property(self, property_id: int) -> bool:
        """Whether the store holds at least one triple with ``property_id``."""
        return self.wt_p.count(property_id) > 0

    def properties_in_interval(self, low: int, high: int) -> List[int]:
        """Stored property identifiers in ``[low, high)``, ascending.

        One wavelet-tree symbol-range probe over the property layer (see
        :meth:`ObjectTripleStore.properties_in_interval`).
        """
        return [
            symbol
            for _position, symbol in self.wt_p.range_search_symbols(0, len(self.wt_p), low, high)
        ]

    # ------------------------------------------------------------------ #
    # navigation primitives
    # ------------------------------------------------------------------ #

    def _property_index(self, property_id: int) -> Optional[int]:
        try:
            return self._property_index_cache[property_id]
        except KeyError:
            pass
        if self.wt_p.count(property_id) == 0:
            index: Optional[int] = None
        else:
            index = self.wt_p.select(1, property_id)
        self._property_index_cache[property_id] = index
        return index

    def _subject_run(self, property_index: int) -> Tuple[int, int]:
        try:
            return self._subject_run_cache[property_index]
        except KeyError:
            pass
        begin = self.bm_ps.select(property_index + 1, 1)
        end = self.bm_ps.select(property_index + 2, 1)
        self._subject_run_cache[property_index] = (begin, end)
        return begin, end

    def _object_run(self, subject_index: int) -> Tuple[int, int]:
        begin, end = self.bm_so.select_range(subject_index + 1, subject_index + 2, 1)
        return begin, end

    def subject_run(self, property_id: int) -> Optional[Tuple[int, int]]:
        """Subject-layer interval ``[begin, end)`` of ``property_id``, or ``None``."""
        property_index = self._property_index(property_id)
        if property_index is None:
            return None
        return self._subject_run(property_index)

    def object_run_boundaries(self, subject_begin: int, subject_end: int) -> List[int]:
        """Pointer-layer run starts for subject positions ``[subject_begin, subject_end]``."""
        return self.bm_so.select_range(subject_begin + 1, subject_end + 1, 1)

    def subjects_in_interval(self, begin: int, end: int) -> List[int]:
        """Subject identifiers at subject-layer positions ``[begin, end)`` (batched)."""
        return self.wt_s.access_range(begin, end)

    def literals_in_interval(self, begin: int, end: int) -> List[Literal]:
        """Literals at pointer-layer positions ``[begin, end)`` (batched decode)."""
        get = self.literals.get
        return [get(pointer) for pointer in self.object_pointers.access_range(begin, end)]

    def literals_for_run(self, subject_index: int) -> List[Literal]:
        """Literals of the ``(property, subject)`` pair at ``subject_index`` (batched)."""
        object_begin, object_end = self._object_run(subject_index)
        return self.literals_in_interval(object_begin, object_end)

    def count_triples_with_property(self, property_id: int) -> int:
        """Algorithm 2 applied to the datatype layout."""
        property_index = self._property_index(property_id)
        if property_index is None:
            return 0
        subject_begin, subject_end = self._subject_run(property_index)
        object_begin = self.bm_so.select(subject_begin + 1, 1)
        object_end = self.bm_so.select(subject_end + 1, 1)
        return object_end - object_begin

    def count_subjects_with_property(self, property_id: int) -> int:
        """Number of distinct subjects attached to ``property_id``."""
        property_index = self._property_index(property_id)
        if property_index is None:
            return 0
        subject_begin, subject_end = self._subject_run(property_index)
        return subject_end - subject_begin

    # ------------------------------------------------------------------ #
    # triple pattern evaluation
    # ------------------------------------------------------------------ #

    def literals_for(self, subject_id: int, property_id: int) -> List[Literal]:
        """Literal objects of ``(subject, property, ?o)`` (batched run decode)."""
        property_index = self._property_index(property_id)
        if property_index is None:
            return []
        subject_begin, subject_end = self._subject_run(property_index)
        positions = self.wt_s.range_search(subject_begin, subject_end, subject_id)
        if not positions:
            return []
        if len(positions) == 1:
            return self.literals_for_run(positions[0])
        boundaries = self.bm_so.select_many(
            [occurrence for position in positions for occurrence in (position + 1, position + 2)],
            1,
        )
        results: List[Literal] = []
        for index in range(0, len(boundaries), 2):
            results.extend(self.literals_in_interval(boundaries[index], boundaries[index + 1]))
        return results

    def subjects_for(self, property_id: int, literal: Literal) -> List[int]:
        """Subjects of ``(?s, property, literal)``.

        Literals are not dictionary-encoded, so this decodes the property's
        whole pointer run in one batched pass and compares values — the paper
        accepts this cost because literal-bound patterns are rare in its IoT
        workload.
        """
        property_index = self._property_index(property_id)
        if property_index is None:
            return []
        subject_begin, subject_end = self._subject_run(property_index)
        if subject_begin >= subject_end:
            return []
        subjects = self.wt_s.access_range(subject_begin, subject_end)
        boundaries = self.object_run_boundaries(subject_begin, subject_end)
        literals = self.literals_in_interval(boundaries[0], boundaries[-1])
        base = boundaries[0]
        results: List[int] = []
        for offset, subject_id in enumerate(subjects):
            for object_index in range(boundaries[offset] - base, boundaries[offset + 1] - base):
                if literals[object_index] == literal:
                    results.append(subject_id)
                    break
        return results

    def pairs_for_property(self, property_id: int) -> Iterator[Tuple[int, Literal]]:
        """All ``(subject, literal)`` pairs of ``(?s, property, ?o)``, in PS order.

        The whole property run is materialised with three batched kernel
        calls (subject layer, run boundaries, pointer layer) and then zipped.
        """
        property_index = self._property_index(property_id)
        if property_index is None:
            return
        yield from self._pairs_in_subject_run(*self._subject_run(property_index))

    def _pairs_in_subject_run(
        self, subject_begin: int, subject_end: int
    ) -> Iterator[Tuple[int, Literal]]:
        if subject_begin >= subject_end:
            return
        subjects = self.wt_s.access_range(subject_begin, subject_end)
        boundaries = self.object_run_boundaries(subject_begin, subject_end)
        literals = self.literals_in_interval(boundaries[0], boundaries[-1])
        base = boundaries[0]
        for offset, subject_id in enumerate(subjects):
            for object_index in range(boundaries[offset] - base, boundaries[offset + 1] - base):
                yield subject_id, literals[object_index]

    def pairs_for_property_interval(
        self, property_low: int, property_high: int
    ) -> Iterator[Tuple[int, int, Literal]]:
        """All ``(property, subject, literal)`` triples whose property identifier
        falls in the LiteMat interval ``[property_low, property_high)``."""
        for position, property_id in self.wt_p.range_search_symbols(
            0, len(self.wt_p), property_low, property_high
        ):
            subject_begin, subject_end = self._subject_run(position)
            for subject_id, literal in self._pairs_in_subject_run(subject_begin, subject_end):
                yield property_id, subject_id, literal

    def iter_triples(self) -> Iterator[EncodedDatatypeTriple]:
        """All stored triples in PS order (one batched scan per property run)."""
        for position, property_id in enumerate(self.wt_p.to_list()):
            subject_begin, subject_end = self._subject_run(position)
            for subject_id, literal in self._pairs_in_subject_run(subject_begin, subject_end):
                yield property_id, subject_id, literal

    # ------------------------------------------------------------------ #
    # storage accounting
    # ------------------------------------------------------------------ #

    def size_in_bytes(self, include_literals: bool = True) -> int:
        """Approximate storage footprint (optionally excluding literal payload)."""
        total = (
            self.wt_p.size_in_bytes()
            + self.wt_s.size_in_bytes()
            + self.object_pointers.size_in_bytes()
            + self.bm_ps.size_in_bytes()
            + self.bm_so.size_in_bytes()
        )
        if include_literals:
            total += self.literals.size_in_bytes()
        return total
