"""Tests for the measurement helpers and the benchmark harness."""

from __future__ import annotations

import pytest

from repro.bench.harness import format_table, measure_construction, query_latency_row
from repro.bench.measure import Measurement, measure_best_of, measure_call
from repro.baselines.registry import create_system
from repro.workloads.engie import engie_ontology, water_distribution_250
from repro.workloads.lubm import generate_lubm
from repro.workloads.queries import QueryCatalog


class TestMeasurement:
    def test_measure_call_records_components(self):
        measurement = measure_call(lambda: 42, simulated_cost_getter=lambda: 1.5)
        assert measurement.result == 42
        assert measurement.measured_ms >= 0
        assert measurement.simulated_ms == 1.5
        assert measurement.total_ms == pytest.approx(measurement.measured_ms + 1.5)

    def test_measure_best_of_keeps_minimum(self):
        calls = []

        def run():
            calls.append(1)
            return len(calls)

        measurement = measure_best_of(run, repetitions=3)
        assert len(calls) == 3
        assert isinstance(measurement, Measurement)


class TestFormatTable:
    def test_renders_rows_and_handles_missing_values(self):
        text = format_table(
            "Table X",
            ["4", "66"],
            {"SuccinctEdge": [0.3, 3.5], "RDF4Led": [None, 28]},
            unit="ms",
        )
        assert "Table X (ms)" in text
        assert "SuccinctEdge" in text
        assert "n/a" in text
        assert "0.30" in text


class TestHarnessOperations:
    @pytest.fixture(scope="class")
    def tiny_dataset(self):
        return generate_lubm(departments=1, seed=5)

    def test_measure_construction_all_systems(self, tiny_dataset):
        graph = tiny_dataset.graph.head(500)
        for name in ("SuccinctEdge", "RDF4J", "Jena_TDB"):
            measurement = measure_construction(name, graph, tiny_dataset.ontology)
            assert measurement.total_ms > 0

    def test_query_latency_row(self, tiny_dataset):
        catalog = QueryCatalog(tiny_dataset)
        system = create_system("SuccinctEdge")
        system.load(tiny_dataset.graph, ontology=tiny_dataset.ontology)
        query = catalog.by_identifier()["S1"]
        measurement = query_latency_row(system, query, repetitions=1)
        assert measurement is not None
        assert len(measurement.result) == 4

    def test_query_latency_row_handles_unsupported_feature(self, tiny_dataset):
        catalog = QueryCatalog(tiny_dataset)
        system = create_system("RDF4Led")
        system.load(tiny_dataset.graph, ontology=tiny_dataset.ontology)
        reasoning_query = catalog.by_identifier()["R5"]
        assert query_latency_row(system, reasoning_query, repetitions=1) is None

    def test_engie_construction(self):
        measurement = measure_construction("SuccinctEdge", water_distribution_250(), engie_ontology())
        assert measurement.total_ms > 0
