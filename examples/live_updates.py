"""Live updates: delta-overlay ingestion on the edge, end to end.

Where ``examples/edge_stream_monitoring.py`` rebuilds a fresh store for
every measurement graph (the paper's native mode), this example runs the
live-update mode of ``docs/update_lifecycle.md``: one long-lived
``UpdatableSuccinctEdge`` ingests every reading as a delta insert, so

* a reading is queryable the moment it is inserted — no rebuild;
* rules see the whole retained window, enabling cross-instance analytics
  (the GROUP BY trend query below is impossible per-instance);
* old instances are evicted through tombstones once they slide out of the
  retention window;
* the compaction policy folds the delta into a fresh succinct base when it
  grows past its thresholds.

Run with::

    python examples/live_updates.py [instances]
"""

from __future__ import annotations

import sys

from repro.edge import AdministrationServer, AnomalyRule
from repro.store.delta import CompactionPolicy
from repro.workloads.engie import (
    anomaly_detection_query,
    engie_ontology,
    water_distribution_graph,
)

WINDOW_TREND_QUERY = """
PREFIX sosa: <http://www.w3.org/ns/sosa/>
PREFIX qudt: <http://qudt.org/schema/qudt/>
SELECT ?s (COUNT(?o) AS ?readings) (MAX(?v) AS ?peak) WHERE {
  ?s sosa:observes ?o .
  ?o sosa:hasResult ?y .
  ?y qudt:numericValue ?v .
}
GROUP BY ?s ORDER BY DESC(?peak) ?s LIMIT 3
"""


def main() -> None:
    instance_count = int(sys.argv[1]) if len(sys.argv) > 1 else 6

    server = AdministrationServer(
        engie_ontology(),
        rules=[
            AnomalyRule(
                name="pressure-out-of-range",
                query=anomaly_detection_query(),
                severity="critical",
                requires_reasoning=True,
                description="Pressure outside the 3.00-4.50 bar operating range.",
            )
        ],
    )
    registered = server.register_device(
        "pi-live",
        live=True,
        retention_instances=4,
        policy=CompactionPolicy(max_delta_operations=200, max_delta_ratio=None),
    )
    processor = registered.processor
    store = processor.store

    print(f"Live device: {registered.name} (retention window: 4 instances)")
    for index in range(instance_count):
        graph = water_distribution_graph(
            observations_per_sensor=4, stations=1, anomaly_rate=0.3, seed=200 + index
        )
        alerts = server.ingest("pi-live", graph)
        info = store.snapshot_info()
        print(
            f"instance {index}: +{len(graph)} triples -> "
            f"{info['visible_triples']} visible "
            f"({info['base_triples']} base, {info['delta_inserts']} delta, "
            f"{info['delta_tombstones']} tombstones), "
            f"epoch {store.compaction_epoch}.{store.data_epoch}, "
            f"{len(alerts)} alert(s)"
        )

    print("\nCross-instance trend over the retained window (top peaks):")
    for row in store.query(WINDOW_TREND_QUERY):
        sensor = str(row["s"]).rsplit("/", 1)[-1]
        print(f"  {sensor}: {row['readings']} readings, peak {row['peak']}")

    report = store.compact()
    print(
        f"\nExplicit compaction: folded {report.operations_folded} pending ops "
        f"into a {report.triples}-triple base in {report.duration_ms:.1f} ms "
        f"(epoch {store.compaction_epoch}.{store.data_epoch})"
    )

    stats = server.fleet_statistics()["pi-live"]
    print(
        f"Fleet view: {stats['instances']:.0f} instances, "
        f"{stats['alerts']:.0f} alerts, {stats['compactions']:.0f} policy compactions, "
        f"mean {stats['mean_ms']:.2f} ms/instance"
    )


if __name__ == "__main__":
    main()
