"""Concurrent SPARQL serving over a SuccinctEdge (or sharded) store.

The front door of the scale-out layer (``docs/operations.md``):

* :class:`~repro.serve.service.QueryService` — the transport-independent
  core: admission control (bounded worker slots + bounded wait queue),
  per-query cooperative timeouts, an LRU result cache keyed on
  ``(query, reasoning, snapshot epoch)`` that the store's epoch accounting
  invalidates on writes, and serving metrics (p50/p99 latency, hit rate);
* :class:`~repro.serve.server.QueryServer` — SPARQL over HTTP on a
  threading server whose handlers route through one shared
  :class:`QueryService`;
* :class:`~repro.serve.server.SparqlClient` — a dependency-free client for
  examples, tests and the throughput benchmark.

The store underneath can be a single :class:`~repro.store.succinct_edge.SuccinctEdge`,
an updatable one, or a :class:`~repro.store.sharding.ShardedStore` with the
:class:`~repro.query.parallel.ParallelQueryEngine` fanning scans across
shards.

The distributed tier lives in :mod:`repro.serve.cluster`: read replicas
bootstrap from a shipped store image and tail the primary's delta log
(:class:`~repro.serve.cluster.ReplicationSource` /
:class:`~repro.serve.cluster.ClusterReplica`), and a scatter-gather
coordinator (:class:`~repro.serve.cluster.ClusterQueryEngine`) fans
epoch-pinned work units across them with health-checked failover and
hedged, deadline-bounded retries.
"""

from repro.serve.cache import ResultCache
from repro.serve.cluster import (
    ClusterError,
    ClusterQueryEngine,
    ClusterReplica,
    ClusterTimeout,
    EpochConflict,
    HttpReplicationClient,
    LocalReplicationClient,
    ReplicaSet,
    ReplicationSource,
    ReplicaUnavailable,
)
from repro.serve.metrics import ServingMetrics
from repro.serve.server import QueryServer, SparqlClient
from repro.serve.service import (
    QueryOutcome,
    QueryRejected,
    QueryService,
    QueryTimeout,
)

__all__ = [
    "ClusterError",
    "ClusterQueryEngine",
    "ClusterReplica",
    "ClusterTimeout",
    "EpochConflict",
    "HttpReplicationClient",
    "LocalReplicationClient",
    "QueryOutcome",
    "QueryRejected",
    "QueryServer",
    "QueryService",
    "QueryTimeout",
    "ReplicaSet",
    "ReplicaUnavailable",
    "ReplicationSource",
    "ServingMetrics",
    "SparqlClient",
]
