"""Plan-regression smoke: kernel-call budget vs a checked-in baseline.

Runs the fig12 scan queries (S11-S15) plus the BGP and reasoning workloads
(M1-M5, R1-R6) through the default (cost-based) planner with the SDS kernel
counters on, and fails when the total regresses more than 10% against
``benchmarks/baselines/plan_kernel_calls_<scale>.json``.  CI runs this at
small scale on every push, so a planner or estimator change that silently
worsens plans is caught before merge.

Regenerate after an intentional change with::

    REPRO_UPDATE_PLAN_BASELINE=1 python -m pytest benchmarks/test_plan_regression.py -m slow -q -s
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.bench.harness import bench_scale
from repro.query.engine import QueryEngine
from repro.sds.kernels import total_kernel_calls
from repro.store.succinct_edge import SuccinctEdge

BASELINE_DIR = pathlib.Path(__file__).parent / "baselines"
_UPDATE = os.environ.get("REPRO_UPDATE_PLAN_BASELINE", "") not in ("", "0")
_TOLERANCE = 1.10  # fail when total kernel calls regress by more than 10%

#: The measured workload: the paper's scan, BGP and reasoning queries.
_QUERY_IDS = [f"S{i}" for i in range(11, 16)] + [f"M{i}" for i in range(1, 6)] + [
    f"R{i}" for i in range(1, 7)
]


def _baseline_path() -> pathlib.Path:
    return BASELINE_DIR / f"plan_kernel_calls_{bench_scale()}.json"


def test_kernel_calls_do_not_regress(context):
    store = SuccinctEdge.from_graph(context.full_graph, ontology=context.lubm.ontology)
    engine = QueryEngine(store, reasoning=True, planner="cost")
    by_identifier = context.catalog.by_identifier()
    measured = {}
    for identifier in _QUERY_IDS:
        query = by_identifier[identifier]
        engine.execute(query.sparql)  # warm the plan cache
        before = total_kernel_calls()
        result = engine.execute(query.sparql)
        len(result)  # materialize
        measured[identifier] = total_kernel_calls() - before
    total = sum(measured.values())

    path = _baseline_path()
    if _UPDATE or not path.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps({"scale": bench_scale(), "queries": measured, "total": total}, indent=2)
            + "\n"
        )
        if not _UPDATE:
            pytest.skip(f"baseline {path.name} was just created")
        return

    baseline = json.loads(path.read_text())
    budget = baseline["total"] * _TOLERANCE
    per_query = "\n".join(
        f"  {identifier}: {measured[identifier]} (baseline {baseline['queries'].get(identifier)})"
        for identifier in _QUERY_IDS
    )
    print(
        f"\nplan regression check ({bench_scale()} scale): "
        f"total {total} vs baseline {baseline['total']} (budget {budget:.0f})\n{per_query}"
    )
    assert total <= budget, (
        f"total kernel calls regressed: {total} > {budget:.0f} "
        f"(baseline {baseline['total']} + 10%).\n{per_query}\n"
        "If the plan change is intentional, regenerate with "
        "REPRO_UPDATE_PLAN_BASELINE=1."
    )


# --------------------------------------------------------------------------- #
# property-path kernel budgets (adversarial workload, own baseline file)
# --------------------------------------------------------------------------- #


def _path_baseline_path() -> pathlib.Path:
    return BASELINE_DIR / f"path_kernel_calls_{bench_scale()}.json"


def test_path_kernel_calls_do_not_regress():
    """The adversarial path queries must stay inside their pinned budget.

    Same contract as the BGP check above, over the closure-heavy workload of
    :mod:`repro.workloads.adversarial`: a change to the frontier BFS, the
    probe-vs-scan constants or the path cost model that silently inflates
    kernel calls fails here instead of shipping.
    """
    from repro.workloads.adversarial import scaled_workload

    workload = scaled_workload(bench_scale())
    store = SuccinctEdge.from_graph(workload.graph(), ontology=workload.ontology())
    engine = QueryEngine(store, reasoning=False, planner="cost")
    measured = {}
    for query in workload.queries():
        engine.execute(query.sparql)  # warm the plan cache
        before = total_kernel_calls()
        result = engine.execute(query.sparql)
        len(result)  # materialize
        measured[query.identifier] = total_kernel_calls() - before
    total = sum(measured.values())

    path = _path_baseline_path()
    if _UPDATE or not path.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps({"scale": bench_scale(), "queries": measured, "total": total}, indent=2)
            + "\n"
        )
        if not _UPDATE:
            pytest.skip(f"baseline {path.name} was just created")
        return

    baseline = json.loads(path.read_text())
    budget = baseline["total"] * _TOLERANCE
    per_query = "\n".join(
        f"  {identifier}: {calls} (baseline {baseline['queries'].get(identifier)})"
        for identifier, calls in measured.items()
    )
    print(
        f"\npath plan regression check ({bench_scale()} scale): "
        f"total {total} vs baseline {baseline['total']} (budget {budget:.0f})\n{per_query}"
    )
    assert total <= budget, (
        f"path kernel calls regressed: {total} > {budget:.0f} "
        f"(baseline {baseline['total']} + 10%).\n{per_query}\n"
        "If the plan change is intentional, regenerate with "
        "REPRO_UPDATE_PLAN_BASELINE=1."
    )
