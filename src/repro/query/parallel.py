"""Parallel query execution: thread-pool fan-out over shards and batches.

:class:`ParallelExecutor` is a drop-in replacement for
:class:`~repro.query.tp_eval.TriplePatternEvaluator` (same ``evaluate`` /
``evaluate_many`` / ``estimate_cardinality`` surface, so the streaming
operators of :mod:`repro.query.operators` consume it unchanged) that fans
work across a bounded thread pool:

* **scatter-gather for BGP leaves** — a leaf pattern with an unbound subject
  against a :class:`~repro.store.sharding.ShardedStore` is split into one
  task per ``(candidate property × layout × shard)``; the gathered lists are
  emitted in property-major, shard-minor order, which reproduces the
  monolithic evaluation order byte for byte;
* **shard pruning** — a bound subject resolves to exactly one shard through
  the store's subject-interval partitioner, so no fan-out happens (the
  sharded store views route the single probe);
* **batched bind joins** — ``evaluate_many`` groups upstream bindings into
  batches evaluated concurrently with a bounded in-flight window, yielding
  extensions strictly in upstream order (the operator pipeline's emission
  order, and with it ``LIMIT``/``ASK`` early termination up to one window of
  read-ahead, is preserved).  Batches are **sized from the per-shard
  cardinality statistics**: high-fan-out patterns get smaller batches so
  tasks stay balanced and read-ahead stays bounded, and leaf scatters skip
  shards whose per-shard counts
  (:meth:`~repro.store.sharding.ShardedStore.shard_property_cardinalities`)
  say they hold nothing for the probed property.

Honest scaling note: CPython's GIL serialises the pure-Python kernels, so on
a single process the fan-out does not reduce wall-clock latency — the win is
architectural (per-shard work units that a free-threaded build, subprocess
workers, or native kernels can execute concurrently) and the pattern is the
same scatter-gather a distributed deployment would use.  The serving layer
(:mod:`repro.serve`) gets its concurrency from overlapping whole requests
instead; see ``docs/performance.md``.
"""

from __future__ import annotations

import os
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Iterator, List, Optional

from repro.caching import LruCache
from repro.query.cardinality import CardinalityEstimator
from repro.query.engine import QueryEngine
from repro.query.tp_eval import TriplePatternEvaluator
from repro.rdf.namespaces import RDF_TYPE
from repro.rdf.terms import Literal, URI
from repro.sparql.ast import TriplePattern, Variable
from repro.sparql.bindings import Binding
from repro.store.succinct_edge import SuccinctEdge

#: Default number of upstream bindings grouped into one bind-join task.
DEFAULT_BATCH_SIZE = 64

#: Rows one bind-join task should produce under the adaptive batch sizing
#: (per-shard cardinalities tell us the expected per-binding fan-out).
_TARGET_ROWS_PER_TASK = 256


class ParallelExecutor:
    """Thread-pool evaluator with the TriplePatternEvaluator interface.

    Parameters
    ----------
    store:
        The store to evaluate against; a
        :class:`~repro.store.sharding.ShardedStore` additionally enables
        per-shard leaf scatter-gather.
    reasoning:
        Passed through to the wrapped evaluator.
    inner:
        An existing :class:`TriplePatternEvaluator` to wrap (one is created
        when omitted).
    max_workers:
        Thread-pool size; defaults to the shard count (at least 2).
    batch_size:
        Upstream bindings per bind-join task.
    """

    def __init__(
        self,
        store: SuccinctEdge,
        reasoning: bool = True,
        inner: Optional[TriplePatternEvaluator] = None,
        max_workers: Optional[int] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        self.store = store
        self.reasoning = reasoning
        self.inner = (
            inner
            if inner is not None
            else TriplePatternEvaluator(store, reasoning=reasoning)
        )
        shard_list = getattr(store, "shards", None)
        self.shards: List[SuccinctEdge] = list(shard_list) if shard_list else [store]
        self.max_workers = max_workers if max_workers else max(2, len(self.shards))
        self.batch_size = max(1, batch_size)
        #: In-flight bind-join batches beyond the one being consumed.
        self.window = self.max_workers + 1
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        # Per-shard cardinality plumbing: the estimator sizes bind-join
        # batches from the expected per-binding fan-out, and the count cache
        # (keyed on the store epoch) lets leaf scatters skip shards that
        # hold no triples for the probed property.
        statistics = getattr(store, "statistics", None)
        self._cardinality = CardinalityEstimator(statistics, reasoning=reasoning)
        self._shard_count_cache = LruCache(512)

    # ------------------------------------------------------------------ #
    # pool lifecycle
    # ------------------------------------------------------------------ #

    def _ensure_pool(self) -> ThreadPoolExecutor:
        pool = self._pool
        if pool is None:
            with self._pool_lock:
                pool = self._pool
                if pool is None:
                    pool = ThreadPoolExecutor(
                        max_workers=self.max_workers,
                        thread_name_prefix="succinctedge-query",
                    )
                    self._pool = pool
        return pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent; a later call re-creates it)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # TriplePatternEvaluator interface
    # ------------------------------------------------------------------ #

    def estimate_cardinality(self, pattern: TriplePattern) -> int:
        """Delegated to the wrapped evaluator (sharded views sum exactly)."""
        return self.inner.estimate_cardinality(pattern)

    def expand_frontier(self, forward_pids, inverse_pids, frontier_ids, frontier_literals):
        """One property-path BFS round, scattered shard-parallel.

        Each shard expands the *whole* frontier against its local triples
        (frontier ids are global dictionary ids, so no routing is needed);
        the sorted distinct union of the per-shard one-step results equals
        the monolithic expansion.  Shards holding none of the candidate
        properties are pruned via the epoch-keyed shard-cardinality cache.
        """
        from repro.query.paths import expand_frontier_local, merge_expansions

        if len(self.shards) < 2:
            return self.inner.expand_frontier(
                forward_pids, inverse_pids, frontier_ids, frontier_literals
            )
        holding: List[SuccinctEdge] = []
        seen = set()
        for property_id in list(forward_pids) + list(inverse_pids):
            counts = self._property_shard_counts(property_id)
            for shard in self._shards_holding(counts):
                if id(shard) not in seen:
                    seen.add(id(shard))
                    holding.append(shard)
        if not holding:
            return [], []
        if len(holding) == 1:
            return expand_frontier_local(
                holding[0], forward_pids, inverse_pids, frontier_ids, frontier_literals
            )
        pool = self._ensure_pool()
        futures = [
            pool.submit(
                expand_frontier_local,
                shard,
                forward_pids,
                inverse_pids,
                frontier_ids,
                frontier_literals,
            )
            for shard in holding
        ]
        return merge_expansions(future.result() for future in futures)

    def evaluate(self, pattern: TriplePattern, binding: Binding) -> Iterator[Binding]:
        """One pattern evaluation; leaf patterns scatter across shards."""
        scattered = self._try_scatter(pattern, binding)
        if scattered is not None:
            return scattered
        return self.inner.evaluate(pattern, binding)

    def evaluate_all(self, pattern: TriplePattern) -> List[Binding]:
        """Evaluate with no initial binding (convenience, mirrors tp_eval)."""
        return list(self.evaluate(pattern, Binding()))

    def evaluate_many(
        self, pattern: TriplePattern, bindings: Iterable[Binding]
    ) -> Iterator[Binding]:
        """Batched, ordered bind-propagation join across the thread pool.

        Upstream bindings are pulled at most ``window × batch_size`` ahead
        of the consumer; results stream strictly in upstream order, so the
        emission is byte-identical to the sequential evaluator's.
        """
        pool = self._ensure_pool()
        inner_evaluate = self.inner.evaluate

        def expand(chunk: List[Binding]) -> List[Binding]:
            results: List[Binding] = []
            for one in chunk:
                results.extend(inner_evaluate(pattern, one))
            return results

        return self._windowed_many(
            pattern,
            bindings,
            submit=lambda chunk: pool.submit(expand, chunk),
            drain=lambda future: future.result(),
        )

    def _windowed_many(
        self, pattern: TriplePattern, bindings: Iterable[Binding], submit, drain
    ) -> Iterator[Binding]:
        """The shared windowed, order-preserving bind-join drain.

        ``submit(chunk)`` dispatches one batch of upstream bindings and
        returns a ticket; ``drain(ticket)`` blocks for (an iterable of) its
        result rows.  The three execution backends differ only in what a
        ticket is — a thread-pool future (here), a process-pool future
        (:mod:`repro.query.multiproc`) or an HTTP round trip racing on a
        local thread pool (:mod:`repro.serve.cluster`) — while the
        windowing, batching and in-order emission (and with them
        byte-identity to the sequential engine) live in this one place.
        """
        batch_size = self._sized_batch(pattern)
        pending = []  # ordered in-flight tickets
        chunk: List[Binding] = []
        for binding in bindings:
            scattered = self._try_scatter(pattern, binding)
            if scattered is not None:
                # Keep emission order: drain everything queued before the
                # scatterable binding, then fan it out across shards.
                if chunk:
                    pending.append(submit(chunk))
                    chunk = []
                while pending:
                    yield from drain(pending.pop(0))
                yield from scattered
                continue
            chunk.append(binding)
            if len(chunk) >= batch_size:
                pending.append(submit(chunk))
                chunk = []
                while len(pending) > self.window:
                    yield from drain(pending.pop(0))
        if chunk:
            pending.append(submit(chunk))
        while pending:
            yield from drain(pending.pop(0))

    def _sized_batch(self, pattern: TriplePattern) -> int:
        """Batch size for one bind join, targeting a fixed rows-per-task.

        Sizes batches so one task produces about
        :data:`_TARGET_ROWS_PER_TASK` rows — high-fan-out patterns get
        smaller batches so tasks stay balanced across the pool and
        read-ahead stays bounded — never exceeding the configured batch
        size and never dropping below 8.  Falls back to the static size
        when the statistics cannot estimate the pattern.
        """
        if self._cardinality.statistics is None:
            return self.batch_size
        if isinstance(pattern.predicate, Variable):
            return self.batch_size
        estimate = self._cardinality.estimate_pattern(pattern)
        if estimate.rows <= 0:
            return self.batch_size
        # The upstream bindings may fix either *variable* slot (subject for
        # SS joins, object for SO/OO), so size against the worst-case
        # fan-out — rows per distinct value of the smaller-distinct variable
        # side.  Constant slots carry no distinct statistic (the estimate
        # already divided their selectivity out), so they never shrink the
        # batch: a (?s a C) type check keeps the full batch, as it should.
        candidates = []
        if isinstance(pattern.subject, Variable):
            candidates.append(max(1.0, estimate.subject_distinct))
        if isinstance(pattern.object, Variable):
            candidates.append(max(1.0, estimate.object_distinct))
        if not candidates:
            return self.batch_size
        fanout = estimate.rows / min(candidates)
        if fanout <= 0:
            return self.batch_size
        proposed = int(_TARGET_ROWS_PER_TASK / fanout)
        if proposed >= self.batch_size:
            return self.batch_size
        return max(8, proposed)

    # ------------------------------------------------------------------ #
    # per-shard cardinalities (scatter pruning)
    # ------------------------------------------------------------------ #

    def _cached_counts(self, key, compute) -> Optional[List[int]]:
        hit, counts = self._shard_count_cache.get(key)
        if not hit:
            counts = compute()
            self._shard_count_cache.put(key, counts)
        return counts

    def _property_shard_counts(self, property_id: int) -> Optional[List[int]]:
        """Per-shard triple counts for a property (``None`` off sharded stores)."""
        counts_fn = getattr(self.store, "shard_property_cardinalities", None)
        if counts_fn is None:
            return None
        key = ("p", property_id, getattr(self.store, "snapshot_epoch", None))
        return self._cached_counts(key, lambda: counts_fn(property_id))

    def _concept_shard_counts(self, low: int, high: int) -> Optional[List[int]]:
        """Per-shard ``rdf:type`` counts for a concept interval."""
        counts_fn = getattr(self.store, "shard_concept_cardinalities", None)
        if counts_fn is None:
            return None
        key = ("t", low, high, getattr(self.store, "snapshot_epoch", None))
        return self._cached_counts(key, lambda: counts_fn(low, high))

    def _shards_holding(self, counts: Optional[List[int]]) -> List[SuccinctEdge]:
        """The shards with a non-zero count, in shard order.

        Skipping empty shards cannot change the emission (they contribute
        nothing) but saves one task — and one thread-pool round trip — per
        (property × layout × empty shard).
        """
        if counts is None or len(counts) != len(self.shards):
            return self.shards
        return [shard for shard, count in zip(self.shards, counts) if count]

    def _shard_indexes_holding(self, counts: Optional[List[int]]) -> List[int]:
        """Like :meth:`_shards_holding` but as shard *indexes*.

        The process execution backend (:mod:`repro.query.multiproc`) ships
        shard indexes instead of shard objects — the worker resolves them
        against its own mapped copy of the store.
        """
        if counts is None or len(counts) != len(self.shards):
            return list(range(len(self.shards)))
        return [index for index, count in enumerate(counts) if count]

    # ------------------------------------------------------------------ #
    # leaf scatter-gather
    # ------------------------------------------------------------------ #

    def _try_scatter(
        self, pattern: TriplePattern, binding: Binding
    ) -> Optional[Iterator[Binding]]:
        """A lazy scatter-gather stream, or ``None`` when fan-out cannot help.

        Fan-out applies only with 2+ shards, a constant predicate and an
        unbound subject; a bound subject is instead *pruned* to its single
        owning shard by the sharded store views (no fan-out needed), and an
        unbound predicate falls back to the sequential evaluator.
        """
        if len(self.shards) < 2:
            return None
        resolve = TriplePatternEvaluator._resolve
        subject_term, subject_var = resolve(pattern.subject, binding)
        if subject_term is not None:
            return None  # pruning case: the owning shard answers alone
        predicate_term, _ = resolve(pattern.predicate, binding)
        if predicate_term is None or not isinstance(predicate_term, URI):
            return None
        object_slot = resolve(pattern.object, binding)
        if predicate_term == RDF_TYPE:
            object_term, _ = object_slot
            if object_term is None or not isinstance(object_term, URI):
                return None
            return self._scatter_rdf_type(subject_var, object_term, binding)
        return self._scatter_property(predicate_term, subject_var, object_slot, binding)

    def _scatter_rdf_type(
        self, subject_var: str, object_term: URI, binding: Binding
    ) -> Iterator[Binding]:
        """``?s rdf:type C``: one subjects-of-interval task per shard."""
        store = self.store
        concept_id = store.concepts.try_locate(object_term)
        if concept_id is None:
            return
        pool = self._ensure_pool()
        if self.reasoning:
            low, high = store.concepts.interval(object_term)
            shards = self._shards_holding(self._concept_shard_counts(low, high))
            futures = [
                pool.submit(shard.type_store.subjects_of_interval, low, high)
                for shard in shards
            ]
        else:
            shards = self._shards_holding(
                self._concept_shard_counts(concept_id, concept_id + 1)
            )
            futures = [
                pool.submit(shard.type_store.subjects_of, concept_id)
                for shard in shards
            ]
        extract = store.instances.extract
        extend = binding.extended
        # Shard order == ascending subject-interval order: the gathered
        # concatenation reproduces the monolithic emission order.
        for future in futures:
            for subject_id in future.result():
                yield extend(subject_var, extract(subject_id))

    def _scatter_property(
        self,
        predicate_term: URI,
        subject_var: str,
        object_slot,
        binding: Binding,
    ) -> Iterator[Binding]:
        """Constant-predicate leaf: tasks per (property × layout × shard).

        Emission mirrors
        :meth:`~repro.query.tp_eval.TriplePatternEvaluator._evaluate_property`
        — property-major (ascending candidate identifiers, the LiteMat
        interval order), object layout before datatype layout, shards in
        ascending subject-interval order within each.
        """
        object_term, object_var = object_slot
        store = self.store
        property_ids = self.inner._candidate_property_ids(predicate_term)
        if not property_ids:
            return
        pool = self._ensure_pool()
        extract = store.instances.extract
        extend = binding.extended

        if object_term is not None:
            # (?s, p, o): Algorithm 4 fanned per shard.
            object_id: Optional[int] = None
            if not isinstance(object_term, Literal):
                object_id = store.instances.try_locate(object_term)
                if object_id is None:
                    return
            futures = []
            for property_id in property_ids:
                shards = self._shards_holding(self._property_shard_counts(property_id))
                for shard in shards:
                    if isinstance(object_term, Literal):
                        futures.append(
                            pool.submit(
                                shard.datatype_store.subjects_for, property_id, object_term
                            )
                        )
                    else:
                        futures.append(
                            pool.submit(
                                shard.object_store.subjects_for, property_id, object_id
                            )
                        )
            for future in futures:
                for found_subject in future.result():
                    yield extend(subject_var, extract(found_subject))
            return

        # (?s, p, ?o): two batched property-run scans per shard.  Properties
        # are scheduled one ahead of consumption (not all up front): a
        # consumer that stops early — the LIMIT-paginated scans of the
        # serving mix — never pays for the property runs it never pulls,
        # while the per-shard tasks of the current and next property still
        # run concurrently.
        diagonal = subject_var == object_var
        base = binding.as_dict()
        adopt = Binding._adopt

        def schedule(property_id: int):
            shards = self._shards_holding(self._property_shard_counts(property_id))
            return (
                [
                    pool.submit(
                        lambda s=shard, p=property_id: list(s.object_store.pairs_for_property(p))
                    )
                    for shard in shards
                ],
                [
                    pool.submit(
                        lambda s=shard, p=property_id: list(s.datatype_store.pairs_for_property(p))
                    )
                    for shard in shards
                ],
            )

        window = []  # at most 2 scheduled properties: current + next
        index = 0
        while index < len(property_ids) or window:
            while index < len(property_ids) and len(window) < 2:
                window.append(schedule(property_ids[index]))
                index += 1
            object_futures, datatype_futures = window.pop(0)
            for future in object_futures:
                for found_subject, found_object in future.result():
                    if diagonal:
                        if found_subject == found_object:
                            yield extend(subject_var, extract(found_subject))
                        continue
                    values = dict(base)
                    values[subject_var] = extract(found_subject)
                    values[object_var] = extract(found_object)
                    yield adopt(values)
            for future in datatype_futures:
                for found_subject, literal in future.result():
                    if diagonal:
                        continue  # a subject URI never equals a literal
                    values = dict(base)
                    values[subject_var] = extract(found_subject)
                    values[object_var] = literal
                    yield adopt(values)


def gil_enabled() -> bool:
    """Whether this interpreter runs with the GIL (True on stock CPython).

    CPython 3.13's free-threaded builds (``3.13t``) expose
    ``sys._is_gil_enabled``; on every other interpreter the GIL is on.
    """
    probe = getattr(sys, "_is_gil_enabled", None)
    return True if probe is None else bool(probe())


def select_backend(requested: str = "auto") -> str:
    """Resolve an execution backend name to a concrete one.

    ``auto`` picks threads on a free-threaded interpreter (real parallelism
    without process overhead), processes on a multi-core GIL build (the only
    way to scale compute there), and threads on a single core (I/O overlap
    is all there is to win).  ``free-threaded`` is an explicit assertion and
    fails loudly on a GIL build instead of silently degrading.
    """
    if requested == "auto":
        if not gil_enabled():
            return "threads"
        return "process" if (os.cpu_count() or 1) > 1 else "threads"
    if requested == "free-threaded":
        if gil_enabled():
            raise ValueError(
                "the free-threaded backend needs a GIL-free interpreter (CPython 3.13t); "
                "this build has the GIL — use 'threads', 'process' or 'auto'"
            )
        return "threads"
    if requested in ("sequential", "threads", "process"):
        return requested
    raise ValueError(
        f"unknown execution backend {requested!r}; "
        "expected auto | sequential | threads | process | free-threaded"
    )


def create_parallel_engine(
    store: SuccinctEdge,
    backend: str = "auto",
    reasoning: bool = True,
    max_workers: Optional[int] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    **kwargs,
) -> QueryEngine:
    """One engine for ``store`` on the resolved backend.

    ``sequential`` returns a plain :class:`~repro.query.engine.QueryEngine`;
    ``threads`` (and ``free-threaded``, once validated) a
    :class:`ParallelQueryEngine`; ``process`` a
    :class:`~repro.query.multiproc.ProcessPoolQueryEngine` (extra ``kwargs``
    such as ``pool`` / ``task_timeout`` / ``mp_context`` are forwarded to
    it).  All three produce byte-identical results by construction.
    """
    resolved = select_backend(backend)
    if resolved == "sequential":
        return QueryEngine(store, reasoning=reasoning)
    if resolved == "process":
        from repro.query.multiproc import ProcessPoolQueryEngine

        return ProcessPoolQueryEngine(
            store,
            reasoning=reasoning,
            max_workers=max_workers,
            batch_size=batch_size,
            **kwargs,
        )
    return ParallelQueryEngine(
        store, reasoning=reasoning, max_workers=max_workers, batch_size=batch_size
    )


class ParallelQueryEngine(QueryEngine):
    """A :class:`QueryEngine` whose evaluator fans out across a thread pool.

    Byte-identical results to the sequential engine by construction (same
    plans, same emission order); the differential suite verifies it on the
    full paper workload.  ``close()`` releases the worker pool.
    """

    def __init__(
        self,
        store: SuccinctEdge,
        reasoning: bool = True,
        join_strategy: str = "auto",
        max_workers: Optional[int] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        planner: str = "cost",
    ) -> None:
        super().__init__(
            store, reasoning=reasoning, join_strategy=join_strategy, planner=planner
        )
        # The optimizer keeps its runtime estimator (bound to the sequential
        # evaluator, which the parallel one delegates to) — plans, and with
        # them result order, cannot diverge from the sequential engine.
        self.evaluator = ParallelExecutor(
            store,
            reasoning=reasoning,
            inner=self.evaluator,
            max_workers=max_workers,
            batch_size=batch_size,
        )

    def close(self) -> None:
        """Release the evaluator's worker pool."""
        self.evaluator.close()

    def __enter__(self) -> "ParallelQueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
