"""Join-aware cardinality estimation for the cost-based planner.

The paper's Algorithm 1 estimates a triple pattern as the *minimum* over the
occurrence counts of its constant slots — an independence bound that says
nothing about how patterns combine.  This module replaces that bound for the
cost-based planner:

* **per-pattern estimates** come from the :class:`~repro.dictionary.statistics.PropertyProfile`
  rows collected at build time (triples ``T``, distinct subjects ``DS``,
  distinct objects ``DO``): a bound subject keeps ``T / DS`` rows, a bound
  object ``T / DO``, and reasoning-mode patterns use the profile summed over
  the predicate's LiteMat interval;
* **join estimates** chain selectivities System-R style:
  ``|L ⋈v R| = |L| · |R| / max(V(L, v), V(R, v))`` with per-variable
  distinct-value counts ``V`` tracked through the plan prefix;
* **star refinement** uses the characteristic-set summary: a subject star
  (all patterns sharing one subject variable, each resolving to a single
  stored property/concept) is estimated directly from the signatures real
  subjects exhibit, which captures the correlation the independence
  assumption misses.

Everything degrades gracefully: no profiles → dictionary occurrence counts;
no statistics at all → the runtime estimator (Algorithm-2 SDS counts), and
finally a shape-rank pseudo-cardinality so planning stays deterministic on
empty stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.dictionary.statistics import DictionaryStatistics, Marker
from repro.rdf.terms import URI
from repro.sparql.ast import TriplePattern, Variable

#: Pseudo-cardinalities per pattern shape, used only when no statistics and
#: no runtime estimator are available (mirrors the Heuristic-1 ranks so the
#: fallback ordering matches the paper's planner).
_SHAPE_FALLBACK = {
    "s,p,o": 1.0,
    "s,?p,o": 2.0,
    "s,p,?o": 32.0,
    "?s,p,o": 64.0,
    "s,?p,?o": 256.0,
    "?s,p,?o": 256.0,
    "?s,?p,o": 256.0,
    "?s,?p,?o": 1024.0,
}


@dataclass
class PatternEstimate:
    """Base statistics of one triple pattern, before any join context.

    ``rows`` is the expected result size of evaluating the pattern alone;
    ``subject_distinct`` / ``object_distinct`` estimate the distinct values a
    *variable* in that slot would take (meaningless for constant slots);
    ``probe_width`` is the number of candidate property identifiers one
    evaluation probes (> 1 for reasoning-mode predicates with stored
    sub-properties); ``marker`` is the characteristic-set marker when the
    pattern resolves to exactly one stored property/concept.
    """

    rows: float
    subject_distinct: float = 1.0
    object_distinct: float = 1.0
    probe_width: float = 1.0
    marker: Optional[Marker] = None

    def distinct_for(self, name: str, pattern: TriplePattern) -> float:
        """Distinct-value estimate of variable ``name`` within this pattern."""
        values: List[float] = []
        if isinstance(pattern.subject, Variable) and pattern.subject.name == name:
            values.append(self.subject_distinct)
        if isinstance(pattern.object, Variable) and pattern.object.name == name:
            values.append(self.object_distinct)
        if isinstance(pattern.predicate, Variable) and pattern.predicate.name == name:
            values.append(max(1.0, self.probe_width))
        return min(values) if values else 1.0


@dataclass
class JoinState:
    """The estimator's view of a plan prefix: rows plus per-variable distincts."""

    rows: float
    var_distinct: Dict[str, float] = field(default_factory=dict)

    def copy(self) -> "JoinState":
        """An independent copy (DP transitions must not share the dict)."""
        return JoinState(rows=self.rows, var_distinct=dict(self.var_distinct))


class CardinalityEstimator:
    """Join-aware estimates over one store's statistics.

    Parameters
    ----------
    statistics:
        The store's :class:`DictionaryStatistics` (``None`` degrades to the
        runtime estimator / shape fallbacks).
    reasoning:
        Whether predicate/concept constants expand over their LiteMat
        hierarchy intervals (the engine's reasoning mode must match, or the
        estimates describe a different evaluation).
    runtime_estimator:
        Optional Algorithm-2 fallback computing exact pattern counts on the
        SDS rank/select directories.
    """

    def __init__(
        self,
        statistics: Optional[DictionaryStatistics] = None,
        reasoning: bool = True,
        runtime_estimator: Optional[Callable[[TriplePattern], int]] = None,
    ) -> None:
        self.statistics = statistics
        self.reasoning = reasoning
        self.runtime_estimator = runtime_estimator
        #: Per-pattern estimates are pure functions of (pattern, statistics
        #: version); the cache is checked against the version so delta
        #: writes invalidate it.
        self._cache: Dict[TriplePattern, PatternEstimate] = {}
        self._cache_version: Optional[int] = None

    # ------------------------------------------------------------------ #
    # per-pattern estimates
    # ------------------------------------------------------------------ #

    def estimate_pattern(self, pattern: TriplePattern) -> PatternEstimate:
        """The (cached) base estimate of one triple pattern.

        Thread note: engines (and with them this estimator) are shared
        across serving worker threads while writes bump the statistics
        version.  The version is captured before computing and re-checked
        before storing, so an estimate computed under an older version is
        never pinned into the fresh cache generation.
        """
        version = self.statistics.version if self.statistics is not None else None
        if version != self._cache_version:
            self._cache = {}
            self._cache_version = version
        cache = self._cache
        cached = cache.get(pattern)
        if cached is None:
            cached = self._estimate_pattern(pattern)
            if self._cache_version == version and self._cache is cache:
                cache[pattern] = cached
        return cached

    def _estimate_pattern(self, pattern: TriplePattern) -> PatternEstimate:
        stats = self.statistics
        if stats is None:
            return self._fallback_estimate(pattern)
        subject_bound = not isinstance(pattern.subject, Variable)
        object_bound = not isinstance(pattern.object, Variable)
        if isinstance(pattern.predicate, Variable):
            total = float(stats.total_triple_mass() + stats.type_triple_count)
            universe = float(max(1, stats.instance_universe))
            rows = total
            if subject_bound:
                rows = float(stats.instance_cardinality(pattern.subject))
            elif object_bound:
                if isinstance(pattern.object, URI):
                    rows = float(stats.instance_cardinality(pattern.object))
                else:
                    # Literals are not indexed by the instance dictionary, so
                    # a bound-literal object cannot be looked up — assume one
                    # average term's worth of triples instead of zero (a zero
                    # estimate would make the full scan look free and anchor
                    # the plan on the most expensive pattern).
                    rows = max(1.0, total / universe)
            width = float(max(1, len(stats.profiled_property_ids()) + 1))
            return PatternEstimate(
                rows=rows,
                subject_distinct=min(universe, max(1.0, rows)),
                object_distinct=min(universe, max(1.0, rows)),
                probe_width=width,
            )
        if pattern.is_rdf_type:
            return self._estimate_rdf_type(pattern, subject_bound, object_bound)
        return self._estimate_property(pattern, subject_bound, object_bound)

    def _estimate_rdf_type(
        self, pattern: TriplePattern, subject_bound: bool, object_bound: bool
    ) -> PatternEstimate:
        stats = self.statistics
        assert stats is not None
        if object_bound:
            concept = pattern.object
            rows = float(stats.concept_cardinality(concept, with_hierarchy=self.reasoning))
            marker = self._single_concept_marker(concept)
            if subject_bound:
                occurrence = stats.instance_cardinality(pattern.subject)
                bounded = min(1.0, rows) if occurrence else 0.0
                return PatternEstimate(rows=bounded, marker=marker)
            # (s, c) pairs are unique in the type store: distinct subjects
            # equal the triple count.
            return PatternEstimate(
                rows=rows, subject_distinct=max(1.0, rows), marker=marker
            )
        type_triples = float(stats.type_triple_count)
        universe = float(max(1, stats.instance_universe))
        if subject_bound:
            occurrence = stats.instance_cardinality(pattern.subject)
            rows = max(1.0, type_triples / universe) if occurrence else 0.0
            return PatternEstimate(rows=rows, object_distinct=max(1.0, rows))
        return PatternEstimate(
            rows=type_triples,
            subject_distinct=min(universe, max(1.0, type_triples)),
            object_distinct=max(1.0, float(len(stats.concepts))),
        )

    def _estimate_property(
        self, pattern: TriplePattern, subject_bound: bool, object_bound: bool
    ) -> PatternEstimate:
        stats = self.statistics
        assert stats is not None
        predicate = pattern.predicate
        profile = None
        width = 1.0
        marker: Optional[Marker] = None
        if self.reasoning and predicate in stats.properties:
            low, high = stats.properties.interval(predicate)
            profile = stats.interval_profile(low, high)
            stored = [p for p in stats.profiled_property_ids() if low <= p < high]
            width = float(max(1, len(stored)))
            if len(stored) == 1:
                marker = ("p", stored[0])
        else:
            property_id = stats.properties.try_locate(predicate)
            if property_id is not None:
                profile = stats.property_profile(property_id)
                marker = ("p", property_id)
        if profile is None or profile.triples <= 0:
            # No profile: occurrence counts, then the runtime estimator.
            triples = float(
                stats.property_cardinality(predicate, with_hierarchy=self.reasoning)
            )
            if triples <= 0 and self.runtime_estimator is not None:
                triples = float(self.runtime_estimator(pattern))
            distinct_s = distinct_o = max(1.0, triples)
        else:
            triples = float(profile.triples)
            distinct_s = float(max(1, profile.current_distinct_subjects()))
            distinct_o = float(max(1, profile.current_distinct_objects()))
        if triples <= 0:
            return PatternEstimate(rows=0.0, probe_width=width, marker=marker)
        rows = triples
        if subject_bound:
            occurrence = stats.instance_cardinality(pattern.subject)
            rows = rows / distinct_s if occurrence else 0.0
        if object_bound:
            if isinstance(pattern.object, URI) and not stats.instance_cardinality(
                pattern.object
            ):
                rows = 0.0  # unknown URI constants cannot match
            else:
                # Known URIs and literals (which the instance dictionary does
                # not index) keep the T / DO estimate.
                rows = rows / distinct_o
        return PatternEstimate(
            rows=rows,
            subject_distinct=distinct_s,
            object_distinct=distinct_o,
            probe_width=width,
            marker=marker,
        )

    def _single_concept_marker(self, concept) -> Optional[Marker]:
        stats = self.statistics
        assert stats is not None
        concept_id = stats.concepts.try_locate(concept)
        if concept_id is None:
            return None
        if not self.reasoning:
            return ("t", concept_id)
        # A LiteMat leaf's interval still spans its unused suffix space, so
        # the width says nothing — what matters is how many *stored*
        # concepts (ids with recorded rdf:type occurrences, i.e. candidate
        # characteristic-set markers) the interval contains.  Exactly one
        # stored concept means the reasoning probe and the marker agree; a
        # wider hierarchy matches *any* stored sub-concept, which the
        # superset test of the characteristic sets cannot express.
        low, high = stats.concepts.interval(concept)
        stored = [
            identifier
            for identifier in stats.concepts.identifiers()
            if low <= identifier < high and stats.concepts.occurrences(identifier) > 0
        ]
        if len(stored) == 1:
            return ("t", stored[0])
        return None

    def _fallback_estimate(self, pattern: TriplePattern) -> PatternEstimate:
        if self.runtime_estimator is not None:
            rows = float(self.runtime_estimator(pattern))
        else:
            rows = _SHAPE_FALLBACK.get(pattern.shape(), 256.0)
            if pattern.is_rdf_type:
                # Mirror Heuristic 1: the dedicated rdf:type store ranks
                # above the PSO shapes.
                rows = rows / 4.0
        bound = max(1.0, rows)
        return PatternEstimate(rows=rows, subject_distinct=bound, object_distinct=bound)

    # ------------------------------------------------------------------ #
    # property-path estimates
    # ------------------------------------------------------------------ #

    #: Expected BFS expansion of a transitive closure relative to its base
    #: relation (rounds × average fan-out is unknowable without running the
    #: query; 3.0 matches shallow real-world hierarchies and keeps closures
    #: ranked after their base links but before full scans).
    CLOSURE_EXPANSION = 3.0

    def estimate_path(self, pattern) -> float:
        """Expected rows of one :class:`PropertyPathPattern`, evaluated alone.

        Link leaves reuse :meth:`estimate_pattern` through an equivalent
        triple pattern; composite forms combine the leaf figures
        structurally — sequence multiplies per-step fan-out, alternation
        adds, the transitive forms scale by :data:`CLOSURE_EXPANSION`, and a
        negated set degrades to the total triple mass.  Bound endpoints
        divide by the matching distinct counts, mirroring the System-R rule.
        """
        rows = self._path_rows(pattern.path)
        subject_bound = not isinstance(pattern.subject, Variable)
        object_bound = not isinstance(pattern.object, Variable)
        if subject_bound:
            rows = rows / max(1.0, self._path_subject_distinct(pattern.path))
        if object_bound:
            rows = rows / max(1.0, self._path_object_distinct(pattern.path))
        return max(0.0, rows)

    def _path_link_estimate(self, predicate) -> PatternEstimate:
        return self.estimate_pattern(
            TriplePattern(Variable("__path_s"), predicate, Variable("__path_o"))
        )

    def _total_mass(self) -> float:
        stats = self.statistics
        if stats is not None:
            return float(stats.total_triple_mass() + stats.type_triple_count)
        return 1024.0

    def _path_rows(self, path) -> float:
        from repro.sparql.ast import (
            PathAlternative,
            PathInverse,
            PathLink,
            PathNegatedSet,
            PathOneOrMore,
            PathSequence,
            PathZeroOrMore,
            PathZeroOrOne,
        )

        if isinstance(path, PathLink):
            return self._path_link_estimate(path.predicate).rows
        if isinstance(path, PathInverse):
            return self._path_rows(path.path)
        if isinstance(path, PathSequence):
            steps = list(path.steps)
            rows = self._path_rows(steps[0])
            for step in steps[1:]:
                step_rows = self._path_rows(step)
                fanout = step_rows / max(1.0, self._path_subject_distinct(step))
                rows = rows * fanout
            return rows
        if isinstance(path, PathAlternative):
            return sum(self._path_rows(branch) for branch in path.branches)
        if isinstance(path, PathZeroOrOne):
            # One-step pairs plus the zero-length diagonal over the term
            # domain (approximated by the distinct subjects of the graph).
            return self._path_rows(path.path) + self._path_subject_distinct(path.path)
        if isinstance(path, PathZeroOrMore):
            return (
                self._path_rows(path.path) * self.CLOSURE_EXPANSION
                + self._path_subject_distinct(path.path)
            )
        if isinstance(path, PathOneOrMore):
            return self._path_rows(path.path) * self.CLOSURE_EXPANSION
        if isinstance(path, PathNegatedSet):
            return self._total_mass()
        return self._total_mass()

    def _path_subject_distinct(self, path) -> float:
        """Distinct sources of the path's relation (for bound-subject division)."""
        from repro.sparql.ast import (
            PathAlternative,
            PathInverse,
            PathLink,
            PathOneOrMore,
            PathSequence,
            PathZeroOrMore,
            PathZeroOrOne,
        )

        if isinstance(path, PathLink):
            return self._path_link_estimate(path.predicate).subject_distinct
        if isinstance(path, PathInverse):
            return self._path_object_distinct(path.path)
        if isinstance(path, PathSequence):
            return self._path_subject_distinct(path.steps[0])
        if isinstance(path, PathAlternative):
            return sum(self._path_subject_distinct(b) for b in path.branches)
        if isinstance(path, (PathZeroOrOne, PathZeroOrMore, PathOneOrMore)):
            return self._path_subject_distinct(path.path)
        return max(1.0, self._total_mass() ** 0.5)

    def _path_object_distinct(self, path) -> float:
        """Distinct targets of the path's relation (for bound-object division)."""
        from repro.sparql.ast import (
            PathAlternative,
            PathInverse,
            PathLink,
            PathOneOrMore,
            PathSequence,
            PathZeroOrMore,
            PathZeroOrOne,
        )

        if isinstance(path, PathLink):
            return self._path_link_estimate(path.predicate).object_distinct
        if isinstance(path, PathInverse):
            return self._path_subject_distinct(path.path)
        if isinstance(path, PathSequence):
            return self._path_object_distinct(path.steps[-1])
        if isinstance(path, PathAlternative):
            return sum(self._path_object_distinct(b) for b in path.branches)
        if isinstance(path, (PathZeroOrOne, PathZeroOrMore, PathOneOrMore)):
            return self._path_object_distinct(path.path)
        return max(1.0, self._total_mass() ** 0.5)

    # ------------------------------------------------------------------ #
    # join chaining
    # ------------------------------------------------------------------ #

    def initial_state(self, pattern: TriplePattern) -> JoinState:
        """The prefix state after scanning ``pattern`` as the first step."""
        estimate = self.estimate_pattern(pattern)
        state = JoinState(rows=estimate.rows)
        self._absorb_variables(state, pattern, estimate)
        return state

    def join(
        self, state: JoinState, pattern: TriplePattern
    ) -> Tuple[JoinState, List[str]]:
        """Chain ``pattern`` onto a prefix state.

        Returns the new state plus the shared variable names (empty list
        marks a cartesian product).  The System-R rule divides the cross
        product by ``max(V(L, v), V(R, v))`` per shared variable ``v``.
        """
        estimate = self.estimate_pattern(pattern)
        shared = [
            name for name in pattern.variable_names() if name in state.var_distinct
        ]
        rows = state.rows * estimate.rows
        for name in shared:
            left_distinct = max(1.0, state.var_distinct[name])
            right_distinct = max(1.0, estimate.distinct_for(name, pattern))
            rows /= max(left_distinct, right_distinct)
        new_state = state.copy()
        new_state.rows = rows
        # _absorb_variables already re-mins the shared variables' distinct
        # counts against the pattern's side.
        self._absorb_variables(new_state, pattern, estimate)
        self._clamp_distincts(new_state)
        return new_state, shared

    def star_answer(
        self, subject_var: str, patterns: Sequence[TriplePattern]
    ) -> Optional[Tuple[float, float]]:
        """``(subjects, rows)`` for a pure subject star, or ``None``.

        Answers when every pattern shares ``subject_var`` as its subject,
        each resolves to a *distinct* single stored marker (a repeated
        predicate would be deduplicated by the set summary, underestimating
        the cross product of its occurrences), and non-subject variables are
        pairwise distinct — the shape where independence errors compound
        worst.  A bound-concept ``rdf:type`` pattern is the canonical
        anchor: its ``("t", concept)`` marker encodes exactly the bound
        constant, so type-anchored stars are answered directly.  A bound
        object on a *property* pattern, by contrast, adds a filter the
        summary does not model, and disqualifies the star.
        """
        if self.statistics is None or len(patterns) < 2:
            return None
        markers: List[Marker] = []
        seen_vars = {subject_var}
        for pattern in patterns:
            if not isinstance(pattern.subject, Variable):
                return None
            if pattern.subject.name != subject_var:
                return None
            estimate = self.estimate_pattern(pattern)
            if estimate.marker is None:
                return None
            if isinstance(pattern.object, Variable):
                if pattern.object.name in seen_vars:
                    return None
                seen_vars.add(pattern.object.name)
            elif not pattern.is_rdf_type:
                return None
            markers.append(estimate.marker)
        if len(set(markers)) != len(markers):
            return None
        return self.statistics.star_cardinality(markers)

    def apply_star(
        self, state: JoinState, subject_var: str, subjects: float, rows: float
    ) -> JoinState:
        """A copy of ``state`` with the characteristic-set answer applied."""
        refined = state.copy()
        refined.rows = rows
        refined.var_distinct[subject_var] = max(1.0, subjects)
        self._clamp_distincts(refined)
        return refined

    def refine_star(
        self,
        state: JoinState,
        subject_var: str,
        patterns: Sequence[TriplePattern],
    ) -> JoinState:
        """Characteristic-set override for a pure subject star (no-op when
        the summary cannot answer; see :meth:`star_answer`)."""
        answer = self.star_answer(subject_var, patterns)
        if answer is None:
            return state
        subjects, rows = answer
        return self.apply_star(state, subject_var, subjects, rows)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    @staticmethod
    def _absorb_variables(
        state: JoinState, pattern: TriplePattern, estimate: PatternEstimate
    ) -> None:
        for name in pattern.variable_names():
            distinct = estimate.distinct_for(name, pattern)
            if name in state.var_distinct:
                state.var_distinct[name] = min(state.var_distinct[name], distinct)
            else:
                state.var_distinct[name] = distinct

    @staticmethod
    def _clamp_distincts(state: JoinState) -> None:
        # A variable cannot take more distinct values than there are rows.
        ceiling = max(1.0, state.rows)
        for name, value in state.var_distinct.items():
            if value > ceiling:
                state.var_distinct[name] = ceiling
