"""Named system profiles used by the evaluation.

The paper evaluates five systems on a Raspberry Pi 3B+: SuccinctEdge,
RDF4Led, Jena TDB, Jena in-memory and RDF4J.  The four competitors are JVM
systems (two of them disk-based) that cannot run in this environment; the
registry instantiates their analogues with **documented cost-model
constants** calibrated from the absolute latencies the paper itself reports
(Tables 1 and 2).  The benchmark harness always reports the measured CPU
time and the simulated environment cost separately so the calibration is
transparent.

Profiles
--------
``SuccinctEdge``  — the real reproduction (no simulated cost).
``RDF4Led``       — disk-based, flash-optimised multi-index store; small
                    dictionary, no UNION support (hence no reasoning queries).
``Jena_TDB``      — disk-based store with the largest dictionary footprint.
``Jena_InMem``    — in-memory multi-index store with heavy per-triple overhead.
``RDF4J``         — in-memory multi-index store, the paper's closest competitor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Union

from repro.baselines.base import EdgeRDFStore
from repro.baselines.disk_store import PagedDiskStore
from repro.baselines.multi_index_store import MultiIndexMemoryStore
from repro.rdf.graph import Graph
from repro.rdf.terms import Term, Triple, URI
from repro.sparql.ast import Query
from repro.sparql.bindings import AskResult, ResultSet
from repro.store.succinct_edge import SuccinctEdge


class SuccinctEdgeSystem(EdgeRDFStore):
    """Adapter exposing :class:`SuccinctEdge` through the common interface."""

    name = "SuccinctEdge"
    supports_union = True
    in_memory = True

    def __init__(self) -> None:
        super().__init__()
        self._store: Optional[SuccinctEdge] = None

    def load(self, data: Graph, ontology: Optional[Graph] = None) -> None:
        """Build the SuccinctEdge store (LiteMat encoding + SDS layouts)."""
        self._remember_schema(data, ontology)
        self._store = SuccinctEdge.from_graph(data, ontology=ontology)
        self.last_simulated_cost_ms = 0.0

    @property
    def store(self) -> SuccinctEdge:
        """The wrapped SuccinctEdge instance (raises if not loaded)."""
        if self._store is None:
            raise RuntimeError("SuccinctEdgeSystem.load() has not been called")
        return self._store

    def triple_count(self) -> int:
        """Number of stored triples."""
        return self.store.triple_count

    def match(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[URI] = None,
        obj: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """Triple-pattern matching over the SDS layouts."""
        return self.store.match(subject, predicate, obj)

    def query(
        self, query: Union[str, Query], reasoning: bool = False
    ) -> Union[ResultSet, AskResult]:
        """Native SuccinctEdge execution (LiteMat reasoning, no rewriting)."""
        self.last_simulated_cost_ms = 0.0
        return self.store.query(query, reasoning=reasoning)

    def dictionary_size_in_bytes(self) -> int:
        """LiteMat + instance dictionary size."""
        return self.store.dictionary_size_in_bytes()

    def triple_storage_size_in_bytes(self) -> int:
        """SDS triple layouts size."""
        return self.store.triple_storage_size_in_bytes()

    def memory_footprint_in_bytes(self) -> int:
        """Everything is resident: dictionaries plus SDS layouts."""
        return self.store.memory_footprint_in_bytes()


@dataclass(frozen=True)
class SystemProfile:
    """A named system with its factory and display ordering."""

    name: str
    factory: Callable[[], EdgeRDFStore]
    in_memory: bool
    supports_union: bool
    description: str


def _make_rdf4led() -> EdgeRDFStore:
    store = PagedDiskStore(
        page_size=128,
        cache_pages=6,
        page_read_ms=0.5,
        page_write_ms=0.9,
        per_query_overhead_ms=5.0,
        bytes_per_index_entry=12,
        bytes_per_dictionary_entry=12,
        dictionary_string_copies=2,
    )
    store.name = "RDF4Led"
    store.supports_union = False
    return store


def _make_jena_tdb() -> EdgeRDFStore:
    store = PagedDiskStore(
        page_size=256,
        cache_pages=16,
        page_read_ms=0.3,
        page_write_ms=0.8,
        per_query_overhead_ms=6.0,
        bytes_per_index_entry=24,
        bytes_per_dictionary_entry=56,
        dictionary_string_copies=2,
    )
    store.name = "Jena_TDB"
    return store


def _make_jena_inmem() -> EdgeRDFStore:
    store = MultiIndexMemoryStore(
        bytes_per_index_entry=84,
        bytes_per_dictionary_entry=56,
        per_query_overhead_ms=4.5,
        per_result_overhead_ms=0.04,
    )
    store.name = "Jena_InMem"
    return store


def _make_rdf4j() -> EdgeRDFStore:
    store = MultiIndexMemoryStore(
        bytes_per_index_entry=60,
        bytes_per_dictionary_entry=44,
        per_query_overhead_ms=2.5,
        per_result_overhead_ms=0.02,
    )
    store.name = "RDF4J"
    return store


_PROFILES: Dict[str, SystemProfile] = {
    "SuccinctEdge": SystemProfile(
        name="SuccinctEdge",
        factory=SuccinctEdgeSystem,
        in_memory=True,
        supports_union=True,
        description="This paper: single PSO SDS index, LiteMat reasoning, in-memory.",
    ),
    "RDF4Led": SystemProfile(
        name="RDF4Led",
        factory=_make_rdf4led,
        in_memory=False,
        supports_union=False,
        description="Flash-based edge RDF store analogue: paged multi-index on SD card.",
    ),
    "Jena_TDB": SystemProfile(
        name="Jena_TDB",
        factory=_make_jena_tdb,
        in_memory=False,
        supports_union=True,
        description="Disk-based Jena TDB2 analogue: large node table, paged B-tree indexes.",
    ),
    "Jena_InMem": SystemProfile(
        name="Jena_InMem",
        factory=_make_jena_inmem,
        in_memory=True,
        supports_union=True,
        description="Jena in-memory store analogue: three hash indexes, heavy per-triple overhead.",
    ),
    "RDF4J": SystemProfile(
        name="RDF4J",
        factory=_make_rdf4j,
        in_memory=True,
        supports_union=True,
        description="RDF4J MemoryStore analogue: the paper's closest in-memory competitor.",
    ),
}

#: The display order used by every benchmark table (mirrors the paper).
SYSTEM_ORDER: List[str] = ["SuccinctEdge", "RDF4Led", "Jena_TDB", "Jena_InMem", "RDF4J"]


def available_systems() -> List[str]:
    """Names of the systems the registry can instantiate, in display order."""
    return list(SYSTEM_ORDER)


def get_profile(name: str) -> SystemProfile:
    """The profile registered under ``name``."""
    if name not in _PROFILES:
        raise KeyError(f"unknown system {name!r}; available: {available_systems()}")
    return _PROFILES[name]


def create_system(name: str) -> EdgeRDFStore:
    """Instantiate (unloaded) the system registered under ``name``."""
    return get_profile(name).factory()
