"""Persistence of a SuccinctEdge store.

The paper's storage evaluation (Section 7.3.2) "persisted all the data
structures existing in SuccinctEdge to disk in order to make a fair
comparison" with the disk-based systems, and its deployment model has the
central server broadcast pre-encoded dictionaries to the edge devices.  This
module provides both:

* :func:`save_store` / :func:`load_store` — serialise a complete
  :class:`~repro.store.succinct_edge.SuccinctEdge` instance (dictionaries,
  schema, and the encoded triples of the three layouts) into a single
  compact binary file and restore it;
* :func:`serialized_size_in_bytes` — the on-disk size, used as the
  ground-truth measurement behind Figures 9 and 10.

The format is deliberately simple and self-contained: a small header followed
by length-prefixed sections (terms as UTF-8, identifiers and triples as
varints).  The SDS layouts are rebuilt at load time from the encoded triples —
construction is cheap compared to I/O, and the format stays independent of
the in-memory layout details.
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO, Dict, List, Tuple

from repro.ontology.litemat import EncodedEntity, LiteMatEncoding
from repro.ontology.schema import OntologySchema
from repro.rdf.terms import BlankNode, Literal, Term, URI

_MAGIC = b"SEDG"
# Version 3 added the dictionary overflow tables (live-inserted terms whose
# identifiers live above the LiteMat space, see docs/update_lifecycle.md).
_VERSION = 3

_TERM_URI = 0
_TERM_BNODE = 1
_TERM_LITERAL = 2


class PersistenceError(RuntimeError):
    """Raised when a file cannot be parsed as a persisted SuccinctEdge store."""


# --------------------------------------------------------------------------- #
# low-level encoding helpers
# --------------------------------------------------------------------------- #


def _write_varint(buffer: BinaryIO, value: int) -> None:
    if value < 0:
        raise ValueError("varints encode non-negative integers only")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buffer.write(bytes([byte | 0x80]))
        else:
            buffer.write(bytes([byte]))
            return


def _read_varint(buffer: BinaryIO) -> int:
    shift = 0
    result = 0
    while True:
        raw = buffer.read(1)
        if not raw:
            raise PersistenceError("unexpected end of file while reading a varint")
        byte = raw[0]
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result
        shift += 7


def _write_text(buffer: BinaryIO, text: str) -> None:
    payload = text.encode("utf-8")
    _write_varint(buffer, len(payload))
    buffer.write(payload)


def _read_text(buffer: BinaryIO) -> str:
    length = _read_varint(buffer)
    payload = buffer.read(length)
    if len(payload) != length:
        raise PersistenceError("unexpected end of file while reading a string")
    return payload.decode("utf-8")


def _write_term(buffer: BinaryIO, term: Term) -> None:
    if isinstance(term, URI):
        buffer.write(bytes([_TERM_URI]))
        _write_text(buffer, term.value)
    elif isinstance(term, BlankNode):
        buffer.write(bytes([_TERM_BNODE]))
        _write_text(buffer, term.label)
    elif isinstance(term, Literal):
        buffer.write(bytes([_TERM_LITERAL]))
        _write_text(buffer, term.lexical)
        _write_text(buffer, term.datatype or "")
        _write_text(buffer, term.language or "")
    else:  # pragma: no cover - defensive
        raise PersistenceError(f"cannot serialise term {term!r}")


def _read_term(buffer: BinaryIO) -> Term:
    kind_raw = buffer.read(1)
    if not kind_raw:
        raise PersistenceError("unexpected end of file while reading a term")
    kind = kind_raw[0]
    if kind == _TERM_URI:
        return URI(_read_text(buffer))
    if kind == _TERM_BNODE:
        return BlankNode(_read_text(buffer))
    if kind == _TERM_LITERAL:
        lexical = _read_text(buffer)
        datatype = _read_text(buffer) or None
        language = _read_text(buffer) or None
        if language:
            return Literal(lexical, language=language)
        return Literal(lexical, datatype=datatype)
    raise PersistenceError(f"unknown term tag {kind}")


# --------------------------------------------------------------------------- #
# sections
# --------------------------------------------------------------------------- #


def _write_litemat(buffer: BinaryIO, encoding: LiteMatEncoding) -> None:
    _write_varint(buffer, encoding.total_length)
    _write_varint(buffer, 1 if encoding.root is not None else 0)
    if encoding.root is not None:
        _write_term(buffer, encoding.root)
    terms = encoding.terms()
    _write_varint(buffer, len(terms))
    for term in terms:
        entry = encoding.entry(term)
        _write_term(buffer, term)
        _write_varint(buffer, entry.identifier)
        _write_varint(buffer, entry.local_length)


def _read_litemat(buffer: BinaryIO) -> LiteMatEncoding:
    total_length = _read_varint(buffer)
    has_root = _read_varint(buffer)
    root = _read_term(buffer) if has_root else None
    count = _read_varint(buffer)
    entries: Dict[URI, EncodedEntity] = {}
    for _ in range(count):
        term = _read_term(buffer)
        identifier = _read_varint(buffer)
        local_length = _read_varint(buffer)
        entries[term] = EncodedEntity(  # type: ignore[index]
            identifier=identifier, local_length=local_length, total_length=total_length
        )
    return LiteMatEncoding(entries, total_length, root=root)  # type: ignore[arg-type]


def _write_schema(buffer: BinaryIO, schema: OntologySchema) -> None:
    concept_edges = [(child, schema.concept_parent(child)) for child in schema.concepts]
    property_edges = [(child, schema.property_parent(child)) for child in schema.properties]
    domains = [(prop, schema.domain_of(prop)) for prop in schema.properties if schema.domain_of(prop)]
    ranges = [(prop, schema.range_of(prop)) for prop in schema.properties if schema.range_of(prop)]

    _write_varint(buffer, len(concept_edges))
    for child, parent in concept_edges:
        _write_term(buffer, child)
        _write_varint(buffer, 1 if parent is not None else 0)
        if parent is not None:
            _write_term(buffer, parent)
    _write_varint(buffer, len(property_edges))
    for child, parent in property_edges:
        _write_term(buffer, child)
        _write_varint(buffer, 1 if parent is not None else 0)
        if parent is not None:
            _write_term(buffer, parent)
    _write_varint(buffer, len(domains))
    for prop, concept in domains:
        _write_term(buffer, prop)
        _write_term(buffer, concept)  # type: ignore[arg-type]
    _write_varint(buffer, len(ranges))
    for prop, concept in ranges:
        _write_term(buffer, prop)
        _write_term(buffer, concept)  # type: ignore[arg-type]


def _read_schema(buffer: BinaryIO) -> OntologySchema:
    schema = OntologySchema()
    concept_count = _read_varint(buffer)
    for _ in range(concept_count):
        child = _read_term(buffer)
        has_parent = _read_varint(buffer)
        if has_parent:
            schema.add_subclass(child, _read_term(buffer))  # type: ignore[arg-type]
        else:
            schema.add_concept(child)  # type: ignore[arg-type]
    property_count = _read_varint(buffer)
    for _ in range(property_count):
        child = _read_term(buffer)
        has_parent = _read_varint(buffer)
        if has_parent:
            schema.add_subproperty(child, _read_term(buffer))  # type: ignore[arg-type]
        else:
            schema.add_property(child)  # type: ignore[arg-type]
    domain_count = _read_varint(buffer)
    for _ in range(domain_count):
        schema.add_domain(_read_term(buffer), _read_term(buffer))  # type: ignore[arg-type]
    range_count = _read_varint(buffer)
    for _ in range(range_count):
        schema.add_range(_read_term(buffer), _read_term(buffer))  # type: ignore[arg-type]
    return schema


# --------------------------------------------------------------------------- #
# public API
# --------------------------------------------------------------------------- #


def dump_store(store) -> bytes:
    """Serialise a SuccinctEdge store into a compact byte string."""
    buffer = io.BytesIO()
    buffer.write(_MAGIC)
    buffer.write(struct.pack("<H", _VERSION))

    _write_schema(buffer, store.schema)
    _write_litemat(buffer, store.concepts.encoding)
    _write_litemat(buffer, store.properties.encoding)

    # Overflow tables: terms inserted live after encoding time carry
    # identifiers above the LiteMat space; the persisted triples reference
    # them, so they are saved next to the encodings.
    for dictionary in (store.concepts, store.properties):
        entries = dictionary.overflow_entries()
        _write_varint(buffer, len(entries))
        for term, identifier in sorted(entries.items(), key=lambda item: item[1]):
            _write_term(buffer, term)
            _write_varint(buffer, identifier)

    # Instance dictionary: identifiers are dense and start at 1, but the
    # occurrence counters matter for the optimizer, so both are persisted.
    instance_ids = sorted(store.instances.identifiers())
    _write_varint(buffer, len(instance_ids))
    for identifier in instance_ids:
        _write_term(buffer, store.instances.extract(identifier))
        _write_varint(buffer, identifier)
        _write_varint(buffer, store.instances.occurrences(identifier))

    # Occurrence counters of the concept / property dictionaries.
    for dictionary in (store.concepts, store.properties):
        identifiers = [i for i in dictionary.identifiers() if dictionary.occurrences(i)]
        _write_varint(buffer, len(identifiers))
        for identifier in identifiers:
            _write_varint(buffer, identifier)
            _write_varint(buffer, dictionary.occurrences(identifier))

    # rdf:type triples.
    type_triples = list(store.type_store.iter_triples())
    _write_varint(buffer, len(type_triples))
    for subject_id, concept_id in type_triples:
        _write_varint(buffer, subject_id)
        _write_varint(buffer, concept_id)

    # Object-property triples.
    object_triples = list(store.object_store.iter_triples())
    _write_varint(buffer, len(object_triples))
    for property_id, subject_id, object_id in object_triples:
        _write_varint(buffer, property_id)
        _write_varint(buffer, subject_id)
        _write_varint(buffer, object_id)

    # Datatype-property triples (literal stored inline).
    datatype_triples = list(store.datatype_store.iter_triples())
    _write_varint(buffer, len(datatype_triples))
    for property_id, subject_id, literal in datatype_triples:
        _write_varint(buffer, property_id)
        _write_varint(buffer, subject_id)
        _write_term(buffer, literal)

    _write_varint(buffer, store.skipped_triples)
    return buffer.getvalue()


def load_store_from_bytes(payload: bytes):
    """Rebuild a SuccinctEdge store from :func:`dump_store` output."""
    from repro.dictionary.literal_store import LiteralStore
    from repro.dictionary.statistics import DictionaryStatistics
    from repro.dictionary.term_dictionary import (
        ConceptDictionary,
        InstanceDictionary,
        PropertyDictionary,
    )
    from repro.store.datatype_store import DatatypeTripleStore
    from repro.store.rdftype_store import RDFTypeStore
    from repro.store.succinct_edge import SuccinctEdge
    from repro.store.triple_store import ObjectTripleStore

    buffer = io.BytesIO(payload)
    magic = buffer.read(4)
    if magic != _MAGIC:
        raise PersistenceError("not a persisted SuccinctEdge store (bad magic)")
    (version,) = struct.unpack("<H", buffer.read(2))
    if version != _VERSION:
        raise PersistenceError(f"unsupported format version {version} (expected {_VERSION})")

    schema = _read_schema(buffer)
    concepts = ConceptDictionary(_read_litemat(buffer))
    properties = PropertyDictionary(_read_litemat(buffer))

    for dictionary in (concepts, properties):
        overflow_count = _read_varint(buffer)
        for _ in range(overflow_count):
            term = _read_term(buffer)
            identifier = _read_varint(buffer)
            dictionary.restore_overflow(term, identifier)  # type: ignore[arg-type]

    instances = InstanceDictionary()
    instance_count = _read_varint(buffer)
    pending_occurrences: List[Tuple[int, int]] = []
    for _ in range(instance_count):
        term = _read_term(buffer)
        identifier = _read_varint(buffer)
        occurrences = _read_varint(buffer)
        assigned = instances.add(term)
        if assigned != identifier:
            raise PersistenceError(
                f"instance identifier mismatch for {term}: stored {identifier}, assigned {assigned}"
            )
        pending_occurrences.append((identifier, occurrences))
    for identifier, occurrences in pending_occurrences:
        if occurrences:
            instances.record_occurrence(identifier, occurrences)

    for dictionary in (concepts, properties):
        count = _read_varint(buffer)
        for _ in range(count):
            identifier = _read_varint(buffer)
            occurrences = _read_varint(buffer)
            dictionary.record_occurrence(identifier, occurrences)

    type_count = _read_varint(buffer)
    type_triples = []
    for _ in range(type_count):
        subject_id = _read_varint(buffer)
        concept_id = _read_varint(buffer)
        type_triples.append((subject_id, concept_id))

    object_count = _read_varint(buffer)
    object_triples = []
    for _ in range(object_count):
        property_id = _read_varint(buffer)
        subject_id = _read_varint(buffer)
        object_id = _read_varint(buffer)
        object_triples.append((property_id, subject_id, object_id))

    datatype_count = _read_varint(buffer)
    datatype_triples = []
    for _ in range(datatype_count):
        property_id = _read_varint(buffer)
        subject_id = _read_varint(buffer)
        literal = _read_term(buffer)
        if not isinstance(literal, Literal):
            raise PersistenceError("datatype triple object is not a literal")
        datatype_triples.append((property_id, subject_id, literal))

    skipped = _read_varint(buffer)

    store = SuccinctEdge(
        schema=schema,
        concepts=concepts,
        properties=properties,
        instances=instances,
        # Triples were serialised in PSO order by iter_triples, so the sort
        # pass can be skipped on reload.
        object_store=ObjectTripleStore(object_triples, presorted=True),
        datatype_store=DatatypeTripleStore(datatype_triples, LiteralStore(), presorted=True),
        type_store=RDFTypeStore(type_triples),
        statistics=DictionaryStatistics(concepts, properties, instances),
        skipped_triples=skipped,
    )
    return store


def save_store(store, path: str) -> int:
    """Serialise ``store`` to ``path``; return the number of bytes written."""
    payload = dump_store(store)
    with open(path, "wb") as handle:
        handle.write(payload)
    return len(payload)


def load_store(path: str):
    """Load a SuccinctEdge store previously written by :func:`save_store`."""
    with open(path, "rb") as handle:
        return load_store_from_bytes(handle.read())


def serialized_size_in_bytes(store) -> int:
    """On-disk size of the store (the measurement behind Figures 9 and 10)."""
    return len(dump_store(store))
