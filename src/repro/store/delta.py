"""Delta overlay: the mutable write path on top of the immutable SDS base.

The succinct layouts of :mod:`repro.store.triple_store`,
:mod:`repro.store.datatype_store` and :mod:`repro.store.rdftype_store` are
immutable by construction — bitmaps and wavelet trees are built once from a
sorted triple run.  Live updates therefore follow the LSM pattern
(see ``docs/update_lifecycle.md``):

* a small, mutable **delta** holds *sorted insert sets* and *tombstone
  (delete) sets* of encoded triples, one delta per storage layout;
* **overlay read views** (:class:`OverlayObjectStore`,
  :class:`OverlayDatatypeStore`, :class:`OverlayTypeStore`) implement the
  exact read API of the base layouts by merging base and delta on the fly,
  so :mod:`repro.query.tp_eval` — and with it the whole streaming pipeline —
  sees one consistent snapshot and never learns updates exist;
* a :class:`CompactionPolicy` decides when the delta is large enough to be
  folded into a fresh succinct base through the ``presorted``
  :class:`~repro.store.builder.StoreBuilder` path (the merged iterators are
  already in index order, so compaction skips the sort pass entirely).

Invariants maintained by :class:`~repro.store.updatable.UpdatableSuccinctEdge`
(the only writer):

* an insert is recorded only when the triple is not already visible, so
  base and delta insert runs are disjoint and counts are exact;
* a tombstone is recorded only for a triple present in the base, so
  ``len(base) - tombstones + inserts`` is the exact visible triple count;
* merged enumeration preserves the base layouts' index order (PSO / PS / SO),
  which is what makes query results identical to a from-scratch rebuild.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.rdf.terms import Literal
from repro.store.datatype_store import DatatypeTripleStore, EncodedDatatypeTriple
from repro.store.rdftype_store import EncodedTypeTriple, RDFTypeStore
from repro.store.triple_store import EncodedTriple, ObjectTripleStore

#: Shared empty set returned for "no tombstones" (never mutated).
_EMPTY_TOMBSTONES: frozenset = frozenset()


# --------------------------------------------------------------------------- #
# per-layout deltas
# --------------------------------------------------------------------------- #


class ObjectDelta:
    """Pending inserts and tombstones of object-property triples.

    Inserts are kept sorted by ``(subject, object)`` inside each property so
    that merged enumeration stays in PSO order; a secondary ``(object ->
    subjects)`` index serves the reverse (``?s p o``) access path.
    """

    def __init__(self) -> None:
        self._inserts_by_p: Dict[int, List[Tuple[int, int]]] = {}
        self._insert_subjects_by_po: Dict[Tuple[int, int], List[int]] = {}
        self._tombs_by_p: Dict[int, Set[Tuple[int, int]]] = {}
        self.insert_count = 0
        self.tombstone_count = 0

    def __len__(self) -> int:
        """Number of pending operations (inserts plus tombstones)."""
        return self.insert_count + self.tombstone_count

    # mutation ----------------------------------------------------------- #

    def add_insert(self, property_id: int, subject_id: int, object_id: int) -> None:
        insort(self._inserts_by_p.setdefault(property_id, []), (subject_id, object_id))
        insort(self._insert_subjects_by_po.setdefault((property_id, object_id), []), subject_id)
        self.insert_count += 1

    def remove_insert(self, property_id: int, subject_id: int, object_id: int) -> None:
        pairs = self._inserts_by_p[property_id]
        pairs.remove((subject_id, object_id))
        if not pairs:
            del self._inserts_by_p[property_id]
        subjects = self._insert_subjects_by_po[(property_id, object_id)]
        subjects.remove(subject_id)
        if not subjects:
            del self._insert_subjects_by_po[(property_id, object_id)]
        self.insert_count -= 1

    def add_tombstone(self, property_id: int, subject_id: int, object_id: int) -> None:
        self._tombs_by_p.setdefault(property_id, set()).add((subject_id, object_id))
        self.tombstone_count += 1

    def remove_tombstone(self, property_id: int, subject_id: int, object_id: int) -> None:
        tombs = self._tombs_by_p[property_id]
        tombs.remove((subject_id, object_id))
        if not tombs:
            del self._tombs_by_p[property_id]
        self.tombstone_count -= 1

    # lookups ------------------------------------------------------------ #

    def has_insert(self, property_id: int, subject_id: int, object_id: int) -> bool:
        pairs = self._inserts_by_p.get(property_id)
        if not pairs:
            return False
        index = bisect_left(pairs, (subject_id, object_id))
        return index < len(pairs) and pairs[index] == (subject_id, object_id)

    def is_tombstoned(self, property_id: int, subject_id: int, object_id: int) -> bool:
        return (subject_id, object_id) in self._tombs_by_p.get(property_id, ())

    def insert_properties(self) -> List[int]:
        """Properties with at least one pending insert, ascending."""
        return sorted(self._inserts_by_p)

    def inserts_for(self, property_id: int) -> List[Tuple[int, int]]:
        """Pending ``(subject, object)`` inserts of ``property_id``, sorted.

        A copy: the overlay iterates it lazily (``heapq.merge``) and must not
        observe writes that arrive mid-iteration.
        """
        return list(self._inserts_by_p.get(property_id, ()))

    def insert_objects(self, property_id: int, subject_id: int) -> List[int]:
        """Pending object inserts of ``(subject, property)``, ascending."""
        pairs = self._inserts_by_p.get(property_id)
        if not pairs:
            return []
        begin = bisect_left(pairs, (subject_id, -1))
        end = bisect_left(pairs, (subject_id + 1, -1))
        return [obj for _subject, obj in pairs[begin:end]]

    def insert_subjects(self, property_id: int, object_id: int) -> List[int]:
        """Pending subject inserts of ``(property, object)``, ascending (a copy)."""
        return list(self._insert_subjects_by_po.get((property_id, object_id), ()))

    def tombstones_for(self, property_id: int) -> Set[Tuple[int, int]]:
        """Tombstoned ``(subject, object)`` pairs of ``property_id``.

        The *live* internal set (treat as read-only): per-binding probes do
        eager membership checks against it, and copying up to
        policy-threshold-many tombstones per probe would dominate the read
        path.  Lazily-consumed readers snapshot it themselves.
        """
        return self._tombs_by_p.get(property_id, _EMPTY_TOMBSTONES)

    def insert_count_for(self, property_id: int) -> int:
        return len(self._inserts_by_p.get(property_id, ()))

    def tombstone_count_for(self, property_id: int) -> int:
        return len(self._tombs_by_p.get(property_id, ()))

    def size_in_bytes(self) -> int:
        """Approximate in-memory overhead of the pending operations."""
        return 24 * (self.insert_count * 2 + self.tombstone_count)


class DatatypeDelta:
    """Pending inserts and tombstones of datatype-property triples.

    Literals are not dictionary-encoded (mirroring the base layout), so the
    delta keys pending literals by ``(property, subject)`` and preserves
    *insertion order* within a pair — exactly the order a from-scratch
    rebuild would produce for triples appended at the end of the data graph.
    """

    def __init__(self) -> None:
        self._literals_by_ps: Dict[Tuple[int, int], List[Literal]] = {}
        self._subjects_by_p: Dict[int, List[int]] = {}
        self._insert_count_by_p: Dict[int, int] = {}
        self._tombs_by_ps: Dict[Tuple[int, int], Set[Literal]] = {}
        self._tomb_count_by_p: Dict[int, int] = {}
        self.insert_count = 0
        self.tombstone_count = 0

    def __len__(self) -> int:
        return self.insert_count + self.tombstone_count

    # mutation ----------------------------------------------------------- #

    def add_insert(self, property_id: int, subject_id: int, literal: Literal) -> None:
        key = (property_id, subject_id)
        literals = self._literals_by_ps.get(key)
        if literals is None:
            self._literals_by_ps[key] = [literal]
            insort(self._subjects_by_p.setdefault(property_id, []), subject_id)
        else:
            literals.append(literal)
        self._insert_count_by_p[property_id] = self._insert_count_by_p.get(property_id, 0) + 1
        self.insert_count += 1

    def remove_insert(self, property_id: int, subject_id: int, literal: Literal) -> None:
        key = (property_id, subject_id)
        literals = self._literals_by_ps[key]
        literals.remove(literal)
        if not literals:
            del self._literals_by_ps[key]
            subjects = self._subjects_by_p[property_id]
            subjects.remove(subject_id)
            if not subjects:
                del self._subjects_by_p[property_id]
        remaining = self._insert_count_by_p[property_id] - 1
        if remaining:
            self._insert_count_by_p[property_id] = remaining
        else:
            del self._insert_count_by_p[property_id]
        self.insert_count -= 1

    def add_tombstone(self, property_id: int, subject_id: int, literal: Literal) -> None:
        self._tombs_by_ps.setdefault((property_id, subject_id), set()).add(literal)
        self._tomb_count_by_p[property_id] = self._tomb_count_by_p.get(property_id, 0) + 1
        self.tombstone_count += 1

    def remove_tombstone(self, property_id: int, subject_id: int, literal: Literal) -> None:
        key = (property_id, subject_id)
        tombs = self._tombs_by_ps[key]
        tombs.remove(literal)
        if not tombs:
            del self._tombs_by_ps[key]
        remaining = self._tomb_count_by_p[property_id] - 1
        if remaining:
            self._tomb_count_by_p[property_id] = remaining
        else:
            del self._tomb_count_by_p[property_id]
        self.tombstone_count -= 1

    # lookups ------------------------------------------------------------ #

    def has_insert(self, property_id: int, subject_id: int, literal: Literal) -> bool:
        return literal in self._literals_by_ps.get((property_id, subject_id), ())

    def is_tombstoned(self, property_id: int, subject_id: int, literal: Literal) -> bool:
        return literal in self._tombs_by_ps.get((property_id, subject_id), ())

    def insert_properties(self) -> List[int]:
        return sorted(self._subjects_by_p)

    def insert_subjects(self, property_id: int) -> List[int]:
        """Subjects with pending literal inserts for ``property_id``, ascending (a copy)."""
        return list(self._subjects_by_p.get(property_id, ()))

    def insert_literals(self, property_id: int, subject_id: int) -> List[Literal]:
        """Pending literals of ``(property, subject)`` in insertion order (a copy)."""
        return list(self._literals_by_ps.get((property_id, subject_id), ()))

    def tombstones_for(self, property_id: int, subject_id: int) -> Set[Literal]:
        """Tombstoned literals of ``(property, subject)`` (live set, read-only)."""
        return self._tombs_by_ps.get((property_id, subject_id), _EMPTY_TOMBSTONES)

    def insert_count_for(self, property_id: int) -> int:
        return self._insert_count_by_p.get(property_id, 0)

    def tombstone_count_for(self, property_id: int) -> int:
        return self._tomb_count_by_p.get(property_id, 0)

    def size_in_bytes(self) -> int:
        literal_bytes = sum(
            len(str(literal).encode("utf-8"))
            for literals in self._literals_by_ps.values()
            for literal in literals
        )
        return literal_bytes + 24 * (self.insert_count + self.tombstone_count)


class TypeDelta:
    """Pending inserts and tombstones of ``rdf:type`` triples.

    Both orders are maintained sorted: ``(subject, concept)`` for merged SO
    enumeration and ``(concept, subject)`` for interval scans and counting
    (the reasoning access path).
    """

    def __init__(self) -> None:
        self._inserts_sc: List[Tuple[int, int]] = []
        self._inserts_cs: List[Tuple[int, int]] = []
        self._tombs: Set[Tuple[int, int]] = set()
        self._tombs_cs: List[Tuple[int, int]] = []

    def __len__(self) -> int:
        return len(self._inserts_sc) + len(self._tombs)

    @property
    def insert_count(self) -> int:
        return len(self._inserts_sc)

    @property
    def tombstone_count(self) -> int:
        return len(self._tombs)

    # mutation ----------------------------------------------------------- #

    def add_insert(self, subject_id: int, concept_id: int) -> None:
        insort(self._inserts_sc, (subject_id, concept_id))
        insort(self._inserts_cs, (concept_id, subject_id))

    def remove_insert(self, subject_id: int, concept_id: int) -> None:
        self._inserts_sc.remove((subject_id, concept_id))
        self._inserts_cs.remove((concept_id, subject_id))

    def add_tombstone(self, subject_id: int, concept_id: int) -> None:
        self._tombs.add((subject_id, concept_id))
        insort(self._tombs_cs, (concept_id, subject_id))

    def remove_tombstone(self, subject_id: int, concept_id: int) -> None:
        self._tombs.remove((subject_id, concept_id))
        self._tombs_cs.remove((concept_id, subject_id))

    # lookups ------------------------------------------------------------ #

    def has_insert(self, subject_id: int, concept_id: int) -> bool:
        index = bisect_left(self._inserts_sc, (subject_id, concept_id))
        return (
            index < len(self._inserts_sc) and self._inserts_sc[index] == (subject_id, concept_id)
        )

    def is_tombstoned(self, subject_id: int, concept_id: int) -> bool:
        return (subject_id, concept_id) in self._tombs

    def tombstones(self) -> Set[Tuple[int, int]]:
        """Tombstoned ``(subject, concept)`` pairs (live set, read-only).

        Eager consumers (``subjects_of``/``concepts_of`` filters) use it
        directly; lazy iterators snapshot it first.
        """
        return self._tombs

    def inserts_so(self) -> List[Tuple[int, int]]:
        """Pending ``(subject, concept)`` inserts in SO order (a copy)."""
        return list(self._inserts_sc)

    def insert_subjects(self, concept_id: int) -> List[int]:
        """Subjects with a pending typing for ``concept_id``, ascending."""
        return self._slice_cs(self._inserts_cs, concept_id, concept_id + 1)

    def insert_concepts(self, subject_id: int) -> List[int]:
        begin = bisect_left(self._inserts_sc, (subject_id, -1))
        end = bisect_left(self._inserts_sc, (subject_id + 1, -1))
        return [concept for _subject, concept in self._inserts_sc[begin:end]]

    def insert_pairs_in_interval(self, concept_low: int, concept_high: int) -> List[Tuple[int, int]]:
        """Pending ``(concept, subject)`` pairs with concept in ``[low, high)``."""
        begin = bisect_left(self._inserts_cs, (concept_low, -1))
        end = bisect_left(self._inserts_cs, (concept_high, -1))
        return self._inserts_cs[begin:end]

    def insert_count_in_interval(self, concept_low: int, concept_high: int) -> int:
        begin = bisect_left(self._inserts_cs, (concept_low, -1))
        end = bisect_left(self._inserts_cs, (concept_high, -1))
        return end - begin

    def tombstone_count_in_interval(self, concept_low: int, concept_high: int) -> int:
        begin = bisect_left(self._tombs_cs, (concept_low, -1))
        end = bisect_left(self._tombs_cs, (concept_high, -1))
        return end - begin

    @staticmethod
    def _slice_cs(pairs: List[Tuple[int, int]], low: int, high: int) -> List[int]:
        begin = bisect_left(pairs, (low, -1))
        end = bisect_left(pairs, (high, -1))
        return [subject for _concept, subject in pairs[begin:end]]

    def size_in_bytes(self) -> int:
        return 24 * (2 * len(self._inserts_sc) + 2 * len(self._tombs))


class DeltaOverlay:
    """The complete delta: one per-layout delta plus shared accounting."""

    def __init__(self) -> None:
        self.objects = ObjectDelta()
        self.datatypes = DatatypeDelta()
        self.types = TypeDelta()

    def __len__(self) -> int:
        """Total pending operations across all three layouts."""
        return len(self.objects) + len(self.datatypes) + len(self.types)

    @property
    def insert_count(self) -> int:
        return (
            self.objects.insert_count + self.datatypes.insert_count + self.types.insert_count
        )

    @property
    def tombstone_count(self) -> int:
        return (
            self.objects.tombstone_count
            + self.datatypes.tombstone_count
            + self.types.tombstone_count
        )

    def size_in_bytes(self) -> int:
        return (
            self.objects.size_in_bytes()
            + self.datatypes.size_in_bytes()
            + self.types.size_in_bytes()
        )

    def __repr__(self) -> str:
        return (
            f"DeltaOverlay({self.insert_count} inserts, "
            f"{self.tombstone_count} tombstones)"
        )


# --------------------------------------------------------------------------- #
# compaction policy
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class CompactionPolicy:
    """When to fold the delta into a fresh succinct base.

    Attributes
    ----------
    max_delta_operations:
        Compact once the delta holds this many pending operations (inserts
        plus tombstones), regardless of base size.  ``None`` disables the
        absolute trigger.
    max_delta_ratio:
        Compact once ``pending / max(len(base), 1)`` reaches this ratio.
        ``None`` disables the ratio trigger.
    min_delta_operations:
        The ratio trigger stays quiet below this many pending operations so
        that tiny stores do not compact on every insert.
    """

    max_delta_operations: Optional[int] = 10_000
    max_delta_ratio: Optional[float] = 0.25
    min_delta_operations: int = 64

    def should_compact(self, pending_operations: int, base_triples: int) -> bool:
        """Whether the thresholds say the delta should be compacted now."""
        if self.max_delta_operations is not None and pending_operations >= self.max_delta_operations:
            return True
        if self.max_delta_ratio is not None and pending_operations >= self.min_delta_operations:
            return pending_operations / max(base_triples, 1) >= self.max_delta_ratio
        return False


#: A policy that never triggers on its own (compaction stays explicit).
MANUAL_COMPACTION = CompactionPolicy(max_delta_operations=None, max_delta_ratio=None)


# --------------------------------------------------------------------------- #
# overlay read views
# --------------------------------------------------------------------------- #


def _merge_sorted(left: List[int], right: List[int]) -> List[int]:
    """Merge two disjoint ascending lists (tiny helper kept branch-light)."""
    if not right:
        return left
    if not left:
        return right
    return list(heapq.merge(left, right))


class _PropertyOverlayMixin:
    """Property-level arithmetic shared by the PSO and PS overlay views.

    Relies on ``self.base`` / ``self.delta`` exposing the common counting
    interface (``count_triples_with_property`` / ``properties`` /
    ``properties_in_interval`` on the base; per-property insert and
    tombstone counts on the delta).  Every count is exact thanks to the
    facade's invariants (module docstring).
    """

    base: object
    delta: object

    def __len__(self) -> int:
        return len(self.base) - self.delta.tombstone_count + self.delta.insert_count

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({len(self)} visible triples = {len(self.base)} base "
            f"- {self.delta.tombstone_count} tombstones + {self.delta.insert_count} inserts)"
        )

    @property
    def properties(self) -> List[int]:
        merged = set(self.base.properties)
        merged.update(self.delta.insert_properties())
        return sorted(p for p in merged if self.has_property(p))

    def has_property(self, property_id: int) -> bool:
        if self.delta.insert_count_for(property_id) > 0:
            return True
        return (
            self.base.count_triples_with_property(property_id)
            - self.delta.tombstone_count_for(property_id)
            > 0
        )

    def properties_in_interval(self, low: int, high: int) -> List[int]:
        merged = set(self.base.properties_in_interval(low, high))
        merged.update(p for p in self.delta.insert_properties() if low <= p < high)
        return sorted(p for p in merged if self.has_property(p))

    def count_triples_with_property(self, property_id: int) -> int:
        return (
            self.base.count_triples_with_property(property_id)
            - self.delta.tombstone_count_for(property_id)
            + self.delta.insert_count_for(property_id)
        )


class OverlayObjectStore(_PropertyOverlayMixin):
    """Read view merging an :class:`ObjectTripleStore` base with a delta.

    Implements the full evaluation API of the base layout (the methods
    :mod:`repro.query.tp_eval` and :meth:`SuccinctEdge.match` call), with
    every enumeration in PSO order and every count exact — see the module
    docstring for the invariants that make this possible.
    """

    def __init__(self, base: ObjectTripleStore, delta: ObjectDelta) -> None:
        self.base = base
        self.delta = delta

    # counting ----------------------------------------------------------- #

    def count_subjects_with_property(self, property_id: int) -> int:
        if (
            self.delta.insert_count_for(property_id) == 0
            and self.delta.tombstone_count_for(property_id) == 0
        ):
            return self.base.count_subjects_with_property(property_id)
        count = 0
        previous = None
        for subject, _obj in self.pairs_for_property(property_id):
            if subject != previous:
                count += 1
                previous = subject
        return count

    # pattern evaluation -------------------------------------------------- #

    def objects_for(self, subject_id: int, property_id: int) -> List[int]:
        base_objects = self.base.objects_for(subject_id, property_id)
        tombs = self.delta.tombstones_for(property_id)
        if tombs:
            base_objects = [obj for obj in base_objects if (subject_id, obj) not in tombs]
        return _merge_sorted(base_objects, self.delta.insert_objects(property_id, subject_id))

    def subjects_for(self, property_id: int, object_id: int) -> List[int]:
        base_subjects = self.base.subjects_for(property_id, object_id)
        tombs = self.delta.tombstones_for(property_id)
        if tombs:
            base_subjects = [s for s in base_subjects if (s, object_id) not in tombs]
        return _merge_sorted(base_subjects, self.delta.insert_subjects(property_id, object_id))

    def contains(self, subject_id: int, property_id: int, object_id: int) -> bool:
        if self.delta.is_tombstoned(property_id, subject_id, object_id):
            return False
        if self.delta.has_insert(property_id, subject_id, object_id):
            return True
        return self.base.contains(subject_id, property_id, object_id)

    def pairs_for_property(self, property_id: int) -> Iterator[Tuple[int, int]]:
        # This scan is lazy, so the delta side is snapshotted up front (the
        # tombstone copy included): writes that race the iteration cannot
        # reshuffle what it yields.  The base side is immutable.
        tombs = set(self.delta.tombstones_for(property_id))
        base_pairs = self.base.pairs_for_property(property_id)
        if tombs:
            base_pairs = (pair for pair in base_pairs if pair not in tombs)
        inserts = self.delta.inserts_for(property_id)
        if not inserts:
            yield from base_pairs
            return
        yield from heapq.merge(base_pairs, iter(inserts))

    def pairs_for_property_interval(
        self, property_low: int, property_high: int
    ) -> Iterator[EncodedTriple]:
        for property_id in self.properties_in_interval(property_low, property_high):
            for subject_id, object_id in self.pairs_for_property(property_id):
                yield property_id, subject_id, object_id

    def iter_triples(self) -> Iterator[EncodedTriple]:
        """All visible triples in PSO order (the compaction feed)."""
        for property_id in self.properties:
            for subject_id, object_id in self.pairs_for_property(property_id):
                yield property_id, subject_id, object_id

    # storage accounting -------------------------------------------------- #

    def size_in_bytes(self) -> int:
        return self.base.size_in_bytes() + self.delta.size_in_bytes()


class OverlayDatatypeStore(_PropertyOverlayMixin):
    """Read view merging a :class:`DatatypeTripleStore` base with a delta.

    Within one ``(property, subject)`` pair the visible literal order is
    *base literals first (their stored order), then delta literals in
    insertion order* — exactly what a from-scratch rebuild produces when the
    inserted triples are appended after the base graph.
    """

    def __init__(self, base: DatatypeTripleStore, delta: DatatypeDelta) -> None:
        self.base = base
        self.delta = delta

    # basic accessors ---------------------------------------------------- #

    @property
    def literals(self):
        """The base literal store (delta literals live in the delta until compaction)."""
        return self.base.literals

    # counting ----------------------------------------------------------- #

    def count_subjects_with_property(self, property_id: int) -> int:
        return sum(1 for _run in self._merged_runs(property_id))

    # pattern evaluation -------------------------------------------------- #

    def literals_for(self, subject_id: int, property_id: int) -> List[Literal]:
        base_literals = self.base.literals_for(subject_id, property_id)
        tombs = self.delta.tombstones_for(property_id, subject_id)
        if tombs:
            base_literals = [literal for literal in base_literals if literal not in tombs]
        return base_literals + self.delta.insert_literals(property_id, subject_id)

    def subjects_for(self, property_id: int, literal: Literal) -> List[int]:
        results: List[int] = []
        for subject_id, literals in self._merged_runs(property_id):
            if literal in literals:
                results.append(subject_id)
        return results

    def pairs_for_property(self, property_id: int) -> Iterator[Tuple[int, Literal]]:
        for subject_id, literals in self._merged_runs(property_id):
            for literal in literals:
                yield subject_id, literal

    def pairs_for_property_interval(
        self, property_low: int, property_high: int
    ) -> Iterator[Tuple[int, int, Literal]]:
        for property_id in self.properties_in_interval(property_low, property_high):
            for subject_id, literal in self.pairs_for_property(property_id):
                yield property_id, subject_id, literal

    def iter_triples(self) -> Iterator[EncodedDatatypeTriple]:
        """All visible triples in PS order (the compaction feed)."""
        for property_id in self.properties:
            for subject_id, literal in self.pairs_for_property(property_id):
                yield property_id, subject_id, literal

    def _merged_runs(self, property_id: int) -> Iterator[Tuple[int, List[Literal]]]:
        """Visible ``(subject, literals)`` runs of ``property_id``, subjects ascending.

        Base runs are decoded with the base's batched kernels and merged
        two-pointer style with the delta's sorted subject list; runs whose
        literals are all tombstoned disappear, mirroring a rebuild.
        """
        delta_subjects = self.delta.insert_subjects(property_id)
        delta_index = 0
        for subject_id, literals in self._base_runs(property_id):
            while delta_index < len(delta_subjects) and delta_subjects[delta_index] < subject_id:
                delta_only = delta_subjects[delta_index]
                yield delta_only, list(self.delta.insert_literals(property_id, delta_only))
                delta_index += 1
            tombs = self.delta.tombstones_for(property_id, subject_id)
            if tombs:
                literals = [literal for literal in literals if literal not in tombs]
            if delta_index < len(delta_subjects) and delta_subjects[delta_index] == subject_id:
                literals = literals + self.delta.insert_literals(property_id, subject_id)
                delta_index += 1
            if literals:
                yield subject_id, literals
        while delta_index < len(delta_subjects):
            delta_only = delta_subjects[delta_index]
            yield delta_only, list(self.delta.insert_literals(property_id, delta_only))
            delta_index += 1

    def _base_runs(self, property_id: int) -> Iterator[Tuple[int, List[Literal]]]:
        """Base ``(subject, literals)`` runs grouped from the batched pair scan."""
        current: Optional[int] = None
        literals: List[Literal] = []
        for subject_id, literal in self.base.pairs_for_property(property_id):
            if subject_id != current:
                if current is not None:
                    yield current, literals
                current = subject_id
                literals = []
            literals.append(literal)
        if current is not None:
            yield current, literals

    # storage accounting -------------------------------------------------- #

    def size_in_bytes(self, include_literals: bool = True) -> int:
        return self.base.size_in_bytes(include_literals) + self.delta.size_in_bytes()


class OverlayTypeStore:
    """Read view merging an :class:`RDFTypeStore` base with a delta.

    The red-black-tree base is itself insert-capable but supports no
    deletion, so tombstones live in the delta either way; keeping inserts
    there too gives compaction one uniform merged iterator per layout.
    """

    def __init__(self, base: RDFTypeStore, delta: TypeDelta) -> None:
        self.base = base
        self.delta = delta

    # basic accessors ---------------------------------------------------- #

    def __len__(self) -> int:
        return len(self.base) - self.delta.tombstone_count + self.delta.insert_count

    def __repr__(self) -> str:
        return (
            f"OverlayTypeStore({len(self)} visible triples = {len(self.base)} base "
            f"- {self.delta.tombstone_count} tombstones + {self.delta.insert_count} inserts)"
        )

    # lookups ------------------------------------------------------------ #

    def contains(self, subject_id: int, concept_id: int) -> bool:
        if self.delta.is_tombstoned(subject_id, concept_id):
            return False
        if self.delta.has_insert(subject_id, concept_id):
            return True
        return self.base.contains(subject_id, concept_id)

    def subjects_of(self, concept_id: int) -> List[int]:
        base_subjects = self.base.subjects_of(concept_id)
        tombs = self.delta.tombstones()
        if tombs:
            base_subjects = [s for s in base_subjects if (s, concept_id) not in tombs]
        return _merge_sorted(base_subjects, self.delta.insert_subjects(concept_id))

    def concepts_of(self, subject_id: int) -> List[int]:
        base_concepts = self.base.concepts_of(subject_id)
        tombs = self.delta.tombstones()
        if tombs:
            base_concepts = [c for c in base_concepts if (subject_id, c) not in tombs]
        return _merge_sorted(base_concepts, self.delta.insert_concepts(subject_id))

    def subjects_of_interval(self, concept_low: int, concept_high: int) -> List[int]:
        tombs = self.delta.tombstones()
        seen = set()
        for subject_id, concept_id in self.base.pairs_in_interval(concept_low, concept_high):
            if (subject_id, concept_id) not in tombs:
                seen.add(subject_id)
        for _concept, subject_id in self.delta.insert_pairs_in_interval(concept_low, concept_high):
            seen.add(subject_id)
        return sorted(seen)

    def count_concept(self, concept_id: int) -> int:
        return self.count_concept_interval(concept_id, concept_id + 1)

    def count_concept_interval(self, concept_low: int, concept_high: int) -> int:
        return (
            self.base.count_concept_interval(concept_low, concept_high)
            - self.delta.tombstone_count_in_interval(concept_low, concept_high)
            + self.delta.insert_count_in_interval(concept_low, concept_high)
        )

    def iter_triples(self) -> Iterator[EncodedTypeTriple]:
        """All visible ``(subject, concept)`` pairs in SO order (compaction feed)."""
        tombs = set(self.delta.tombstones())  # snapshot: this scan is lazy
        base_pairs = self.base.iter_triples()
        if tombs:
            base_pairs = (pair for pair in base_pairs if pair not in tombs)
        inserts = self.delta.inserts_so()
        if not inserts:
            yield from base_pairs
            return
        yield from heapq.merge(base_pairs, iter(inserts))

    # storage accounting -------------------------------------------------- #

    def size_in_bytes(self) -> int:
        return self.base.size_in_bytes() + self.delta.size_in_bytes()
