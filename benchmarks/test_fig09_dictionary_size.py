"""Figure 9 — dictionary size comparison.

The paper compares the serialised dictionary sizes of the disk-based systems
(Jena TDB, RDF4Led) against SuccinctEdge for all 8 datasets: Jena TDB is the
largest and SuccinctEdge takes about half the size of RDF4Led.
"""

from __future__ import annotations

from repro.bench.harness import record_table

from repro.baselines.registry import create_system
from repro.bench.harness import format_table

SYSTEMS = ["SuccinctEdge", "RDF4Led", "Jena_TDB"]


def test_fig09_dictionary_size(benchmark, context, results_dir):
    """Regenerate the Figure 9 series (dictionary size in KiB per dataset)."""
    datasets = ["ENGIE-250", "ENGIE-500"] + sorted(
        (name for name in context.datasets if name.endswith("K")),
        key=lambda name: len(context.datasets[name]),
    )

    def build_rows():
        rows = {}
        for system_name in SYSTEMS:
            cells = []
            for dataset_name in datasets:
                system = create_system(system_name)
                system.load(context.datasets[dataset_name], ontology=context.lubm.ontology)
                cells.append(system.dictionary_size_in_bytes() / 1024.0)
            rows[system_name] = cells
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    table = format_table("Figure 9: dictionary size", datasets, rows, unit="KiB")
    record_table(results_dir, "fig09_dictionary_size", table)

    # Shape check mirroring the paper: TDB largest, SuccinctEdge < RDF4Led.
    for index in range(len(datasets)):
        assert rows["SuccinctEdge"][index] < rows["RDF4Led"][index] < rows["Jena_TDB"][index]
