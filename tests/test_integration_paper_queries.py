"""Integration tests: the paper's 26 evaluation queries on a LUBM dataset.

SuccinctEdge (LiteMat interval reasoning, SDS access paths) is cross-checked
against an independently implemented baseline (multi-index store + UNION
rewriting reasoning): both must return exactly the same answer sets, and the
landmark queries must return the cardinalities of the paper's Tables 1 and 2.
"""

from __future__ import annotations

import pytest

from repro.baselines.multi_index_store import MultiIndexMemoryStore
from repro.baselines.registry import SuccinctEdgeSystem
from repro.workloads.lubm import TABLE1_CARDINALITIES, TABLE2_CARDINALITIES


@pytest.fixture(scope="module")
def systems(small_lubm):
    succinct = SuccinctEdgeSystem()
    succinct.load(small_lubm.graph, ontology=small_lubm.ontology)
    baseline = MultiIndexMemoryStore()
    baseline.load(small_lubm.graph, ontology=small_lubm.ontology)
    return succinct, baseline


@pytest.fixture(scope="module")
def queries(small_lubm_catalog):
    return small_lubm_catalog.by_identifier()


class TestTable1Queries:
    @pytest.mark.parametrize("position,cardinality", list(enumerate(TABLE1_CARDINALITIES, start=1)))
    def test_answer_set_sizes_match_table1(self, systems, queries, position, cardinality):
        succinct, _ = systems
        result = succinct.query(queries[f"S{position}"].sparql)
        assert len(result) == cardinality

    @pytest.mark.parametrize("identifier", ["S1", "S3", "S5"])
    def test_cross_system_agreement(self, systems, queries, identifier):
        succinct, baseline = systems
        query = queries[identifier].sparql
        assert succinct.query(query).to_set() == baseline.query(query).to_set()


class TestTable2Queries:
    @pytest.mark.parametrize("position,cardinality", list(enumerate(TABLE2_CARDINALITIES, start=6)))
    def test_answer_set_sizes_match_table2(self, systems, queries, position, cardinality):
        succinct, _ = systems
        result = succinct.query(queries[f"S{position}"].sparql)
        assert len(result) == cardinality

    @pytest.mark.parametrize("identifier", ["S6", "S8", "S10"])
    def test_cross_system_agreement(self, systems, queries, identifier):
        succinct, baseline = systems
        query = queries[identifier].sparql
        assert succinct.query(query).to_set() == baseline.query(query).to_set()


class TestFigure12Queries:
    @pytest.mark.parametrize("identifier", ["S11", "S12", "S13", "S14", "S15"])
    def test_scan_queries_agree_with_baseline(self, systems, queries, identifier):
        succinct, baseline = systems
        query = queries[identifier].sparql
        succinct_rows = succinct.query(query).to_set()
        baseline_rows = baseline.query(query).to_set()
        assert succinct_rows == baseline_rows
        assert len(succinct_rows) > 0

    def test_answer_sizes_grow_across_the_group(self, systems, queries):
        succinct, _ = systems
        sizes = [len(succinct.query(queries[f"S{i}"].sparql)) for i in (11, 13, 15)]
        assert sizes[0] < sizes[1] < sizes[2]


class TestBgpQueries:
    @pytest.mark.parametrize("identifier", ["M1", "M2", "M3", "M4", "M5"])
    def test_bgp_queries_agree_with_baseline(self, systems, queries, identifier):
        succinct, baseline = systems
        query = queries[identifier].sparql
        assert succinct.query(query).to_set() == baseline.query(query).to_set()

    def test_m2_selects_only_graduate_students(self, systems, queries, small_lubm):
        from repro.rdf.namespaces import LUBM

        succinct, _ = systems
        result = succinct.query(queries["M2"].sparql)
        graduate_students = set(small_lubm.graph.instances_of(LUBM.GraduateStudent))
        assert result
        for row in result:
            assert row["X"] in graduate_students


class TestReasoningQueries:
    @pytest.mark.parametrize("identifier", ["R1", "R2", "R3", "R5"])
    def test_litemat_reasoning_equals_union_rewriting(self, systems, queries, identifier):
        succinct, baseline = systems
        query = queries[identifier]
        succinct_rows = succinct.query(query.sparql, reasoning=True).to_set()
        baseline_rows = baseline.query(query.sparql, reasoning=True).to_set()
        assert succinct_rows == baseline_rows

    def test_r5_returns_more_than_m4(self, systems, queries):
        # R5 is M4 plus reasoning over the memberOf property hierarchy: the
        # inferred worksFor/headOf members must enlarge the answer set.
        succinct, _ = systems
        m4_rows = succinct.query(queries["M4"].sparql, reasoning=False).to_set()
        r5_rows = succinct.query(queries["R5"].sparql, reasoning=True).to_set()
        assert m4_rows < r5_rows

    def test_r3_subsumes_m2(self, systems, queries, small_lubm):
        from repro.rdf.namespaces import LUBM

        # R3 asks for lubm:Student (a super-concept of GraduateStudent), so
        # with reasoning it must return at least every M2 row.
        succinct, _ = systems
        m2_rows = succinct.query(queries["M2"].sparql, reasoning=False).to_set()
        r3_rows = succinct.query(queries["R3"].sparql, reasoning=True).to_set()
        assert m2_rows
        assert m2_rows <= r3_rows
        students = {row["X"] for row in succinct.query(queries["R3"].sparql, reasoning=True)}
        explicit_graduates = set(small_lubm.graph.instances_of(LUBM.GraduateStudent))
        assert students & explicit_graduates

    def test_r1_heads_are_persons_via_inference(self, systems, queries, small_lubm):
        from repro.rdf.namespaces import LUBM

        succinct, _ = systems
        rows = succinct.query(queries["R1"].sparql, reasoning=True)
        heads = {row["X"] for row in rows}
        expected_heads = set(small_lubm.graph.subjects(LUBM.headOf, None))
        assert heads == expected_heads
        assert heads  # at least one department head per department


class TestMotivatingExample:
    def test_anomaly_query_finds_out_of_range_pressures(self, engie_store):
        from repro.workloads.engie import anomaly_detection_query

        result = engie_store.query(anomaly_detection_query(), reasoning=True)
        assert result.variables == ["x", "s", "ts", "v1"]
        for row in result:
            value = float(row["v1"].lexical)
            # Values are either in bar (out of [3, 4.5]) or in hectopascal
            # (out of [3000, 4500]).
            assert value < 3.0 or value > 4.5 or value < 3000.0 or value > 4500.0

    def test_reasoning_is_required_to_cover_both_stations(self, engie_store):
        from repro.workloads.engie import anomaly_detection_query

        with_reasoning = engie_store.query(anomaly_detection_query(), reasoning=True)
        without_reasoning = engie_store.query(anomaly_detection_query(), reasoning=False)
        # Station annotations use sub-concepts of qudt:PressureUnit only, so
        # the non-reasoning run cannot match any pressure unit.
        assert len(without_reasoning) == 0
        assert len(with_reasoning) >= len(without_reasoning)
