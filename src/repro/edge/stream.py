"""Graph-instance stream processing: rebuild-per-instance and live-update modes.

The paper's target application is "the processing of a flow of RDF graphs
(sent from sensors or actuators) which are sharing a common topology...
continuously queried by a set of SPARQL queries... executed once per graph
instance" (Section 1).  Two processors implement that loop:

* :class:`GraphStreamProcessor` — the paper's native mode: every incoming
  graph instance gets a *fresh* SuccinctEdge store (dictionaries derived from
  the stable, pre-encoded ontology), every registered rule runs against it,
  and non-empty answer sets are forwarded as alerts.  Instances are
  independent; rules cannot see across them.
* :class:`LiveStreamProcessor` — the live-update mode (see
  ``docs/update_lifecycle.md``): one long-lived
  :class:`~repro.store.updatable.UpdatableSuccinctEdge` ingests every reading
  as a **delta insert**, so alerts fire against live data spanning the whole
  retained window, a bounded retention policy evicts old instances through
  tombstones, and a :class:`~repro.store.delta.CompactionPolicy` folds the
  delta into a fresh succinct base when it grows too large.

Related: :mod:`repro.edge.device` (resource model),
:mod:`repro.edge.alerts` (rules and sinks), :mod:`repro.edge.server`
(central administration), ``docs/architecture.md`` (write-path diagram).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional

from repro.edge.alerts import Alert, AlertSink, AnomalyRule
from repro.edge.device import EdgeDevice
from repro.rdf.graph import Graph
from repro.rdf.terms import Triple
from repro.store.delta import CompactionPolicy
from repro.store.succinct_edge import SuccinctEdge
from repro.store.updatable import UpdatableSuccinctEdge


@dataclass
class StreamStatistics:
    """Counters accumulated over the processed stream."""

    instances_processed: int = 0
    triples_processed: int = 0
    alerts_raised: int = 0
    total_processing_ms: float = 0.0
    per_instance_ms: List[float] = field(default_factory=list)

    @property
    def mean_processing_ms(self) -> float:
        """Mean per-instance processing time."""
        if not self.per_instance_ms:
            return 0.0
        return sum(self.per_instance_ms) / len(self.per_instance_ms)


class GraphStreamProcessor:
    """Runs a fixed set of anomaly rules over a stream of graph instances."""

    def __init__(
        self,
        ontology: Graph,
        rules: Iterable[AnomalyRule],
        sink: Optional[AlertSink] = None,
        device: Optional[EdgeDevice] = None,
    ) -> None:
        self.ontology = ontology
        self.rules = list(rules)
        self.sink = sink if sink is not None else AlertSink()
        self.device = device
        self.statistics = StreamStatistics()

    # ------------------------------------------------------------------ #
    # processing
    # ------------------------------------------------------------------ #

    def process_instance(self, graph: Graph) -> List[Alert]:
        """Process one graph instance; return the alerts it raised."""
        started = time.perf_counter()
        store = SuccinctEdge.from_graph(graph, ontology=self.ontology)
        produced: List[Alert] = []
        instance_id = self.statistics.instances_processed
        for rule in self.rules:
            results = store.query(rule.query, reasoning=rule.requires_reasoning)
            produced.extend(self.sink.emit_result_set(rule, instance_id, results))
        elapsed_ms = (time.perf_counter() - started) * 1000.0

        self.statistics.instances_processed += 1
        self.statistics.triples_processed += len(graph)
        self.statistics.alerts_raised += len(produced)
        self.statistics.total_processing_ms += elapsed_ms
        self.statistics.per_instance_ms.append(elapsed_ms)
        if self.device is not None:
            self.device.charge_processing(elapsed_ms)
            if produced:
                # Charge only this instance's alerts — the sink accumulates
                # alerts forever, so charging its running total would grow
                # quadratically over the stream.
                self.device.charge_transmission(AlertSink.payload_bytes(produced))
        return produced

    def process_stream(self, graphs: Iterable[Graph]) -> StreamStatistics:
        """Process every graph of ``graphs``; return the accumulated statistics."""
        for graph in graphs:
            self.process_instance(graph)
        return self.statistics


@dataclass
class LiveStreamStatistics(StreamStatistics):
    """Stream counters plus live-update accounting."""

    triples_inserted: int = 0
    triples_evicted: int = 0
    compactions: int = 0


class LiveStreamProcessor:
    """Runs anomaly rules against one live, continuously-updated store.

    Unlike :class:`GraphStreamProcessor` (fresh store per instance), readings
    are ingested as delta inserts into a single
    :class:`~repro.store.updatable.UpdatableSuccinctEdge`, so

    * an inserted reading is queryable immediately — no rebuild between
      a measurement arriving and an alert firing;
    * rules see the whole retained window, enabling cross-instance queries
      (trends, aggregates over recent history);
    * with ``retention_instances`` set, instances older than the window are
      evicted through tombstone deletes.  Triples shared with retained
      instances (the common topology of the paper's graph streams) are
      reference-counted and survive eviction;
    * after every instance the store's
      :class:`~repro.store.delta.CompactionPolicy` is consulted; when it
      triggers, the delta is folded into a fresh succinct base —
      synchronously, or on a worker thread with ``background_compaction``.

    Parameters
    ----------
    ontology:
        The stable, pre-encoded ontology (broadcast by the administration
        server in the paper's deployment).
    rules:
        Continuous queries evaluated after every ingested instance.
    sink / device:
        As for :class:`GraphStreamProcessor`.
    policy:
        Compaction thresholds (defaults to
        :class:`~repro.store.delta.CompactionPolicy`'s defaults).
    retention_instances:
        Size of the sliding window, in graph instances.  ``None`` retains
        everything.
    background_compaction:
        Run triggered compactions on a worker thread instead of blocking the
        ingestion loop.
    """

    def __init__(
        self,
        ontology: Graph,
        rules: Iterable[AnomalyRule],
        sink: Optional[AlertSink] = None,
        device: Optional[EdgeDevice] = None,
        policy: Optional[CompactionPolicy] = None,
        retention_instances: Optional[int] = None,
        background_compaction: bool = False,
    ) -> None:
        self.ontology = ontology
        self.rules = list(rules)
        self.sink = sink if sink is not None else AlertSink()
        self.device = device
        self.retention_instances = retention_instances
        self.background_compaction = background_compaction
        self.store = UpdatableSuccinctEdge.empty(ontology=ontology, policy=policy)
        self.statistics = LiveStreamStatistics()
        self._window: Deque[Graph] = deque()
        self._reference_counts: Dict[Triple, int] = {}

    # ------------------------------------------------------------------ #
    # processing
    # ------------------------------------------------------------------ #

    def process_instance(self, graph: Graph) -> List[Alert]:
        """Ingest one graph instance into the live store; return its alerts."""
        started = time.perf_counter()
        inserted = self.store.insert_graph(graph)
        evicted = 0
        if self.retention_instances is not None:
            # Window bookkeeping only exists to drive eviction; without a
            # retention bound it would grow without limit on a long-running
            # device, so it is skipped entirely.
            for triple in graph:
                self._reference_counts[triple] = self._reference_counts.get(triple, 0) + 1
            self._window.append(graph)
            evicted = self._evict_expired()

        produced: List[Alert] = []
        instance_id = self.statistics.instances_processed
        for rule in self.rules:
            results = self.store.query(rule.query, reasoning=rule.requires_reasoning)
            produced.extend(self.sink.emit_result_set(rule, instance_id, results))
        if self.store.maybe_compact(background=self.background_compaction):
            self.statistics.compactions += 1
        elapsed_ms = (time.perf_counter() - started) * 1000.0

        self.statistics.instances_processed += 1
        self.statistics.triples_processed += len(graph)
        self.statistics.triples_inserted += inserted
        self.statistics.triples_evicted += evicted
        self.statistics.alerts_raised += len(produced)
        self.statistics.total_processing_ms += elapsed_ms
        self.statistics.per_instance_ms.append(elapsed_ms)
        if self.device is not None:
            self.device.charge_processing(elapsed_ms)
            if produced:
                # As in GraphStreamProcessor: charge this instance's alerts,
                # not the sink's ever-growing running total.
                self.device.charge_transmission(AlertSink.payload_bytes(produced))
        return produced

    def process_stream(self, graphs: Iterable[Graph]) -> LiveStreamStatistics:
        """Ingest every graph of ``graphs``; return the accumulated statistics."""
        for graph in graphs:
            self.process_instance(graph)
        return self.statistics

    def _evict_expired(self) -> int:
        """Delete triples of instances that slid out of the retention window.

        A triple is deleted only when its reference count drops to zero —
        the common topology shared by every instance stays visible for as
        long as any retained instance mentions it.
        """
        evicted = 0
        while len(self._window) > self.retention_instances:
            expired = self._window.popleft()
            for triple in expired:
                remaining = self._reference_counts[triple] - 1
                if remaining:
                    self._reference_counts[triple] = remaining
                else:
                    del self._reference_counts[triple]
                    if self.store.delete(triple):
                        evicted += 1
        return evicted
