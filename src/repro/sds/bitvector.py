"""Bit vector with constant-time rank and fast select.

The bitmaps (BM) of SuccinctEdge connect the property, subject and object
layers of its PSO representation (paper Section 4, Figure 5).  They must
support the three SDS primitives:

* ``access(i)`` — the bit at position ``i``;
* ``rank(i, c)`` — number of occurrences of bit ``c`` in positions ``[0, i)``
  (the sdsl-lite convention, exclusive of ``i``);
* ``select(j, c)`` — position of the ``j``-th (1-based) occurrence of ``c``.

The implementation packs bits into 64-bit words and keeps a two-level rank
directory (superblocks of 8 words, per-word cumulative counts) giving O(1)
``rank``.  ``select`` binary-searches the superblock directory and then scans
at most one superblock, which is O(log n / superblock) — in practice a handful
of word popcounts, faithful to the "efficient select" promise of the paper
without the engineering burden of a full select directory.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, List

_WORD_BITS = 64
_WORDS_PER_SUPERBLOCK = 8
_SUPERBLOCK_BITS = _WORD_BITS * _WORDS_PER_SUPERBLOCK
_WORD_MASK = (1 << _WORD_BITS) - 1


def _popcount(word: int) -> int:
    """Number of set bits in a 64-bit word."""
    return bin(word).count("1")


class BitVectorBuilder:
    """Incremental builder for :class:`BitVector`.

    Appending bits one by one avoids materialising an intermediate Python
    list when constructing the store layers (the bitmaps can be as long as
    the number of triples).
    """

    def __init__(self) -> None:
        self._words: List[int] = []
        self._length = 0

    def append(self, bit: int) -> None:
        """Append a single bit (``0`` or ``1``)."""
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        word_index, offset = divmod(self._length, _WORD_BITS)
        if word_index == len(self._words):
            self._words.append(0)
        if bit:
            self._words[word_index] |= 1 << offset
        self._length += 1

    def extend(self, bits: Iterable[int]) -> None:
        """Append every bit of ``bits`` in order."""
        for bit in bits:
            self.append(bit)

    def __len__(self) -> int:
        return self._length

    def build(self) -> "BitVector":
        """Freeze the builder into an immutable :class:`BitVector`."""
        return BitVector._from_words(self._words, self._length)


class BitVector:
    """Immutable bit sequence with rank/select support.

    Instances are typically produced by :class:`BitVectorBuilder` or by the
    convenience constructor ``BitVector(bits)`` where ``bits`` is any iterable
    of 0/1 integers.
    """

    __slots__ = ("_words", "_length", "_superblock_ranks", "_word_ranks", "_ones")

    def __init__(self, bits: Iterable[int] = ()) -> None:
        builder = BitVectorBuilder()
        builder.extend(bits)
        frozen = builder.build()
        self._words = frozen._words
        self._length = frozen._length
        self._superblock_ranks = frozen._superblock_ranks
        self._word_ranks = frozen._word_ranks
        self._ones = frozen._ones

    @classmethod
    def _from_words(cls, words: List[int], length: int) -> "BitVector":
        self = object.__new__(cls)
        self._words = array("Q", words)
        self._length = length
        self._build_directories()
        return self

    def _build_directories(self) -> None:
        superblock_ranks = array("Q")
        word_ranks = array("Q")
        running = 0
        for index, word in enumerate(self._words):
            if index % _WORDS_PER_SUPERBLOCK == 0:
                superblock_ranks.append(running)
            word_ranks.append(running)
            running += _popcount(word)
        self._superblock_ranks = superblock_ranks
        self._word_ranks = word_ranks
        self._ones = running

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[int]:
        for i in range(self._length):
            yield self.access(i)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self._length == other._length and list(self._words) == list(other._words)

    def __hash__(self) -> int:
        return hash((self._length, bytes(self._words.tobytes())))

    def __repr__(self) -> str:
        preview = "".join(str(b) for b in list(self)[:32])
        suffix = "..." if self._length > 32 else ""
        return f"BitVector(len={self._length}, bits={preview}{suffix})"

    # ------------------------------------------------------------------ #
    # SDS operations
    # ------------------------------------------------------------------ #

    def access(self, index: int) -> int:
        """Return the bit stored at ``index``."""
        if not 0 <= index < self._length:
            raise IndexError(f"bit index {index} out of range [0, {self._length})")
        word_index, offset = divmod(index, _WORD_BITS)
        return (self._words[word_index] >> offset) & 1

    __getitem__ = access

    def count(self, bit: int = 1) -> int:
        """Total number of occurrences of ``bit`` in the vector."""
        if bit == 1:
            return self._ones
        if bit == 0:
            return self._length - self._ones
        raise ValueError(f"bit must be 0 or 1, got {bit!r}")

    def rank(self, index: int, bit: int = 1) -> int:
        """Number of occurrences of ``bit`` in positions ``[0, index)``.

        ``index`` may equal ``len(self)`` (ranking the whole vector).
        """
        if not 0 <= index <= self._length:
            raise IndexError(f"rank index {index} out of range [0, {self._length}]")
        ones = self._rank1(index)
        if bit == 1:
            return ones
        if bit == 0:
            return index - ones
        raise ValueError(f"bit must be 0 or 1, got {bit!r}")

    def _rank1(self, index: int) -> int:
        if index == 0:
            return 0
        word_index, offset = divmod(index, _WORD_BITS)
        if word_index >= len(self._words):
            return self._ones
        partial = self._words[word_index] & ((1 << offset) - 1) if offset else 0
        return self._word_ranks[word_index] + _popcount(partial)

    def select(self, occurrence: int, bit: int = 1) -> int:
        """Index of the ``occurrence``-th (1-based) occurrence of ``bit``.

        Raises :class:`ValueError` when the vector holds fewer than
        ``occurrence`` occurrences of ``bit``.
        """
        if occurrence <= 0:
            raise ValueError("select occurrence is 1-based and must be positive")
        if bit == 1:
            return self._select1(occurrence)
        if bit == 0:
            return self._select0(occurrence)
        raise ValueError(f"bit must be 0 or 1, got {bit!r}")

    def _select1(self, occurrence: int) -> int:
        if occurrence > self._ones:
            raise ValueError(
                f"select(1) out of range: asked occurrence {occurrence}, "
                f"vector has {self._ones} set bits"
            )
        word_index = self._find_word(occurrence, self._word_ranks)
        remaining = occurrence - self._word_ranks[word_index]
        return word_index * _WORD_BITS + _nth_set_bit(self._words[word_index], remaining)

    def _select0(self, occurrence: int) -> int:
        zeros_total = self._length - self._ones
        if occurrence > zeros_total:
            raise ValueError(
                f"select(0) out of range: asked occurrence {occurrence}, "
                f"vector has {zeros_total} zero bits"
            )
        # Largest word index whose preceding zero count is < occurrence.
        lo, hi = 0, len(self._words) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            zeros_before = mid * _WORD_BITS - self._word_ranks[mid]
            if zeros_before < occurrence:
                lo = mid
            else:
                hi = mid - 1
        word_index = lo
        zeros_before = word_index * _WORD_BITS - self._word_ranks[word_index]
        remaining = occurrence - zeros_before
        inverted = (~self._words[word_index]) & _WORD_MASK
        position = word_index * _WORD_BITS + _nth_set_bit(inverted, remaining)
        if position >= self._length:
            raise ValueError(
                f"select(0) out of range: occurrence {occurrence} falls past "
                f"the end of the vector"
            )
        return position

    def _find_word(self, occurrence: int, ranks: "array[int]") -> int:
        """Largest word index whose cumulative rank is < ``occurrence``."""
        lo, hi = 0, len(ranks) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if ranks[mid] < occurrence:
                lo = mid
            else:
                hi = mid - 1
        return lo

    # ------------------------------------------------------------------ #
    # storage accounting
    # ------------------------------------------------------------------ #

    def size_in_bytes(self, include_directories: bool = True) -> int:
        """Approximate storage footprint in bytes.

        ``include_directories`` distinguishes the raw bit payload from the
        auxiliary rank directory.  The directory overhead is accounted at the
        reference layout cost of sdsl-lite's ``rank_support_v`` (25% of the
        payload) rather than at the cost of this Python implementation's
        bookkeeping, so that storage comparisons reflect the data-structure
        design and not CPython object sizes.
        """
        payload = len(self._words) * 8
        if not include_directories:
            return payload
        directories = (payload + 3) // 4 + len(self._superblock_ranks) * 8
        return payload + directories

    def to_list(self) -> List[int]:
        """Materialise the bits as a plain Python list (testing helper)."""
        return list(self)


def _nth_set_bit(word: int, n: int) -> int:
    """Offset (0-based) of the ``n``-th (1-based) set bit inside ``word``."""
    seen = 0
    offset = 0
    w = word
    while w:
        # Skip whole bytes when possible to keep the scan cheap.
        low_byte = w & 0xFF
        byte_count = _popcount(low_byte)
        if seen + byte_count < n:
            seen += byte_count
            w >>= 8
            offset += 8
            continue
        for bit_offset in range(8):
            if (low_byte >> bit_offset) & 1:
                seen += 1
                if seen == n:
                    return offset + bit_offset
        break
    raise ValueError(f"word {word:#x} has fewer than {n} set bits")
