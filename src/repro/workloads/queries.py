"""The 26 evaluation queries of the paper's appendix (S1-S15, M1-M5, R1-R6).

Queries are produced against a generated :class:`~repro.workloads.lubm.LubmDataset`
because the single-triple-pattern queries plug in landmark constants whose
answer-set sizes match the paper's Tables 1 and 2.

Groups
------
``S1-S5``   — single ``(S, P, ?o)`` triple pattern (Table 1);
``S6-S10``  — single ``(?s, P, O)`` triple pattern (Table 2);
``S11-S15`` — single ``(?s, P, ?o)`` triple pattern (Figure 12);
``M1-M5``   — multi-pattern BGPs without inference (Figure 13);
``R1-R6``   — BGPs requiring concept and/or property hierarchy reasoning
              (Figure 14);
``A1-A6``   — analytics additions beyond the paper (OPTIONAL, ORDER BY +
              LIMIT top-k, GROUP BY aggregates, VALUES, ASK).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.workloads.lubm import LubmDataset

_PREFIXES = (
    "PREFIX lubm: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
)


@dataclass(frozen=True)
class BenchmarkQuery:
    """One evaluation query with its metadata.

    Attributes
    ----------
    identifier:
        The paper's query name (``"S1"`` ... ``"R6"``).
    sparql:
        The full SPARQL text (prefixes included).
    group:
        ``"sp?o"``, ``"?spo"``, ``"?sp?o"``, ``"bgp"`` or ``"reasoning"``.
    requires_reasoning:
        Whether an exhaustive answer set needs RDFS inferences.
    expected_cardinality:
        The answer-set size guaranteed by the dataset landmarks (``None`` when
        it depends on generator parameters).
    description:
        Short human-readable description.
    """

    identifier: str
    sparql: str
    group: str
    requires_reasoning: bool = False
    expected_cardinality: Optional[int] = None
    description: str = ""


class QueryCatalog:
    """Builds the paper's 26 queries against a generated LUBM dataset."""

    def __init__(self, dataset: LubmDataset) -> None:
        self.dataset = dataset

    # ------------------------------------------------------------------ #
    # single triple pattern queries
    # ------------------------------------------------------------------ #

    def table1_queries(self) -> List[BenchmarkQuery]:
        """S1-S5: ``(S, P, ?o)`` patterns with answer sizes 4/66/129/257/513."""
        dataset = self.dataset
        queries = [
            BenchmarkQuery(
                identifier="S1",
                sparql=_PREFIXES
                + f"SELECT ?X WHERE {{ <{dataset.landmark_uri('student_takes_4')}> lubm:takesCourse ?X }}",
                group="sp?o",
                expected_cardinality=4,
                description="Courses taken by one undergraduate student.",
            )
        ]
        for position, cardinality in enumerate((66, 129, 257, 513), start=2):
            landmark = dataset.landmark_uri(f"pub_authors_{cardinality}")
            queries.append(
                BenchmarkQuery(
                    identifier=f"S{position}",
                    sparql=_PREFIXES
                    + f"SELECT ?X WHERE {{ <{landmark}> lubm:publicationAuthor ?X }}",
                    group="sp?o",
                    expected_cardinality=cardinality,
                    description=f"Authors of a proceedings publication ({cardinality} authors).",
                )
            )
        return queries

    def table2_queries(self) -> List[BenchmarkQuery]:
        """S6-S10: ``(?s, P, O)`` patterns with answer sizes 5/17/135/283/521."""
        dataset = self.dataset
        shared_title = dataset.landmark_literal("pub_name_283")
        return [
            BenchmarkQuery(
                identifier="S6",
                sparql=_PREFIXES
                + f"SELECT ?X WHERE {{ ?X lubm:advisor <{dataset.landmark_uri('advisor_5')}> }}",
                group="?spo",
                expected_cardinality=5,
                description="Advisees of one assistant professor.",
            ),
            BenchmarkQuery(
                identifier="S7",
                sparql=_PREFIXES
                + f"SELECT ?X WHERE {{ ?X lubm:takesCourse <{dataset.landmark_uri('course_takers_17')}> }}",
                group="?spo",
                expected_cardinality=17,
                description="Students taking one course.",
            ),
            BenchmarkQuery(
                identifier="S8",
                sparql=_PREFIXES
                + f"SELECT ?X WHERE {{ ?X lubm:worksFor <{dataset.landmark_uri('dept_workers_135')}> }}",
                group="?spo",
                expected_cardinality=135,
                description="Persons working for the central-services department.",
            ),
            BenchmarkQuery(
                identifier="S9",
                sparql=_PREFIXES
                + f'SELECT ?X WHERE {{ ?X lubm:name "{shared_title.lexical}" }}',
                group="?spo",
                expected_cardinality=283,
                description="Publications sharing one title.",
            ),
            BenchmarkQuery(
                identifier="S10",
                sparql=_PREFIXES
                + f"SELECT ?X WHERE {{ ?X lubm:memberOf <{dataset.landmark_uri('dept_members_521')}> }}",
                group="?spo",
                expected_cardinality=521,
                description="Members of one large department.",
            ),
        ]

    def figure12_queries(self) -> List[BenchmarkQuery]:
        """S11-S15: ``(?s, P, ?o)`` patterns with growing answer sets."""
        properties = [
            ("S11", "worksFor"),
            ("S12", "teacherOf"),
            ("S13", "undergraduateDegreeFrom"),
            ("S14", "emailAddress"),
            ("S15", "name"),
        ]
        return [
            BenchmarkQuery(
                identifier=identifier,
                sparql=_PREFIXES + f"SELECT ?X ?Y WHERE {{ ?X lubm:{prop} ?Y }}",
                group="?sp?o",
                description=f"Full scan of lubm:{prop}.",
            )
            for identifier, prop in properties
        ]

    # ------------------------------------------------------------------ #
    # multi-pattern queries (no inference)
    # ------------------------------------------------------------------ #

    def bgp_queries(self) -> List[BenchmarkQuery]:
        """M1-M5: the paper's join queries (appendix A.2.1)."""
        m5_publication = self.dataset.landmark_uri("m5_publication")
        return [
            BenchmarkQuery(
                identifier="M1",
                sparql=_PREFIXES
                + "SELECT ?X ?Y ?Z WHERE { ?X lubm:worksFor ?Z . ?X lubm:name ?Y . }",
                group="bgp",
                description="Workers with their name and employer.",
            ),
            BenchmarkQuery(
                identifier="M2",
                sparql=_PREFIXES
                + "SELECT ?X ?Y ?Z WHERE { ?X lubm:memberOf ?Z . "
                "?X rdf:type lubm:GraduateStudent . ?X lubm:undergraduateDegreeFrom ?Y . }",
                group="bgp",
                description="Graduate students, their department and their previous university.",
            ),
            BenchmarkQuery(
                identifier="M3",
                sparql=_PREFIXES
                + "SELECT ?X ?Y ?Z WHERE { ?X lubm:memberOf ?Z . "
                "?X rdf:type lubm:GraduateStudent . ?Z rdf:type lubm:Department . "
                "?Z lubm:subOrganizationOf ?Y . ?Y rdf:type lubm:University . }",
                group="bgp",
                description="Graduate students with department and university (5 patterns).",
            ),
            BenchmarkQuery(
                identifier="M4",
                sparql=_PREFIXES
                + "SELECT ?X ?Y ?Z WHERE { ?X lubm:memberOf ?Z . "
                "?Z lubm:subOrganizationOf ?Y . ?Y rdf:type lubm:University . }",
                group="bgp",
                description="Members of sub-organizations of a university.",
            ),
            BenchmarkQuery(
                identifier="M5",
                sparql=_PREFIXES
                + "SELECT * WHERE { "
                + f"<{m5_publication}> lubm:publicationAuthor ?p . "
                "?st lubm:memberOf ?o2 . "
                "?p rdf:type lubm:AssociateProfessor . "
                "?p lubm:worksFor ?o . "
                "?o rdf:type lubm:Department . "
                "?o lubm:subOrganizationOf ?u . "
                "?u rdf:type lubm:University . "
                "?p lubm:teacherOf ?te . "
                "?te rdf:type lubm:Course . "
                "?st lubm:takesCourse ?te . "
                "?st rdf:type lubm:UndergraduateStudent . }",
                group="bgp",
                description="11-pattern star/path query around one publication (paper M5).",
            ),
        ]

    # ------------------------------------------------------------------ #
    # reasoning queries
    # ------------------------------------------------------------------ #

    def reasoning_queries(self) -> List[BenchmarkQuery]:
        """R1-R6: queries needing concept and/or property hierarchy inferences."""
        m5_publication = self.dataset.landmark_uri("m5_publication")
        return [
            BenchmarkQuery(
                identifier="R1",
                sparql=_PREFIXES
                + "SELECT ?X ?Y ?Z WHERE { ?X rdf:type lubm:Person . "
                "?Z rdf:type lubm:Department . ?X lubm:headOf ?Z . "
                "?Z lubm:subOrganizationOf ?Y . ?Y rdf:type lubm:University . }",
                group="reasoning",
                requires_reasoning=True,
                description="Department heads (Person requires concept inference).",
            ),
            BenchmarkQuery(
                identifier="R2",
                sparql=_PREFIXES
                + "SELECT ?X ?Y ?Z WHERE { ?X rdf:type lubm:Person . "
                "?Z rdf:type lubm:Department . ?X lubm:worksFor ?Z . "
                "?Z lubm:subOrganizationOf ?Y . ?Y rdf:type lubm:University . }",
                group="reasoning",
                requires_reasoning=True,
                description="Department workers (concept + property inference).",
            ),
            BenchmarkQuery(
                identifier="R3",
                sparql=_PREFIXES
                + "SELECT ?X ?Y ?Z WHERE { ?X lubm:memberOf ?Z . "
                "?X rdf:type lubm:Student . ?X lubm:undergraduateDegreeFrom ?Y . }",
                group="reasoning",
                requires_reasoning=True,
                description="Students (sub-concepts) with degree provenance.",
            ),
            BenchmarkQuery(
                identifier="R4",
                sparql=_PREFIXES
                + "SELECT ?X ?Y ?Z ?N WHERE { ?X rdf:type lubm:Person . "
                "?Z rdf:type lubm:Department . ?X lubm:memberOf ?Z . "
                "?Z lubm:subOrganizationOf ?Y . ?Y lubm:name ?N . "
                "?Y rdf:type lubm:University . }",
                group="reasoning",
                requires_reasoning=True,
                description="Department members with university name (6 patterns).",
            ),
            BenchmarkQuery(
                identifier="R5",
                sparql=_PREFIXES
                + "SELECT ?X ?Y ?Z WHERE { ?X lubm:memberOf ?Z . "
                "?Z lubm:subOrganizationOf ?Y . ?Y rdf:type lubm:University . }",
                group="reasoning",
                requires_reasoning=True,
                description="M4 with reasoning over the memberOf property hierarchy.",
            ),
            BenchmarkQuery(
                identifier="R6",
                sparql=_PREFIXES
                + "SELECT * WHERE { "
                + f"<{m5_publication}> lubm:publicationAuthor ?p . "
                "?st lubm:memberOf ?o2 . "
                "?p rdf:type lubm:AssociateProfessor . "
                "?p lubm:worksFor ?o . "
                "?o rdf:type lubm:Department . "
                "?o lubm:subOrganizationOf ?u . "
                "?u rdf:type lubm:University . "
                "?p lubm:teacherOf ?te . "
                "?te rdf:type lubm:Course . "
                "?st lubm:takesCourse ?te . "
                "?st rdf:type lubm:UndergraduateStudent . }",
                group="reasoning",
                requires_reasoning=True,
                description="M5 with reasoning over memberOf and worksFor (paper R6).",
            ),
        ]

    # ------------------------------------------------------------------ #
    # analytics queries (beyond the paper: SPARQL 1.1 operator coverage)
    # ------------------------------------------------------------------ #

    def analytics_queries(self) -> List[BenchmarkQuery]:
        """A1-A6: monitoring-style analytics exercising the 1.1 operators.

        These go beyond the paper's BGP+FILTER workload: OPTIONAL left-outer
        joins, ORDER BY with top-k LIMIT, GROUP BY aggregation, VALUES and
        ASK.  They run against the same generated LUBM dataset, so landmark
        cardinalities stay checkable.
        """
        dataset = self.dataset
        course_17 = dataset.landmark_uri("course_takers_17")
        return [
            BenchmarkQuery(
                identifier="A1",
                sparql=_PREFIXES
                + "SELECT ?x ?d ?h WHERE { ?x lubm:worksFor ?d . "
                "OPTIONAL { ?x lubm:headOf ?h } }",
                group="analytics",
                description="Workers with their department, department headship optional.",
            ),
            BenchmarkQuery(
                identifier="A2",
                sparql=_PREFIXES
                + "SELECT ?x ?n WHERE { ?x lubm:worksFor ?d . ?x lubm:name ?n } "
                "ORDER BY ?n ?x LIMIT 10",
                group="analytics",
                expected_cardinality=10,
                description="First ten workers by name (top-k ORDER BY + LIMIT).",
            ),
            BenchmarkQuery(
                identifier="A3",
                sparql=_PREFIXES
                + "SELECT ?d (COUNT(?x) AS ?members) WHERE { ?x lubm:memberOf ?d } "
                "GROUP BY ?d ORDER BY DESC(?members) ?d LIMIT 5",
                group="analytics",
                expected_cardinality=5,
                description="The five largest departments by member count.",
            ),
            BenchmarkQuery(
                identifier="A4",
                sparql=_PREFIXES
                + "SELECT ?x ?c WHERE { ?x lubm:takesCourse ?c . "
                f"VALUES ?c {{ <{course_17}> }} }}",
                group="analytics",
                expected_cardinality=17,
                description="Course takers restricted through a VALUES block.",
            ),
            BenchmarkQuery(
                identifier="A5",
                sparql=_PREFIXES + "ASK { ?x lubm:headOf ?d }",
                group="analytics",
                description="Whether any department head exists (ASK).",
            ),
            BenchmarkQuery(
                identifier="A6",
                sparql=_PREFIXES
                + "SELECT (COUNT(DISTINCT ?d) AS ?departments) (COUNT(*) AS ?memberships) "
                "WHERE { ?x lubm:memberOf ?d }",
                group="analytics",
                expected_cardinality=1,
                description="Distinct-department and total membership counts.",
            ),
        ]

    # ------------------------------------------------------------------ #
    # convenience accessors
    # ------------------------------------------------------------------ #

    def all_queries(self) -> List[BenchmarkQuery]:
        """All 26 queries in the paper's order (analytics excluded)."""
        return (
            self.table1_queries()
            + self.table2_queries()
            + self.figure12_queries()
            + self.bgp_queries()
            + self.reasoning_queries()
        )

    def extended_queries(self) -> List[BenchmarkQuery]:
        """The paper's 26 queries plus the A1-A6 analytics additions."""
        return self.all_queries() + self.analytics_queries()

    def by_identifier(self) -> Dict[str, BenchmarkQuery]:
        """Mapping query identifier -> query (paper and analytics groups)."""
        return {query.identifier: query for query in self.extended_queries()}

    def group(self, name: str) -> List[BenchmarkQuery]:
        """All queries of one group (``sp?o``/``?spo``/``?sp?o``/``bgp``/``reasoning``/``analytics``)."""
        return [query for query in self.extended_queries() if query.group == name]
