"""Disk-based, paged triple store (Jena TDB / RDF4Led analogue).

Jena TDB and RDF4Led keep their dictionaries and B-tree indexes on persistent
storage (an SD card on the paper's Raspberry Pi) and only cache a few pages
in RAM.  The real systems cannot run here, so this analogue preserves the
properties the comparison depends on:

* triples are dictionary-encoded and kept in three **sorted, paged indexes**
  (SPO, POS, OSP);
* a pattern lookup binary-searches the index and then *reads pages*; a small
  LRU page cache absorbs repeated reads, every miss is charged the modelled
  SD-card page-read latency;
* construction writes every page once and is charged the page-write latency;
* the memory footprint only contains the page cache and bookkeeping, the
  bulk of the data stays "on disk" — which is why these systems have small
  RAM footprints but slow cold lookups (paper Sections 7.3.2-7.3.3).

All latency constants are explicit constructor parameters, documented and
reported separately by the benchmark harness (measured CPU time vs simulated
I/O time).
"""

from __future__ import annotations

from bisect import bisect_left
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

from repro.baselines.base import EdgeRDFStore
from repro.rdf.graph import Graph
from repro.rdf.terms import Term, Triple, URI

_Key = Tuple[int, int, int]


class _PagedIndex:
    """One sorted index (a permutation of SPO) split into fixed-size pages."""

    def __init__(self, name: str, keys: List[_Key], page_size: int) -> None:
        self.name = name
        self.keys = keys
        self.page_size = page_size

    def page_of(self, position: int) -> str:
        """Identifier of the page containing ``position``."""
        return f"{self.name}:{position // self.page_size}"

    def range_for_prefix(
        self, first: Optional[int], second: Optional[int]
    ) -> Tuple[int, int]:
        """Index range ``[begin, end)`` of keys matching the bound prefix."""
        low: _Key = (first if first is not None else -1, second if second is not None else -1, -1)
        begin = bisect_left(self.keys, low)
        if first is None:
            return 0, len(self.keys)
        high_first = first if second is not None else first
        high: _Key
        if second is not None:
            high = (first, second, 1 << 62)
        else:
            high = (first, 1 << 62, 1 << 62)
        end = bisect_left(self.keys, high)
        return begin, end

    def pages_in_range(self, begin: int, end: int) -> List[str]:
        """Page identifiers touched by the range ``[begin, end)``."""
        if begin >= end:
            return []
        first_page = begin // self.page_size
        last_page = (end - 1) // self.page_size
        return [f"{self.name}:{page}" for page in range(first_page, last_page + 1)]

    def page_count(self) -> int:
        """Total number of pages of the index."""
        if not self.keys:
            return 0
        return (len(self.keys) + self.page_size - 1) // self.page_size


class PagedDiskStore(EdgeRDFStore):
    """Disk-backed triple store with three paged indexes and a page cache.

    Parameters
    ----------
    page_size:
        Number of index entries per page.
    cache_pages:
        Number of pages the LRU cache can hold in RAM.
    page_read_ms / page_write_ms:
        Modelled SD-card latency per page read miss / page write.
    per_query_overhead_ms:
        Modelled fixed query-setup cost of the emulated engine.
    bytes_per_index_entry / bytes_per_dictionary_entry / dictionary_string_copies:
        Modelled on-disk layout constants used by the storage accounting.
    """

    name = "PagedDisk"
    supports_union = True
    in_memory = False

    def __init__(
        self,
        page_size: int = 256,
        cache_pages: int = 8,
        page_read_ms: float = 0.35,
        page_write_ms: float = 0.6,
        per_query_overhead_ms: float = 4.0,
        bytes_per_index_entry: int = 24,
        bytes_per_dictionary_entry: int = 24,
        dictionary_string_copies: int = 2,
    ) -> None:
        super().__init__()
        self.page_size = page_size
        self.cache_pages = cache_pages
        self.page_read_ms = page_read_ms
        self.page_write_ms = page_write_ms
        self.per_query_overhead_ms = per_query_overhead_ms
        self.bytes_per_index_entry = bytes_per_index_entry
        self.bytes_per_dictionary_entry = bytes_per_dictionary_entry
        self.dictionary_string_copies = dictionary_string_copies

        self._term_to_id: Dict[Term, int] = {}
        self._id_to_term: List[Term] = []
        self._spo: Optional[_PagedIndex] = None
        self._pos: Optional[_PagedIndex] = None
        self._osp: Optional[_PagedIndex] = None
        self._count = 0
        self._cache: "OrderedDict[str, None]" = OrderedDict()
        self._io_cost_ms = 0.0
        self.last_construction_cost_ms = 0.0

    # ------------------------------------------------------------------ #
    # loading
    # ------------------------------------------------------------------ #

    def load(self, data: Graph, ontology: Optional[Graph] = None) -> None:
        """Encode, sort and page every triple; charge the page-write cost."""
        self._remember_schema(data, ontology)
        encoded: List[_Key] = []
        seen = set()
        for triple in data:
            key = (
                self._encode(triple.subject),
                self._encode(triple.predicate),
                self._encode(triple.object),
            )
            if key in seen:
                continue
            seen.add(key)
            encoded.append(key)
        self._count = len(encoded)
        spo = sorted(encoded)
        pos = sorted((p, o, s) for s, p, o in encoded)
        osp = sorted((o, s, p) for s, p, o in encoded)
        self._spo = _PagedIndex("spo", spo, self.page_size)
        self._pos = _PagedIndex("pos", pos, self.page_size)
        self._osp = _PagedIndex("osp", osp, self.page_size)
        pages_written = sum(
            index.page_count() for index in (self._spo, self._pos, self._osp)
        )
        dictionary_pages = max(1, self.dictionary_size_in_bytes() // (self.page_size * 16))
        self.last_construction_cost_ms = (pages_written + dictionary_pages) * self.page_write_ms
        self.last_simulated_cost_ms = self.last_construction_cost_ms

    def _encode(self, term: Term) -> int:
        identifier = self._term_to_id.get(term)
        if identifier is None:
            identifier = len(self._id_to_term)
            self._term_to_id[term] = identifier
            self._id_to_term.append(term)
        return identifier

    # ------------------------------------------------------------------ #
    # page cache
    # ------------------------------------------------------------------ #

    def _touch_pages(self, pages: List[str]) -> None:
        for page in pages:
            if page in self._cache:
                self._cache.move_to_end(page)
                continue
            self._io_cost_ms += self.page_read_ms
            self._cache[page] = None
            while len(self._cache) > self.cache_pages:
                self._cache.popitem(last=False)

    def reset_cache(self) -> None:
        """Empty the page cache (used to measure cold runs)."""
        self._cache.clear()

    # ------------------------------------------------------------------ #
    # matching
    # ------------------------------------------------------------------ #

    def triple_count(self) -> int:
        """Number of stored triples."""
        return self._count

    def match(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[URI] = None,
        obj: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """Yield matching triples, charging page reads along the way."""
        if self._spo is None or self._pos is None or self._osp is None:
            return
        s = self._term_to_id.get(subject) if subject is not None else None
        p = self._term_to_id.get(predicate) if predicate is not None else None
        o = self._term_to_id.get(obj) if obj is not None else None
        if subject is not None and s is None:
            return
        if predicate is not None and p is None:
            return
        if obj is not None and o is None:
            return

        if s is not None:
            index, first, second = self._spo, s, p
            reorder = lambda key: key  # noqa: E731 — tiny adapters keep the scan generic
        elif p is not None:
            index, first, second = self._pos, p, o
            reorder = lambda key: (key[2], key[0], key[1])  # noqa: E731
        elif o is not None:
            index, first, second = self._osp, o, s
            reorder = lambda key: (key[1], key[2], key[0])  # noqa: E731
        else:
            index, first, second = self._spo, None, None
            reorder = lambda key: key  # noqa: E731

        begin, end = index.range_for_prefix(first, second)
        self._touch_pages(index.pages_in_range(begin, end))
        for position in range(begin, end):
            key = index.keys[position]
            s_id, p_id, o_id = reorder(key)
            if s is not None and s_id != s:
                continue
            if p is not None and p_id != p:
                continue
            if o is not None and o_id != o:
                continue
            yield Triple(
                self._id_to_term[s_id],  # type: ignore[arg-type]
                self._id_to_term[p_id],  # type: ignore[arg-type]
                self._id_to_term[o_id],
            )

    # ------------------------------------------------------------------ #
    # SPARQL with simulated I/O accounting
    # ------------------------------------------------------------------ #

    def query(self, query, reasoning: bool = False):
        """Answer a query; ``last_simulated_cost_ms`` holds setup + I/O cost."""
        self._io_cost_ms = 0.0
        result = super().query(query, reasoning=reasoning)
        self.last_simulated_cost_ms = self.per_query_overhead_ms + self._io_cost_ms
        return result

    # ------------------------------------------------------------------ #
    # storage accounting
    # ------------------------------------------------------------------ #

    def dictionary_size_in_bytes(self) -> int:
        """Node table: string payload (possibly stored twice) plus entry overhead."""
        total = 0
        for term in self._id_to_term:
            total += self.dictionary_string_copies * len(str(term).encode("utf-8"))
            total += self.bytes_per_dictionary_entry
        return total

    def triple_storage_size_in_bytes(self) -> int:
        """Three on-disk indexes with fixed-size entries."""
        return self._count * 3 * self.bytes_per_index_entry

    def memory_footprint_in_bytes(self) -> int:
        """Only the page cache and bookkeeping stay in RAM."""
        cache_bytes = len(self._cache) * self.page_size * self.bytes_per_index_entry
        bookkeeping = 64 * 1024
        return cache_bytes + bookkeeping
