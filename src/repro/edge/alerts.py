"""Alerts and anomaly-detection rules.

An :class:`AnomalyRule` pairs a continuous SPARQL query with metadata; every
non-empty answer set produced on a graph instance becomes an :class:`Alert`.
The :class:`AlertSink` stands in for the administration server that receives
alerts from the SuccinctEdge instances deployed at the edge (paper Section 4).

Rules are evaluated by the stream processors of :mod:`repro.edge.stream` —
once per fresh per-instance store in the paper's native mode, or against the
live base+delta view in the live-update mode (``docs/update_lifecycle.md``),
where a rule can correlate readings across the whole retained window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.rdf.terms import Term
from repro.sparql.bindings import ResultSet


@dataclass(frozen=True)
class AnomalyRule:
    """A continuous query with its alerting metadata.

    Attributes
    ----------
    name:
        Rule identifier (e.g. ``"pressure-out-of-range"``).
    query:
        SPARQL SELECT text executed once per graph instance.
    severity:
        Free-form severity label attached to the produced alerts.
    requires_reasoning:
        Whether the query needs RDFS reasoning (LiteMat intervals) to cover
        heterogeneous sensor annotations.
    description:
        Human-readable description of what the rule detects.
    """

    name: str
    query: str
    severity: str = "warning"
    requires_reasoning: bool = True
    description: str = ""


@dataclass(frozen=True)
class Alert:
    """One anomaly detected on one graph instance."""

    rule: str
    severity: str
    instance_id: int
    bindings: Dict[str, Term]

    def describe(self) -> str:
        """One-line description of the alert."""
        details = ", ".join(f"?{name}={value}" for name, value in sorted(self.bindings.items()))
        return f"[{self.severity}] {self.rule} (instance {self.instance_id}): {details}"


class AlertSink:
    """Collects alerts; stands in for the central administration server."""

    def __init__(self, callback: Optional[Callable[[Alert], None]] = None) -> None:
        self.alerts: List[Alert] = []
        self._callback = callback

    def emit(self, alert: Alert) -> None:
        """Record (and forward) one alert."""
        self.alerts.append(alert)
        if self._callback is not None:
            self._callback(alert)

    def emit_result_set(self, rule: AnomalyRule, instance_id: int, results: ResultSet) -> List[Alert]:
        """Turn every row of ``results`` into an alert."""
        produced: List[Alert] = []
        for binding in results:
            alert = Alert(
                rule=rule.name,
                severity=rule.severity,
                instance_id=instance_id,
                bindings=dict(binding.items()),
            )
            self.emit(alert)
            produced.append(alert)
        return produced

    def __len__(self) -> int:
        return len(self.alerts)

    def by_rule(self) -> Dict[str, List[Alert]]:
        """Alerts grouped by rule name."""
        grouped: Dict[str, List[Alert]] = {}
        for alert in self.alerts:
            grouped.setdefault(alert.rule, []).append(alert)
        return grouped

    def estimated_payload_bytes(self) -> int:
        """Rough size of every alert payload this sink has ever collected."""
        return self.payload_bytes(self.alerts)

    @staticmethod
    def payload_bytes(alerts: List[Alert]) -> int:
        """Rough transmission size of exactly ``alerts`` (stream processors
        use this to charge each instance for its own alerts only)."""
        return sum(len(alert.describe().encode("utf-8")) for alert in alerts)
