"""Shared benchmark harness.

The ``benchmarks/`` suite regenerates every table and figure of the paper's
Section 7.  All of them share the same steps — generate the datasets, load
them into every system, measure, print a paper-style table — which this
module centralises so each benchmark file stays focused on its experiment.

Dataset sizes and the number of departments can be scaled down through the
``REPRO_BENCH_SCALE`` environment variable (``full`` | ``medium`` | ``small``)
so the whole suite stays tractable on modest machines; the default is
``medium``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.baselines.base import EdgeRDFStore, UnsupportedFeatureError
from repro.baselines.registry import SYSTEM_ORDER, create_system
from repro.bench.measure import Measurement, measure_best_of, measure_call
from repro.rdf.graph import Graph
from repro.workloads.engie import water_distribution_250, water_distribution_500, engie_ontology
from repro.workloads.lubm import LubmDataset, generate_lubm, lubm_subsets
from repro.workloads.queries import BenchmarkQuery, QueryCatalog

#: Scale profiles: (lubm departments, subset sizes).
_SCALES = {
    "small": (4, (1000, 5000)),
    "medium": (10, (1000, 5000, 10000, 25000)),
    "full": (20, (1000, 5000, 10000, 25000, 50000)),
}


def bench_scale() -> str:
    """The active scale profile name (``REPRO_BENCH_SCALE``, default ``medium``)."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "medium").lower()
    return scale if scale in _SCALES else "medium"


@dataclass
class BenchmarkContext:
    """Datasets and loaded systems shared by the benchmark files."""

    lubm: LubmDataset
    datasets: Dict[str, Graph]
    engie_ontology: Graph
    catalog: QueryCatalog
    systems: Dict[str, EdgeRDFStore] = field(default_factory=dict)
    construction: Dict[str, Dict[str, Measurement]] = field(default_factory=dict)

    @property
    def full_graph(self) -> Graph:
        """The largest LUBM graph (the paper's 100K dataset)."""
        return self.lubm.graph


_CONTEXT: Optional[BenchmarkContext] = None


def prepare_datasets() -> BenchmarkContext:
    """Build (once per process) the datasets used by every benchmark."""
    global _CONTEXT
    if _CONTEXT is not None:
        return _CONTEXT
    departments, subset_sizes = _SCALES[bench_scale()]
    lubm = generate_lubm(departments=departments)
    datasets: Dict[str, Graph] = {
        "ENGIE-250": water_distribution_250(),
        "ENGIE-500": water_distribution_500(),
    }
    datasets.update(lubm_subsets(lubm, sizes=subset_sizes))
    _CONTEXT = BenchmarkContext(
        lubm=lubm,
        datasets=datasets,
        engie_ontology=engie_ontology(),
        catalog=QueryCatalog(lubm),
    )
    return _CONTEXT


def load_all_systems(
    context: BenchmarkContext,
    graph: Optional[Graph] = None,
    systems: Sequence[str] = SYSTEM_ORDER,
) -> Dict[str, EdgeRDFStore]:
    """Load ``graph`` (default: the full LUBM graph) into every system once.

    Loaded systems are cached on the context so that the query benchmarks can
    share them.
    """
    target = graph if graph is not None else context.full_graph
    if context.systems:
        return context.systems
    for name in systems:
        system = create_system(name)
        system.load(target, ontology=context.lubm.ontology)
        context.systems[name] = system
    return context.systems


def query_latency_row(
    system: EdgeRDFStore,
    query: BenchmarkQuery,
    reasoning: Optional[bool] = None,
    repetitions: int = 3,
) -> Optional[Measurement]:
    """Measure one query on one system (hot run, best of N).

    Returns ``None`` when the system cannot answer the query (e.g. RDF4Led on
    reasoning queries, which require UNION).
    """
    use_reasoning = query.requires_reasoning if reasoning is None else reasoning
    try:
        return measure_best_of(
            lambda: system.query(query.sparql, reasoning=use_reasoning),
            simulated_cost_getter=lambda: system.last_simulated_cost_ms,
            repetitions=repetitions,
        )
    except UnsupportedFeatureError:
        return None


def measure_construction(
    name: str, graph: Graph, ontology: Graph
) -> Measurement:
    """Measure back-end construction time of one system on one dataset."""
    system = create_system(name)
    return measure_call(
        lambda: system.load(graph, ontology=ontology),
        simulated_cost_getter=lambda: system.last_simulated_cost_ms,
    )


# --------------------------------------------------------------------------- #
# table rendering
# --------------------------------------------------------------------------- #


def record_table(results_dir, name: str, table: str) -> None:
    """Print a rendered table and persist it under ``results_dir``.

    Used by the ``benchmarks/`` suite so that a single run refreshes both the
    console output and the ``benchmarks/results/*.txt`` files referenced by
    EXPERIMENTS.md.
    """
    import pathlib

    directory = pathlib.Path(results_dir)
    directory.mkdir(parents=True, exist_ok=True)
    print()
    print(table)
    (directory / f"{name}.txt").write_text(table + "\n", encoding="utf-8")


def format_table(
    title: str,
    column_names: Sequence[str],
    rows: Dict[str, Sequence[object]],
    unit: str = "",
) -> str:
    """Render a paper-style table (systems as rows) as monospace text."""
    width = max([len(name) for name in rows] + [12])
    header = f"{'Systems':<{width}} " + " ".join(f"{name:>12}" for name in column_names)
    lines = [title + (f" ({unit})" if unit else ""), "-" * len(header), header, "-" * len(header)]
    for system_name, values in rows.items():
        cells = []
        for value in values:
            if value is None:
                cells.append(f"{'n/a':>12}")
            elif isinstance(value, float):
                cells.append(f"{value:>12.2f}")
            else:
                cells.append(f"{value!s:>12}")
        lines.append(f"{system_name:<{width}} " + " ".join(cells))
    lines.append("-" * len(header))
    return "\n".join(lines)
