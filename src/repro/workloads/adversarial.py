"""Adversarial property-path workloads: the shapes that break closure engines.

The differential suites prove path correctness on small graphs; this module
generates the *performance* counterexamples — graph shapes chosen so that a
naive closure evaluator does asymptotically more work than the semi-naive
interval-frontier BFS of :mod:`repro.query.paths`:

* **long chains** — ``chain0 →next→ chain1 → …`` closed into one giant
  cycle: the fixpoint needs exactly one pass per depth level, and a
  frontier that forgets the visited set re-walks the whole ring forever;
* **high-fanout hubs** — two hub tiers with full fanout between them:
  ``link+`` from a hub reaches everything in two steps, but every frontier
  holds hundreds of ids, so probe-vs-scan selection and interval
  coalescing are what keep the kernel-call count flat;
* **deep hierarchies** — a complete concept tree plus a ``partOf`` edge
  forest following it: ``partOf+`` roll-ups traverse depth-proportional
  frontiers whose LiteMat-clustered ids coalesce into few intervals.

Everything is deterministic (no RNG), so the benchmark tables and the CI
smoke run measure the same workload every time.  Scale knobs are plain
constructor arguments; :func:`scaled_workload` maps the benchmark harness's
``REPRO_BENCH_SCALE`` profiles onto them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.rdf.graph import Graph
from repro.rdf.namespaces import RDF, RDFS, Namespace
from repro.rdf.terms import Literal, Triple

#: Namespace of every generated term.
ADV = Namespace("http://adversarial.succinct-edge.example/")

PREFIX = (
    f"PREFIX adv: <{ADV.prefix}>\n"
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
)


@dataclass(frozen=True)
class PathQuery:
    """One adversarial path query: identifier, scenario and SPARQL text."""

    identifier: str
    description: str
    sparql: str


class AdversarialPathWorkload:
    """Deterministic generator of chain / hub / hierarchy path stress graphs."""

    def __init__(
        self,
        chain_length: int = 200,
        hub_fanout: int = 64,
        hierarchy_depth: int = 5,
        hierarchy_branching: int = 2,
    ) -> None:
        self.chain_length = max(4, chain_length)
        self.hub_fanout = max(4, hub_fanout)
        self.hierarchy_depth = max(2, hierarchy_depth)
        self.hierarchy_branching = max(2, hierarchy_branching)
        self._graph: Optional[Graph] = None  # built lazily with the ontology
        self._ontology: Optional[Graph] = None
        self._concept_levels: List[List] = []

    # -- generation ------------------------------------------------------ #

    def graph(self) -> Graph:
        """The data graph (built once, then cached)."""
        if self._graph is None:
            self._build()
        return self._graph

    def ontology(self) -> Graph:
        """The concept/property hierarchy axioms (built with the graph)."""
        if self._ontology is None:
            self._build()
        return self._ontology

    def _build(self) -> None:
        data = Graph()
        ontology = Graph()

        # Long chain, closed into a ring; every 10th node carries a label so
        # closure-into-literal sequences have work at every depth.
        n = self.chain_length
        for index in range(n):
            data.add(Triple(ADV[f"chain{index}"], ADV.next, ADV[f"chain{(index + 1) % n}"]))
            if index % 10 == 0:
                data.add(Triple(ADV[f"chain{index}"], ADV.label, Literal(f"chain{index}")))
        # A sparse skip-link every 7th node gives alternations real choices.
        for index in range(0, n, 7):
            data.add(Triple(ADV[f"chain{index}"], ADV.skip, ADV[f"chain{(index + 13) % n}"]))

        # Two hub tiers with full fanout: tier1 → spokes → tier2 → tier1
        # (a dense 3-partite cycle; ``link+`` from any hub reaches all).
        fanout = self.hub_fanout
        for index in range(fanout):
            data.add(Triple(ADV.hubA, ADV.link, ADV[f"spoke{index}"]))
            data.add(Triple(ADV[f"spoke{index}"], ADV.link, ADV.hubB))
        data.add(Triple(ADV.hubB, ADV.link, ADV.hubA))

        # Complete concept tree + a partOf forest of instances shadowing it.
        levels = [[ADV["node0"]]]
        data.add(Triple(ADV["node0"], RDF.type, ADV["Level0"]))
        counter = 1
        concept_levels = [[ADV["Level0"]]]
        for depth in range(1, self.hierarchy_depth):
            concept = ADV[f"Level{depth}"]
            ontology.add(Triple(concept, RDFS.subClassOf, ADV[f"Level{depth - 1}"]))
            concept_levels.append([concept])
            level = []
            for parent in levels[-1]:
                for _ in range(self.hierarchy_branching):
                    node = ADV[f"node{counter}"]
                    counter += 1
                    data.add(Triple(node, ADV.partOf, parent))
                    data.add(Triple(node, RDF.type, concept))
                    level.append(node)
            levels.append(level)
        ontology.add(Triple(ADV.skip, RDFS.subPropertyOf, ADV.next))

        self._graph = data
        self._ontology = ontology
        self._concept_levels = concept_levels

    # -- the query set --------------------------------------------------- #

    def queries(self) -> List[PathQuery]:
        """The adversarial query set, worst shapes first."""
        deepest = f"Level{self.hierarchy_depth - 1}"
        return [
            PathQuery(
                "chain-closure-bound",
                f"ring walk: one source, {self.chain_length}-cycle of next+",
                PREFIX + "SELECT ?o WHERE { adv:chain0 adv:next+ ?o }",
            ),
            PathQuery(
                "chain-closure-unbound",
                "all-pairs next+ over the ring (quadratic result, linear frontier)",
                PREFIX + "SELECT ?s ?o WHERE { ?s adv:next+ ?o }",
            ),
            PathQuery(
                "chain-star-diagonal",
                "?x next* ?x — every chain node matches itself",
                PREFIX + "SELECT ?x WHERE { ?x adv:next* ?x }",
            ),
            PathQuery(
                "chain-alt-closure",
                "closure over an alternation (next|skip)+ — id-steppable union",
                PREFIX + "SELECT ?o WHERE { adv:chain0 (adv:next|adv:skip)+ ?o }",
            ),
            PathQuery(
                "chain-closure-literal",
                "next+/label — closure frontier draining into the datatype layout",
                PREFIX + "SELECT ?l WHERE { adv:chain0 adv:next+/adv:label ?l }",
            ),
            PathQuery(
                "hub-fanout-closure",
                f"link+ from hubA across {self.hub_fanout}-wide frontiers",
                PREFIX + "SELECT ?o WHERE { adv:hubA adv:link+ ?o }",
            ),
            PathQuery(
                "hub-inverse-closure",
                "(^link)+ into hubB — inverse frontiers at full fanout",
                PREFIX + "SELECT ?s WHERE { ?s (^adv:link)+ adv:hubB }",
            ),
            PathQuery(
                "hierarchy-rollup",
                f"partOf+ roll-up from the depth-{self.hierarchy_depth} leaves",
                PREFIX + "SELECT ?part WHERE { ?part adv:partOf+ adv:node0 }",
            ),
            PathQuery(
                "hierarchy-typed-rollup",
                "typed leaves to their ancestors: rdf:type join + partOf+",
                PREFIX
                + "SELECT ?part ?whole WHERE { "
                + f"?part rdf:type adv:{deepest} . ?part adv:partOf+ ?whole }}",
            ),
            PathQuery(
                "nps-sweep",
                "negated set over the whole graph (full stored-predicate scan)",
                PREFIX + "SELECT ?s ?o WHERE { ?s !(adv:label|rdf:type) ?o }",
            ),
        ]


def scaled_workload(scale: str = "medium") -> AdversarialPathWorkload:
    """The workload at a benchmark-harness scale profile (small/medium/full)."""
    profiles = {
        "small": dict(chain_length=60, hub_fanout=24, hierarchy_depth=4, hierarchy_branching=2),
        "medium": dict(chain_length=200, hub_fanout=64, hierarchy_depth=5, hierarchy_branching=2),
        "full": dict(chain_length=500, hub_fanout=128, hierarchy_depth=6, hierarchy_branching=2),
    }
    return AdversarialPathWorkload(**profiles.get(scale, profiles["medium"]))
