"""Turtle-subset parser.

Ontologies such as SOSA, QUDT extracts or univ-bench are commonly distributed
as Turtle.  This parser supports the subset needed for those documents:

* ``@prefix`` / ``PREFIX`` declarations and prefixed names,
* the ``a`` keyword for ``rdf:type``,
* predicate lists (``;``) and object lists (``,``),
* IRIs, blank node labels (``_:b1``), and literals with ``^^`` datatypes,
  ``@lang`` tags, plain integers/decimals/booleans.

It does not support anonymous blank nodes (``[...]``), collections or
multi-line literals — none of which appear in the reproduction's inputs.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.rdf.graph import Graph
from repro.rdf.namespaces import RDF, WELL_KNOWN_PREFIXES
from repro.rdf.terms import BlankNode, Literal, Term, Triple, URI
from repro.rdf.terms import XSD_BOOLEAN, XSD_DECIMAL, XSD_INTEGER


class TurtleParseError(ValueError):
    """Raised when the document falls outside the supported Turtle subset."""


_TOKEN = re.compile(
    r"""
    (?P<comment>\#[^\n]*)
  | (?P<prefix_decl>@prefix|@PREFIX|PREFIX|prefix)
  | (?P<iri><[^<>"\s]*>)
  | (?P<literal>"(?:[^"\\]|\\.)*"(?:\^\^<[^<>\s]*>|\^\^[A-Za-z_][\w\-]*:[\w\-]*|@[A-Za-z0-9\-]+)?)
  | (?P<bnode>_:[A-Za-z0-9_.\-]+)
  | (?P<number>[+-]?\d+\.\d+|[+-]?\d+)
  | (?P<boolean>true|false)
  | (?P<a>\ba\b)
  | (?P<pname>[A-Za-z_][\w\-]*:[\w.\-]*|:[\w.\-]+)
  | (?P<punct>[;,.])
  | (?P<ws>\s+)
    """,
    re.VERBOSE,
)

_ESCAPES = {"\\n": "\n", "\\r": "\r", "\\t": "\t", '\\"': '"', "\\\\": "\\"}


def _unescape(text: str) -> str:
    result = text
    for escaped, raw in _ESCAPES.items():
        result = result.replace(escaped, raw)
    return result


def _tokenize(document: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(document):
        match = _TOKEN.match(document, position)
        if not match:
            snippet = document[position : position + 40]
            raise TurtleParseError(f"unexpected input at offset {position}: {snippet!r}")
        kind = match.lastgroup or ""
        if kind not in ("ws", "comment"):
            tokens.append((kind, match.group()))
        position = match.end()
    return tokens


class _TurtleReader:
    def __init__(self, document: str) -> None:
        self._tokens = _tokenize(document)
        self._index = 0
        self._prefixes = dict(WELL_KNOWN_PREFIXES)
        self._base: Optional[str] = None

    # -------------------------------------------------------------- #
    # token helpers
    # -------------------------------------------------------------- #

    def _peek(self) -> Optional[Tuple[str, str]]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> Tuple[str, str]:
        token = self._peek()
        if token is None:
            raise TurtleParseError("unexpected end of document")
        self._index += 1
        return token

    def _expect_punct(self, char: str) -> None:
        kind, value = self._next()
        if kind != "punct" or value != char:
            raise TurtleParseError(f"expected {char!r}, got {value!r}")

    # -------------------------------------------------------------- #
    # term parsing
    # -------------------------------------------------------------- #

    def _resolve_pname(self, pname: str) -> URI:
        prefix, _, local = pname.partition(":")
        if prefix not in self._prefixes:
            raise TurtleParseError(f"unknown prefix {prefix!r} in {pname!r}")
        return URI(self._prefixes[prefix] + local)

    def _parse_literal(self, raw: str) -> Literal:
        closing = raw.rindex('"')
        lexical = _unescape(raw[1:closing])
        suffix = raw[closing + 1 :]
        if suffix.startswith("^^<"):
            return Literal(lexical, datatype=suffix[3:-1])
        if suffix.startswith("^^"):
            return Literal(lexical, datatype=self._resolve_pname(suffix[2:]).value)
        if suffix.startswith("@"):
            return Literal(lexical, language=suffix[1:])
        return Literal(lexical)

    def _parse_term(self, kind: str, value: str) -> Term:
        if kind == "iri":
            return URI(value[1:-1])
        if kind == "pname":
            return self._resolve_pname(value)
        if kind == "bnode":
            return BlankNode(value[2:])
        if kind == "literal":
            return self._parse_literal(value)
        if kind == "number":
            datatype = XSD_DECIMAL if "." in value else XSD_INTEGER
            return Literal(value, datatype=datatype)
        if kind == "boolean":
            return Literal(value, datatype=XSD_BOOLEAN)
        if kind == "a":
            return RDF.type
        raise TurtleParseError(f"unexpected token {value!r}")

    # -------------------------------------------------------------- #
    # statements
    # -------------------------------------------------------------- #

    def parse(self) -> Graph:
        graph = Graph()
        while self._peek() is not None:
            kind, value = self._peek()  # type: ignore[misc]
            if kind == "prefix_decl":
                self._parse_prefix()
                continue
            self._parse_triples_block(graph)
        return graph

    def _parse_prefix(self) -> None:
        decl_kind, decl = self._next()
        kind, value = self._next()
        if kind != "pname" or not value.endswith(":"):
            raise TurtleParseError(f"expected prefix name after {decl!r}, got {value!r}")
        prefix = value[:-1]
        kind, iri = self._next()
        if kind != "iri":
            raise TurtleParseError(f"expected IRI in prefix declaration, got {iri!r}")
        self._prefixes[prefix] = iri[1:-1]
        if decl.lower() == "@prefix":
            self._expect_punct(".")

    def _parse_triples_block(self, graph: Graph) -> None:
        kind, value = self._next()
        subject = self._parse_term(kind, value)
        if isinstance(subject, Literal):
            raise TurtleParseError("literal cannot be a subject")
        while True:
            kind, value = self._next()
            predicate = self._parse_term(kind, value)
            if not isinstance(predicate, URI):
                raise TurtleParseError(f"predicate must be an IRI, got {predicate!r}")
            while True:
                kind, value = self._next()
                obj = self._parse_term(kind, value)
                graph.add(Triple(subject, predicate, obj))  # type: ignore[arg-type]
                punct_kind, punct = self._next()
                if punct_kind != "punct":
                    raise TurtleParseError(f"expected punctuation, got {punct!r}")
                if punct == ",":
                    continue
                break
            if punct == ";":
                next_token = self._peek()
                # A dangling ';' before '.' is legal Turtle.
                if next_token is not None and next_token == ("punct", "."):
                    self._next()
                    return
                continue
            if punct == ".":
                return
            raise TurtleParseError(f"unexpected punctuation {punct!r}")


def parse_turtle(document: str) -> Graph:
    """Parse a Turtle document (supported subset) into a graph."""
    return _TurtleReader(document).parse()


def read_turtle(path: str) -> Graph:
    """Read a Turtle file into a graph."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_turtle(handle.read())
