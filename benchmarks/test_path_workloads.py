"""Property-path workloads: kernel-call budgets on adversarial graph shapes.

Runs the :mod:`repro.workloads.adversarial` query set — long chains closed
into rings, two-tier high-fanout hubs, deep ``partOf`` hierarchies — against
the streaming engine and records, per query, the result cardinality and the
SDS kernel-call count of one cold execution.  Two invariants are asserted:

* every query's rows are multiset-identical to the naive materializing
  oracle (the adversarial shapes are exactly where a broken fixpoint would
  diverge first), and
* the interval-frontier BFS stays linear on the ring walk: doubling the
  chain length may at most ~double the bounded-source closure's kernel
  calls (a visited-set regression re-walks the ring per depth level and
  goes quadratic).

Results land in ``benchmarks/results/property_paths.txt``; the CI
benchmark-smoke job refreshes the table at small scale.
"""

from __future__ import annotations

from collections import Counter

from repro.bench.harness import bench_scale, record_table
from repro.query.engine import QueryEngine
from repro.query.materializing import MaterializingQueryEngine
from repro.sds.kernels import total_kernel_calls
from repro.store.succinct_edge import SuccinctEdge
from repro.workloads.adversarial import scaled_workload


def _multiset(result):
    return Counter(result.to_tuples())


def test_adversarial_path_kernel_budgets(results_dir):
    workload = scaled_workload(bench_scale())
    store = SuccinctEdge.from_graph(workload.graph(), ontology=workload.ontology())
    engine = QueryEngine(store, reasoning=False)
    oracle = MaterializingQueryEngine(store, reasoning=False)

    lines = [
        f"Property-path workloads: SDS kernel calls per adversarial query "
        f"(scale={bench_scale()}, chain={workload.chain_length}, "
        f"fanout={workload.hub_fanout}, depth={workload.hierarchy_depth})",
        "",
        f"{'query':>24} {'rows':>8} {'kernel calls':>14}  scenario",
        "-" * 96,
    ]
    calls_by_id = {}
    for query in workload.queries():
        before = total_kernel_calls()
        result = engine.execute(query.sparql)
        rows = _multiset(result)
        calls = total_kernel_calls() - before
        calls_by_id[query.identifier] = calls
        assert rows, f"{query.identifier} returned no rows"
        assert rows == _multiset(oracle.execute(query.sparql)), query.identifier
        lines.append(
            f"{query.identifier:>24} {sum(rows.values()):>8} {calls:>14}  {query.description}"
        )
    lines.append("-" * 96)
    lines.append(f"{'total':>24} {'':>8} {sum(calls_by_id.values()):>14}")

    # Linearity of the semi-naive frontier: on a ring of twice the length
    # the single-source closure may spend at most ~2x the kernel calls
    # (plus slack for probe-vs-scan flips).  A frontier that forgets its
    # visited set re-walks the ring per depth level and goes quadratic.
    def _ring_walk_calls(chain_length: int) -> int:
        from repro.workloads.adversarial import AdversarialPathWorkload

        ring = AdversarialPathWorkload(
            chain_length=chain_length,
            hub_fanout=workload.hub_fanout,
            hierarchy_depth=workload.hierarchy_depth,
            hierarchy_branching=workload.hierarchy_branching,
        )
        ring_store = SuccinctEdge.from_graph(ring.graph(), ontology=ring.ontology())
        ring_engine = QueryEngine(ring_store, reasoning=False)
        sparql = next(
            query.sparql
            for query in ring.queries()
            if query.identifier == "chain-closure-bound"
        )
        before = total_kernel_calls()
        ring_engine.execute(sparql).to_tuples()
        return total_kernel_calls() - before

    single = _ring_walk_calls(workload.chain_length)
    double = _ring_walk_calls(workload.chain_length * 2)
    assert double <= single * 3, (single, double)
    lines.append(
        f"ring-walk linearity: {single} calls at chain={workload.chain_length} vs "
        f"{double} at chain={workload.chain_length * 2} ({double / max(1, single):.2f}x)"
    )

    record_table(results_dir, "property_paths", "\n".join(lines))
