"""Dictionary substrate.

Like most RDF stores, SuccinctEdge encodes triples against dictionaries that
map long terms (URIs, blank nodes, literals) to short integer identifiers and
back (the ``locate`` / ``extract`` operations of the paper's Section 4).
The concept and property dictionaries carry LiteMat identifiers (so that
identifier intervals encode hierarchies); the instance dictionary assigns
arbitrary sequential identifiers; literal values of datatype properties are
kept in a flat :class:`~repro.dictionary.literal_store.LiteralStore` to avoid
polluting the instance dictionary with a potentially unbounded number of
measurement values.
"""

from repro.dictionary.term_dictionary import (
    ConceptDictionary,
    InstanceDictionary,
    PropertyDictionary,
)
from repro.dictionary.literal_store import LiteralStore
from repro.dictionary.statistics import DictionaryStatistics

__all__ = [
    "ConceptDictionary",
    "DictionaryStatistics",
    "InstanceDictionary",
    "LiteralStore",
    "PropertyDictionary",
]
