"""Latency measurement helpers.

Every latency this reproduction reports is split into two components:

* ``measured_ms`` — wall-clock CPU time of the pure-Python implementation on
  the machine running the benchmarks;
* ``simulated_ms`` — the documented environment cost charged by the baseline
  analogues (JVM query-setup overhead, SD-card page I/O); zero for
  SuccinctEdge.

``total_ms`` (the sum) is what the paper-style tables print; the raw
components are always available so the calibration stays transparent.

Measurements additionally record the number of **SDS kernel calls** the
operation performed (rank/select/scan/access_range invocations counted by
:mod:`repro.sds.kernels`).  A batched primitive registers as one call, so
this number makes the effect of batched triple-pattern evaluation visible
next to the wall-clock improvement.

The counters are process-wide, and the process execution backend
(:mod:`repro.query.multiproc`) keeps them complete across process
boundaries: each worker task reports its per-task counter delta, which the
coordinator folds back into its own ``KERNEL_COUNTS`` before the task's
results are surfaced — so ``measure_call`` around a process-backed query
still sees every rank/select/scan the workers performed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict

from repro.sds.kernels import kernel_counters


@dataclass(frozen=True)
class Measurement:
    """One measured operation."""

    measured_ms: float
    simulated_ms: float
    result: Any = None
    kernel_calls: int = 0
    kernel_breakdown: Dict[str, int] = field(default_factory=dict)

    @property
    def total_ms(self) -> float:
        """Measured plus simulated latency."""
        return self.measured_ms + self.simulated_ms


def measure_call(
    callable_: Callable[[], Any],
    simulated_cost_getter: Callable[[], float] = lambda: 0.0,
) -> Measurement:
    """Run ``callable_`` once and capture its latency and kernel-call count.

    ``simulated_cost_getter`` is read *after* the call (the baseline stores
    update their ``last_simulated_cost_ms`` during execution).
    """
    counters_before = kernel_counters()
    started = time.perf_counter()
    result = callable_()
    measured_ms = (time.perf_counter() - started) * 1000.0
    simulated_ms = float(simulated_cost_getter())
    breakdown = {
        name: count - counters_before.get(name, 0)
        for name, count in kernel_counters().items()
        if count - counters_before.get(name, 0)
    }
    return Measurement(
        measured_ms=measured_ms,
        simulated_ms=simulated_ms,
        result=result,
        kernel_calls=sum(breakdown.values()),
        kernel_breakdown=breakdown,
    )


def measure_best_of(
    callable_: Callable[[], Any],
    simulated_cost_getter: Callable[[], float] = lambda: 0.0,
    repetitions: int = 3,
) -> Measurement:
    """Best-of-N measurement (hot runs, as in the paper's Section 7.3.3)."""
    best: Measurement | None = None
    for _ in range(max(1, repetitions)):
        current = measure_call(callable_, simulated_cost_getter)
        if best is None or current.total_ms < best.total_ms:
            best = current
    assert best is not None
    return best
