"""Tests for the query graph and the join-order optimizers.

``JoinOrderOptimizer`` is the cost-based DP planner (the default for every
engine); ``HeuristicJoinOrderOptimizer`` is the paper's Algorithm 1, kept
verbatim for differential testing.  The shared expectations below (left-deep
connectivity, every pattern planned once, explain output) are checked on the
default planner; the Algorithm-1 block pins the heuristic-specific shape and
join-type preferences.
"""

from __future__ import annotations

import pytest

from repro.query.optimizer import HeuristicJoinOrderOptimizer, JoinOrderOptimizer
from repro.query.plan import AccessPath, JoinMethod, classify_access_path
from repro.query.query_graph import QueryGraph
from repro.sparql.parser import parse_query
from tests.conftest import EX


def patterns_of(query_text: str):
    return list(parse_query(query_text).triple_patterns)


class TestQueryGraph:
    def test_nodes_and_edges_from_shared_variables(self):
        patterns = patterns_of(
            "SELECT * WHERE { ?x <http://p> ?y . ?x <http://q> ?z . ?a <http://r> ?b }"
        )
        graph = QueryGraph.from_patterns(patterns)
        assert len(graph) == 3
        assert len(graph.edges) == 1
        edge = graph.edges[0]
        assert edge.variables == ("x",)
        assert "SS" in edge.join_types

    def test_join_type_labels(self):
        patterns = patterns_of("SELECT * WHERE { ?x <http://p> ?y . ?y <http://q> ?z }")
        graph = QueryGraph.from_patterns(patterns)
        edge = graph.edges[0]
        assert edge.join_types == ("OS",)
        assert edge.join_type_from(0) == "OS"
        assert edge.join_type_from(1) == "SO"

    def test_neighbours_and_edges_between(self):
        patterns = patterns_of(
            "SELECT * WHERE { ?x <http://p> ?y . ?x <http://q> ?z . ?z <http://r> ?w }"
        )
        graph = QueryGraph.from_patterns(patterns)
        assert {other for other, _ in graph.neighbours(1)} == {0, 2}
        assert len(graph.edges_between({0}, 1)) == 1
        assert graph.edges_between({0}, 2) == []

    def test_join_variables(self):
        patterns = patterns_of("SELECT * WHERE { ?x <http://p> ?y . ?x <http://q> ?z }")
        graph = QueryGraph.from_patterns(patterns)
        assert graph.join_variables() == {"x"}

    def test_rdf_type_annotation(self):
        patterns = patterns_of("SELECT * WHERE { ?x a <http://C> . ?x <http://p> ?y }")
        graph = QueryGraph.from_patterns(patterns)
        assert graph.nodes[0].is_rdf_type
        assert not graph.nodes[1].is_rdf_type

    def test_edge_helpers_errors(self):
        patterns = patterns_of("SELECT * WHERE { ?x <http://p> ?y . ?x <http://q> ?z }")
        graph = QueryGraph.from_patterns(patterns)
        edge = graph.edges[0]
        assert edge.involves(0) and edge.involves(1)
        with pytest.raises(ValueError):
            edge.other(7)


class TestAccessPathClassification:
    def test_classification(self):
        patterns = patterns_of(
            "SELECT * WHERE { <http://s> <http://p> ?o . ?s <http://p> <http://o> . "
            "?s <http://p> ?o . ?s a <http://C> . <http://s> a ?c . ?s ?p ?o }"
        )
        paths = [classify_access_path(pattern) for pattern in patterns]
        assert paths == [
            AccessPath.PSO_SP,
            AccessPath.PSO_PO,
            AccessPath.PSO_P,
            AccessPath.RDFTYPE_OS,
            AccessPath.RDFTYPE_SO,
            AccessPath.PSO_FULL,
        ]


class TestOptimizerHeuristics:
    def test_rdf_type_with_ss_join_starts_the_plan(self, toy_store):
        # Algorithm-1 behaviour: the heuristic planner leads with the
        # SS-connected rdf:type pattern.  (The cost-based default may instead
        # lead with a PSO scan and use the rdf:type store as a free per-row
        # filter — covered in tests/test_cost_planner.py.)
        optimizer = HeuristicJoinOrderOptimizer(statistics=toy_store.statistics)
        query = parse_query(
            "SELECT * WHERE { ?x <http://example.org/memberOf> ?d . ?x a <http://example.org/GraduateStudent> }"
        )
        plan = optimizer.optimize(list(query.triple_patterns))
        assert plan.steps[0].pattern.is_rdf_type
        assert plan.steps[1].join_type in ("SS", "")

    def test_statistics_pick_most_selective_concept(self, toy_store):
        # Department has 2 instances, FullProfessor has 1: Algorithm 1 must
        # start from the FullProfessor pattern.  (The cost-based default
        # instead leads with the 1-row headOf scan — cheaper still.)
        optimizer = HeuristicJoinOrderOptimizer(statistics=toy_store.statistics)
        query = parse_query(
            "SELECT * WHERE { ?d a <http://example.org/Department> . "
            "?x a <http://example.org/FullProfessor> . ?x <http://example.org/headOf> ?d }"
        )
        plan = optimizer.optimize(list(query.triple_patterns))
        first = plan.steps[0].pattern
        assert first.object == EX.FullProfessor

    def test_left_deep_connectivity(self, toy_store):
        # Algorithm 1 always extends through a join edge when one exists.
        # (The cost-based planner may deliberately interleave a cheap cross
        # product — e.g. off a 1-row prefix — but must flag it CARTESIAN;
        # see test_cost_planner.py.)
        optimizer = HeuristicJoinOrderOptimizer(statistics=toy_store.statistics)
        query = parse_query(
            "SELECT * WHERE { ?x <http://example.org/memberOf> ?d . "
            "?d <http://example.org/subOrganizationOf> ?u . ?u a <http://example.org/University> }"
        )
        plan = optimizer.optimize(list(query.triple_patterns))
        seen_variables = set(plan.steps[0].pattern.variable_names())
        for step in plan.steps[1:]:
            assert any(name in seen_variables for name in step.pattern.variable_names())
            seen_variables.update(step.pattern.variable_names())

    def test_cost_planner_flags_every_disconnected_step(self, toy_store):
        optimizer = JoinOrderOptimizer(statistics=toy_store.statistics)
        query = parse_query(
            "SELECT * WHERE { ?x <http://example.org/memberOf> ?d . "
            "?d <http://example.org/subOrganizationOf> ?u . ?u a <http://example.org/University> }"
        )
        plan = optimizer.optimize(list(query.triple_patterns))
        assert sorted(plan.order()) == [0, 1, 2]
        seen_variables = set(plan.steps[0].pattern.variable_names())
        for step in plan.steps[1:]:
            connected = any(
                name in seen_variables for name in step.pattern.variable_names()
            )
            assert connected != step.cartesian  # disconnected iff flagged
            seen_variables.update(step.pattern.variable_names())

    def test_every_pattern_appears_exactly_once(self, toy_store):
        optimizer = JoinOrderOptimizer(statistics=toy_store.statistics)
        query = parse_query(
            "SELECT * WHERE { ?x a <http://example.org/Person> . ?x <http://example.org/name> ?n . "
            "?x <http://example.org/memberOf> ?d . ?d a <http://example.org/Department> . "
            "?d <http://example.org/subOrganizationOf> ?u }"
        )
        plan = optimizer.optimize(list(query.triple_patterns))
        assert sorted(plan.order()) == list(range(5))

    def test_disconnected_patterns_still_planned(self, toy_store):
        optimizer = JoinOrderOptimizer(statistics=toy_store.statistics)
        query = parse_query(
            "SELECT * WHERE { ?x <http://example.org/name> ?n . ?y <http://example.org/age> ?a }"
        )
        plan = optimizer.optimize(list(query.triple_patterns))
        assert len(plan) == 2

    def test_empty_bgp(self):
        plan = JoinOrderOptimizer().optimize([])
        assert len(plan) == 0
        assert plan.order() == []

    def test_merge_join_planned_for_star_pattern(self, toy_store):
        optimizer = JoinOrderOptimizer(statistics=toy_store.statistics)
        query = parse_query(
            "SELECT * WHERE { ?x <http://example.org/memberOf> <http://example.org/dept1> . "
            "?x <http://example.org/name> ?n }"
        )
        plan = optimizer.optimize(list(query.triple_patterns))
        assert plan.steps[1].join_method == JoinMethod.MERGE

    def test_without_statistics_heuristics_alone_work(self):
        optimizer = HeuristicJoinOrderOptimizer(statistics=None)
        query = parse_query(
            "SELECT * WHERE { ?x <http://example.org/p> ?y . ?x a <http://example.org/C> }"
        )
        plan = optimizer.optimize(list(query.triple_patterns))
        assert plan.steps[0].pattern.is_rdf_type

    def test_without_statistics_cost_planner_still_plans(self):
        optimizer = JoinOrderOptimizer(statistics=None)
        query = parse_query(
            "SELECT * WHERE { ?x <http://example.org/p> ?y . ?x a <http://example.org/C> }"
        )
        plan = optimizer.optimize(list(query.triple_patterns))
        assert sorted(plan.order()) == [0, 1]
        assert plan.method == "cost-dp"

    def test_explain_output(self, toy_store):
        optimizer = JoinOrderOptimizer(statistics=toy_store.statistics)
        query = parse_query(
            "SELECT * WHERE { ?x a <http://example.org/Person> . ?x <http://example.org/name> ?n }"
        )
        plan = optimizer.optimize(list(query.triple_patterns))
        text = plan.explain()
        assert "tp1" in text and "rdftype" in text


class TestAlgorithm1Heuristics:
    """The paper's greedy planner, pinned independently of the cost model."""

    def test_rdf_type_always_starts_the_plan(self, toy_store):
        optimizer = HeuristicJoinOrderOptimizer(statistics=toy_store.statistics)
        plan = optimizer.optimize(
            patterns_of(
                "SELECT * WHERE { ?x a <http://example.org/Person> . "
                "?x <http://example.org/name> ?n }"
            )
        )
        assert plan.method == "heuristic"
        assert plan.steps[0].pattern.is_rdf_type

    def test_shape_rank_prefers_bound_subject_over_bound_object(self, toy_store):
        optimizer = HeuristicJoinOrderOptimizer(statistics=toy_store.statistics)
        plan = optimizer.optimize(
            patterns_of(
                "SELECT * WHERE { ?x <http://example.org/advisor> <http://example.org/bob> . "
                "<http://example.org/alice> <http://example.org/advisor> ?y }"
            )
        )
        # (s, p, ?o) ranks above (?s, p, o) in Heuristic 1.
        assert plan.steps[0].pattern.subject == EX.alice

    def test_heuristic_has_no_cost_annotations(self, toy_store):
        optimizer = HeuristicJoinOrderOptimizer(statistics=toy_store.statistics)
        plan = optimizer.optimize(
            patterns_of("SELECT * WHERE { ?x <http://example.org/name> ?n }")
        )
        assert plan.steps[0].estimated_cost is None
        assert plan.steps[0].estimated_cardinality is not None


class TestPaperExample51:
    """The query of Figure 6 (Example 5.1/5.2): 7 TPs, left-deep join order."""

    QUERY = """
    SELECT * WHERE {
      ?x a <http://example.org/C1> .
      ?y a <http://example.org/C2> .
      ?z a <http://example.org/C3> .
      ?y <http://example.org/p1> ?w .
      ?w <http://example.org/p2> ?z .
      ?y <http://example.org/p3> ?x .
      ?y <http://example.org/p4> ?v .
    }
    """

    def test_plan_is_connected_and_starts_with_rdf_type(self, toy_store):
        optimizer = JoinOrderOptimizer(statistics=toy_store.statistics)
        patterns = list(parse_query(self.QUERY).triple_patterns)
        plan = optimizer.optimize(patterns)
        assert plan.steps[0].pattern.is_rdf_type
        assert sorted(plan.order()) == list(range(7))
        seen = set(plan.steps[0].pattern.variable_names())
        for step in plan.steps[1:]:
            names = step.pattern.variable_names()
            assert any(name in seen for name in names)
            seen.update(names)
