"""Solution-modifier algebra: aggregates, ordering keys, projection.

This module implements the *logical* semantics of the SPARQL 1.1 solution
modifiers — ``GROUP BY`` with the aggregates ``COUNT`` / ``SUM`` / ``MIN`` /
``MAX`` / ``AVG`` / ``SAMPLE``, ``ORDER BY`` total ordering, projection with
``(expr AS ?var)``, ``DISTINCT``, ``OFFSET`` and ``LIMIT`` — over
materialized binding lists.  It is shared by every materializing evaluator
in the repository (the baseline systems' generic engine and the reference
:class:`~repro.query.materializing.MaterializingQueryEngine`); the streaming
engine (:mod:`repro.query.operators`) reuses the same aggregate computation
and ordering keys inside its lazy operators, so the two evaluation styles
cannot drift apart semantically.

Empty-group semantics follow the W3C recommendation: over an empty group
``COUNT`` is ``0``, ``SUM`` and ``AVG`` are ``0``, and ``MIN`` / ``MAX`` /
``SAMPLE`` are errors (the alias stays unbound).  The deviations from the
recommendation are listed in ``docs/sparql_support.md``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.rdf.terms import BlankNode, Literal, Term, URI
from repro.rdf.terms import XSD_DOUBLE, XSD_INTEGER
from repro.sparql.ast import (
    Aggregate,
    Arithmetic,
    BooleanExpression,
    Comparison,
    Expression,
    FunctionCall,
    InlineData,
    Negation,
    OrderCondition,
    SelectQuery,
    Variable,
)
from repro.sparql.bindings import Binding, ResultSet
from repro.sparql.expressions import evaluate, evaluate_bind, to_term

__all__ = [
    "apply_solution_modifiers",
    "compute_aggregate",
    "evaluate_select_expression",
    "group_solutions",
    "order_key_function",
    "term_order_key",
    "values_bindings",
]


# --------------------------------------------------------------------- #
# ORDER BY: a total order over RDF terms
# --------------------------------------------------------------------- #


def term_order_key(value: Any) -> Tuple:
    """A sort key giving a total order over (possibly unbound) RDF terms.

    Follows SPARQL 15.1: unbound < blank nodes < IRIs < literals; numeric
    literals order numerically among themselves and before the remaining
    literals, which order by lexical form.  Python scalars produced by
    expression evaluation participate as the equivalent literal.
    """
    if value is None:
        return (0,)
    if isinstance(value, BlankNode):
        return (1, value.label)
    if isinstance(value, URI):
        return (2, value.value)
    if isinstance(value, bool):
        return (3, 1, "true" if value else "false")
    if isinstance(value, (int, float)):
        return (3, 0, float(value))
    if isinstance(value, Literal):
        if value.is_numeric:
            try:
                return (3, 0, float(value.lexical))
            except ValueError:
                pass
        return (3, 1, value.lexical)
    return (3, 1, str(value))


class _Descending:
    """Wraps a sort key so comparisons invert (for ``ORDER BY DESC``)."""

    __slots__ = ("key",)

    def __init__(self, key: Tuple) -> None:
        self.key = key

    def __lt__(self, other: "_Descending") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Descending) and other.key == self.key


def order_key_function(conditions: Sequence[OrderCondition]) -> Callable[[Binding], Tuple]:
    """A ``key=`` callable sorting bindings by the given ORDER BY conditions."""

    def key(binding: Binding) -> Tuple:
        components: List[Any] = []
        for condition in conditions:
            try:
                value = evaluate(condition.expression, binding)
            except Exception:  # SPARQL errors sort lowest (as unbound)
                value = None
            component = term_order_key(value)
            components.append(_Descending(component) if condition.descending else component)
        return tuple(components)

    return key


# --------------------------------------------------------------------- #
# aggregates
# --------------------------------------------------------------------- #


def _number_to_term(value: Any) -> Term:
    """A numeric aggregate result as an ``xsd:integer``/``xsd:double`` literal."""
    if isinstance(value, int):
        return Literal(str(value), datatype=XSD_INTEGER)
    if isinstance(value, float) and value.is_integer():
        return Literal(str(int(value)), datatype=XSD_INTEGER)
    return Literal(repr(float(value)), datatype=XSD_DOUBLE)


def _numeric_value(value: Any) -> Optional[Any]:
    """Coerce an evaluated value to ``int``/``float`` (``None`` if non-numeric)."""
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, Literal):
        python_value = value.to_python()
        if isinstance(python_value, bool):
            return None
        if isinstance(python_value, (int, float)):
            return python_value
    return None


def compute_aggregate(aggregate: Aggregate, group: Sequence[Binding]) -> Optional[Term]:
    """Evaluate one aggregate over a group of solutions.

    Returns the result as an RDF term, or ``None`` when the aggregate is a
    SPARQL error (e.g. ``MIN`` over an empty group, ``SUM`` over
    non-numeric values) — the result variable then stays unbound.
    """
    name = aggregate.name
    if aggregate.expression is None:  # COUNT(*) / COUNT(DISTINCT *)
        if aggregate.distinct:
            distinct_rows = {
                tuple(sorted(binding.items(), key=lambda item: item[0]))
                for binding in group
            }
            return _number_to_term(len(distinct_rows))
        return _number_to_term(len(group))

    values: List[Any] = []
    for binding in group:
        try:
            value = evaluate(aggregate.expression, binding)
        except Exception:
            continue
        if value is not None:
            values.append(value)
    if aggregate.distinct:
        seen = set()
        unique: List[Any] = []
        for value in values:
            marker = to_term(value)
            if marker not in seen:
                seen.add(marker)
                unique.append(value)
        values = unique

    if name == "count":
        return _number_to_term(len(values))
    if name == "sample":
        return to_term(values[0]) if values else None
    if name in ("sum", "avg"):
        numbers = [_numeric_value(value) for value in values]
        if any(number is None for number in numbers):
            return None  # type error: a non-numeric value in SUM/AVG
        if not numbers:
            return _number_to_term(0)
        total = sum(numbers)  # type: ignore[arg-type]
        if name == "sum":
            return _number_to_term(total)
        return _number_to_term(total / len(numbers))
    if name in ("min", "max"):
        if not values:
            return None
        chooser = min if name == "min" else max
        return to_term(chooser(values, key=term_order_key))
    raise ValueError(f"unknown aggregate {name!r}")


def _substitute_aggregates(
    expression: Expression,
    group: Sequence[Binding],
    extra: Dict[str, Term],
    counter: List[int],
) -> Expression:
    """Replace Aggregate nodes by fresh variables bound to their computed value.

    ``counter`` advances for *every* aggregate, including erroring ones
    (whose alias stays unbound) — reusing an alias would alias an erroring
    aggregate with the next one's value.
    """
    if isinstance(expression, Aggregate):
        alias = f"__agg{counter[0]}"
        counter[0] += 1
        value = compute_aggregate(expression, group)
        if value is not None:
            extra[alias] = value
        return Variable(alias)
    if isinstance(expression, Comparison):
        return Comparison(
            expression.operator,
            _substitute_aggregates(expression.left, group, extra, counter),
            _substitute_aggregates(expression.right, group, extra, counter),
        )
    if isinstance(expression, Arithmetic):
        return Arithmetic(
            expression.operator,
            _substitute_aggregates(expression.left, group, extra, counter),
            _substitute_aggregates(expression.right, group, extra, counter),
        )
    if isinstance(expression, BooleanExpression):
        return BooleanExpression(
            expression.operator,
            tuple(
                _substitute_aggregates(op, group, extra, counter)
                for op in expression.operands
            ),
        )
    if isinstance(expression, Negation):
        return Negation(_substitute_aggregates(expression.operand, group, extra, counter))
    if isinstance(expression, FunctionCall):
        return FunctionCall(
            expression.name,
            tuple(
                _substitute_aggregates(arg, group, extra, counter)
                for arg in expression.arguments
            ),
        )
    return expression


def evaluate_select_expression(
    expression: Expression,
    group: Sequence[Binding],
    key_binding: Binding,
) -> Optional[Term]:
    """Evaluate a ``(expr AS ?var)`` projection over one group.

    Aggregate sub-expressions are computed over ``group``; the remaining
    parts are evaluated against ``key_binding`` (the per-group binding of
    the GROUP BY variables — or the row itself for non-grouped queries).
    An erroring aggregate leaves its alias unbound, so the whole expression
    evaluates to the SPARQL error value (``None``).
    """
    extra: Dict[str, Term] = {}
    substituted = _substitute_aggregates(expression, group, extra, [0])
    binding = key_binding
    for alias, value in extra.items():
        binding = binding.extended(alias, value)
    return evaluate_bind(substituted, binding)


def group_solutions(query: SelectQuery, solutions: Sequence[Binding]) -> List[Binding]:
    """The GROUP BY + aggregation phase: one output binding per group.

    Each output binding carries the GROUP BY variables plus the aliases of
    the SELECT clause's ``(expr AS ?var)`` items.  Without GROUP BY there is
    exactly one (possibly empty) group covering all solutions.
    """
    grouped: Dict[Tuple, List[Binding]] = {}
    order: List[Tuple] = []
    for binding in solutions:
        key_parts: List[Any] = []
        for condition in query.group_by:
            try:
                key_parts.append(to_term(evaluate(condition, binding)))
            except Exception:
                key_parts.append(None)
        key = tuple(key_parts)
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].append(binding)
    if not query.group_by and not grouped:
        grouped[()] = []  # aggregates over zero solutions form one empty group
        order.append(())

    results: List[Binding] = []
    for key in order:
        group = grouped[key]
        values: Dict[str, Term] = {}
        for condition, value in zip(query.group_by, key):
            if isinstance(condition, Variable) and value is not None:
                values[condition.name] = value
        key_binding = Binding(values)
        for item in query.select_expressions():
            value = evaluate_select_expression(item.expression, group, key_binding)
            if value is not None:
                values[item.variable.name] = value
        results.append(Binding(values))
    return results


# --------------------------------------------------------------------- #
# VALUES inline data
# --------------------------------------------------------------------- #


def values_bindings(inline: InlineData) -> List[Binding]:
    """The VALUES block as a list of bindings (``UNDEF`` entries unbound)."""
    names = inline.variable_names()
    bindings: List[Binding] = []
    for row in inline.rows:
        values = {
            name: term for name, term in zip(names, row) if term is not None
        }
        bindings.append(Binding(values))
    return bindings


# --------------------------------------------------------------------- #
# the full materialized modifier pipeline
# --------------------------------------------------------------------- #


def apply_solution_modifiers(query: SelectQuery, solutions: Iterable[Binding]) -> ResultSet:
    """Apply the SPARQL 1.1 solution modifiers to materialized WHERE solutions.

    Evaluation order (SPARQL 18.2.4-18.2.5): grouping/aggregation, ORDER BY,
    projection (with ``(expr AS ?var)``), DISTINCT, OFFSET, LIMIT.  This is
    the reference path used by the materializing engines; the streaming
    engine implements the same order lazily.
    """
    bindings = list(solutions)
    if query.aggregated:
        bindings = group_solutions(query, bindings)
    elif query.select_expressions():
        extended: List[Binding] = []
        for binding in bindings:
            current = binding
            for item in query.select_expressions():
                value = evaluate_bind(item.expression, current)
                if value is not None:
                    current = current.extended(item.variable.name, value)
            extended.append(current)
        bindings = extended
    if query.order_by:
        bindings = sorted(bindings, key=order_key_function(query.order_by))
    names = query.projected_names()
    result = ResultSet(names, [binding.project(names) for binding in bindings])
    if query.distinct:
        result = result.distinct()
    start = query.offset or 0
    stop = None if query.limit is None else start + query.limit
    if start or stop is not None:
        result = ResultSet(result.variables, result.bindings[start:stop])
    return result
