"""Differential tests: base + delta must equal a from-scratch rebuild.

The acceptance bar of the live-update subsystem: for every one of the
paper's 26 evaluation queries (S1-S15, M1-M5, R1-R6) plus the A1-A6
analytics, query results over an updatable store (immutable base + delta
overlay) are identical to results over a store rebuilt from scratch on the
merged data — through inserts, deletes, re-inserts and compaction.

Phases (each a fixture layered on the previous one, tests in file order):

1. *insert-only* — a LUBM dataset split ~80/20 into base and live triples;
   results must be **byte-identical** (same rows, same order) to a rebuild
   over base-then-live data, because the overlay preserves index order and
   identifier assignment matches the builder's first-seen order.
2. *deletes* — a deterministic slice of base and delta triples deleted;
   results are compared as multisets (identifier assignment of a rebuild
   shifts when first-seen triples disappear, so row order of unordered
   SELECTs is not comparable — see docs/update_lifecycle.md).
3. *re-inserts* — the deleted triples return; byte-identical equality with
   the full rebuild must hold again (tombstone round-trip restores the
   exact original state).
4. *compaction* — `compact()` must change nothing, byte for byte.
"""

from __future__ import annotations

import pytest

from repro.sparql.bindings import AskResult
from repro.store.succinct_edge import SuccinctEdge
from repro.store.updatable import UpdatableSuccinctEdge
from repro.rdf.graph import Graph

#: Every query of the paper's evaluation plus the analytics additions.
ALL_QUERY_IDS = (
    [f"S{i}" for i in range(1, 16)]
    + [f"M{i}" for i in range(1, 6)]
    + [f"R{i}" for i in range(1, 7)]
    + [f"A{i}" for i in range(1, 7)]
)


def split_dataset(graph: Graph):
    """Deterministic ~80/20 split into (base graph, live triple list)."""
    base = Graph()
    live = []
    for index, triple in enumerate(graph):
        if index % 5 == 4:
            live.append(triple)
        else:
            base.add(triple)
    return base, live


def assert_identical(updatable, reference, sparql):
    """Byte-identical comparison: same variables, same rows, same order."""
    left = updatable.query(sparql)
    right = reference.query(sparql)
    if isinstance(left, AskResult):
        assert isinstance(right, AskResult)
        assert left.boolean == right.boolean
        return
    assert left.variables == right.variables
    assert left.to_tuples() == right.to_tuples()


def assert_equivalent(updatable, reference, sparql):
    """Order-insensitive comparison (multiset of rows)."""
    left = updatable.query(sparql)
    right = reference.query(sparql)
    if isinstance(left, AskResult):
        assert left.boolean == right.boolean
        return
    assert left.variables == right.variables
    key = lambda row: tuple(repr(value) for value in row)  # noqa: E731
    assert sorted(left.to_tuples(), key=key) == sorted(right.to_tuples(), key=key)


# --------------------------------------------------------------------------- #
# phase fixtures (module-scoped, layered; tests run in file order)
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def dataset(small_lubm):
    base, live = split_dataset(small_lubm.graph)
    assert len(live) > 100, "split produced too few live triples to be meaningful"
    return small_lubm, base, live


@pytest.fixture(scope="module")
def insert_phase(dataset):
    """(updatable store after live inserts, rebuild over base-then-live data)."""
    lubm, base, live = dataset
    updatable = UpdatableSuccinctEdge.from_graph(base, ontology=lubm.ontology)
    inserted = sum(1 for triple in live if updatable.insert(triple))
    assert inserted == len(live)

    merged = Graph()
    for triple in base:
        merged.add(triple)
    for triple in live:
        merged.add(triple)
    reference = SuccinctEdge.from_graph(merged, ontology=lubm.ontology)
    return updatable, reference, merged


@pytest.fixture(scope="module")
def delete_phase(dataset, insert_phase):
    """Delete every 7th merged triple; rebuild the reference without them."""
    lubm, _base, _live = dataset
    updatable, _reference, merged = insert_phase
    deleted = [triple for index, triple in enumerate(merged) if index % 7 == 3]
    for triple in deleted:
        assert updatable.delete(triple)

    remaining = Graph()
    gone = set(deleted)
    for triple in merged:
        if triple not in gone:
            remaining.add(triple)
    reference = SuccinctEdge.from_graph(remaining, ontology=lubm.ontology)
    return updatable, reference, deleted


@pytest.fixture(scope="module")
def reinsert_phase(insert_phase, delete_phase):
    """Re-insert the deleted triples: exact original state must return."""
    updatable, _reference, deleted = delete_phase
    for triple in deleted:
        assert updatable.insert(triple)
    _updatable, full_reference, _merged = insert_phase
    return updatable, full_reference


@pytest.fixture(scope="module")
def compact_phase(reinsert_phase):
    """Compact the overlay; nothing may change."""
    updatable, full_reference = reinsert_phase
    report = updatable.compact()
    assert report.operations_folded > 0
    assert updatable.delta_operation_count == 0
    return updatable, full_reference


# --------------------------------------------------------------------------- #
# the differential matrix
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("identifier", ALL_QUERY_IDS)
def test_insert_only_results_byte_identical(insert_phase, small_lubm_catalog, identifier):
    updatable, reference, _merged = insert_phase
    assert_identical(updatable, reference, small_lubm_catalog.by_identifier()[identifier].sparql)


def test_inserts_visible_without_rebuild(insert_phase, dataset):
    updatable, _reference, _merged = insert_phase
    _lubm, base, live = dataset
    assert updatable.triple_count == updatable.base_triple_count + updatable.delta.insert_count
    assert updatable.base_triple_count < updatable.triple_count
    assert updatable.compaction_epoch == 0  # nothing was rebuilt


@pytest.mark.parametrize("identifier", ALL_QUERY_IDS)
def test_deletes_results_equivalent(delete_phase, small_lubm_catalog, identifier):
    updatable, reference, _deleted = delete_phase
    assert_equivalent(updatable, reference, small_lubm_catalog.by_identifier()[identifier].sparql)


@pytest.mark.parametrize("identifier", ALL_QUERY_IDS)
def test_reinserts_restore_byte_identical_results(reinsert_phase, small_lubm_catalog, identifier):
    updatable, full_reference = reinsert_phase
    assert_identical(updatable, full_reference, small_lubm_catalog.by_identifier()[identifier].sparql)


@pytest.mark.parametrize("identifier", ALL_QUERY_IDS)
def test_compaction_changes_nothing(compact_phase, small_lubm_catalog, identifier):
    updatable, full_reference = compact_phase
    assert_identical(updatable, full_reference, small_lubm_catalog.by_identifier()[identifier].sparql)


def test_compaction_restored_pure_succinct_reads(compact_phase):
    updatable, _reference = compact_phase
    assert updatable.delta_operation_count == 0
    assert updatable.base_triple_count == updatable.triple_count
    assert updatable.compaction_epoch == 1


def test_match_enumeration_equals_rebuild(compact_phase):
    updatable, reference = compact_phase
    left = sorted(tuple(map(str, triple)) for triple in updatable.match())
    right = sorted(tuple(map(str, triple)) for triple in reference.match())
    assert left == right
