"""SuccinctEdge reproduction.

A from-scratch, pure-Python reproduction of *Knowledge Graph Management on
the Edge* (EDBT 2021): the SuccinctEdge compact, self-indexed, in-memory RDF
store with LiteMat-based RDFS reasoning, together with every substrate it
depends on (succinct data structures, RDF/SPARQL, dictionaries), the baseline
systems of the paper's evaluation, and the LUBM / ENGIE workloads.

Quickstart
----------
>>> from repro import SuccinctEdge, Graph, Triple, URI, RDF
>>> data = Graph()
>>> _ = data.add(Triple(URI("http://x.org/s1"), RDF.type, URI("http://x.org/Sensor")))
>>> store = SuccinctEdge.from_graph(data)
>>> len(store.query("SELECT ?s WHERE { ?s a <http://x.org/Sensor> }"))
1
"""

from repro.rdf import (
    BlankNode,
    Graph,
    Literal,
    Namespace,
    RDF,
    RDFS,
    Triple,
    URI,
)
from repro.ontology import LiteMatEncoder, OntologySchema
from repro.sparql import parse_query
from repro.store import CompactionPolicy, ShardedStore, SuccinctEdge, UpdatableSuccinctEdge

__version__ = "1.0.0"

__all__ = [
    "BlankNode",
    "CompactionPolicy",
    "Graph",
    "LiteMatEncoder",
    "Literal",
    "Namespace",
    "OntologySchema",
    "RDF",
    "RDFS",
    "ShardedStore",
    "SuccinctEdge",
    "Triple",
    "UpdatableSuccinctEdge",
    "URI",
    "parse_query",
    "__version__",
]
