"""LiteMat semantic-aware encoding (paper Section 3.2).

LiteMat assigns integer identifiers to ontology terms such that the
identifier of a term is *prefixed* (in binary) by the identifier of its
direct parent.  After right-padding every identifier to a common bit length
(the *normalisation* step), the set of all direct and indirect sub-entities
of a term ``T`` corresponds to one contiguous identifier interval::

    [ id(T), id(T) + 2 ** (total_length - local_length(T)) )

computed with two bit shifts and one addition — which is how SuccinctEdge
answers inference queries without materialisation and without UNION
rewriting.

Example (Figure 2 of the paper) — axioms ``A ⊑ Thing``, ``B ⊑ Thing``,
``C ⊑ B``, ``D ⊑ B``::

    Thing -> 10000 (16)   interval [16, 32)
    A     -> 10100 (20)   interval [20, 24)
    B     -> 11000 (24)   interval [24, 28)
    C     -> 11001 (25)
    D     -> 11010 (26)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.ontology.schema import OntologySchema
from repro.rdf.namespaces import OWL_THING
from repro.rdf.terms import URI


@dataclass(frozen=True)
class EncodedEntity:
    """LiteMat metadata of a single encoded concept or property.

    Attributes
    ----------
    identifier:
        Final (normalised) integer identifier.
    local_length:
        Number of significant bits before normalisation: the parent prefix
        plus the local encoding (Figure 2(b) "start of the normalization").
    total_length:
        The common normalised bit length of the hierarchy.
    """

    identifier: int
    local_length: int
    total_length: int

    @property
    def interval(self) -> Tuple[int, int]:
        """Identifier interval ``[lower, upper)`` covering the entity and all its descendants."""
        span = 1 << (self.total_length - self.local_length)
        return self.identifier, self.identifier + span

    def covers(self, identifier: int) -> bool:
        """Whether ``identifier`` denotes this entity or one of its descendants."""
        lower, upper = self.interval
        return lower <= identifier < upper


class LiteMatEncoding:
    """The result of encoding one hierarchy (concepts *or* properties)."""

    def __init__(
        self,
        entries: Dict[URI, EncodedEntity],
        total_length: int,
        root: Optional[URI] = None,
    ) -> None:
        self._entries = dict(entries)
        self._by_id: Dict[int, URI] = {}
        for term, encoded in entries.items():
            # Two terms can never share an identifier; guard against it.
            if encoded.identifier in self._by_id:
                raise ValueError(
                    f"duplicate LiteMat identifier {encoded.identifier} for "
                    f"{term} and {self._by_id[encoded.identifier]}"
                )
            self._by_id[encoded.identifier] = term
        self.total_length = total_length
        self.root = root

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, term: URI) -> bool:
        return term in self._entries

    def terms(self) -> List[URI]:
        """All encoded terms."""
        return list(self._entries)

    def encode(self, term: URI) -> int:
        """The identifier of ``term``; raises :class:`KeyError` when unknown."""
        return self._entries[term].identifier

    def try_encode(self, term: URI) -> Optional[int]:
        """The identifier of ``term`` or ``None`` when unknown."""
        entry = self._entries.get(term)
        return None if entry is None else entry.identifier

    def decode(self, identifier: int) -> URI:
        """The term carrying ``identifier``; raises :class:`KeyError` when unknown."""
        return self._by_id[identifier]

    def try_decode(self, identifier: int) -> Optional[URI]:
        """The term carrying ``identifier`` or ``None``."""
        return self._by_id.get(identifier)

    def entry(self, term: URI) -> EncodedEntity:
        """Full LiteMat metadata of ``term``."""
        return self._entries[term]

    def interval(self, term: URI) -> Tuple[int, int]:
        """Identifier interval ``[lower, upper)`` of ``term`` and its descendants."""
        return self._entries[term].interval

    def is_descendant(self, candidate: URI, ancestor: URI) -> bool:
        """Interval-based subsumption test (includes equality)."""
        return self._entries[ancestor].covers(self._entries[candidate].identifier)

    def identifiers(self) -> Dict[URI, int]:
        """Mapping term -> identifier (copy)."""
        return {term: entry.identifier for term, entry in self._entries.items()}

    def __repr__(self) -> str:
        return f"LiteMatEncoding({len(self._entries)} terms, total_length={self.total_length})"


class LiteMatEncoder:
    """Builds :class:`LiteMatEncoding` objects from an :class:`OntologySchema`.

    Entities that appear in the data but not in the ontology (e.g. plain
    datatype properties of sensors) are attached directly under the hierarchy
    root so that every term receives an identifier and interval reasoning
    stays sound.
    """

    def __init__(self, schema: Optional[OntologySchema] = None) -> None:
        self.schema = schema or OntologySchema()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def encode_concepts(self, extra_concepts: Iterable[URI] = ()) -> LiteMatEncoding:
        """Encode the concept hierarchy (plus undeclared ``extra_concepts``)."""
        roots = list(self.schema.concept_roots())
        for concept in extra_concepts:
            if concept not in self.schema.concepts and concept not in roots:
                roots.append(concept)
        return self._encode_forest(
            roots=roots,
            children_of=self.schema.concept_children,
            root_term=OWL_THING,
        )

    def encode_properties(self, extra_properties: Iterable[URI] = ()) -> LiteMatEncoding:
        """Encode the property hierarchy (plus undeclared ``extra_properties``)."""
        roots = list(self.schema.property_roots())
        for prop in extra_properties:
            if prop not in self.schema.properties and prop not in roots:
                roots.append(prop)
        return self._encode_forest(
            roots=roots,
            children_of=self.schema.property_children,
            root_term=None,
        )

    # ------------------------------------------------------------------ #
    # encoding core
    # ------------------------------------------------------------------ #

    def _encode_forest(
        self,
        roots: List[URI],
        children_of,
        root_term: Optional[URI],
    ) -> LiteMatEncoding:
        # Bit strings before normalisation; the virtual root is "1" so that
        # identifier 0 is never produced (0 is reserved for "unknown").
        prefixes: Dict[URI, str] = {}
        ordered: List[URI] = []

        def assign(children: List[URI], parent_prefix: str) -> None:
            if not children:
                return
            # Local identifiers run from 1 to len(children); 0 is never used so
            # that a child's padded identifier can never collide with its parent.
            local_bits = len(children).bit_length()
            for position, child in enumerate(children, start=1):
                prefix = parent_prefix + format(position, f"0{local_bits}b")
                prefixes[child] = prefix
                ordered.append(child)
                assign(children_of(child), prefix)

        virtual_root_prefix = "1"
        if root_term is not None:
            prefixes[root_term] = virtual_root_prefix
            ordered.append(root_term)
        assign(roots, virtual_root_prefix)

        total_length = max((len(prefix) for prefix in prefixes.values()), default=1)
        entries: Dict[URI, EncodedEntity] = {}
        for term in ordered:
            prefix = prefixes[term]
            identifier = int(prefix.ljust(total_length, "0"), 2)
            entries[term] = EncodedEntity(
                identifier=identifier,
                local_length=len(prefix),
                total_length=total_length,
            )
        return LiteMatEncoding(entries, total_length, root=root_term)
