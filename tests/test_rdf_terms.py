"""Tests for RDF terms and triples."""

from __future__ import annotations

import pytest

from repro.rdf.terms import (
    BlankNode,
    Literal,
    Triple,
    URI,
    XSD_BOOLEAN,
    XSD_DATETIME,
    XSD_DOUBLE,
    XSD_INTEGER,
    XSD_STRING,
)


class TestURI:
    def test_value_and_str(self):
        uri = URI("http://example.org/thing")
        assert str(uri) == "http://example.org/thing"
        assert uri.n3() == "<http://example.org/thing>"

    def test_empty_value_raises(self):
        with pytest.raises(ValueError):
            URI("")

    def test_equality_and_hash(self):
        assert URI("http://a") == URI("http://a")
        assert URI("http://a") != URI("http://b")
        assert len({URI("http://a"), URI("http://a")}) == 1

    def test_local_name_with_hash_and_slash(self):
        assert URI("http://example.org/onto#Person").local_name == "Person"
        assert URI("http://example.org/data/alice").local_name == "alice"
        assert URI("urn:isbn").local_name == "urn:isbn"

    def test_ordering(self):
        assert URI("http://a") < URI("http://b")
        # URIs sort before blank nodes which sort before literals.
        assert URI("http://z") < BlankNode("a")
        assert BlankNode("z") < Literal("a")


class TestBlankNode:
    def test_label_and_n3(self):
        node = BlankNode("b0")
        assert str(node) == "_:b0"
        assert node.n3() == "_:b0"

    def test_empty_label_raises(self):
        with pytest.raises(ValueError):
            BlankNode("")

    def test_equality(self):
        assert BlankNode("x") == BlankNode("x")
        assert BlankNode("x") != BlankNode("y")
        assert BlankNode("x") != URI("x")


class TestLiteral:
    def test_plain_string_gets_xsd_string(self):
        literal = Literal("hello")
        assert literal.lexical == "hello"
        assert literal.datatype == XSD_STRING
        assert literal.language is None

    def test_integer_coercion(self):
        literal = Literal(42)
        assert literal.lexical == "42"
        assert literal.datatype == XSD_INTEGER
        assert literal.to_python() == 42

    def test_float_coercion(self):
        literal = Literal(3.5)
        assert literal.datatype == XSD_DOUBLE
        assert literal.to_python() == pytest.approx(3.5)

    def test_boolean_coercion(self):
        assert Literal(True).lexical == "true"
        assert Literal(False).to_python() is False
        assert Literal(True).datatype == XSD_BOOLEAN

    def test_language_tag(self):
        literal = Literal("bonjour", language="fr")
        assert literal.language == "fr"
        assert literal.n3() == '"bonjour"@fr'

    def test_language_and_datatype_conflict(self):
        with pytest.raises(ValueError):
            Literal("x", datatype=XSD_STRING, language="en")

    def test_typed_literal_n3(self):
        literal = Literal("2020-06-01T00:00:00", datatype=XSD_DATETIME)
        assert literal.n3() == f'"2020-06-01T00:00:00"^^<{XSD_DATETIME}>'

    def test_plain_literal_n3_escaping(self):
        literal = Literal('say "hi"\n')
        assert literal.n3() == '"say \\"hi\\"\\n"'

    def test_is_numeric(self):
        assert Literal(1).is_numeric
        assert Literal(1.5).is_numeric
        assert not Literal("one").is_numeric

    def test_equality_considers_datatype(self):
        assert Literal("1", datatype=XSD_INTEGER) != Literal("1")
        assert Literal("a") == Literal("a")


class TestTriple:
    def test_fields_and_n3(self):
        triple = Triple(URI("http://s"), URI("http://p"), Literal("o"))
        assert triple.subject == URI("http://s")
        assert triple.predicate == URI("http://p")
        assert triple.object == Literal("o")
        assert triple.n3() == '<http://s> <http://p> "o" .'

    def test_named_tuple_unpacking(self):
        subject, predicate, obj = Triple(URI("http://s"), URI("http://p"), URI("http://o"))
        assert (subject, predicate, obj) == (URI("http://s"), URI("http://p"), URI("http://o"))

    def test_hashable(self):
        a = Triple(URI("http://s"), URI("http://p"), URI("http://o"))
        b = Triple(URI("http://s"), URI("http://p"), URI("http://o"))
        assert len({a, b}) == 1
