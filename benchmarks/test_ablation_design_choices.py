"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not part of the paper's evaluation, but each experiment isolates one of the
paper's design decisions:

* LiteMat interval reasoning vs UNION-of-subqueries rewriting on the same
  engine-independent workload (reasoning queries R1/R3/R5);
* merge join vs bind-propagation join on star-shaped BGPs;
* the dedicated RDFType store vs answering ``rdf:type`` patterns as if they
  were regular object properties (approximated by the multi-index baseline).
"""

from __future__ import annotations

from repro.bench.harness import record_table

from repro.bench.harness import format_table
from repro.bench.measure import measure_best_of
from repro.ontology.rewriting import count_union_branches
from repro.query.engine import QueryEngine
from repro.sparql.parser import parse_query


def test_ablation_litemat_vs_union_rewriting(benchmark, context, loaded_systems, results_dir):
    """LiteMat intervals vs UNION rewriting, both executed by SuccinctEdge."""
    succinct = loaded_systems["SuccinctEdge"].store
    schema = succinct.schema
    queries = [context.catalog.by_identifier()[name] for name in ("R1", "R3", "R5")]
    columns = []
    rows = {"LiteMat-intervals": [], "UNION-rewriting": [], "UNION-branches": []}
    from repro.ontology.rewriting import rewrite_query_with_unions

    for query in queries:
        parsed = parse_query(query.sparql)
        litemat = measure_best_of(lambda: succinct.query(parsed, reasoning=True), repetitions=1)
        rewritten = rewrite_query_with_unions(parsed, schema)
        union = measure_best_of(lambda: succinct.query(rewritten, reasoning=False), repetitions=1)
        assert litemat.result.to_set() == union.result.to_set()
        columns.append(f"{query.identifier}({len(litemat.result)})")
        rows["LiteMat-intervals"].append(litemat.total_ms)
        rows["UNION-rewriting"].append(union.total_ms)
        rows["UNION-branches"].append(count_union_branches(parsed, schema))
    table = format_table(
        "Ablation: LiteMat interval reasoning vs UNION rewriting (same store)",
        columns,
        rows,
        unit="ms / branch count",
    )
    record_table(results_dir, "ablation_litemat_vs_union", table)
    benchmark.pedantic(lambda: succinct.query(queries[0].sparql, reasoning=True), rounds=1, iterations=1)


def test_ablation_join_strategies(benchmark, context, loaded_systems, results_dir):
    """Merge join vs bind propagation on the star-shaped queries M1 and M2."""
    succinct = loaded_systems["SuccinctEdge"].store
    queries = [context.catalog.by_identifier()[name] for name in ("M1", "M2")]
    columns = [query.identifier for query in queries]
    rows = {"auto": [], "bind-propagation": [], "sort-merge": []}
    strategy_names = {"auto": "auto", "bind-propagation": "bind", "sort-merge": "merge"}
    reference = {}
    for query in queries:
        reference[query.identifier] = None
        for label, strategy in strategy_names.items():
            engine = QueryEngine(succinct, reasoning=False, join_strategy=strategy)
            measurement = measure_best_of(lambda: engine.execute(query.sparql), repetitions=1)
            rows[label].append(measurement.total_ms)
            result = measurement.result.to_set()
            if reference[query.identifier] is None:
                reference[query.identifier] = result
            else:
                assert result == reference[query.identifier]
    table = format_table("Ablation: join strategy (SuccinctEdge engine)", columns, rows, unit="ms")
    record_table(results_dir, "ablation_join_strategies", table)
    benchmark.pedantic(
        lambda: QueryEngine(succinct, reasoning=False, join_strategy="bind").execute(queries[0].sparql),
        rounds=1,
        iterations=1,
    )


def test_ablation_rdftype_store(benchmark, context, loaded_systems, results_dir):
    """The dedicated RDFType store vs a generic index scan for rdf:type patterns."""
    succinct = loaded_systems["SuccinctEdge"].store
    baseline = loaded_systems["RDF4J"]
    query = (
        "PREFIX lubm: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
        "SELECT ?x WHERE { ?x a lubm:GraduateStudent }"
    )
    dedicated = measure_best_of(lambda: succinct.query(query, reasoning=False), repetitions=3)
    generic = measure_best_of(lambda: baseline.query(query, reasoning=False), repetitions=3)
    assert dedicated.result.to_set() == generic.result.to_set()
    table = format_table(
        "Ablation: rdf:type access path",
        ["rdf:type lookup"],
        {
            "SuccinctEdge RDFType store": [dedicated.total_ms],
            "Generic multi-index scan": [generic.total_ms],
        },
        unit="ms",
    )
    record_table(results_dir, "ablation_rdftype_store", table)
    benchmark.pedantic(lambda: succinct.query(query, reasoning=False), rounds=3, iterations=1)
