"""Statistics used by the query optimizer.

The optimizer combines three kinds of statistics:

* **Dictionary-time statistics** — per-entry occurrence counts recorded when
  the dictionaries are built, aggregated over concept/property hierarchies
  (``hierarchical_occurrences``), wrapped here into one façade object.  They
  drive the paper's Section-5.1 heuristics and the min-of-constants bound of
  :meth:`DictionaryStatistics.triple_pattern_cardinality`.
* **Join-aware statistics** (PR 5) — per-property :class:`PropertyProfile`
  rows (triple count, distinct subjects, distinct objects) and
  :class:`CharacteristicSet` summaries (the property sets subjects exhibit,
  à la Neumann & Moerkotte), collected in one pass at build time by
  :func:`profile_triples` and maintained *incrementally* on delta writes
  (``note_*`` hooks called by :mod:`repro.store.updatable`).  The cost-based
  planner's :mod:`repro.query.cardinality` estimator chains join
  selectivities from these profiles instead of taking a min over constants.
* **Run-time statistics** — counts computed directly on the SDS structures
  (e.g. Algorithm 2: the number of triples holding a given predicate, derived
  from two ``select`` calls on the PS bitmap).  Those live on the triple
  store; the planners fall back to them when the profiles draw a blank.

Every mutation bumps :attr:`DictionaryStatistics.version`, which is the
invalidation token for derived caches (the fully-unbound fallback mass here,
plan caches upstream keyed on the store's data epoch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.dictionary.term_dictionary import (
    ConceptDictionary,
    InstanceDictionary,
    PropertyDictionary,
)
from repro.rdf.terms import Literal, Term, URI

#: A characteristic-set member: ``("p", property_id)`` for an object/datatype
#: property, ``("t", concept_id)`` for an ``rdf:type`` edge.
Marker = Tuple[str, int]


@dataclass
class PropertyProfile:
    """Join statistics for one property identifier (both PSO layouts merged).

    ``triples`` is maintained exactly across delta writes; the distinct
    counts are exact as of the last full build and *scaled* with the triple
    count afterwards (see :meth:`current_distinct_subjects`) — live inserts
    cannot cheaply prove whether a subject is new to the property, so the
    estimator assumes the build-time triples-per-subject ratio persists.
    """

    triples: int = 0
    distinct_subjects: int = 0
    distinct_objects: int = 0
    #: Triple count at the last exact (build-time) profiling pass; 0 marks a
    #: property first seen through live inserts.
    build_triples: int = 0

    def _scaled(self, build_distinct: int) -> int:
        if self.triples <= 0:
            return 0
        if self.build_triples <= 0:
            # Every triple of a live-born property may carry a fresh subject.
            return self.triples
        if self.triples <= self.build_triples:
            return max(1, build_distinct)
        factor = self.triples / self.build_triples
        return max(1, round(build_distinct * factor))

    def current_distinct_subjects(self) -> int:
        """Distinct-subject estimate at the current triple count."""
        return self._scaled(self.distinct_subjects)

    def current_distinct_objects(self) -> int:
        """Distinct-object estimate at the current triple count."""
        return self._scaled(self.distinct_objects)


@dataclass
class CharacteristicSet:
    """One characteristic set: subjects sharing the same property signature.

    ``count`` is the number of subjects exhibiting exactly this marker set;
    ``triples`` records, per marker, how many triples those subjects hold for
    it (so ``triples[m] / count`` is the mean multiplicity of ``m`` within
    the set).
    """

    count: int = 0
    triples: Dict[Marker, int] = field(default_factory=dict)


def profile_triples(
    object_triples: Iterable[Tuple[int, int, int]],
    datatype_triples: Iterable[Tuple[int, int, Literal]],
    type_triples: Iterable[Tuple[int, int]],
) -> Tuple[Dict[int, PropertyProfile], Dict[FrozenSet[Marker], CharacteristicSet]]:
    """One-pass profiling of the encoded triples (build-time statistics).

    Returns the per-property profiles and the characteristic-set summary.
    Object- and datatype-layout triples of the same property identifier are
    merged into one profile (their value spaces are disjoint, so the distinct
    counts add exactly).
    """
    subjects: Dict[int, set] = {}
    objects: Dict[int, set] = {}
    counts: Dict[int, int] = {}
    subject_markers: Dict[int, Dict[Marker, int]] = {}

    for property_id, subject_id, object_id in object_triples:
        counts[property_id] = counts.get(property_id, 0) + 1
        subjects.setdefault(property_id, set()).add(subject_id)
        objects.setdefault(property_id, set()).add(object_id)
        marks = subject_markers.setdefault(subject_id, {})
        marker = ("p", property_id)
        marks[marker] = marks.get(marker, 0) + 1
    for property_id, subject_id, literal in datatype_triples:
        counts[property_id] = counts.get(property_id, 0) + 1
        subjects.setdefault(property_id, set()).add(subject_id)
        objects.setdefault(property_id, set()).add(literal)
        marks = subject_markers.setdefault(subject_id, {})
        marker = ("p", property_id)
        marks[marker] = marks.get(marker, 0) + 1
    for subject_id, concept_id in type_triples:
        marks = subject_markers.setdefault(subject_id, {})
        marker = ("t", concept_id)
        marks[marker] = marks.get(marker, 0) + 1

    profiles = {
        property_id: PropertyProfile(
            triples=count,
            distinct_subjects=len(subjects[property_id]),
            distinct_objects=len(objects[property_id]),
            build_triples=count,
        )
        for property_id, count in counts.items()
    }

    characteristic_sets: Dict[FrozenSet[Marker], CharacteristicSet] = {}
    for marks in subject_markers.values():
        signature = frozenset(marks)
        entry = characteristic_sets.setdefault(signature, CharacteristicSet())
        entry.count += 1
        for marker, count in marks.items():
            entry.triples[marker] = entry.triples.get(marker, 0) + count
    return profiles, characteristic_sets


class DictionaryStatistics:
    """Cardinality estimates backed by the dictionaries' occurrence counters."""

    def __init__(
        self,
        concepts: ConceptDictionary,
        properties: PropertyDictionary,
        instances: InstanceDictionary,
    ) -> None:
        self.concepts = concepts
        self.properties = properties
        self.instances = instances
        #: Bumped on every statistics mutation; derived caches key on it.
        self.version = 0
        self._property_profiles: Dict[int, PropertyProfile] = {}
        self._characteristic_sets: Dict[FrozenSet[Marker], CharacteristicSet] = {}
        self._type_triple_count = 0
        self._unbound_mass_cache: Optional[Tuple[int, int]] = None

    # ------------------------------------------------------------------ #
    # join-aware profiles (PR 5)
    # ------------------------------------------------------------------ #

    def register_profiles(
        self,
        property_profiles: Dict[int, PropertyProfile],
        characteristic_sets: Dict[FrozenSet[Marker], CharacteristicSet],
        type_triple_count: int = 0,
    ) -> None:
        """Install the build-time profiles (one exact profiling pass)."""
        self._property_profiles = dict(property_profiles)
        self._characteristic_sets = dict(characteristic_sets)
        self._type_triple_count = type_triple_count
        self.version += 1
        self._unbound_mass_cache = None

    @property
    def has_profiles(self) -> bool:
        """Whether build-time join profiles are available."""
        return bool(self._property_profiles) or bool(self._characteristic_sets)

    def property_profile(self, property_id: int) -> Optional[PropertyProfile]:
        """The join profile of one property identifier, if profiled."""
        return self._property_profiles.get(property_id)

    def interval_profile(self, low: int, high: int) -> Optional[PropertyProfile]:
        """Summed profile over the property interval ``[low, high)``.

        This is the reasoning-mode statistic: a LiteMat predicate interval is
        answered by probing every stored sub-property, so its profile is the
        sum of theirs (distinct counts add as an upper bound — a subject may
        carry several sub-properties).
        """
        merged: Optional[PropertyProfile] = None
        for property_id, profile in self._property_profiles.items():
            if low <= property_id < high:
                if merged is None:
                    merged = PropertyProfile()
                merged.triples += profile.triples
                merged.distinct_subjects += profile.current_distinct_subjects()
                merged.distinct_objects += profile.current_distinct_objects()
                merged.build_triples += max(profile.build_triples, profile.triples)
        return merged

    @property
    def characteristic_sets(self) -> Dict[FrozenSet[Marker], CharacteristicSet]:
        """The characteristic-set summary (empty when never profiled)."""
        return self._characteristic_sets

    @property
    def type_triple_count(self) -> int:
        """``rdf:type`` triples as of the last profiling pass (plus deltas)."""
        return self._type_triple_count

    @property
    def instance_universe(self) -> int:
        """Number of distinct individuals (the subject/object value universe)."""
        return len(self.instances)

    def star_cardinality(
        self, markers: Sequence[Marker]
    ) -> Optional[Tuple[float, float]]:
        """Characteristic-set estimate for a subject star query.

        ``markers`` lists the star's constant edges.  Sums over every stored
        characteristic set containing all of them: returns ``(subjects,
        rows)`` — how many subjects exhibit the star and how many result rows
        the star joins produce (multiplicities multiplied per subject).

        Returns ``None`` when no summary is available **or when no stored
        set contains the combination**: the summary is exact as of the last
        build and is *not* maintained on delta writes, so an absent
        combination may simply be live-born — a confident zero here would
        pin the planner to a free-looking estimate for data that exists.
        The caller falls back to independence chaining instead.
        """
        if not self._characteristic_sets:
            return None
        wanted = frozenset(markers)
        subjects = 0.0
        rows = 0.0
        for signature, entry in self._characteristic_sets.items():
            if not wanted <= signature:
                continue
            subjects += entry.count
            per_subject = 1.0
            for marker in wanted:
                per_subject *= entry.triples.get(marker, entry.count) / entry.count
            rows += entry.count * per_subject
        if subjects <= 0:
            return None
        return subjects, rows

    # ------------------------------------------------------------------ #
    # incremental maintenance (delta writes; see repro.store.updatable)
    # ------------------------------------------------------------------ #

    def note_property_write(self, property_id: int, delta: int) -> None:
        """Adjust the triple count of ``property_id`` by ``delta`` (±1)."""
        profile = self._property_profiles.get(property_id)
        if profile is None:
            profile = PropertyProfile()
            self._property_profiles[property_id] = profile
        profile.triples = max(0, profile.triples + delta)
        self.version += 1
        self._unbound_mass_cache = None

    def note_type_write(self, delta: int) -> None:
        """Adjust the ``rdf:type`` triple count by ``delta`` (±1)."""
        self._type_triple_count = max(0, self._type_triple_count + delta)
        self.version += 1
        self._unbound_mass_cache = None

    # ------------------------------------------------------------------ #
    # cardinality estimates (dictionary-time; paper Section 5.1)
    # ------------------------------------------------------------------ #

    def concept_cardinality(self, concept: URI, with_hierarchy: bool = True) -> int:
        """Estimated number of ``rdf:type`` triples for ``concept``.

        With ``with_hierarchy`` (the paper's approach) the estimate sums the
        counts over the concept's whole sub-hierarchy.
        """
        if concept not in self.concepts:
            return 0
        if with_hierarchy:
            return self.concepts.hierarchical_occurrences(concept)
        return self.concepts.occurrences_of_term(concept)

    def property_cardinality(self, prop: URI, with_hierarchy: bool = True) -> int:
        """Estimated number of triples whose predicate is ``prop``."""
        if prop not in self.properties:
            return 0
        if with_hierarchy:
            return self.properties.hierarchical_occurrences(prop)
        return self.properties.occurrences_of_term(prop)

    def instance_cardinality(self, term: Term) -> int:
        """Estimated number of triples mentioning the individual ``term``."""
        return self.instances.occurrences_of_term(term)

    def total_triple_mass(self) -> int:
        """Total property + concept occurrence mass (fully-unbound fallback).

        The sum walks every dictionary entry, so it is computed once and
        cached against :attr:`version` — delta writes (which bump the
        version through the ``note_*`` hooks) invalidate it.
        """
        cached = self._unbound_mass_cache
        if cached is not None and cached[0] == self.version:
            return cached[1]
        total = sum(self.properties.occurrences(i) for i in self.properties.identifiers())
        total += sum(self.concepts.occurrences(i) for i in self.concepts.identifiers())
        self._unbound_mass_cache = (self.version, total)
        return total

    def triple_pattern_cardinality(
        self,
        subject: Optional[Term],
        predicate: Optional[URI],
        obj: Optional[Term],
        is_rdf_type: bool,
    ) -> int:
        """Estimate for a triple pattern where ``None`` marks a variable slot.

        The estimate is the minimum over the selectivity of every constant
        slot — a standard independence-style bound that only uses statistics
        the dictionaries actually store.  (The cost-based planner's
        :mod:`repro.query.cardinality` estimator refines this with the join
        profiles; this bound remains the heuristic planner's statistic.)
        """
        estimates = []
        if is_rdf_type and isinstance(obj, URI):
            estimates.append(self.concept_cardinality(obj))
        elif obj is not None:
            estimates.append(self.instance_cardinality(obj))
        if predicate is not None and not is_rdf_type:
            estimates.append(self.property_cardinality(predicate))
        if subject is not None:
            estimates.append(self.instance_cardinality(subject))
        if not estimates:
            # Fully unbound pattern: fall back to the (cached) total mass.
            return self.total_triple_mass()
        return min(estimates)

    def __repr__(self) -> str:
        return (
            f"DictionaryStatistics(concepts={len(self.concepts)}, "
            f"properties={len(self.properties)}, instances={len(self.instances)}, "
            f"profiles={len(self._property_profiles)}, "
            f"characteristic_sets={len(self._characteristic_sets)})"
        )

    # convenience used by tests and the estimator ------------------------- #

    def profiled_property_ids(self) -> List[int]:
        """Identifiers carrying a join profile (sorted)."""
        return sorted(self._property_profiles)
