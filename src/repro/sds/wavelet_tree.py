"""Balanced wavelet tree over an integer alphabet.

The wavelet tree (WT) is the workhorse of SuccinctEdge's PSO layout: one WT
per layer (property, subject, object) stores the identifier sequence of that
layer and answers ``access`` / ``rank`` / ``select`` in O(log sigma), plus the
``range_search`` primitive used by Algorithms 3 and 4 of the paper and the
symbol-interval variant used by LiteMat reasoning (Section 5.2).

The tree is balanced over the symbol interval ``[0, sigma)``: each node holds
a :class:`~repro.sds.bitvector.BitVector` whose ``i``-th bit says whether the
``i``-th element of the node's subsequence belongs to the lower (0) or the
upper (1) half of the node's symbol interval.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.sds.bitvector import BitVector, BitVectorBuilder


class _Node:
    """Internal wavelet-tree node covering the symbol interval [lo, hi)."""

    __slots__ = ("lo", "hi", "bits", "left", "right")

    def __init__(self, lo: int, hi: int) -> None:
        self.lo = lo
        self.hi = hi
        self.bits: Optional[BitVector] = None
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None

    @property
    def mid(self) -> int:
        return (self.lo + self.hi) // 2

    @property
    def is_leaf(self) -> bool:
        return self.hi - self.lo <= 1


class WaveletTree:
    """Immutable wavelet tree over a sequence of non-negative integers.

    Parameters
    ----------
    sequence:
        The integer sequence to index.
    alphabet_size:
        Optional explicit alphabet size ``sigma``; symbols must fall in
        ``[0, sigma)``.  Defaults to ``max(sequence) + 1``.
    """

    def __init__(self, sequence: Sequence[int], alphabet_size: Optional[int] = None) -> None:
        data = list(sequence)
        for value in data:
            if value < 0:
                raise ValueError(f"wavelet tree symbols must be non-negative, got {value}")
        if alphabet_size is None:
            alphabet_size = (max(data) + 1) if data else 1
        if data and max(data) >= alphabet_size:
            raise ValueError(
                f"symbol {max(data)} outside declared alphabet [0, {alphabet_size})"
            )
        self._length = len(data)
        self._sigma = max(1, alphabet_size)
        self._root = self._build(data, 0, self._sigma)
        self._symbol_counts: Dict[int, int] = {}
        for value in data:
            self._symbol_counts[value] = self._symbol_counts.get(value, 0) + 1

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def _build(self, data: List[int], lo: int, hi: int) -> _Node:
        node = _Node(lo, hi)
        if hi - lo <= 1 or not data:
            # Leaves store no bitmap: the symbol is implied by the interval.
            if hi - lo > 1:
                node.left = self._build([], lo, node.mid)
                node.right = self._build([], node.mid, hi)
            return node
        mid = node.mid
        builder = BitVectorBuilder()
        left_data: List[int] = []
        right_data: List[int] = []
        for value in data:
            if value < mid:
                builder.append(0)
                left_data.append(value)
            else:
                builder.append(1)
                right_data.append(value)
        node.bits = builder.build()
        node.left = self._build(left_data, lo, mid)
        node.right = self._build(right_data, mid, hi)
        return node

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[int]:
        for i in range(self._length):
            yield self.access(i)

    def __repr__(self) -> str:
        return f"WaveletTree(len={self._length}, sigma={self._sigma})"

    @property
    def alphabet_size(self) -> int:
        """Size of the symbol alphabet ``sigma``."""
        return self._sigma

    def to_list(self) -> List[int]:
        """Materialise the sequence (testing helper)."""
        return list(self)

    # ------------------------------------------------------------------ #
    # SDS operations
    # ------------------------------------------------------------------ #

    def access(self, index: int) -> int:
        """Return the symbol stored at position ``index``."""
        if not 0 <= index < self._length:
            raise IndexError(f"index {index} out of range [0, {self._length})")
        node = self._root
        while not node.is_leaf:
            assert node.bits is not None
            bit = node.bits.access(index)
            if bit == 0:
                index = node.bits.rank(index, 0)
                node = node.left  # type: ignore[assignment]
            else:
                index = node.bits.rank(index, 1)
                node = node.right  # type: ignore[assignment]
        return node.lo

    __getitem__ = access

    def rank(self, index: int, symbol: int) -> int:
        """Number of occurrences of ``symbol`` in positions ``[0, index)``."""
        if not 0 <= index <= self._length:
            raise IndexError(f"rank index {index} out of range [0, {self._length}]")
        if not 0 <= symbol < self._sigma:
            return 0
        node = self._root
        while not node.is_leaf:
            if node.bits is None:
                # Empty internal node: the subtree holds no elements.
                return 0
            if symbol < node.mid:
                index = node.bits.rank(index, 0)
                node = node.left  # type: ignore[assignment]
            else:
                index = node.bits.rank(index, 1)
                node = node.right  # type: ignore[assignment]
        return index

    def count(self, symbol: int) -> int:
        """Total number of occurrences of ``symbol`` in the sequence."""
        return self._symbol_counts.get(symbol, 0)

    def select(self, occurrence: int, symbol: int) -> int:
        """Index of the ``occurrence``-th (1-based) occurrence of ``symbol``."""
        if occurrence <= 0:
            raise ValueError("select occurrence is 1-based and must be positive")
        if self.count(symbol) < occurrence:
            raise ValueError(
                f"symbol {symbol} occurs {self.count(symbol)} times, "
                f"cannot select occurrence {occurrence}"
            )
        path: List[Tuple[_Node, int]] = []
        node = self._root
        while not node.is_leaf:
            bit = 0 if symbol < node.mid else 1
            path.append((node, bit))
            node = node.left if bit == 0 else node.right  # type: ignore[assignment]
        position = occurrence - 1
        for parent, bit in reversed(path):
            assert parent.bits is not None
            position = parent.bits.select(position + 1, bit)
        return position

    def range_search(self, begin: int, end: int, symbol: int) -> List[int]:
        """All positions of ``symbol`` inside ``[begin, end)``, in order.

        This is the paper's ``rangeSearch(a, b, c)`` primitive: it prunes the
        search using rank on the boundaries instead of scanning the interval.
        """
        begin = max(0, begin)
        end = min(self._length, end)
        if begin >= end:
            return []
        first = self.rank(begin, symbol)
        last = self.rank(end, symbol)
        return [self.select(occurrence, symbol) for occurrence in range(first + 1, last + 1)]

    def count_in_range(self, begin: int, end: int, symbol: int) -> int:
        """Number of occurrences of ``symbol`` inside ``[begin, end)``."""
        begin = max(0, begin)
        end = min(self._length, end)
        if begin >= end:
            return 0
        return self.rank(end, symbol) - self.rank(begin, symbol)

    def range_search_symbols(
        self, begin: int, end: int, symbol_lo: int, symbol_hi: int
    ) -> List[Tuple[int, int]]:
        """Positions in ``[begin, end)`` whose symbol lies in ``[symbol_lo, symbol_hi)``.

        Returns ``(position, symbol)`` pairs sorted by position.  This is the
        wavelet-tree range-report used to evaluate LiteMat identifier
        intervals (reasoning over concept/property hierarchies) without
        enumerating every individual sub-concept.
        """
        begin = max(0, begin)
        end = min(self._length, end)
        symbol_lo = max(0, symbol_lo)
        symbol_hi = min(self._sigma, symbol_hi)
        if begin >= end or symbol_lo >= symbol_hi:
            return []
        results: List[Tuple[int, int]] = []
        self._collect_range(self._root, begin, end, symbol_lo, symbol_hi, results)
        results.sort()
        return results

    def _collect_range(
        self,
        node: _Node,
        begin: int,
        end: int,
        symbol_lo: int,
        symbol_hi: int,
        results: List[Tuple[int, int]],
    ) -> None:
        if begin >= end:
            return
        if symbol_hi <= node.lo or symbol_lo >= node.hi:
            return
        if node.is_leaf:
            # Every position in [begin, end) at this leaf holds symbol node.lo;
            # map them back to positions in the root sequence.
            symbol = node.lo
            for occurrence in range(begin + 1, end + 1):
                results.append((self.select(occurrence, symbol), symbol))
            return
        assert node.bits is not None
        left_begin = node.bits.rank(begin, 0)
        left_end = node.bits.rank(end, 0)
        right_begin = node.bits.rank(begin, 1)
        right_end = node.bits.rank(end, 1)
        self._collect_range(node.left, left_begin, left_end, symbol_lo, symbol_hi, results)  # type: ignore[arg-type]
        self._collect_range(node.right, right_begin, right_end, symbol_lo, symbol_hi, results)  # type: ignore[arg-type]

    def count_symbols_in_range(
        self, begin: int, end: int, symbol_lo: int, symbol_hi: int
    ) -> int:
        """Count positions in ``[begin, end)`` with symbol in ``[symbol_lo, symbol_hi)``."""
        begin = max(0, begin)
        end = min(self._length, end)
        symbol_lo = max(0, symbol_lo)
        symbol_hi = min(self._sigma, symbol_hi)
        if begin >= end or symbol_lo >= symbol_hi:
            return 0
        return self._count_range(self._root, begin, end, symbol_lo, symbol_hi)

    def _count_range(
        self, node: _Node, begin: int, end: int, symbol_lo: int, symbol_hi: int
    ) -> int:
        if begin >= end:
            return 0
        if symbol_hi <= node.lo or symbol_lo >= node.hi:
            return 0
        if symbol_lo <= node.lo and node.hi <= symbol_hi:
            return end - begin
        assert node.bits is not None
        left = self._count_range(
            node.left, node.bits.rank(begin, 0), node.bits.rank(end, 0), symbol_lo, symbol_hi  # type: ignore[arg-type]
        )
        right = self._count_range(
            node.right, node.bits.rank(begin, 1), node.bits.rank(end, 1), symbol_lo, symbol_hi  # type: ignore[arg-type]
        )
        return left + right

    # ------------------------------------------------------------------ #
    # storage accounting
    # ------------------------------------------------------------------ #

    def size_in_bytes(self) -> int:
        """Approximate storage footprint of every node bitmap."""
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.bits is not None:
                total += node.bits.size_in_bytes()
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        return total
