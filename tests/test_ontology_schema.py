"""Tests for RDFS schema extraction and ρdf materialisation."""

from __future__ import annotations

from repro.ontology.rhodf import (
    apply_domain_range,
    entailed_types,
    materialize_rhodf,
    saturate_properties,
    saturate_types,
)
from repro.ontology.schema import OntologySchema
from repro.rdf.graph import Graph
from repro.rdf.namespaces import Namespace, OWL_THING, RDF, RDFS
from repro.rdf.terms import Literal, Triple

EX = Namespace("http://example.org/")


def build_schema() -> OntologySchema:
    schema = OntologySchema()
    schema.add_subclass(EX.Student, EX.Person)
    schema.add_subclass(EX.GraduateStudent, EX.Student)
    schema.add_subclass(EX.UndergraduateStudent, EX.Student)
    schema.add_subclass(EX.Professor, EX.Person)
    schema.add_subproperty(EX.worksFor, EX.memberOf)
    schema.add_subproperty(EX.headOf, EX.worksFor)
    schema.add_domain(EX.worksFor, EX.Person)
    schema.add_range(EX.worksFor, EX.Organization)
    return schema


class TestSchemaConstruction:
    def test_from_graph_extracts_axioms(self):
        graph = Graph(
            [
                Triple(EX.Student, RDFS.subClassOf, EX.Person),
                Triple(EX.worksFor, RDFS.subPropertyOf, EX.memberOf),
                Triple(EX.worksFor, RDFS.domain, EX.Person),
                Triple(EX.worksFor, RDFS.range, EX.Organization),
            ]
        )
        schema = OntologySchema.from_graph(graph)
        assert schema.concept_parent(EX.Student) == EX.Person
        assert schema.property_parent(EX.worksFor) == EX.memberOf
        assert schema.domain_of(EX.worksFor) == EX.Person
        assert schema.range_of(EX.worksFor) == EX.Organization

    def test_owl_thing_parent_treated_as_root(self):
        graph = Graph([Triple(EX.Person, RDFS.subClassOf, OWL_THING)])
        schema = OntologySchema.from_graph(graph)
        assert schema.concept_parent(EX.Person) is None
        assert EX.Person in schema.concept_roots()

    def test_non_uri_axioms_ignored(self):
        graph = Graph([Triple(EX.Person, RDFS.subClassOf, Literal("nope"))])
        schema = OntologySchema.from_graph(graph)
        assert EX.Person not in schema.concepts

    def test_multiple_inheritance_keeps_first_parent(self):
        schema = OntologySchema()
        schema.add_subclass(EX.TA, EX.Student)
        schema.add_subclass(EX.TA, EX.Employee)
        assert schema.concept_parent(EX.TA) == EX.Student

    def test_repr(self):
        assert "OntologySchema" in repr(build_schema())


class TestHierarchyNavigation:
    def test_children_and_parents(self):
        schema = build_schema()
        assert set(schema.concept_children(EX.Student)) == {EX.GraduateStudent, EX.UndergraduateStudent}
        assert schema.concept_parent(EX.GraduateStudent) == EX.Student
        assert schema.property_children(EX.worksFor) == [EX.headOf]

    def test_roots(self):
        schema = build_schema()
        assert EX.Person in schema.concept_roots()
        assert EX.memberOf in schema.property_roots()

    def test_subconcepts_transitive(self):
        schema = build_schema()
        descendants = set(schema.subconcepts(EX.Person))
        assert descendants == {EX.Person, EX.Student, EX.GraduateStudent, EX.UndergraduateStudent, EX.Professor}
        assert schema.subconcepts(EX.Person, include_self=False)[0] != EX.Person

    def test_superconcepts_transitive(self):
        schema = build_schema()
        assert schema.superconcepts(EX.GraduateStudent) == [EX.Student, EX.Person]
        assert schema.superconcepts(EX.GraduateStudent, include_self=True)[0] == EX.GraduateStudent

    def test_subproperties_and_superproperties(self):
        schema = build_schema()
        assert set(schema.subproperties(EX.memberOf)) == {EX.memberOf, EX.worksFor, EX.headOf}
        assert schema.superproperties(EX.headOf) == [EX.worksFor, EX.memberOf]

    def test_is_subconcept_and_subproperty(self):
        schema = build_schema()
        assert schema.is_subconcept_of(EX.GraduateStudent, EX.Person)
        assert not schema.is_subconcept_of(EX.Professor, EX.Student)
        assert schema.is_subproperty_of(EX.headOf, EX.memberOf)
        assert not schema.is_subproperty_of(EX.memberOf, EX.headOf)


class TestMaterialisation:
    def build_data(self) -> Graph:
        return Graph(
            [
                Triple(EX.alice, RDF.type, EX.GraduateStudent),
                Triple(EX.bob, EX.headOf, EX.dept),
            ]
        )

    def test_saturate_types_adds_ancestors(self):
        closed = saturate_types(self.build_data(), build_schema())
        assert Triple(EX.alice, RDF.type, EX.Student) in closed
        assert Triple(EX.alice, RDF.type, EX.Person) in closed

    def test_saturate_properties_adds_ancestors(self):
        closed = saturate_properties(self.build_data(), build_schema())
        assert Triple(EX.bob, EX.worksFor, EX.dept) in closed
        assert Triple(EX.bob, EX.memberOf, EX.dept) in closed

    def test_domain_range_adds_types(self):
        closed = apply_domain_range(
            Graph([Triple(EX.bob, EX.worksFor, EX.dept)]), build_schema()
        )
        assert Triple(EX.bob, RDF.type, EX.Person) in closed
        assert Triple(EX.dept, RDF.type, EX.Organization) in closed

    def test_full_rhodf_closure_reaches_fixpoint(self):
        closed = materialize_rhodf(self.build_data(), build_schema())
        # headOf -> worksFor -> memberOf, domain(worksFor) -> Person.
        assert Triple(EX.bob, EX.memberOf, EX.dept) in closed
        assert Triple(EX.bob, RDF.type, EX.Person) in closed
        # Idempotent: closing again adds nothing.
        assert len(materialize_rhodf(closed, build_schema())) == len(closed)

    def test_entailed_types(self):
        types = entailed_types([EX.GraduateStudent], build_schema())
        assert types == [EX.GraduateStudent, EX.Student, EX.Person]
