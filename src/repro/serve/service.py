"""QueryService: the transport-independent core of the query server.

One :class:`QueryService` wraps one store (monolithic, updatable or sharded)
and gives every transport — the HTTP server of :mod:`repro.serve.server`,
the edge :class:`~repro.edge.server.AdministrationServer`, tests, the
benchmark — the same execution path:

admission control → cache lookup → streaming execution under a deadline →
cache fill → metrics.

* **Admission**: ``worker_slots`` bounds how many queries execute
  concurrently; ``max_pending`` bounds how many more may wait for a slot.
  Requests beyond both are rejected immediately (:class:`QueryRejected`),
  which is what keeps tail latency bounded under overload.
* **Timeouts** are cooperative and cover the whole stay in the service:
  the deadline clock starts before the wait for a worker slot (a request
  cannot sit behind a deep queue and still run afterwards), and during
  execution the streaming pipeline is consumed row by row with the deadline
  checked between rows, so a timed-out query stops probing the SDS layouts
  instead of running to completion.  A single blocking operator step (e.g.
  one large aggregation input) is not interrupted mid-step.
* **Caching**: results are materialized once and cached under
  ``(query, reasoning, snapshot_epoch)``.  Any write bumps the store's
  ``data_epoch`` (on sharded stores: any shard's), so later lookups miss;
  see :mod:`repro.serve.cache`.  Two further LRUs serve the planning path:
  a **parse cache** keyed on the query text alone (ASTs are immutable and
  epoch-independent, so repeated queries skip the parser even across
  writes) and the **plan cache**, keyed on ``(query text, reasoning,
  data_epoch)``, holding the compiled
  :class:`~repro.query.plan.PipelinePlan` served by
  :meth:`QueryService.explain` — writes move the epoch (and with it the
  statistics the planner read), re-keying the entry and forcing a re-plan.
  Execution itself plans through the engines' own statistics-version-keyed
  plan caches.  ``explain`` runs under the same admission control as
  ``execute`` (planning probes the SDS directories, so it is real work the
  worker pool must bound).  The HTTP transport exposes it as ``explain=1``
  on ``/sparql``.
"""

from __future__ import annotations

import shutil
import tempfile
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.query.engine import QueryEngine
from repro.serve.cache import ResultCache
from repro.serve.metrics import ServingMetrics
from repro.sparql.ast import AskQuery, SelectQuery
from repro.sparql.bindings import AskResult, ResultSet
from repro.sparql.parser import parse_query
from repro.store.succinct_edge import SuccinctEdge

#: How many rows are pulled between two deadline checks.
_DEADLINE_CHECK_EVERY = 64


class QueryRejected(RuntimeError):
    """Raised when admission control turns a request away (overload)."""


class QueryTimeout(RuntimeError):
    """Raised when an admitted query exceeds its deadline."""


@dataclass(frozen=True)
class QueryOutcome:
    """One served query: the result plus serving metadata."""

    result: Union[ResultSet, AskResult]
    cached: bool
    elapsed_ms: float
    epoch: Tuple[int, int]

    @property
    def rows(self) -> int:
        """Row count (1/0 for ASK), used by transports for accounting."""
        if isinstance(self.result, AskResult):
            return 1 if self.result.boolean else 0
        return len(self.result)


class QueryService:
    """Concurrent query execution over one store, with cache and admission.

    Parameters
    ----------
    store:
        The store to serve.  Writes may happen concurrently (updatable or
        sharded-updatable stores); the cache keys on the snapshot epoch.
    reasoning:
        Default reasoning mode for queries that do not override it.
    parallel:
        Use :class:`~repro.query.parallel.ParallelQueryEngine` (per-shard
        scatter-gather) instead of the sequential engine.  Shorthand for
        ``backend="threads"``; ignored when ``backend`` is given.
    backend:
        Execution backend: ``"sequential"``, ``"threads"``, ``"process"``
        (a :class:`~repro.query.multiproc.ProcessPoolQueryEngine` over one
        shared worker-process pool) or ``"auto"`` (resolved by
        :func:`~repro.query.parallel.select_backend`).  ``None`` derives it
        from ``parallel``.
    process_workers:
        Worker-process count for the ``process`` backend (``None``: the
        pool's own default).
    mp_context:
        Multiprocessing start method for the ``process`` backend
        (``"fork"``/``"spawn"``; ``None``: fork where available).
    task_timeout_s:
        Per-task timeout for the ``process`` backend — a worker task
        exceeding it fails the query cleanly and restarts the pool, so a
        deadlocked worker can never hang the service.
    worker_slots:
        Maximum queries executing concurrently (the bounded worker pool).
    max_pending:
        Maximum queries waiting for a slot before rejections start.
    cache_capacity:
        LRU entries kept in the *result* cache; ``0`` disables it.
    plan_cache_capacity:
        LRU entries kept in the *parse* cache (ASTs, keyed on query text)
        and the *plan* cache (compiled plans for ``explain``, keyed on
        query text, reasoning and data epoch); ``0`` disables both.
    default_timeout_s:
        Deadline applied when a call does not pass its own.
    """

    def __init__(
        self,
        store: SuccinctEdge,
        reasoning: bool = True,
        parallel: bool = False,
        backend: Optional[str] = None,
        process_workers: Optional[int] = None,
        mp_context: Optional[str] = None,
        task_timeout_s: Optional[float] = None,
        worker_slots: int = 4,
        max_pending: int = 64,
        cache_capacity: int = 256,
        plan_cache_capacity: int = 128,
        default_timeout_s: Optional[float] = None,
    ) -> None:
        if worker_slots < 1:
            raise ValueError("worker_slots must be positive")
        self.store = store
        self.reasoning = reasoning
        if backend is None:
            backend = "threads" if parallel else "sequential"
        from repro.query.parallel import select_backend

        self.backend = select_backend(backend)
        self.parallel = self.backend != "sequential"
        self.process_workers = process_workers
        self.mp_context = mp_context
        self.task_timeout_s = task_timeout_s
        self._process_pool = None
        self._process_workspace: Optional[str] = None
        self.worker_slots = worker_slots
        self.max_pending = max_pending
        self.default_timeout_s = default_timeout_s
        self.cache: Optional[ResultCache] = (
            ResultCache(cache_capacity) if cache_capacity else None
        )
        self.plan_cache: Optional[ResultCache] = (
            ResultCache(plan_cache_capacity) if plan_cache_capacity else None
        )
        self._parse_cache: Optional[ResultCache] = (
            ResultCache(plan_cache_capacity) if plan_cache_capacity else None
        )
        self.metrics = ServingMetrics()
        self._slots = threading.Semaphore(worker_slots)
        self._pending = 0
        self._pending_lock = threading.Lock()
        self._engines = {}
        self._engine_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # engines (one per reasoning mode, plans cached across requests)
    # ------------------------------------------------------------------ #

    def _engine(self, reasoning: bool) -> QueryEngine:
        engine = self._engines.get(reasoning)
        if engine is None:
            with self._engine_lock:
                engine = self._engines.get(reasoning)
                if engine is None:
                    if self.backend == "process":
                        engine = self._process_engine(reasoning)
                    elif self.parallel:
                        from repro.query.parallel import ParallelQueryEngine

                        engine = ParallelQueryEngine(self.store, reasoning=reasoning)
                    else:
                        engine = QueryEngine(self.store, reasoning=reasoning)
                    self._engines[reasoning] = engine
        return engine

    def _process_engine(self, reasoning: bool) -> QueryEngine:
        """A process-backed engine over the service-wide shared worker pool.

        Both reasoning modes share one :class:`~repro.query.multiproc.
        WorkerPool` (tasks carry their own attach spec, so one pool serves
        any number of engines) and one workspace directory for spilled
        images and delta files.  Called under ``_engine_lock``.
        """
        from repro.query.multiproc import ProcessPoolQueryEngine, WorkerPool

        if self._process_pool is None:
            self._process_pool = WorkerPool(
                max_workers=self.process_workers,
                mp_context=self.mp_context,
                task_timeout=self.task_timeout_s,
            )
        if self._process_workspace is None:
            self._process_workspace = tempfile.mkdtemp(prefix="succinctedge-serve-")
        return ProcessPoolQueryEngine(
            self.store,
            reasoning=reasoning,
            pool=self._process_pool,
            workspace=self._process_workspace,
        )

    def close(self) -> None:
        """Release engine resources (thread pools, worker processes)."""
        with self._engine_lock:
            engines, self._engines = dict(self._engines), {}
            pool, self._process_pool = self._process_pool, None
            workspace, self._process_workspace = self._process_workspace, None
        for engine in engines.values():
            close = getattr(engine, "close", None)
            if close is not None:
                close()
        if pool is not None:
            pool.close()
        if workspace is not None:
            shutil.rmtree(workspace, ignore_errors=True)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def execute(
        self,
        query: str,
        reasoning: Optional[bool] = None,
        timeout_s: Optional[float] = None,
        deliver=None,
    ) -> QueryOutcome:
        """Serve one SPARQL query through admission, cache and deadline.

        ``deliver``, when given, is called with the outcome *while the worker
        slot is still held*: response serialization and transmission are part
        of the worker's unit of work, exactly as in a pre-threaded server
        whose worker writes the response socket itself.  (This is what makes
        ``worker_slots`` the true concurrency bound — and what a worker pool
        overlaps when clients sit behind a slow link.)

        Raises :class:`QueryRejected` under overload, :class:`QueryTimeout`
        past the deadline, and propagates
        :class:`~repro.sparql.parser.SparqlParseError` for invalid queries.
        """
        use_reasoning = self.reasoning if reasoning is None else reasoning
        timeout = self.default_timeout_s if timeout_s is None else timeout_s
        # The deadline clock covers the whole stay in the service — queue
        # wait included — so a timed-out request cannot sit behind a deep
        # queue and still run its full query afterwards.
        started = time.perf_counter()
        with self._admission(timeout):
            outcome = self._execute_admitted(query, use_reasoning, started, timeout)
            if deliver is not None:
                deliver(outcome)
            return outcome

    @contextmanager
    def _admission(self, timeout: Optional[float]):
        """Admission control shared by :meth:`execute` and :meth:`explain`.

        Enforces the pending bound (fast :class:`QueryRejected` under
        overload) and holds one worker slot for the duration of the body.
        """
        with self._pending_lock:
            if self._pending >= self.max_pending + self.worker_slots:
                self.metrics.record_rejection()
                raise QueryRejected(
                    f"server saturated: {self.worker_slots} workers busy and "
                    f"{self.max_pending} requests already queued"
                )
            self._pending += 1
        try:
            if timeout is None:
                self._slots.acquire()
            elif not self._slots.acquire(timeout=timeout):
                self.metrics.record_queue_timeout()
                raise QueryTimeout(
                    f"no worker slot freed within the {timeout:.3f}s deadline"
                )
            try:
                yield
            finally:
                self._slots.release()
        finally:
            with self._pending_lock:
                self._pending -= 1

    def _execute_admitted(
        self, query: str, reasoning: bool, started: float, timeout: Optional[float]
    ) -> QueryOutcome:
        self.metrics.record_admission()
        # The epoch is sampled at admission; one more write arriving during
        # execution keys the *next* request differently, so entries at the
        # current epoch are never stale.
        epoch = self.store.snapshot_epoch
        key = (query, reasoning, epoch)
        if self.cache is not None:
            hit, value = self.cache.get(key)
            if hit:
                elapsed_ms = (time.perf_counter() - started) * 1000.0
                self.metrics.record_completion(elapsed_ms, cached=True)
                return QueryOutcome(
                    result=value, cached=True, elapsed_ms=elapsed_ms, epoch=epoch
                )
        try:
            result = self._run(query, reasoning, started, timeout)
        except QueryTimeout:
            self.metrics.record_timeout()
            raise
        except Exception:
            self.metrics.record_error()
            raise
        if self.cache is not None:
            self.cache.put(key, result)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        self.metrics.record_completion(elapsed_ms, cached=False)
        return QueryOutcome(result=result, cached=False, elapsed_ms=elapsed_ms, epoch=epoch)

    # ------------------------------------------------------------------ #
    # parse cache, plan cache + explain
    # ------------------------------------------------------------------ #

    def _parsed(self, query: str):
        """The (cached) parsed AST of ``query``.

        Keyed on the text alone — ASTs are immutable and independent of
        both reasoning mode and data epoch, so parse work survives writes.
        Parse errors propagate and are never cached.
        """
        if self._parse_cache is not None:
            hit, parsed = self._parse_cache.get(query)
            if hit:
                return parsed
        parsed = parse_query(query)
        if self._parse_cache is not None:
            self._parse_cache.put(query, parsed)
        return parsed

    def explain(
        self,
        query: str,
        reasoning: Optional[bool] = None,
        timeout_s: Optional[float] = None,
    ) -> dict:
        """The execution plan of ``query`` without running it.

        Returns the rendered plan (the exact IR the engine would
        interpret), the planner that produced the BGP order and the current
        epoch, served from the epoch-keyed plan cache.  Planning probes the
        SDS structures, so the call runs under the same admission control
        as :meth:`execute` — it can raise :class:`QueryRejected` and
        :class:`QueryTimeout` besides propagating
        :class:`~repro.sparql.parser.SparqlParseError`.
        """
        use_reasoning = self.reasoning if reasoning is None else reasoning
        timeout = self.default_timeout_s if timeout_s is None else timeout_s
        key = (query, use_reasoning, self.store.data_epoch)
        if self.plan_cache is not None:
            hit, plan = self.plan_cache.get(key)
            if hit:
                return self._explain_document(plan)
        with self._admission(timeout):
            plan = self._engine(use_reasoning).pipeline_plan(self._parsed(query))
        if self.plan_cache is not None:
            self.plan_cache.put(key, plan)
        return self._explain_document(plan)

    def _explain_document(self, plan) -> dict:
        return {
            "plan": plan.explain(),
            "planner": plan.where.method,
            "epoch": list(self.store.snapshot_epoch),
        }

    def _run(
        self, query: str, reasoning: bool, started: float, timeout: Optional[float]
    ) -> Union[ResultSet, AskResult]:
        engine = self._engine(reasoning)
        # Engines backed by worker processes publish which failures are safe
        # to retry (a crashed worker fails the whole attempt before any row
        # is surfaced — results materialize, so a retry can never duplicate
        # or drop rows).  The pool is healed between attempts.
        retryable = tuple(getattr(engine, "retryable_exceptions", ()))
        attempts = 2 if retryable else 1
        for attempt in range(attempts):
            try:
                return self._run_once(engine, query, reasoning, started, timeout)
            except retryable:  # an empty tuple here matches nothing
                if attempt + 1 >= attempts:
                    raise
                heal = getattr(engine, "heal", None)
                if heal is not None:
                    heal()
                self._check_deadline(started, timeout)
        raise AssertionError("unreachable")

    def _run_once(
        self,
        engine: QueryEngine,
        query: str,
        reasoning: bool,
        started: float,
        timeout: Optional[float],
    ) -> Union[ResultSet, AskResult]:
        parsed = self._parsed(query)
        if isinstance(parsed, AskQuery):
            # ASK stops at the first solution; a deadline check after the
            # fact covers the (rare) long empty probe.
            result: Union[ResultSet, AskResult] = engine.ask(parsed)
            self._check_deadline(started, timeout)
            return result
        assert isinstance(parsed, SelectQuery)
        names = parsed.projected_names()
        rows = []
        for row in engine.stream(parsed):
            rows.append(row)
            if len(rows) % _DEADLINE_CHECK_EVERY == 0:
                self._check_deadline(started, timeout)
        self._check_deadline(started, timeout)
        return ResultSet(names, rows)

    def _check_deadline(self, started: float, timeout: Optional[float]) -> None:
        if timeout is not None and (time.perf_counter() - started) > timeout:
            raise QueryTimeout(f"query exceeded its {timeout:.3f}s deadline")

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #

    def rotate_image(self, image_path: str, timeout_s: Optional[float] = None):
        """Compact the store into a fresh mmap image with a graceful drain.

        Acquires every worker slot (waiting for in-flight queries to finish
        and keeping new ones queued), runs
        ``store.compact(image_path=..., remap=True)`` so the live store
        swaps onto the new on-disk image, then tells every engine to
        re-ship attachment state so worker processes re-attach to the new
        generation on their next task.  Queries admitted after the rotation
        see the compacted store; none observe a half-swapped state.

        Raises :class:`QueryTimeout` if in-flight queries do not drain
        within ``timeout_s`` and :class:`ValueError` if the store cannot
        compact to an image.
        """
        compact = getattr(self.store, "compact", None)
        if compact is None:
            raise ValueError("store does not support compaction")
        deadline = None if timeout_s is None else time.perf_counter() + timeout_s
        acquired = 0
        try:
            for _ in range(self.worker_slots):
                if deadline is None:
                    self._slots.acquire()
                else:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0 or not self._slots.acquire(timeout=remaining):
                        raise QueryTimeout(
                            f"in-flight queries did not drain within {timeout_s:.3f}s"
                        )
                acquired += 1
            report = compact(image_path=str(image_path), remap=True)
            with self._engine_lock:
                engines = list(self._engines.values())
            for engine in engines:
                resync = getattr(engine, "resync", None)
                if resync is not None:
                    resync()
            return report
        finally:
            for _ in range(acquired):
                self._slots.release()

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #

    def stats(self) -> dict:
        """Serving metrics, cache counters and store epochs in one snapshot."""
        info = {
            "metrics": self.metrics.snapshot(),
            "cache": self.cache.info() if self.cache is not None else None,
            "plan_cache": self.plan_cache.info() if self.plan_cache is not None else None,
            "parse_cache": (
                self._parse_cache.info() if self._parse_cache is not None else None
            ),
            "store": {
                "triples": self.store.triple_count,
                "compaction_epoch": self.store.compaction_epoch,
                "data_epoch": self.store.data_epoch,
                "shards": getattr(self.store, "shard_count", 1),
            },
            "worker_slots": self.worker_slots,
            "max_pending": self.max_pending,
            "parallel": self.parallel,
            "backend": self.backend,
            "pool": self._process_pool.info() if self._process_pool is not None else None,
        }
        return info

    def __repr__(self) -> str:
        return (
            f"QueryService({self.worker_slots} workers, "
            f"cache={'off' if self.cache is None else self.cache.capacity}, "
            f"store={self.store!r})"
        )
