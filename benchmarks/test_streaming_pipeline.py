"""Streaming-pipeline benchmark: early termination vs full materialization.

Compares the streaming :class:`~repro.query.engine.QueryEngine` against the
seed :class:`~repro.query.materializing.MaterializingQueryEngine` on queries
where laziness pays: ``LIMIT``-only joins (the pipeline stops probing after
the requested rows), ``ORDER BY ... LIMIT k`` (bounded top-k instead of a
full sort) and ``ASK`` (stop at the first solution).  Both latency and SDS
kernel-call counts are reported — the kernel counters make the skipped work
directly visible, independent of machine speed.
"""

from __future__ import annotations

from repro.bench.harness import format_table, record_table
from repro.bench.measure import measure_best_of
from repro.query.engine import QueryEngine
from repro.query.materializing import MaterializingQueryEngine
from repro.store.succinct_edge import SuccinctEdge

_PREFIX = "PREFIX lubm: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"

#: Benchmark queries: identifier -> (description, SPARQL).
_QUERIES = {
    "limit-join": (
        "two-pattern join, LIMIT 10",
        _PREFIX + "SELECT ?x ?n WHERE { ?x lubm:worksFor ?d . ?x lubm:name ?n } LIMIT 10",
    ),
    "limit-star": (
        "type-anchored star, LIMIT 10",
        _PREFIX
        + "SELECT ?x ?n ?e WHERE { ?x a lubm:GraduateStudent . ?x lubm:name ?n . "
        "?x lubm:emailAddress ?e } LIMIT 10",
    ),
    "top-k": (
        "ORDER BY ?n LIMIT 10 (top-k vs full sort)",
        _PREFIX
        + "SELECT ?x ?n WHERE { ?x lubm:worksFor ?d . ?x lubm:name ?n } "
        "ORDER BY ?n LIMIT 10",
    ),
    "ask": (
        "ASK existence probe",
        _PREFIX + "ASK { ?x lubm:worksFor ?d . ?x lubm:name ?n }",
    ),
}


def test_streaming_early_termination(context, results_dir):
    """Streaming must answer LIMIT/ASK queries with fewer kernel calls."""
    store = SuccinctEdge.from_graph(context.lubm.graph, ontology=context.lubm.ontology)
    streaming = QueryEngine(store, reasoning=False)
    materializing = MaterializingQueryEngine(store, reasoning=False)

    latency_rows = {"streaming": [], "materializing": []}
    kernel_rows = {"streaming": [], "materializing": []}
    for identifier, (_description, sparql) in _QUERIES.items():
        streamed = measure_best_of(lambda q=sparql: streaming.execute(q))
        materialized = measure_best_of(lambda q=sparql: materializing.execute(q))
        # Identical answers (order included) are a precondition for the
        # comparison to mean anything.
        if identifier == "ask":
            assert bool(streamed.result) == bool(materialized.result)
        else:
            assert streamed.result.to_tuples() == materialized.result.to_tuples()
        latency_rows["streaming"].append(streamed.measured_ms)
        latency_rows["materializing"].append(materialized.measured_ms)
        kernel_rows["streaming"].append(streamed.kernel_calls)
        kernel_rows["materializing"].append(materialized.kernel_calls)
        if identifier == "top-k":
            # ORDER BY consumes its whole input either way — the top-k win
            # is the bounded O(n log k) selection replacing the full sort,
            # visible in latency, not in kernel calls.
            assert streamed.kernel_calls <= materialized.kernel_calls, identifier
        else:
            # The acceptance bar: early termination does strictly less SDS work.
            assert streamed.kernel_calls < materialized.kernel_calls, identifier

    columns = list(_QUERIES)
    table = "\n\n".join(
        [
            format_table(
                "Streaming pipeline: latency (LIMIT/top-k/ASK early termination)",
                columns,
                latency_rows,
                unit="ms, best of 3",
            ),
            format_table(
                "Streaming pipeline: SDS kernel calls per query",
                columns,
                kernel_rows,
            ),
        ]
    )
    record_table(results_dir, "streaming_early_termination", table)
