"""RDFType store: the dedicated layout for ``rdf:type`` triples.

``rdf:type`` triples typically represent a large share of real-world RDF
datasets, and the paper stores them apart from the SDS layout, in a red-black
tree, "in order to maintain the search complexity to O(log n) while being
fast when we insert rdf:type triples during database construction"
(Section 4).

Two trees provide the SO and OS access paths:

* the OS tree is keyed by ``(concept_id, subject_id)`` — enumerating every
  subject of a concept (or of a whole LiteMat concept interval) is one
  ordered range scan;
* the SO tree is keyed by ``(subject_id, concept_id)`` — enumerating the
  types of a subject is likewise one range scan.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

from repro.sds.rbtree import RedBlackTree

#: An encoded rdf:type triple ``(subject_id, concept_id)``.
EncodedTypeTriple = Tuple[int, int]


class RDFTypeStore:
    """Red-black-tree store of ``rdf:type`` triples with SO and OS access paths."""

    def __init__(self, triples: Iterable[EncodedTypeTriple] = ()) -> None:
        self._so = RedBlackTree()
        self._os = RedBlackTree()
        # Bulk path: dedup once up front so each triple costs two tree
        # insertions instead of two membership probes plus two insertions.
        unique = sorted(set(triples))
        for subject_id, concept_id in unique:
            self._so.insert((subject_id, concept_id), None)
            self._os.insert((concept_id, subject_id), None)
        self._count = len(unique)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_frozen(cls, so_tree, os_tree, count: int) -> "RDFTypeStore":
        """Assemble a store around pre-built (typically mapped) pair trees.

        The persistence-v4 constructor: ``so_tree`` / ``os_tree`` are
        :class:`~repro.sds.rbtree.FrozenPairTree` instances aliasing the
        sorted pair sections of a store image, so no tree is rebuilt and no
        pair is decoded.  The resulting store serves every read path; writes
        against it raise (live writes ride the delta overlay instead).
        """
        store = object.__new__(cls)
        store._so = so_tree
        store._os = os_tree
        store._count = count
        return store

    def insert(self, subject_id: int, concept_id: int) -> None:
        """Insert one ``rdf:type`` statement (duplicates are ignored)."""
        key_so = (subject_id, concept_id)
        if key_so in self._so:
            return
        self._so.insert(key_so, None)
        self._os.insert((concept_id, subject_id), None)
        self._count += 1

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:
        return f"RDFTypeStore({self._count} rdf:type triples)"

    def contains(self, subject_id: int, concept_id: int) -> bool:
        """Whether ``subject rdf:type concept`` is explicitly stored."""
        return (subject_id, concept_id) in self._so

    def subjects_of(self, concept_id: int) -> List[int]:
        """Subjects explicitly typed with ``concept_id``, ascending."""
        return [key[1] for key, _ in self._os.range_items((concept_id, -1), (concept_id + 1, -1))]

    def subjects_of_interval(self, concept_low: int, concept_high: int) -> List[int]:
        """Subjects typed with any concept in the LiteMat interval ``[low, high)``.

        This is how SuccinctEdge answers ``?x rdf:type C`` with reasoning: the
        interval covers ``C`` and every direct/indirect sub-concept, so one
        ordered range scan of the OS tree returns the complete answer set.
        The result is sorted and deduplicated (a subject can match several
        sub-concepts).
        """
        seen = set()
        results: List[int] = []
        for (concept_id, subject_id), _ in self._os.range_items(
            (concept_low, -1), (concept_high, -1)
        ):
            if subject_id not in seen:
                seen.add(subject_id)
                results.append(subject_id)
        results.sort()
        return results

    def concepts_of(self, subject_id: int) -> List[int]:
        """Concepts explicitly attached to ``subject_id``, ascending."""
        return [key[1] for key, _ in self._so.range_items((subject_id, -1), (subject_id + 1, -1))]

    def pairs_in_interval(self, concept_low: int, concept_high: int) -> Iterator[EncodedTypeTriple]:
        """All ``(subject_id, concept_id)`` pairs whose concept falls in ``[low, high)``.

        Unlike :meth:`subjects_of_interval` this yields every explicit pair
        (no dedup), in OS order — the primitive the delta overlay needs to
        apply per-pair tombstones before deduplicating.
        """
        for (concept_id, subject_id), _ in self._os.range_items(
            (concept_low, -1), (concept_high, -1)
        ):
            yield subject_id, concept_id

    def count_concept(self, concept_id: int) -> int:
        """Number of explicit ``rdf:type`` triples for ``concept_id``."""
        return sum(1 for _ in self._os.range_items((concept_id, -1), (concept_id + 1, -1)))

    def count_concept_interval(self, concept_low: int, concept_high: int) -> int:
        """Number of explicit typings whose concept falls in ``[low, high)``."""
        return sum(1 for _ in self._os.range_items((concept_low, -1), (concept_high, -1)))

    def iter_triples(self) -> Iterator[EncodedTypeTriple]:
        """All ``(subject_id, concept_id)`` pairs in SO order."""
        for (subject_id, concept_id), _ in self._so.items():
            yield subject_id, concept_id

    # ------------------------------------------------------------------ #
    # storage accounting
    # ------------------------------------------------------------------ #

    def size_in_bytes(self) -> int:
        """Approximate storage footprint of both trees."""
        return self._so.size_in_bytes() + self._os.size_in_bytes()
