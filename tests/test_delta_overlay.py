"""Unit tests for the delta overlay write path (store/delta.py + updatable.py).

The differential suite (`tests/test_live_updates_differential.py`) checks
result equivalence against from-scratch rebuilds at LUBM scale; here the
mechanics are exercised on small, hand-checkable graphs: visibility rules,
tombstone semantics, exact counts, overflow dictionaries, compaction and the
epoch accounting.
"""

from __future__ import annotations

import pytest

from repro.rdf.graph import Graph
from repro.rdf.namespaces import RDF, RDFS, Namespace
from repro.rdf.terms import Literal, Triple
from repro.store.delta import CompactionPolicy, MANUAL_COMPACTION
from repro.store.succinct_edge import SuccinctEdge
from repro.store.updatable import UpdatableSuccinctEdge

EX = Namespace("http://example.org/")


def build_graph() -> Graph:
    graph = Graph()
    triples = [
        (EX.alice, RDF.type, EX.Person),
        (EX.bob, RDF.type, EX.Person),
        (EX.alice, EX.knows, EX.bob),
        (EX.bob, EX.knows, EX.carol),
        (EX.alice, EX.name, Literal("Alice")),
        (EX.alice, EX.age, Literal(27)),
    ]
    for subject, predicate, obj in triples:
        graph.add(Triple(subject, predicate, obj))
    return graph


def build_ontology() -> Graph:
    ontology = Graph()
    ontology.add(Triple(EX.Student, RDFS.subClassOf, EX.Person))
    return ontology


@pytest.fixture()
def store() -> UpdatableSuccinctEdge:
    return UpdatableSuccinctEdge.from_graph(build_graph(), ontology=build_ontology())


class TestInsertVisibility:
    def test_insert_is_immediately_queryable(self, store):
        assert store.insert(Triple(EX.carol, EX.knows, EX.alice))
        result = store.query("SELECT ?w WHERE { <http://example.org/carol> <http://example.org/knows> ?w }")
        assert [str(row["w"]) for row in result] == [str(EX.alice)]

    def test_insert_is_visible_to_match(self, store):
        triple = Triple(EX.carol, EX.knows, EX.alice)
        assert list(store.match(EX.carol, EX.knows, None)) == []
        store.insert(triple)
        assert list(store.match(EX.carol, EX.knows, None)) == [triple]

    def test_duplicate_insert_is_noop(self, store):
        triple = Triple(EX.alice, EX.knows, EX.bob)  # already in the base
        before = store.snapshot_info()
        assert not store.insert(triple)
        assert store.snapshot_info() == before

    def test_insert_counts_are_exact(self, store):
        base = store.triple_count
        store.insert(Triple(EX.carol, EX.knows, EX.alice))
        store.insert(Triple(EX.carol, EX.name, Literal("Carol")))
        store.insert(Triple(EX.carol, RDF.type, EX.Person))
        assert store.triple_count == base + 3
        assert len(store.object_store) == 3
        assert len(store.datatype_store) == 3
        assert len(store.type_store) == 3

    def test_rdf_type_insert_with_literal_object_is_skipped(self, store):
        skipped = store.skipped_triples
        assert not store.insert(Triple(EX.carol, RDF.type, Literal("Person")))
        assert store.skipped_triples == skipped + 1

    def test_schema_axiom_insert_is_skipped(self, store):
        skipped = store.skipped_triples
        assert not store.insert(Triple(EX.Robot, RDFS.subClassOf, EX.Person))
        assert store.skipped_triples == skipped + 1

    def test_data_epoch_counts_applied_writes(self, store):
        assert store.snapshot_epoch == (0, 0)
        store.insert(Triple(EX.carol, EX.knows, EX.alice))
        store.insert(Triple(EX.alice, EX.knows, EX.bob))  # no-op
        store.delete(Triple(EX.carol, EX.knows, EX.alice))
        assert store.snapshot_epoch == (0, 2)


class TestTombstones:
    def test_delete_base_triple_records_tombstone(self, store):
        triple = Triple(EX.alice, EX.knows, EX.bob)
        assert store.delete(triple)
        assert store.snapshot_info()["delta_tombstones"] == 1
        assert list(store.match(EX.alice, EX.knows, None)) == []
        assert not store.delete(triple)  # already gone

    def test_delete_pending_insert_drops_it(self, store):
        triple = Triple(EX.carol, EX.knows, EX.alice)
        store.insert(triple)
        assert store.delete(triple)
        info = store.snapshot_info()
        assert info["delta_inserts"] == 0
        assert info["delta_tombstones"] == 0

    def test_delete_unknown_triple_is_noop(self, store):
        assert not store.delete(Triple(EX.zoe, EX.knows, EX.alice))
        assert not store.delete(Triple(EX.zoe, RDF.type, EX.Person))
        assert not store.delete(Triple(EX.zoe, EX.name, Literal("Zoe")))

    def test_reinsert_after_delete_restores_visibility(self, store):
        triple = Triple(EX.alice, EX.knows, EX.bob)
        store.delete(triple)
        assert store.insert(triple)
        assert store.snapshot_info()["delta_tombstones"] == 0
        assert list(store.match(EX.alice, EX.knows, None)) == [triple]

    def test_datatype_delete_and_literal_order(self, store):
        store.insert(Triple(EX.alice, EX.name, Literal("Alicia")))
        literals = [str(t.object) for t in store.match(EX.alice, EX.name, None)]
        assert literals == ["Alice", "Alicia"]  # base first, delta in insert order
        store.delete(Triple(EX.alice, EX.name, Literal("Alice")))
        literals = [str(t.object) for t in store.match(EX.alice, EX.name, None)]
        assert literals == ["Alicia"]

    def test_property_disappears_when_fully_tombstoned(self, store):
        store.delete(Triple(EX.alice, EX.age, Literal(27)))
        age_id = store.properties.locate(EX.age)
        assert not store.datatype_store.has_property(age_id)
        assert age_id not in store.datatype_store.properties
        assert store.datatype_store.count_triples_with_property(age_id) == 0

    def test_type_store_interval_counts_respect_tombstones(self, store):
        low, high = store.concepts.interval(EX.Person)
        before = store.type_store.count_concept_interval(low, high)
        store.delete(Triple(EX.alice, RDF.type, EX.Person))
        assert store.type_store.count_concept_interval(low, high) == before - 1
        subjects = store.type_store.subjects_of_interval(low, high)
        assert store.instances.locate(EX.alice) not in subjects


class TestOverflowDictionaries:
    def test_new_property_gets_overflow_identifier(self, store):
        store.insert(Triple(EX.alice, EX.likes, EX.carol))
        assert store.properties.is_overflow(EX.likes)
        identifier = store.properties.locate(EX.likes)
        low, high = store.properties.interval(EX.likes)
        assert (low, high) == (identifier, identifier + 1)
        # Overflow identifiers live strictly above the LiteMat space.
        assert identifier >= 1 << store.properties.encoding.total_length

    def test_new_concept_is_queryable_with_reasoning(self, store):
        store.insert(Triple(EX.r2d2, RDF.type, EX.Robot))
        assert store.concepts.is_overflow(EX.Robot)
        result = store.query("SELECT ?s WHERE { ?s a <http://example.org/Robot> }")
        assert [str(row["s"]) for row in result] == [str(EX.r2d2)]

    def test_reasoning_still_covers_encoded_hierarchy(self, store):
        # Student is declared in the ontology: a live insert of a Student
        # must surface through the Person interval.
        store.insert(Triple(EX.dora, RDF.type, EX.Student))
        result = store.query("SELECT ?s WHERE { ?s a <http://example.org/Person> }")
        assert str(EX.dora) in {str(row["s"]) for row in result}

    def test_compaction_merges_overflow_terms(self, store):
        store.insert(Triple(EX.alice, EX.likes, EX.carol))
        store.insert(Triple(EX.r2d2, RDF.type, EX.Robot))
        assert store.properties.overflow_count == 1
        assert store.concepts.overflow_count == 1
        report = store.compact()
        assert report.overflow_terms_merged == 2
        assert store.properties.overflow_count == 0
        assert store.properties.merged_overflow_count == 1
        # Identifiers and intervals survive the merge unchanged.
        identifier = store.properties.locate(EX.likes)
        assert store.properties.interval(EX.likes) == (identifier, identifier + 1)


class TestCompaction:
    def test_compact_folds_delta_and_preserves_results(self, store):
        store.insert(Triple(EX.carol, EX.knows, EX.alice))
        store.insert(Triple(EX.carol, EX.name, Literal("Carol")))
        store.delete(Triple(EX.alice, EX.knows, EX.bob))
        query = "SELECT ?s ?o WHERE { ?s <http://example.org/knows> ?o }"
        before = store.query(query).to_tuples()
        report = store.compact()
        assert report.operations_folded == 3
        assert store.delta_operation_count == 0
        assert store.base_triple_count == store.triple_count
        assert store.query(query).to_tuples() == before

    def test_compact_epoch_increments(self, store):
        store.insert(Triple(EX.carol, EX.knows, EX.alice))
        assert store.compaction_epoch == 0
        store.compact()
        assert store.compaction_epoch == 1
        store.compact()
        assert store.compaction_epoch == 2

    def test_maybe_compact_absolute_threshold(self):
        policy = CompactionPolicy(max_delta_operations=2, max_delta_ratio=None)
        store = UpdatableSuccinctEdge.from_graph(build_graph(), policy=policy)
        store.insert(Triple(EX.carol, EX.knows, EX.alice))
        assert not store.maybe_compact()
        store.insert(Triple(EX.carol, EX.knows, EX.bob))
        assert store.maybe_compact()
        assert store.delta_operation_count == 0

    def test_maybe_compact_ratio_threshold(self):
        policy = CompactionPolicy(
            max_delta_operations=None, max_delta_ratio=0.5, min_delta_operations=1
        )
        store = UpdatableSuccinctEdge.from_graph(build_graph(), policy=policy)
        store.insert(Triple(EX.carol, EX.knows, EX.alice))  # 1/6 < 0.5
        assert not store.maybe_compact()
        for index in range(3):  # 4/6 >= 0.5
            store.insert(Triple(EX.carol, EX.knows, Namespace("http://example.org/")[f"p{index}"]))
        assert store.maybe_compact()

    def test_manual_policy_never_triggers(self):
        store = UpdatableSuccinctEdge.from_graph(build_graph(), policy=MANUAL_COMPACTION)
        for index in range(50):
            store.insert(Triple(EX.carol, EX.knows, EX[f"friend{index}"]))
        assert not store.maybe_compact()

    def test_background_compaction_with_concurrent_insert(self, store):
        store.insert(Triple(EX.carol, EX.knows, EX.alice))
        thread = store.compact_in_background()
        # This write races the build; the replay protocol must keep it
        # visible whether it lands before or after the swap.
        store.insert(Triple(EX.dave, EX.knows, EX.carol))
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert store.compaction_epoch == 1
        assert list(store.match(EX.dave, EX.knows, None)) == [Triple(EX.dave, EX.knows, EX.carol)]
        assert list(store.match(EX.carol, EX.knows, None)) == [Triple(EX.carol, EX.knows, EX.alice)]

    def test_export_graph_reflects_merged_view(self, store):
        store.insert(Triple(EX.carol, EX.knows, EX.alice))
        store.delete(Triple(EX.alice, EX.knows, EX.bob))
        exported = store.export_graph()
        assert Triple(EX.carol, EX.knows, EX.alice) in exported
        assert Triple(EX.alice, EX.knows, EX.bob) not in exported
        assert len(exported) == store.triple_count

    def test_rebuild_reencodes_overflow_terms(self, store):
        store.insert(Triple(EX.r2d2, RDF.type, EX.Robot))
        rebuilt = store.rebuild(ontology=build_ontology())
        assert not rebuilt.concepts.is_overflow(EX.Robot)
        result = rebuilt.query("SELECT ?s WHERE { ?s a <http://example.org/Robot> }")
        assert [str(row["s"]) for row in result] == [str(EX.r2d2)]


class TestStatisticsMaintenance:
    def test_occurrences_match_a_rebuild(self, store):
        inserts = [
            Triple(EX.carol, EX.knows, EX.alice),
            Triple(EX.carol, EX.name, Literal("Carol")),
            Triple(EX.carol, RDF.type, EX.Person),
        ]
        for triple in inserts:
            store.insert(triple)
        store.delete(Triple(EX.alice, EX.age, Literal(27)))

        rebuilt = SuccinctEdge.from_graph(store.export_graph(), ontology=build_ontology())
        for prop in (EX.knows, EX.name, EX.age):
            assert store.properties.occurrences_of_term(prop) == (
                rebuilt.properties.occurrences_of_term(prop)
            )
        assert store.concepts.occurrences_of_term(EX.Person) == (
            rebuilt.concepts.occurrences_of_term(EX.Person)
        )
        for term in (EX.alice, EX.bob, EX.carol):
            assert store.instances.occurrences_of_term(term) == (
                rebuilt.instances.occurrences_of_term(term)
            )


class TestImmutableFacade:
    def test_immutable_store_rejects_writes(self):
        frozen = SuccinctEdge.from_graph(build_graph())
        with pytest.raises(TypeError, match="immutable"):
            frozen.insert(Triple(EX.carol, EX.knows, EX.alice))
        with pytest.raises(TypeError, match="immutable"):
            frozen.delete(Triple(EX.alice, EX.knows, EX.bob))
        with pytest.raises(TypeError, match="immutable"):
            frozen.compact()
        assert frozen.snapshot_epoch == (0, 0)

    def test_updatable_view_shares_dictionaries(self):
        frozen = SuccinctEdge.from_graph(build_graph())
        live = frozen.updatable()
        assert isinstance(live, UpdatableSuccinctEdge)
        assert live.instances is frozen.instances
        live.insert(Triple(EX.carol, EX.knows, EX.alice))
        assert live.triple_count == frozen.triple_count + 1
        # The underlying frozen store is untouched.
        assert list(frozen.match(EX.carol, EX.knows, None)) == []

    def test_empty_store_grows_from_nothing(self):
        live = UpdatableSuccinctEdge.empty(ontology=build_ontology())
        assert live.triple_count == 0
        live.insert(Triple(EX.dora, RDF.type, EX.Student))
        result = live.query("SELECT ?s WHERE { ?s a <http://example.org/Person> }")
        assert [str(row["s"]) for row in result] == [str(EX.dora)]


class TestConcurrencyGuards:
    """Regression tests: overlapping compactions and result-list aliasing."""

    def test_overlapping_background_compactions_do_not_lose_writes(self, store):
        import threading

        release = threading.Event()
        original = store._build_base

        def slow_build(snapshot):
            assert release.wait(timeout=30)
            return original(snapshot)

        store._build_base = slow_build
        store.insert(Triple(EX.carol, EX.knows, EX.alice))
        first = store.compact_in_background()
        # Writes that race the build...
        store.insert(Triple(EX.dave, EX.knows, EX.carol))
        # ...must not be clobbered by a second, overlapping trigger: the
        # in-flight thread is returned instead of a new one.
        second = store.compact_in_background()
        assert second is first
        # Policy checks report False rather than re-triggering while in flight.
        tight = CompactionPolicy(max_delta_operations=1, max_delta_ratio=None)
        store.policy = tight
        assert not store.maybe_compact(background=True)
        store.insert(Triple(EX.erin, EX.knows, EX.dave))
        release.set()
        first.join(timeout=30)
        assert not first.is_alive()
        assert store.compaction_epoch == 1
        for subject, obj in ((EX.carol, EX.alice), (EX.dave, EX.carol), (EX.erin, EX.dave)):
            assert list(store.match(subject, EX.knows, None)) == [Triple(subject, EX.knows, obj)]

    def test_sync_compact_waits_for_background_compaction(self, store):
        import threading

        release = threading.Event()
        original = store._build_base
        calls = []

        def slow_build(snapshot):
            calls.append(len(calls))
            if len(calls) == 1:
                assert release.wait(timeout=30)
            return original(snapshot)

        store._build_base = slow_build
        store.insert(Triple(EX.carol, EX.knows, EX.alice))
        store.compact_in_background()
        store.insert(Triple(EX.dave, EX.knows, EX.carol))
        releaser = threading.Timer(0.05, release.set)
        releaser.start()
        store.compact()  # must wait for the in-flight swap, then run its own
        assert store.compaction_epoch == 2
        assert store.delta_operation_count == 0
        assert list(store.match(EX.dave, EX.knows, None)) == [Triple(EX.dave, EX.knows, EX.carol)]

    def test_returned_result_lists_are_snapshots(self, store):
        store.insert(Triple(EX.carol, EX.knows, EX.alice))
        knows = store.properties.locate(EX.knows)
        alice = store.instances.locate(EX.alice)
        carol = store.instances.locate(EX.carol)
        subjects = store.object_store.subjects_for(knows, alice)
        assert subjects == [carol]
        snapshot = list(subjects)
        store.insert(Triple(EX.dave, EX.knows, EX.alice))
        assert subjects == snapshot  # a later write must not reshuffle it

    def test_streaming_pair_scan_survives_interleaved_writes(self, store):
        store.insert(Triple(EX.carol, EX.knows, EX.alice))
        knows = store.properties.locate(EX.knows)
        pairs = store.object_store.pairs_for_property(knows)
        first = next(pairs)
        store.insert(Triple(EX.erin, EX.knows, EX.dave))  # races the scan
        remainder = list(pairs)
        seen = [first] + remainder
        assert len(seen) == len(set(seen))  # no duplicates, no crash

    def test_racing_writes_are_replayed_before_the_swap(self, store):
        import threading

        release = threading.Event()
        original_build = store._build_base
        original_install = store._install
        observed = {}

        def slow_build(snapshot):
            assert release.wait(timeout=30)
            return original_build(snapshot)

        def spying_install(new_base, snapshot, started, staged=None):
            # The staged delta must already hold the racing write when the
            # swap publishes it — readers never see it missing.
            observed["staged_inserts"] = None if staged is None else staged.delta.insert_count
            return original_install(new_base, snapshot, started, staged=staged)

        store._build_base = slow_build
        store._install = spying_install
        store.insert(Triple(EX.carol, EX.knows, EX.alice))
        thread = store.compact_in_background()
        store.insert(Triple(EX.dave, EX.knows, EX.carol))  # races the build
        release.set()
        thread.join(timeout=30)
        assert observed["staged_inserts"] == 1
        assert list(store.match(EX.dave, EX.knows, None)) == [Triple(EX.dave, EX.knows, EX.carol)]


class TestRebuildAndRetention:
    def test_rebuild_keeps_the_construction_ontology(self, store):
        store.insert(Triple(EX.dora, RDF.type, EX.Student))
        rebuilt = store.rebuild()  # no explicit ontology: must reuse the stored one
        result = rebuilt.query("SELECT ?s WHERE { ?s a <http://example.org/Person> }")
        assert str(EX.dora) in {str(row["s"]) for row in result}
        assert rebuilt.schema.is_subconcept_of(EX.Student, EX.Person)

    def test_unbounded_live_stream_skips_window_bookkeeping(self):
        from repro.edge.stream import LiveStreamProcessor

        processor = LiveStreamProcessor(ontology=build_ontology(), rules=[])
        for index in range(3):
            graph = Graph()
            graph.add(Triple(EX[f"s{index}"], EX.knows, EX[f"o{index}"]))
            processor.process_instance(graph)
        # Without a retention bound, neither the window nor the refcounts
        # accumulate — memory stays bounded by the store itself.
        assert len(processor._window) == 0
        assert len(processor._reference_counts) == 0
        assert processor.statistics.triples_evicted == 0
        assert processor.store.triple_count == 3


class TestRound3Regressions:
    """Review follow-ups: ontology forwarding, overflow persistence, charging."""

    def test_updatable_view_forwards_ontology_to_rebuild(self):
        frozen = SuccinctEdge.from_graph(build_graph(), ontology=build_ontology())
        live = frozen.updatable(ontology=build_ontology())
        live.insert(Triple(EX.dora, RDF.type, EX.Student))
        rebuilt = live.rebuild()
        result = rebuilt.query("SELECT ?s WHERE { ?s a <http://example.org/Person> }")
        assert str(EX.dora) in {str(row["s"]) for row in result}

    def test_overflow_terms_survive_persistence(self, store, tmp_path):
        from repro.store.persistence import load_store, save_store

        store.insert(Triple(EX.alice, EX.likes, EX.carol))       # overflow property
        store.insert(Triple(EX.r2d2, RDF.type, EX.Robot))        # overflow concept
        store.compact()  # merges overflow; identifiers must still round-trip
        store.insert(Triple(EX.bob, EX.dislikes, EX.carol))      # pending overflow
        path = str(tmp_path / "store.bin")
        save_store(store, path)
        loaded = load_store(path)
        left = sorted(tuple(map(str, t)) for t in store.match())
        right = sorted(tuple(map(str, t)) for t in loaded.match())
        assert left == right
        result = loaded.query("SELECT ?s WHERE { ?s a <http://example.org/Robot> }")
        assert [str(row["s"]) for row in result] == [str(EX.r2d2)]

    def test_transmission_charged_per_instance_not_cumulative(self):
        from repro.edge.alerts import AnomalyRule
        from repro.edge.device import EdgeDevice
        from repro.edge.stream import LiveStreamProcessor

        rule = AnomalyRule(
            name="any-person",
            query="SELECT ?s WHERE { ?s a <http://example.org/Person> }",
        )
        device = EdgeDevice()
        processor = LiveStreamProcessor(ontology=build_ontology(), rules=[rule], device=device)
        graph = Graph()
        graph.add(Triple(EX.alice, RDF.type, EX.Person))
        processor.process_instance(graph)
        first = device.bytes_sent
        assert first > 0
        # The same single alert re-fires each instance; the per-instance
        # charge must stay flat instead of growing with the sink's history.
        processor.process_instance(Graph())
        second = device.bytes_sent - first
        processor.process_instance(Graph())
        third = device.bytes_sent - first - second
        assert first == second == third
