"""Object-property triple store: the PSO wavelet-tree / bitmap layout.

This is the core single-index layout of Figure 5(b):

* ``wt_p`` — the property layer: every *distinct* property identifier, in
  ascending order (one entry per property);
* ``bm_ps`` — one bit per distinct ``(property, subject)`` pair, a ``1``
  marking the first subject of each property run (plus a trailing sentinel
  ``1`` so that "end of run" lookups need no special case);
* ``wt_s`` — the subject layer: subject identifiers grouped by property,
  ascending inside each property run;
* ``bm_so`` — one bit per triple, a ``1`` marking the first object of each
  ``(property, subject)`` pair (plus a trailing sentinel ``1``);
* ``wt_o`` — the object layer: object identifiers grouped by ``(p, s)`` pair,
  ascending inside each pair.

Every triple-pattern evaluation is a sequence of ``select`` / ``rank`` /
``access`` / ``range_search`` operations on these five structures, i.e. the
store is *decompression-free* (paper contribution ii).

The evaluation entry points are **range-materialising**: a pattern is
answered with one batched kernel call per layout (``select_range`` over the
bitmaps, ``access_range`` / batched ``range_search`` over the wavelet trees)
instead of O(results) individual rank/select round-trips, which is what keeps
the scan benchmarks fast in pure Python.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.sds.bitvector import BitVector, BitVectorBuilder
from repro.sds.wavelet_tree import WaveletTree

#: An encoded object-property triple ``(property_id, subject_id, object_id)``.
EncodedTriple = Tuple[int, int, int]


class ObjectTripleStore:
    """Immutable PSO store over integer-encoded object-property triples.

    ``presorted`` promises that ``triples`` are already deduplicated and in
    PSO order (e.g. when rebuilding from a persisted store), skipping the
    sort pass.
    """

    def __init__(self, triples: Sequence[EncodedTriple], presorted: bool = False) -> None:
        ordered = list(triples) if presorted else sorted(set(triples))
        self._triple_count = len(ordered)

        property_layer: List[int] = []
        subject_layer: List[int] = []
        object_layer: List[int] = []
        ps_bits = BitVectorBuilder()
        so_bits = BitVectorBuilder()

        previous_property: Optional[int] = None
        previous_pair: Optional[Tuple[int, int]] = None
        for prop, subject, obj in ordered:
            if prop != previous_property:
                property_layer.append(prop)
                previous_property = prop
                new_property = True
            else:
                new_property = False
            pair = (prop, subject)
            if pair != previous_pair:
                subject_layer.append(subject)
                ps_bits.append(1 if new_property else 0)
                previous_pair = pair
                new_pair = True
            else:
                new_pair = False
            object_layer.append(obj)
            so_bits.append(1 if new_pair else 0)
        # Trailing sentinels: one virtual run start past the end of each layer.
        ps_bits.append(1)
        so_bits.append(1)

        max_symbol = max(property_layer + subject_layer + object_layer, default=0)
        alphabet = max_symbol + 1
        self.wt_p = WaveletTree(property_layer, alphabet_size=alphabet)
        self.wt_s = WaveletTree(subject_layer, alphabet_size=alphabet)
        self.wt_o = WaveletTree(object_layer, alphabet_size=alphabet)
        self.bm_ps: BitVector = ps_bits.build()
        self.bm_so: BitVector = so_bits.build()
        # The property layer is tiny (one entry per distinct property) but its
        # navigation is probed once per bind-propagation binding; the layouts
        # are immutable, so both lookups are memoised.
        self._property_index_cache: dict = {}
        self._subject_run_cache: dict = {}

    @classmethod
    def _from_components(
        cls,
        wt_p: WaveletTree,
        wt_s: WaveletTree,
        wt_o: WaveletTree,
        bm_ps: BitVector,
        bm_so: BitVector,
        triple_count: int,
    ) -> "ObjectTripleStore":
        """Assemble a store around pre-built layout structures (persistence v4).

        The components typically alias a mapped store image; nothing is
        re-encoded or validated here, so construction is O(1) in the triple
        count.
        """
        store = object.__new__(cls)
        store._triple_count = triple_count
        store.wt_p = wt_p
        store.wt_s = wt_s
        store.wt_o = wt_o
        store.bm_ps = bm_ps
        store.bm_so = bm_so
        store._property_index_cache = {}
        store._subject_run_cache = {}
        return store

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._triple_count

    def __repr__(self) -> str:
        return f"ObjectTripleStore({self._triple_count} triples, {len(self.wt_p)} properties)"

    @property
    def properties(self) -> List[int]:
        """Distinct property identifiers, ascending."""
        return self.wt_p.to_list()

    def has_property(self, property_id: int) -> bool:
        """Whether the store holds at least one triple with ``property_id``."""
        return self.wt_p.count(property_id) > 0

    def properties_in_interval(self, low: int, high: int) -> List[int]:
        """Stored property identifiers in ``[low, high)``, ascending.

        One wavelet-tree symbol-range probe over the property layer — the
        reasoning access path of Section 5.2 (a LiteMat interval is answered
        by probing only the *stored* properties it covers).
        """
        return [
            symbol
            for _position, symbol in self.wt_p.range_search_symbols(0, len(self.wt_p), low, high)
        ]

    # ------------------------------------------------------------------ #
    # navigation primitives (paper Algorithms 2-4)
    # ------------------------------------------------------------------ #

    def _property_index(self, property_id: int) -> Optional[int]:
        """Position of ``property_id`` in the property layer, or ``None``."""
        try:
            return self._property_index_cache[property_id]
        except KeyError:
            pass
        if self.wt_p.count(property_id) == 0:
            index: Optional[int] = None
        else:
            index = self.wt_p.select(1, property_id)
        self._property_index_cache[property_id] = index
        return index

    def _subject_run(self, property_index: int) -> Tuple[int, int]:
        """Subject-layer interval ``[begin, end)`` of the property at ``property_index``."""
        try:
            return self._subject_run_cache[property_index]
        except KeyError:
            pass
        begin = self.bm_ps.select(property_index + 1, 1)
        end = self.bm_ps.select(property_index + 2, 1)
        self._subject_run_cache[property_index] = (begin, end)
        return begin, end

    def _object_run(self, subject_index: int) -> Tuple[int, int]:
        """Object-layer interval ``[begin, end)`` of the subject at ``subject_index``."""
        begin, end = self.bm_so.select_range(subject_index + 1, subject_index + 2, 1)
        return begin, end

    def subject_run(self, property_id: int) -> Optional[Tuple[int, int]]:
        """Subject-layer interval ``[begin, end)`` of ``property_id``, or ``None``."""
        property_index = self._property_index(property_id)
        if property_index is None:
            return None
        return self._subject_run(property_index)

    def object_run_boundaries(self, subject_begin: int, subject_end: int) -> List[int]:
        """Object-layer run starts for subject positions ``[subject_begin, subject_end]``.

        One batched select scan returns ``subject_end - subject_begin + 1``
        boundary positions; consecutive entries delimit each subject's object
        run (the sentinel bit makes the last boundary valid).
        """
        return self.bm_so.select_range(subject_begin + 1, subject_end + 1, 1)

    def subjects_in_interval(self, begin: int, end: int) -> List[int]:
        """Subject identifiers at subject-layer positions ``[begin, end)`` (batched)."""
        return self.wt_s.access_range(begin, end)

    def objects_in_interval(self, begin: int, end: int) -> List[int]:
        """Object identifiers at object-layer positions ``[begin, end)`` (batched)."""
        return self.wt_o.access_range(begin, end)

    def objects_for_run(self, subject_index: int) -> List[int]:
        """Objects of the ``(property, subject)`` pair at ``subject_index`` (batched)."""
        object_begin, object_end = self._object_run(subject_index)
        return self.wt_o.access_range(object_begin, object_end)

    def count_triples_with_property(self, property_id: int) -> int:
        """Algorithm 2: number of triples carrying ``property_id``.

        Computed purely from the bitmaps: the object run spanning the whole
        subject run of the property.
        """
        property_index = self._property_index(property_id)
        if property_index is None:
            return 0
        subject_begin, subject_end = self._subject_run(property_index)
        object_begin = self.bm_so.select(subject_begin + 1, 1)
        object_end = self.bm_so.select(subject_end + 1, 1)
        return object_end - object_begin

    def count_subjects_with_property(self, property_id: int) -> int:
        """Number of distinct subjects attached to ``property_id`` (run length)."""
        property_index = self._property_index(property_id)
        if property_index is None:
            return 0
        subject_begin, subject_end = self._subject_run(property_index)
        return subject_end - subject_begin

    # ------------------------------------------------------------------ #
    # triple pattern evaluation
    # ------------------------------------------------------------------ #

    def objects_for(self, subject_id: int, property_id: int) -> List[int]:
        """Algorithm 3 core: objects of ``(subject, property, ?o)``, ascending.

        One batched ``range_search`` finds every position of the subject, one
        batched select scan finds all object-run boundaries, and each run is
        decoded with ``access_range``.
        """
        property_index = self._property_index(property_id)
        if property_index is None:
            return []
        subject_begin, subject_end = self._subject_run(property_index)
        positions = self.wt_s.range_search(subject_begin, subject_end, subject_id)
        if not positions:
            return []
        if len(positions) == 1:
            return self.objects_for_run(positions[0])
        boundaries = self.bm_so.select_many(
            [occurrence for position in positions for occurrence in (position + 1, position + 2)],
            1,
        )
        results: List[int] = []
        for index in range(0, len(boundaries), 2):
            results.extend(self.wt_o.access_range(boundaries[index], boundaries[index + 1]))
        return results

    def subjects_for(self, property_id: int, object_id: int) -> List[int]:
        """Algorithm 4 core: subjects of ``(?s, property, object)``, ascending."""
        property_index = self._property_index(property_id)
        if property_index is None:
            return []
        subject_begin, subject_end = self._subject_run(property_index)
        object_begin = self.bm_so.select(subject_begin + 1, 1)
        object_end = self.bm_so.select(subject_end + 1, 1)
        positions = self.wt_o.range_search(object_begin, object_end, object_id)
        if not positions:
            return []
        subject_indices = self.bm_so.rank_many(
            [position + 1 for position in positions], 1
        )
        return [self.wt_s.access(subject_index - 1) for subject_index in subject_indices]

    def pairs_for_property(self, property_id: int) -> Iterator[Tuple[int, int]]:
        """All ``(subject, object)`` pairs of ``(?s, property, ?o)``, in PSO order.

        The whole property run is materialised with three batched kernel
        calls (subject layer, run boundaries, object layer) and then zipped.
        """
        property_index = self._property_index(property_id)
        if property_index is None:
            return
        yield from self._pairs_in_subject_run(*self._subject_run(property_index))

    def _pairs_in_subject_run(
        self, subject_begin: int, subject_end: int
    ) -> Iterator[Tuple[int, int]]:
        if subject_begin >= subject_end:
            return
        subjects = self.wt_s.access_range(subject_begin, subject_end)
        boundaries = self.object_run_boundaries(subject_begin, subject_end)
        objects = self.wt_o.access_range(boundaries[0], boundaries[-1])
        base = boundaries[0]
        for offset, subject_id in enumerate(subjects):
            for object_index in range(boundaries[offset] - base, boundaries[offset + 1] - base):
                yield subject_id, objects[object_index]

    def contains(self, subject_id: int, property_id: int, object_id: int) -> bool:
        """Whether the fully-bound triple is stored."""
        return object_id in self.objects_for(subject_id, property_id)

    def pairs_for_property_interval(
        self, property_low: int, property_high: int
    ) -> Iterator[Tuple[int, int, int]]:
        """All ``(property, subject, object)`` triples whose property identifier
        falls in the LiteMat interval ``[property_low, property_high)``.

        This is the reasoning access path of Section 5.2: instead of running
        one query per sub-property, the property layer is probed once per
        *stored* property inside the interval, and each property run is
        materialised with the batched pair scan.
        """
        for position, property_id in self.wt_p.range_search_symbols(
            0, len(self.wt_p), property_low, property_high
        ):
            subject_begin, subject_end = self._subject_run(position)
            for subject_id, object_id in self._pairs_in_subject_run(subject_begin, subject_end):
                yield property_id, subject_id, object_id

    def iter_triples(self) -> Iterator[EncodedTriple]:
        """All stored triples in PSO order (one batched scan per property run)."""
        for position, property_id in enumerate(self.wt_p.to_list()):
            subject_begin, subject_end = self._subject_run(position)
            for subject_id, object_id in self._pairs_in_subject_run(subject_begin, subject_end):
                yield property_id, subject_id, object_id

    # ------------------------------------------------------------------ #
    # storage accounting
    # ------------------------------------------------------------------ #

    def size_in_bytes(self) -> int:
        """Approximate storage footprint of the five SDS structures."""
        return (
            self.wt_p.size_in_bytes()
            + self.wt_s.size_in_bytes()
            + self.wt_o.size_in_bytes()
            + self.bm_ps.size_in_bytes()
            + self.bm_so.size_in_bytes()
        )
