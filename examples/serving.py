"""Scale-out serving, end to end: shards, HTTP server, mixed workload.

Builds a 4-shard :class:`~repro.store.sharding.ShardedStore` from a LUBM
dataset, starts the SPARQL-over-HTTP :class:`~repro.serve.server.QueryServer`
on it (parallel engine, bounded worker pool, result cache), then replays a
mixed read/write workload: client threads page through the interactive query
mix over HTTP while writes from the ingestion path land on the shards —
each write bumps the aggregated snapshot epoch and invalidates the cache.

Prints the cache hit rate, the p50/p99 query latency, and the per-shard
breakdown at the end.  Run with::

    python examples/serving.py [operations]
"""

from __future__ import annotations

import sys
import threading

from repro.serve import QueryServer, QueryService, SparqlClient
from repro.store.sharding import ShardedStore
from repro.workloads.lubm import generate_lubm
from repro.workloads.serving import ServingWorkload

CLIENTS = 4
SHARDS = 4


def main() -> None:
    operations = int(sys.argv[1]) if len(sys.argv) > 1 else 120

    dataset = generate_lubm(departments=2, seed=7)
    store = ShardedStore.from_graph(
        dataset.graph, ontology=dataset.ontology, shards=SHARDS, updatable=True
    )
    print(f"Store: {store!r}")

    workload = ServingWorkload(dataset)
    ops = list(workload.mixed_ops(operations, write_ratio=0.15))
    reads = [op for op in ops if op.kind == "query"]
    writes = [op for op in ops if op.kind != "query"]
    print(f"Workload: {len(reads)} queries, {len(writes)} writes ({operations} operations)")

    service = QueryService(
        store, parallel=True, worker_slots=4, cache_capacity=128, default_timeout_s=30
    )
    with QueryServer(service) as server:
        print(f"Serving SPARQL on {server.url}/sparql")

        def run_queries(chunk) -> None:
            client = SparqlClient(server.url)
            for op in chunk:
                client.query(op.query.sparql, reasoning=op.query.requires_reasoning)

        def run_writes() -> None:
            # Writes arrive through the ingestion path (routed to the owning
            # shard), concurrently with the HTTP readers.
            for op in writes:
                if op.kind == "insert":
                    store.insert(op.triple)
                else:
                    store.delete(op.triple)

        chunk_size = max(1, (len(reads) + CLIENTS - 1) // CLIENTS)
        threads = [
            threading.Thread(
                target=run_queries, args=(reads[i : i + chunk_size],), daemon=True
            )
            for i in range(0, len(reads), chunk_size)
        ]
        threads.append(threading.Thread(target=run_writes, daemon=True))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        metrics = service.metrics.snapshot()
        cache = service.cache.info()
        print(
            f"\nServed {metrics['completed']:.0f} queries "
            f"({metrics['rejected']:.0f} rejected, {metrics['errors']:.0f} errors)"
        )
        print(f"Cache hit rate: {cache['hit_rate']:.0%} ({cache['hits']} hits)")
        print(
            f"Latency p50/p99: {metrics['latency_p50_ms']:.2f} / "
            f"{metrics['latency_p99_ms']:.2f} ms"
        )
        info = store.snapshot_info()
        print(
            f"Epochs after the write trickle: compaction={info['compaction_epoch']}, "
            f"data={info['data_epoch']} (each write invalidated the cache)"
        )
        for row in store.shard_summary():
            low, high = row["subjects"]
            interval = f"[{low}, {'∞' if high is None else high})"
            print(
                f"  shard {row['shard']}: subjects {interval:>16} "
                f"{row['triples']:>6} triples, epoch {row['epoch']}"
            )
    service.close()


if __name__ == "__main__":
    main()
