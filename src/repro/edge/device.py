"""Edge device resource model.

The paper's experimental platform is a Raspberry Pi 3B+ (1 GB of RAM, SD-card
storage, ARM Cortex-A53).  The exact hardware is not available here, so this
module provides a simple, documented resource model used to answer questions
that matter for the deployment scenario:

* does a given store fit in the device's RAM budget? (Section 7.3.2's
  motivation for the compact layout);
* how much energy does query processing cost relative to transmitting the raw
  measures to the cloud? (the motivating example's argument for processing at
  the edge).

The stream processors of :mod:`repro.edge.stream` charge their processing
and transmission costs against an :class:`EdgeDevice`; in the live-update
mode (``docs/update_lifecycle.md``) the delta overlay's memory overhead
counts towards the same RAM budget through
``UpdatableSuccinctEdge.memory_footprint_in_bytes``.  See
``docs/architecture.md`` for where the device model sits in the deployment
loop.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceProfile:
    """Static characteristics of an edge device.

    Attributes
    ----------
    name:
        Human-readable device name.
    ram_bytes:
        Total RAM; the usable budget for an RDF store is a fraction of it.
    usable_ram_fraction:
        Fraction of RAM available to the store (OS and runtime take the rest).
    cpu_factor:
        Relative CPU speed versus the machine running the benchmarks
        (1.0 = same speed; the Pi is considerably slower than a laptop).
    active_power_watts / idle_power_watts:
        Power draw used by the energy model.
    network_energy_joule_per_kb:
        Energy cost of transmitting one kilobyte towards the cloud (used to
        compare edge processing against ship-everything-to-the-cloud).
    """

    name: str
    ram_bytes: int
    usable_ram_fraction: float = 0.5
    cpu_factor: float = 0.1
    active_power_watts: float = 3.5
    idle_power_watts: float = 1.9
    network_energy_joule_per_kb: float = 0.05


#: The paper's experimental platform.
RASPBERRY_PI_3B_PLUS = DeviceProfile(
    name="Raspberry Pi 3B+",
    ram_bytes=1024 * 1024 * 1024,
    usable_ram_fraction=0.5,
    cpu_factor=0.12,
    active_power_watts=3.5,
    idle_power_watts=1.9,
    network_energy_joule_per_kb=0.05,
)


class EdgeDevice:
    """A device instance tracking memory admission and energy accounting."""

    def __init__(self, profile: DeviceProfile = RASPBERRY_PI_3B_PLUS) -> None:
        self.profile = profile
        self.energy_spent_joules = 0.0
        self.bytes_sent = 0

    # ------------------------------------------------------------------ #
    # memory admission
    # ------------------------------------------------------------------ #

    @property
    def memory_budget_bytes(self) -> int:
        """RAM available to the RDF store."""
        return int(self.profile.ram_bytes * self.profile.usable_ram_fraction)

    def fits_in_memory(self, footprint_bytes: int) -> bool:
        """Whether a store of the given footprint fits in the budget."""
        return footprint_bytes <= self.memory_budget_bytes

    def max_graph_instances(self, footprint_bytes_per_instance: int) -> int:
        """How many graph instances of the given footprint fit simultaneously."""
        if footprint_bytes_per_instance <= 0:
            return 0
        return self.memory_budget_bytes // footprint_bytes_per_instance

    # ------------------------------------------------------------------ #
    # latency / energy model
    # ------------------------------------------------------------------ #

    def scale_latency_ms(self, measured_ms: float) -> float:
        """Project a latency measured on this machine onto the device."""
        if self.profile.cpu_factor <= 0:
            return measured_ms
        return measured_ms / self.profile.cpu_factor

    def charge_processing(self, duration_ms: float) -> float:
        """Account for local processing energy; returns the joules spent."""
        joules = self.profile.active_power_watts * (duration_ms / 1000.0)
        self.energy_spent_joules += joules
        return joules

    def charge_transmission(self, payload_bytes: int) -> float:
        """Account for the energy of sending ``payload_bytes`` to the cloud."""
        kilobytes = payload_bytes / 1024.0
        joules = self.profile.network_energy_joule_per_kb * kilobytes
        self.energy_spent_joules += joules
        self.bytes_sent += payload_bytes
        return joules

    def edge_vs_cloud_energy(
        self,
        processing_ms: float,
        alert_bytes: int,
        raw_graph_bytes: int,
    ) -> dict:
        """Compare the energy of edge processing against shipping raw data.

        Edge strategy: process locally (``processing_ms``) and transmit only
        the alerts; cloud strategy: transmit the full graph instance.  Returns
        both totals in joules (the motivating example's trade-off).
        """
        edge = (
            self.profile.active_power_watts * processing_ms / 1000.0
            + self.profile.network_energy_joule_per_kb * alert_bytes / 1024.0
        )
        cloud = self.profile.network_energy_joule_per_kb * raw_graph_bytes / 1024.0
        return {"edge_joules": edge, "cloud_joules": cloud, "edge_wins": edge < cloud}

    def __repr__(self) -> str:
        return f"EdgeDevice({self.profile.name}, budget={self.memory_budget_bytes // (1024*1024)}MB)"
