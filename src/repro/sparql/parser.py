"""Recursive-descent parser for the supported SPARQL subset.

Supported grammar (the useful core of SPARQL 1.1 SELECT/ASK — see
``docs/sparql_support.md`` for the full EBNF and the known deviations from
the W3C recommendation)::

    Query      := Prologue (SelectQuery | AskQuery)
    SelectQuery:= SELECT (DISTINCT)? (SelectItem+ | '*') WHERE? Group Modifiers
    SelectItem := Var | '(' Expression AS Var ')'
    AskQuery   := ASK WHERE? Group
    Modifiers  := (GROUP BY GroupCond+)? (ORDER BY OrderCond+)?
                  (LIMIT INT | OFFSET INT)*
    GroupCond  := Var | '(' Expression ')'
    OrderCond  := (ASC | DESC) '(' Expression ')' | Var | '(' Expression ')'
    Group      := '{' (TriplesBlock | Filter | Bind | Optional | Values
                       | GroupUnion)* '}'
    GroupUnion := Group (UNION Group)*
    Optional   := OPTIONAL Group
    Filter     := FILTER '(' Expression ')'
    Bind       := BIND '(' Expression AS Var ')'
    Values     := VALUES (Var | '(' Var* ')') '{' DataRow* '}'
    DataRow    := Term | '(' (Term | UNDEF)* ')'

Triple blocks support the ``a`` keyword, ``;`` predicate lists and ``,``
object lists.  Expressions support ``||``, ``&&``, ``!``, comparisons,
arithmetic, the builtins ``regex``, ``str``, ``if``, ``bound``, ``abs``,
and the aggregates ``COUNT`` / ``SUM`` / ``MIN`` / ``MAX`` / ``AVG`` /
``SAMPLE`` (with ``DISTINCT`` and ``COUNT(*)``).

Parse errors raise :class:`SparqlParseError`, which reports the 1-based
line and column of the offending token together with its text.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.rdf.namespaces import RDF, WELL_KNOWN_PREFIXES
from repro.rdf.terms import BlankNode, Literal, URI
from repro.rdf.terms import XSD_BOOLEAN, XSD_DECIMAL, XSD_INTEGER
from repro.sparql.ast import (
    Aggregate,
    Arithmetic,
    AskQuery,
    Bind,
    BooleanExpression,
    Comparison,
    Expression,
    Filter,
    FunctionCall,
    GroupGraphPattern,
    InlineData,
    Negation,
    OrderCondition,
    PathAlternative,
    PathExpression,
    PathInverse,
    PathLink,
    PathNegatedSet,
    PathOneOrMore,
    PathSequence,
    PathZeroOrMore,
    PathZeroOrOne,
    PatternTerm,
    ProjectionItem,
    PropertyPathPattern,
    Query,
    SelectExpression,
    SelectQuery,
    TriplePattern,
    Union,
    Variable,
    contains_aggregate,
)


class SparqlParseError(ValueError):
    """Raised when a query falls outside the supported SPARQL subset.

    Attributes
    ----------
    line, column:
        1-based position of the offending token in the query text
        (``None`` when the error is not tied to one token, e.g. an
        unexpected end of input with no position information).
    token:
        The text of the offending token (``None`` at end of input).
    reason:
        The bare explanation, without the position prefix.
    """

    def __init__(
        self,
        reason: str,
        line: Optional[int] = None,
        column: Optional[int] = None,
        token: Optional[str] = None,
    ) -> None:
        self.reason = reason
        self.line = line
        self.column = column
        self.token = token
        message = reason
        if line is not None and column is not None:
            location = f"at line {line}, column {column}"
            if token is not None:
                message = f"{reason} {location}: {token!r}"
            else:
                message = f"{reason} {location}"
        super().__init__(message)


_TOKEN = re.compile(
    r"""
    (?P<comment>\#[^\n]*)
  | (?P<iri><[^<>"\s]*>)
  | (?P<literal>"(?:[^"\\]|\\.)*"(?:\^\^<[^<>\s]*>|\^\^[A-Za-z_][\w\-]*:[\w\-]*|@[A-Za-z0-9\-]+)?)
  | (?P<var>\?[A-Za-z_][\w]*)
  | (?P<bnode>_:[A-Za-z0-9_.\-]+)
  | (?P<number>[+-]?\d+\.\d+|[+-]?\d+)
  | (?P<comparator><=|>=|!=|=|<|>)
  | (?P<logic>\|\||&&)
  | (?P<keyword>\b(?:SELECT|DISTINCT|WHERE|FILTER|BIND|AS|UNION|OPTIONAL|VALUES|UNDEF|ASK|ORDER|GROUP|HAVING|BY|ASC|DESC|PREFIX|BASE|LIMIT|OFFSET|true|false|a)\b)
  | (?P<pname>[A-Za-z_][\w\-]*:[\w.\-]*|:[\w.\-]+)
  | (?P<name>[A-Za-z_][\w]*)
  | (?P<punct>[{}().;,!*/+\-^|?])
  | (?P<ws>\s+)
    """,
    re.VERBOSE | re.IGNORECASE,
)

_ESCAPES = {"\\n": "\n", "\\r": "\r", "\\t": "\t", '\\"': '"', "\\\\": "\\"}

#: Aggregate function names (SPARQL 1.1 Section 18.5).
_AGGREGATES = frozenset({"count", "sum", "min", "max", "avg", "sample"})


def _unescape(text: str) -> str:
    result = text
    for escaped, raw in _ESCAPES.items():
        result = result.replace(escaped, raw)
    return result


def _tokenize(query: str) -> Tuple[List[Tuple[str, str]], List[Tuple[int, int]]]:
    """Split ``query`` into ``(kind, text)`` tokens plus 1-based positions."""
    tokens: List[Tuple[str, str]] = []
    positions: List[Tuple[int, int]] = []
    position = 0
    line = 1
    line_start = 0
    while position < len(query):
        match = _TOKEN.match(query, position)
        if not match:
            snippet = query[position : position + 40].split("\n")[0]
            raise SparqlParseError(
                "unexpected input",
                line=line,
                column=position - line_start + 1,
                token=snippet,
            )
        kind = match.lastgroup or ""
        if kind not in ("ws", "comment"):
            tokens.append((kind, match.group()))
            positions.append((line, position - line_start + 1))
        newlines = match.group().count("\n")
        if newlines:
            line += newlines
            line_start = position + match.group().rindex("\n") + 1
        position = match.end()
    return tokens, positions


class SparqlParser:
    """Parses one query string into its AST (:class:`SelectQuery` / :class:`AskQuery`).

    The parser is single-use: construct it with the query text, then call
    :meth:`parse` once.  Prefix declarations extend the well-known prefixes
    of :data:`repro.rdf.namespaces.WELL_KNOWN_PREFIXES`.

    >>> SparqlParser("SELECT ?x WHERE { ?x a <http://x.org/C> }").parse().projected_names()
    ['x']
    """

    def __init__(self, query: str) -> None:
        self._tokens, self._positions = _tokenize(query)
        self._index = 0
        self._prefixes = dict(WELL_KNOWN_PREFIXES)

    # -------------------------------------------------------------- #
    # token helpers
    # -------------------------------------------------------------- #

    def _peek(self, offset: int = 0) -> Optional[Tuple[str, str]]:
        index = self._index + offset
        if index < len(self._tokens):
            return self._tokens[index]
        return None

    def _error(self, reason: str, index: Optional[int] = None) -> SparqlParseError:
        """A parse error located at the token at ``index`` (default: current)."""
        where = self._index if index is None else index
        if where >= len(self._tokens):
            if self._positions:
                line, column = self._positions[-1]
                return SparqlParseError(
                    f"{reason} (unexpected end of query)", line=line, column=column
                )
            return SparqlParseError(f"{reason} (unexpected end of query)")
        line, column = self._positions[where]
        return SparqlParseError(reason, line=line, column=column, token=self._tokens[where][1])

    def _next(self) -> Tuple[str, str]:
        token = self._peek()
        if token is None:
            raise self._error("unexpected end of query")
        self._index += 1
        return token

    def _accept_keyword(self, *keywords: str) -> Optional[str]:
        token = self._peek()
        if token and token[0] == "keyword" and token[1].upper() in {k.upper() for k in keywords}:
            self._index += 1
            return token[1].upper()
        return None

    def _expect_keyword(self, keyword: str) -> None:
        if not self._accept_keyword(keyword):
            raise self._error(f"expected {keyword!r}")

    def _accept_punct(self, char: str) -> bool:
        token = self._peek()
        if token and token[0] == "punct" and token[1] == char:
            self._index += 1
            return True
        return False

    def _expect_punct(self, char: str) -> None:
        if not self._accept_punct(char):
            raise self._error(f"expected {char!r}")

    # -------------------------------------------------------------- #
    # prologue and query form
    # -------------------------------------------------------------- #

    def parse(self) -> Query:
        """Parse the query and return its AST.

        Returns a :class:`SelectQuery` for ``SELECT`` and an
        :class:`AskQuery` for ``ASK``; raises :class:`SparqlParseError`
        (with line/column information) on any other form or on trailing
        input after the query.
        """
        self._parse_prologue()
        if self._accept_keyword("ASK"):
            parsed: Query = self._parse_ask_body()
        else:
            self._expect_keyword("SELECT")
            parsed = self._parse_select_body()
        if self._peek() is not None:
            raise self._error("trailing tokens after query")
        return parsed

    def _parse_ask_body(self) -> AskQuery:
        self._accept_keyword("WHERE")
        return AskQuery(where=self._parse_group())

    def _parse_select_body(self) -> SelectQuery:
        distinct = bool(self._accept_keyword("DISTINCT"))
        projection = self._parse_projection()
        self._accept_keyword("WHERE")
        where = self._parse_group()
        group_by = self._parse_group_by()
        order_by = self._parse_order_by()
        limit, offset = self._parse_limit_offset()
        query = SelectQuery(
            projection=projection,
            where=where,
            distinct=distinct,
            limit=limit,
            offset=offset,
            order_by=order_by,
            group_by=group_by,
        )
        self._check_grouped_projection(query)
        return query

    def _check_grouped_projection(self, query: SelectQuery) -> None:
        """SPARQL 19.8: a grouped query may only project grouped variables.

        Every plain projected variable must appear in GROUP BY (``SELECT *``
        is never valid in a grouped query) — anything else would silently
        return unbound columns.
        """
        if not query.aggregated:
            return
        if query.projection is None:
            raise SparqlParseError(
                "SELECT * cannot be combined with GROUP BY/aggregates; "
                "project grouped variables or aggregate expressions explicitly"
            )
        grouped = {
            condition.name for condition in query.group_by if isinstance(condition, Variable)
        }
        for item in query.projection:
            if isinstance(item, Variable) and item.name not in grouped:
                raise SparqlParseError(
                    f"variable ?{item.name} is projected but not in GROUP BY; "
                    "in an aggregated query every plain projected variable "
                    "must be a grouping variable"
                )

    def _parse_prologue(self) -> None:
        while self._accept_keyword("PREFIX"):
            kind, value = self._next()
            if kind != "pname" or not value.endswith(":"):
                raise self._error("expected prefix name", self._index - 1)
            prefix = value[:-1]
            kind, iri = self._next()
            if kind != "iri":
                raise self._error(f"expected IRI after prefix {prefix!r}", self._index - 1)
            self._prefixes[prefix] = iri[1:-1]

    def _parse_projection(self) -> Optional[List[ProjectionItem]]:
        token = self._peek()
        if token and token[0] == "punct" and token[1] == "*":
            self._index += 1
            return None
        items: List[ProjectionItem] = []
        while True:
            token = self._peek()
            if token and token[0] == "var":
                self._index += 1
                items.append(Variable(token[1][1:]))
            elif token == ("punct", "("):
                self._index += 1
                expression = self._parse_expression()
                self._expect_keyword("AS")
                kind, value = self._next()
                if kind != "var":
                    raise self._error("expected variable after AS", self._index - 1)
                self._expect_punct(")")
                items.append(SelectExpression(expression=expression, variable=Variable(value[1:])))
            else:
                break
        if not items:
            raise self._error("SELECT clause must project '*', variables or (expr AS ?var)")
        return items

    # -------------------------------------------------------------- #
    # solution modifiers
    # -------------------------------------------------------------- #

    def _parse_group_by(self) -> List[Expression]:
        if not self._accept_keyword("GROUP"):
            return []
        self._expect_keyword("BY")
        conditions: List[Expression] = []
        while True:
            token = self._peek()
            if token and token[0] == "var":
                self._index += 1
                conditions.append(Variable(token[1][1:]))
            elif token == ("punct", "("):
                self._index += 1
                conditions.append(self._parse_expression())
                self._expect_punct(")")
            else:
                break
        if not conditions:
            raise self._error("GROUP BY needs at least one grouping condition")
        return conditions

    def _parse_order_by(self) -> List[OrderCondition]:
        if not self._accept_keyword("ORDER"):
            return []
        self._expect_keyword("BY")
        conditions: List[OrderCondition] = []
        while True:
            direction = self._accept_keyword("ASC", "DESC")
            if direction is not None:
                self._expect_punct("(")
                expression = self._parse_expression()
                self._expect_punct(")")
                conditions.append(
                    OrderCondition(expression=expression, descending=direction == "DESC")
                )
                continue
            token = self._peek()
            if token and token[0] == "var":
                self._index += 1
                conditions.append(OrderCondition(expression=Variable(token[1][1:])))
                continue
            if token == ("punct", "("):
                self._index += 1
                expression = self._parse_expression()
                self._expect_punct(")")
                conditions.append(OrderCondition(expression=expression))
                continue
            break
        if not conditions:
            raise self._error("ORDER BY needs at least one sort condition")
        return conditions

    def _parse_limit_offset(self) -> Tuple[Optional[int], Optional[int]]:
        limit: Optional[int] = None
        offset: Optional[int] = None
        while True:
            if self._accept_keyword("LIMIT"):
                if limit is not None:
                    raise self._error("duplicate LIMIT clause", self._index - 1)
                limit = self._parse_nonnegative_integer("LIMIT")
                continue
            if self._accept_keyword("OFFSET"):
                if offset is not None:
                    raise self._error("duplicate OFFSET clause", self._index - 1)
                offset = self._parse_nonnegative_integer("OFFSET")
                continue
            return limit, offset

    def _parse_nonnegative_integer(self, clause: str) -> int:
        kind, value = self._next()
        if kind != "number" or "." in value or value.startswith("-"):
            raise self._error(f"expected a non-negative integer after {clause}", self._index - 1)
        return int(value)

    # -------------------------------------------------------------- #
    # group graph pattern
    # -------------------------------------------------------------- #

    def _parse_group(self) -> GroupGraphPattern:
        self._expect_punct("{")
        group = GroupGraphPattern()
        while True:
            token = self._peek()
            if token is None:
                raise self._error("unterminated group graph pattern")
            if token == ("punct", "}"):
                self._index += 1
                return group
            if token[0] == "keyword" and token[1].upper() == "FILTER":
                self._index += 1
                group.filters.append(self._parse_filter())
                self._accept_punct(".")
                continue
            if token[0] == "keyword" and token[1].upper() == "BIND":
                self._index += 1
                group.binds.append(self._parse_bind())
                self._accept_punct(".")
                continue
            if token[0] == "keyword" and token[1].upper() == "OPTIONAL":
                self._index += 1
                group.optionals.append(self._parse_group())
                self._accept_punct(".")
                continue
            if token[0] == "keyword" and token[1].upper() == "VALUES":
                self._index += 1
                group.values.append(self._parse_values())
                self._accept_punct(".")
                continue
            if token == ("punct", "{"):
                group.unions.append(self._parse_union())
                self._accept_punct(".")
                continue
            self._parse_triples_block(group)

    def _parse_union(self) -> Union:
        branches = [self._parse_group()]
        while self._accept_keyword("UNION"):
            branches.append(self._parse_group())
        return Union(branches=branches)

    def _parse_filter(self) -> Filter:
        self._expect_punct("(")
        expression = self._parse_expression()
        self._expect_punct(")")
        if contains_aggregate(expression):
            # SPARQL 1.1 only allows aggregates in the SELECT clause (and
            # HAVING, which this subset omits); in a FILTER the error would
            # otherwise be swallowed by the errors-as-false rule and return
            # an inexplicably empty result.
            raise self._error("aggregates are not allowed in FILTER expressions")
        return Filter(expression=expression)

    def _parse_bind(self) -> Bind:
        self._expect_punct("(")
        expression = self._parse_expression()
        self._expect_keyword("AS")
        kind, value = self._next()
        if kind != "var":
            raise self._error("expected variable after AS", self._index - 1)
        self._expect_punct(")")
        if contains_aggregate(expression):
            raise self._error("aggregates are not allowed in BIND expressions")
        return Bind(expression=expression, variable=Variable(value[1:]))

    def _parse_values(self) -> InlineData:
        """``VALUES ?x { ... }`` or ``VALUES (?x ?y) { (..) (..) }``."""
        variables: List[Variable] = []
        single_variable = False
        token = self._peek()
        if token and token[0] == "var":
            self._index += 1
            variables.append(Variable(token[1][1:]))
            single_variable = True
        else:
            self._expect_punct("(")
            while True:
                token = self._peek()
                if token and token[0] == "var":
                    self._index += 1
                    variables.append(Variable(token[1][1:]))
                    continue
                break
            self._expect_punct(")")
        rows: List[Tuple[Optional[PatternTerm], ...]] = []
        self._expect_punct("{")
        while True:
            token = self._peek()
            if token is None:
                raise self._error("unterminated VALUES block")
            if token == ("punct", "}"):
                self._index += 1
                break
            if single_variable:
                rows.append((self._parse_data_term(),))
                continue
            self._expect_punct("(")
            row: List[Optional[PatternTerm]] = []
            while not self._accept_punct(")"):
                row.append(self._parse_data_term())
            if len(row) != len(variables):
                raise self._error(
                    f"VALUES row has {len(row)} terms for {len(variables)} variables",
                    self._index - 1,
                )
            rows.append(tuple(row))
        return InlineData(variables=variables, rows=rows)

    def _parse_data_term(self) -> Optional[PatternTerm]:
        """One VALUES data entry: a constant term or ``UNDEF`` (→ ``None``)."""
        if self._accept_keyword("UNDEF"):
            return None
        term = self._parse_pattern_term()
        if isinstance(term, Variable):
            raise self._error("variables are not allowed in VALUES data rows", self._index - 1)
        return term

    # -------------------------------------------------------------- #
    # triples
    # -------------------------------------------------------------- #

    def _parse_triples_block(self, group: GroupGraphPattern) -> None:
        subject = self._parse_pattern_term()
        while True:
            predicate = self._parse_verb()
            while True:
                obj = self._parse_pattern_term()
                if isinstance(predicate, (Variable, URI)):
                    group.bgp.patterns.append(TriplePattern(subject, predicate, obj))
                else:
                    group.paths.append(PropertyPathPattern(subject, predicate, obj))
                if self._accept_punct(","):
                    continue
                break
            if self._accept_punct(";"):
                token = self._peek()
                # A dangling ';' before '.' or '}' is tolerated.
                if token in (("punct", "."), ("punct", "}")):
                    self._accept_punct(".")
                    return
                continue
            self._accept_punct(".")
            return

    # -------------------------------------------------------------- #
    # property paths (SPARQL 1.1 §9: Path grammar, rules 88-96)
    # -------------------------------------------------------------- #

    def _parse_verb(self):
        """The predicate slot: a variable, a plain IRI, or a property path.

        A path expression that degenerates to a single forward predicate
        (no path operators) is returned as its bare :class:`URI`, so plain
        triple patterns take the existing BGP route unchanged.
        """
        token = self._peek()
        if token and token[0] == "var":
            self._index += 1
            return Variable(token[1][1:])
        path = self._parse_path()
        if isinstance(path, PathLink):
            return path.predicate
        return path

    def _parse_path(self) -> PathExpression:
        """``PathAlternative := PathSequence ('|' PathSequence)*``."""
        branches = [self._parse_path_sequence()]
        while self._accept_punct("|"):
            branches.append(self._parse_path_sequence())
        if len(branches) == 1:
            return branches[0]
        return PathAlternative(branches=tuple(branches))

    def _parse_path_sequence(self) -> PathExpression:
        """``PathSequence := PathEltOrInverse ('/' PathEltOrInverse)*``."""
        steps = [self._parse_path_elt_or_inverse()]
        while self._accept_punct("/"):
            steps.append(self._parse_path_elt_or_inverse())
        if len(steps) == 1:
            return steps[0]
        return PathSequence(steps=tuple(steps))

    def _parse_path_elt_or_inverse(self) -> PathExpression:
        if self._accept_punct("^"):
            return PathInverse(path=self._parse_path_elt())
        return self._parse_path_elt()

    def _parse_path_elt(self) -> PathExpression:
        """``PathElt := PathPrimary ('?' | '*' | '+')?``."""
        primary = self._parse_path_primary()
        if self._accept_punct("?"):
            return PathZeroOrOne(path=primary)
        if self._accept_punct("*"):
            return PathZeroOrMore(path=primary)
        if self._accept_punct("+"):
            return PathOneOrMore(path=primary)
        return primary

    def _parse_path_primary(self) -> PathExpression:
        token = self._peek()
        if token is None:
            raise self._error("unexpected end of property path")
        if token == ("punct", "("):
            self._index += 1
            path = self._parse_path()
            self._expect_punct(")")
            return path
        if token == ("punct", "!"):
            self._index += 1
            return self._parse_negated_property_set()
        iri = self._parse_path_iri()
        if iri is None:
            raise self._error("expected an IRI, 'a', '!' or '(' in property path")
        return PathLink(predicate=iri)

    def _parse_path_iri(self) -> Optional[URI]:
        """An IRI / prefixed name / ``a`` inside a path, or ``None``."""
        token = self._peek()
        if token is None:
            return None
        kind, value = token
        if kind == "iri":
            self._index += 1
            return URI(value[1:-1])
        if kind == "pname":
            self._index += 1
            return self._resolve_pname(value)
        if kind == "keyword" and value.upper() == "A":
            self._index += 1
            return RDF.type
        return None

    def _parse_negated_property_set(self) -> PathNegatedSet:
        """``!iri``, ``!^iri``, or ``!( iri | ^iri | ... )``."""
        forward: List[URI] = []
        inverse: List[URI] = []

        def one_member() -> None:
            inverted = self._accept_punct("^")
            iri = self._parse_path_iri()
            if iri is None:
                raise self._error("expected an IRI or 'a' in negated property set")
            (inverse if inverted else forward).append(iri)

        if self._accept_punct("("):
            if not self._accept_punct(")"):
                while True:
                    one_member()
                    if self._accept_punct("|"):
                        continue
                    self._expect_punct(")")
                    break
        else:
            one_member()
        return PathNegatedSet(forward=tuple(forward), inverse=tuple(inverse))

    def _parse_pattern_term(self, allow_a: bool = False) -> PatternTerm:
        kind, value = self._next()
        if kind == "var":
            return Variable(value[1:])
        if kind == "iri":
            return URI(value[1:-1])
        if kind == "pname":
            return self._resolve_pname(value)
        if kind == "bnode":
            return BlankNode(value[2:])
        if kind == "literal":
            return self._parse_literal(value)
        if kind == "number":
            datatype = XSD_DECIMAL if "." in value else XSD_INTEGER
            return Literal(value, datatype=datatype)
        if kind == "keyword":
            upper = value.upper()
            if upper == "A":
                return RDF.type
            if upper in ("TRUE", "FALSE"):
                return Literal(value.lower(), datatype=XSD_BOOLEAN)
        raise self._error("unexpected token in triple pattern", self._index - 1)

    def _resolve_pname(self, pname: str) -> URI:
        prefix, _, local = pname.partition(":")
        if prefix not in self._prefixes:
            raise self._error(f"unknown prefix {prefix!r}", self._index - 1)
        return URI(self._prefixes[prefix] + local)

    def _parse_literal(self, raw: str) -> Literal:
        closing = raw.rindex('"')
        lexical = _unescape(raw[1:closing])
        suffix = raw[closing + 1 :]
        if suffix.startswith("^^<"):
            return Literal(lexical, datatype=suffix[3:-1])
        if suffix.startswith("^^"):
            return Literal(lexical, datatype=self._resolve_pname(suffix[2:]).value)
        if suffix.startswith("@"):
            return Literal(lexical, language=suffix[1:])
        return Literal(lexical)

    # -------------------------------------------------------------- #
    # expressions (precedence climbing)
    # -------------------------------------------------------------- #

    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        operands = [left]
        while True:
            token = self._peek()
            if token and token[0] == "logic" and token[1] == "||":
                self._index += 1
                operands.append(self._parse_and())
            else:
                break
        if len(operands) == 1:
            return left
        return BooleanExpression(operator="or", operands=tuple(operands))

    def _parse_and(self) -> Expression:
        left = self._parse_comparison()
        operands = [left]
        while True:
            token = self._peek()
            if token and token[0] == "logic" and token[1] == "&&":
                self._index += 1
                operands.append(self._parse_comparison())
            else:
                break
        if len(operands) == 1:
            return left
        return BooleanExpression(operator="and", operands=tuple(operands))

    def _parse_comparison(self) -> Expression:
        left = self._parse_additive()
        token = self._peek()
        if token and token[0] == "comparator":
            self._index += 1
            right = self._parse_additive()
            return Comparison(operator=token[1], left=left, right=right)
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token and token[0] == "punct" and token[1] in "+-":
                self._index += 1
                right = self._parse_multiplicative()
                left = Arithmetic(operator=token[1], left=left, right=right)
            else:
                return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token and token[0] == "punct" and token[1] in "*/":
                self._index += 1
                right = self._parse_unary()
                left = Arithmetic(operator=token[1], left=left, right=right)
            else:
                return left

    def _parse_unary(self) -> Expression:
        if self._accept_punct("!"):
            return Negation(operand=self._parse_unary())
        return self._parse_primary()

    def _parse_aggregate(self, name: str) -> Aggregate:
        """Body of an aggregate call, after ``name`` and ``(`` are consumed."""
        distinct = bool(self._accept_keyword("DISTINCT"))
        if self._accept_punct("*"):
            if name != "count":
                raise self._error(f"'*' is only valid inside COUNT, not {name.upper()}")
            self._expect_punct(")")
            return Aggregate(name=name, expression=None, distinct=distinct)
        expression = self._parse_expression()
        self._expect_punct(")")
        return Aggregate(name=name, expression=expression, distinct=distinct)

    def _parse_primary(self) -> Expression:
        token = self._peek()
        if token is None:
            raise self._error("unexpected end of expression")
        kind, value = token
        if kind == "punct" and value == "(":
            self._index += 1
            inner = self._parse_expression()
            self._expect_punct(")")
            return inner
        if kind == "var":
            self._index += 1
            return Variable(value[1:])
        if kind == "iri":
            self._index += 1
            return URI(value[1:-1])
        if kind == "literal":
            self._index += 1
            return self._parse_literal(value)
        if kind == "number":
            self._index += 1
            datatype = XSD_DECIMAL if "." in value else XSD_INTEGER
            return Literal(value, datatype=datatype)
        if kind == "keyword" and value.upper() in ("TRUE", "FALSE"):
            self._index += 1
            return Literal(value.lower(), datatype=XSD_BOOLEAN)
        if kind in ("name", "keyword", "pname"):
            # Function or aggregate call: name '(' args ')'
            next_token = self._peek(1)
            if next_token == ("punct", "("):
                self._index += 2
                lowered = value.lower()
                if lowered in _AGGREGATES:
                    return self._parse_aggregate(lowered)
                arguments: List[Expression] = []
                if not self._accept_punct(")"):
                    while True:
                        arguments.append(self._parse_expression())
                        if self._accept_punct(","):
                            continue
                        self._expect_punct(")")
                        break
                return FunctionCall(name=lowered, arguments=tuple(arguments))
            if kind == "pname":
                self._index += 1
                return self._resolve_pname(value)
        raise self._error("unexpected token in expression")


#: Backwards-compatible alias (the class was private before the 1.1 expansion).
_Parser = SparqlParser


def parse_query(query: str) -> Query:
    """Parse a SPARQL query (supported subset) into its AST.

    Returns a :class:`~repro.sparql.ast.SelectQuery` or an
    :class:`~repro.sparql.ast.AskQuery`; raises :class:`SparqlParseError`
    with line/column information when the text is outside the subset.

    >>> parse_query("SELECT ?s WHERE { ?s a <http://x.org/C> } LIMIT 3").limit
    3
    """
    return SparqlParser(query).parse()
