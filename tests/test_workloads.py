"""Tests for the LUBM and ENGIE workload generators and the query catalog."""

from __future__ import annotations


from repro.ontology.schema import OntologySchema
from repro.rdf.namespaces import LUBM, QUDT, SOSA
from repro.rdf.terms import URI
from repro.workloads.engie import (
    PRESSURE_RANGE_BAR,
    anomaly_detection_query,
    engie_ontology,
    water_distribution_250,
    water_distribution_500,
    water_distribution_graph,
)
from repro.workloads.lubm import (
    TABLE1_CARDINALITIES,
    TABLE2_CARDINALITIES,
    generate_lubm,
    lubm_ontology,
    lubm_subsets,
)


class TestLubmOntology:
    def test_class_hierarchy_relevant_to_queries(self):
        schema = OntologySchema.from_graph(lubm_ontology())
        assert schema.is_subconcept_of(LUBM.GraduateStudent, LUBM.Person)
        assert schema.is_subconcept_of(LUBM.FullProfessor, LUBM.Person)
        assert schema.is_subconcept_of(LUBM.UndergraduateStudent, LUBM.Student)
        assert schema.is_subconcept_of(LUBM.Department, LUBM.Organization)
        assert not schema.is_subconcept_of(LUBM.Course, LUBM.Person)

    def test_property_hierarchy(self):
        schema = OntologySchema.from_graph(lubm_ontology())
        assert schema.is_subproperty_of(LUBM.headOf, LUBM.memberOf)
        assert schema.is_subproperty_of(LUBM.worksFor, LUBM.memberOf)
        assert schema.is_subproperty_of(LUBM.undergraduateDegreeFrom, LUBM.degreeFrom)

    def test_domain_and_range(self):
        schema = OntologySchema.from_graph(lubm_ontology())
        assert schema.domain_of(LUBM.takesCourse) == LUBM.Student
        assert schema.range_of(LUBM.teacherOf) == LUBM.Course


class TestLubmGenerator:
    def test_deterministic(self):
        first = generate_lubm(departments=1, seed=3)
        second = generate_lubm(departments=1, seed=3)
        assert len(first.graph) == len(second.graph)
        assert set(first.graph) == set(second.graph)

    def test_seed_changes_data(self):
        first = generate_lubm(departments=1, seed=3)
        second = generate_lubm(departments=1, seed=4)
        assert set(first.graph) != set(second.graph)

    def test_scale_with_departments(self):
        small = generate_lubm(departments=1, seed=1)
        large = generate_lubm(departments=3, seed=1)
        assert len(large.graph) > 2 * len(small.graph)

    def test_full_scale_exceeds_100k(self):
        # The paper's LUBM(1) dataset holds over 100k triples; checked on the
        # default parameters without generating twice (session fixture reuse).
        dataset = generate_lubm()
        assert dataset.triple_count > 100_000

    def test_landmark_cardinalities_table1(self, small_lubm):
        graph = small_lubm.graph
        assert len(list(graph.triples(small_lubm.landmark_uri("student_takes_4"), LUBM.takesCourse, None))) == 4
        for cardinality in TABLE1_CARDINALITIES[1:]:
            landmark = small_lubm.landmark_uri(f"pub_authors_{cardinality}")
            assert len(list(graph.triples(landmark, LUBM.publicationAuthor, None))) == cardinality

    def test_landmark_cardinalities_table2(self, small_lubm):
        graph = small_lubm.graph
        assert len(list(graph.triples(None, LUBM.advisor, small_lubm.landmark_uri("advisor_5")))) == 5
        assert len(list(graph.triples(None, LUBM.takesCourse, small_lubm.landmark_uri("course_takers_17")))) == 17
        assert len(list(graph.triples(None, LUBM.worksFor, small_lubm.landmark_uri("dept_workers_135")))) == 135
        assert len(list(graph.triples(None, LUBM.name, small_lubm.landmark_literal("pub_name_283")))) == 283
        assert len(list(graph.triples(None, LUBM.memberOf, small_lubm.landmark_uri("dept_members_521")))) == 521

    def test_landmark_accessors(self, small_lubm):
        assert small_lubm.landmark_cardinality("advisor_5") == 5
        assert small_lubm.landmark_cardinality("pub_name_283") == 283
        assert isinstance(small_lubm.landmark_uri("m5_publication"), URI)

    def test_every_person_has_a_type_and_name(self, small_lubm):
        graph = small_lubm.graph
        subjects_with_name = set(graph.subjects(LUBM.name, None))
        for student in graph.instances_of(LUBM.GraduateStudent):
            assert student in subjects_with_name

    def test_subsets_are_prefixes(self, small_lubm):
        subsets = lubm_subsets(small_lubm, sizes=(1000, 5000))
        assert len(subsets["1K"]) == 1000
        assert len(subsets["5K"]) == 5000
        assert list(subsets["1K"]) == list(small_lubm.graph)[:1000]
        assert subsets["100K"] is small_lubm.graph


class TestEngieWorkload:
    def test_ontology_hierarchy(self):
        schema = OntologySchema.from_graph(engie_ontology())
        assert schema.is_subconcept_of(QUDT.PressureOrStressUnit, QUDT.PressureUnit)
        assert schema.is_subconcept_of(QUDT.Pressure, QUDT.PressureUnit)
        assert schema.is_subconcept_of(QUDT.AmountOfSubstanceUnit, QUDT.ScienceUnit)

    def test_dataset_sizes_match_paper(self):
        assert len(water_distribution_250()) == 250
        assert len(water_distribution_500()) == 500

    def test_topology_follows_figure1(self):
        graph = water_distribution_graph(observations_per_sensor=3, stations=2, seed=1)
        platforms = graph.instances_of(SOSA.Platform)
        assert len(platforms) == 2
        sensors = graph.instances_of(SOSA.Sensor)
        assert len(sensors) == 4
        # Every observation has a result with a numeric value and a unit.
        for observation in graph.instances_of(SOSA.Observation):
            results = list(graph.objects(observation, SOSA.hasResult))
            assert len(results) == 1
            assert list(graph.objects(results[0], QUDT.numericValue))
            assert list(graph.objects(results[0], QUDT.unit))

    def test_stations_use_heterogeneous_units(self):
        graph = water_distribution_graph(observations_per_sensor=3, stations=2, seed=1)
        units = {str(u) for u in graph.objects(None, QUDT.unit)}
        assert "http://qudt.org/vocab/unit/BAR" in units
        assert "http://qudt.org/vocab/unit/HectoPA" in units

    def test_deterministic(self):
        assert set(water_distribution_250(seed=5)) == set(water_distribution_250(seed=5))

    def test_anomaly_rate_zero_produces_no_out_of_range_pressure(self):
        graph = water_distribution_graph(observations_per_sensor=10, stations=1, anomaly_rate=0.0, seed=2)
        low, high = PRESSURE_RANGE_BAR
        unit_bar = URI("http://qudt.org/vocab/unit/BAR")
        for result in graph.subjects(QUDT.unit, unit_bar):
            for value in graph.objects(result, QUDT.numericValue):
                assert low <= float(value.lexical) <= high


class TestQueryCatalog:
    def test_26_queries_with_paper_identifiers(self, small_lubm_catalog):
        queries = small_lubm_catalog.all_queries()
        assert len(queries) == 26
        identifiers = [query.identifier for query in queries]
        assert identifiers[:5] == ["S1", "S2", "S3", "S4", "S5"]
        assert identifiers[-6:] == ["R1", "R2", "R3", "R4", "R5", "R6"]

    def test_groups(self, small_lubm_catalog):
        assert len(small_lubm_catalog.group("sp?o")) == 5
        assert len(small_lubm_catalog.group("?spo")) == 5
        assert len(small_lubm_catalog.group("?sp?o")) == 5
        assert len(small_lubm_catalog.group("bgp")) == 5
        assert len(small_lubm_catalog.group("reasoning")) == 6

    def test_reasoning_flags(self, small_lubm_catalog):
        by_id = small_lubm_catalog.by_identifier()
        assert not by_id["M4"].requires_reasoning
        assert by_id["R5"].requires_reasoning

    def test_expected_cardinalities_recorded(self, small_lubm_catalog):
        by_id = small_lubm_catalog.by_identifier()
        assert [by_id[f"S{i}"].expected_cardinality for i in range(1, 6)] == list(TABLE1_CARDINALITIES)
        assert [by_id[f"S{i}"].expected_cardinality for i in range(6, 11)] == list(TABLE2_CARDINALITIES)

    def test_all_queries_parse(self, small_lubm_catalog):
        from repro.sparql.parser import parse_query

        for query in small_lubm_catalog.all_queries():
            parsed = parse_query(query.sparql)
            assert parsed.triple_patterns or parsed.where.unions

    def test_motivating_example_query_text(self):
        assert "PressureUnit" in anomaly_detection_query()
