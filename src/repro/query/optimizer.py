"""Join-order planning: the cost-based DP planner and the paper's Algorithm 1.

Two planners produce the same left-deep :class:`~repro.query.plan.PhysicalPlan`
IR (memory-friendly on edge devices):

* :class:`CostBasedJoinOrderOptimizer` — the default since the cost-based
  planning rework.  A dynamic-programming enumerator over the query graph's
  pattern subsets picks the left-deep order minimizing total cost under a
  :class:`CostModel` calibrated in **SDS-kernel-call units** (the counters of
  :mod:`repro.sds.kernels`), with cardinalities chained through the join
  prefix by :class:`~repro.query.cardinality.CardinalityEstimator`
  (per-property distinct counts, characteristic-set star refinement).  Cross
  products are costed explicitly (re-evaluating the pattern once per prefix
  row) and flagged ``CARTESIAN``.  Above :attr:`~CostBasedJoinOrderOptimizer.dp_threshold`
  patterns the enumerator falls back to the paper's greedy order (still
  cost-annotated, ``method="cost-greedy"``).

* :class:`HeuristicJoinOrderOptimizer` — the paper's Section-5.1
  Algorithm 1, kept verbatim for differential testing and as the greedy
  fallback.  It combines:

  - **Heuristic 1** — a triple-pattern priority adapted from Tsialiamanis et
    al. to SuccinctEdge's access paths::

        (s, rdf:type, ?o) > (?s, rdf:type, o) > (s, p, ?o) > (?s, p, o) > (?s, p, ?o)

  - **Heuristic 2** — join-type preference induced by the PSO self-index
    (subject-subject joins over subject-object joins over the rest);
  - **Statistics** — per-entry occurrence counts recorded at dictionary
    creation time (min-of-constants bound), plus run-time counts computed on
    the SDS structures (Algorithm 2).

:class:`JoinOrderOptimizer` is the cost-based planner under its historical
name (every engine constructs it); pass ``planner="heuristic"`` to the
engines to compare the two on live workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.dictionary.statistics import DictionaryStatistics
from repro.query.cardinality import CardinalityEstimator, JoinState, PatternEstimate
from repro.query.paths import path_access_label
from repro.query.plan import (
    AccessPath,
    JoinMethod,
    ModifierOp,
    ModifierStep,
    PathStep,
    PhysicalPlan,
    PlanStep,
    classify_access_path,
)
from repro.query.query_graph import QueryGraph, QueryNode
from repro.sparql.ast import SelectQuery, TriplePattern, Variable

#: Heuristic-1 priority ranks (lower executes earlier).
_SHAPE_RANK = {
    "s,p,o": 0,        # fully bound: an existence check, maximally selective
    "s,?p,o": 0,
    "s,p,?o": 2,
    "?s,p,o": 3,
    "s,?p,?o": 4,
    "?s,p,?o": 4,
    "?s,?p,o": 4,
    "?s,?p,?o": 5,
}

#: Heuristic-2 join-type preference (lower is better).
_JOIN_RANK = {"SS": 0, "SO": 1, "OS": 1, "OO": 2, "SP": 3, "PS": 3, "OP": 3, "PO": 3, "PP": 4}


# --------------------------------------------------------------------------- #
# cost model (SDS-kernel-call units)
# --------------------------------------------------------------------------- #


@dataclass
class CostModel:
    """Operator costs in SDS-kernel-call units.

    The batched kernels of PR 1 make every access path a *setup* (a constant
    number of rank/select/scan calls locating the run) plus an amortized
    *per-emitted-row* share of the batched decode.  The defaults below match
    measurements on LUBM-shaped stores; :meth:`calibrated` re-fits them on a
    concrete store by snapshotting the kernel counters around real probes
    (the calibration method documented in ``docs/query_planning.md``).

    ``rdf:type`` paths run on the red-black-tree store, which issues no SDS
    kernel calls at all — they are priced in *equivalent* units (an ``O(log
    n)`` tree descent ≈ one bitmap select) so the planner does not treat
    them as free.
    """

    #: Setup per bound-slot probe on a PSO layout ((s,p,?o) / (?s,p,o)).
    #: Measured ~30-60 calls on LUBM stores: locating a subject inside a
    #: property run costs a cascade of rank/select calls, which is why a
    #: probe is ~two orders of magnitude dearer than one scanned row.
    pso_probe: float = 30.0
    #: Setup per property-run scan ((?s,p,?o)).
    pso_scan: float = 8.0
    #: Amortized cost per emitted PSO row (batched kernels).
    pso_row: float = 0.4
    #: Equivalent cost of one red-black-tree lookup (rdf:type paths).
    rdftype_probe: float = 1.0
    #: Equivalent cost per emitted rdf:type row.
    rdftype_row: float = 0.05
    #: Per-property-run setup of an unbound-predicate full scan.
    full_scan_property: float = 8.0

    @classmethod
    def calibrated(cls, store, sample_properties: int = 6) -> "CostModel":
        """Fit the constants on ``store`` using the SDS kernel counters.

        Measures real property-run scans of different sizes (a linear fit
        gives the per-row and setup shares) and bound-subject probes.
        Returns the defaults when the store is too small to measure.
        """
        from repro.sds.kernels import total_kernel_calls

        model = cls()
        object_store = getattr(store, "object_store", None)
        if object_store is None:
            return model
        try:
            property_ids = list(object_store.properties)[:sample_properties]
        except Exception:
            return model
        runs: List[Tuple[int, int]] = []
        for property_id in property_ids:
            before = total_kernel_calls()
            rows = sum(1 for _ in object_store.pairs_for_property(property_id))
            runs.append((rows, total_kernel_calls() - before))
        runs.sort()
        if len(runs) >= 2 and runs[-1][0] > runs[0][0]:
            (small_rows, small_calls), (large_rows, large_calls) = runs[0], runs[-1]
            per_row = (large_calls - small_calls) / (large_rows - small_rows)
            model.pso_row = max(0.01, per_row)
            model.pso_scan = max(0.5, small_calls - model.pso_row * small_rows)
        probe_costs: List[float] = []
        for property_id in property_ids:
            sampled = []
            for pair in object_store.pairs_for_property(property_id):
                if not sampled or pair[0] != sampled[-1]:
                    sampled.append(pair[0])
                if len(sampled) >= 3:
                    break
            for subject_id in sampled:
                before = total_kernel_calls()
                emitted = len(object_store.objects_for(subject_id, property_id))
                calls = total_kernel_calls() - before
                probe_costs.append(max(0.1, calls - model.pso_row * emitted))
        if probe_costs:
            model.pso_probe = max(0.5, sum(probe_costs) / len(probe_costs))
        return model

    # ------------------------------------------------------------------ #
    # costing primitives
    # ------------------------------------------------------------------ #

    def scan_cost(self, pattern: TriplePattern, estimate: PatternEstimate) -> float:
        """Cost of evaluating ``pattern`` once with no prefix bindings."""
        rows = max(0.0, estimate.rows)
        if isinstance(pattern.predicate, Variable):
            return estimate.probe_width * self.full_scan_property + rows * self.pso_row
        if pattern.is_rdf_type:
            # One tree descent (bound slot) or one in-order traversal (full
            # scan) — either way a single setup plus the per-row share.
            return self.rdftype_probe + rows * self.rdftype_row
        bound = not isinstance(pattern.subject, Variable) or not isinstance(
            pattern.object, Variable
        )
        setup = self.pso_probe if bound else self.pso_scan
        return estimate.probe_width * setup + rows * self.pso_row

    def join_step_cost(
        self,
        pattern: TriplePattern,
        estimate: PatternEstimate,
        left_rows: float,
        out_rows: float,
        probe_bound: bool,
    ) -> float:
        """Cost of joining ``pattern`` onto a prefix of ``left_rows`` rows.

        ``probe_bound`` says whether the join binds the pattern's subject or
        object (an index probe per prefix row); otherwise every prefix row
        re-scans the pattern — the explicit cross-product cost.
        """
        rows = max(0.0, out_rows)
        if isinstance(pattern.predicate, Variable):
            # A bound slot turns the full scan into one probe per stored
            # property; otherwise every prefix row re-scans every run.
            per_property = self.pso_probe if probe_bound else self.full_scan_property
            per_left = estimate.probe_width * per_property
            return left_rows * per_left + rows * self.pso_row
        if pattern.is_rdf_type:
            per_left = self.rdftype_probe
            return left_rows * per_left + rows * self.rdftype_row
        setup = self.pso_probe if probe_bound else self.pso_scan
        return left_rows * estimate.probe_width * setup + rows * self.pso_row


# --------------------------------------------------------------------------- #
# shared planner machinery
# --------------------------------------------------------------------------- #


class _PlannerBase:
    """Shared helpers: join-method selection and the modifier pipeline."""

    # ------------------------------------------------------------------ #
    # solution-modifier pipeline
    # ------------------------------------------------------------------ #

    @staticmethod
    def plan_modifiers(query: SelectQuery) -> List[ModifierStep]:
        """The ordered solution-modifier operators for a SELECT query.

        Each step carries the typed payload the executor interprets, plus a
        rendering for EXPLAIN.  Encodes two pipeline optimizations the
        streaming engine relies on:

        * **LIMIT/OFFSET pushdown** — the slice is a lazy ``islice`` at the
          end of the pipeline, so once ``offset + limit`` rows have passed
          the upstream operators stop being pulled (no further
          triple-pattern probes, hence no further SDS kernel calls);
        * **top-k short circuit** — ``ORDER BY ... LIMIT k`` (without
          DISTINCT, whose duplicate elimination happens after the sort and
          could consume arbitrarily many sorted rows) replaces the full
          sort with a bounded ``heapq.nsmallest(offset + limit)``
          selection.
        """
        steps: List[ModifierStep] = []
        names = tuple(query.projected_names())
        if query.aggregated:
            keys = ", ".join(str(condition) for condition in query.group_by)
            aggregates = ", ".join(str(item.expression) for item in query.select_expressions())
            steps.append(
                ModifierStep(
                    ModifierOp.AGGREGATE,
                    f"keys=[{keys}] {aggregates}".strip(),
                    payload=query,
                )
            )
        elif query.select_expressions():
            detail = ", ".join(
                f"{item.expression} AS ?{item.variable.name}"
                for item in query.select_expressions()
            )
            steps.append(
                ModifierStep(
                    ModifierOp.EXTEND, detail, payload=tuple(query.select_expressions())
                )
            )
        if query.order_by:
            fetch = None
            if query.limit is not None and not query.distinct:
                fetch = (query.offset or 0) + query.limit
            keys = ", ".join(
                ("DESC(%s)" if condition.descending else "%s") % (condition.expression,)
                for condition in query.order_by
            )
            if fetch is not None:
                steps.append(
                    ModifierStep(
                        ModifierOp.TOP_K,
                        f"k={fetch} keys=[{keys}]",
                        payload=(tuple(query.order_by), fetch),
                    )
                )
            else:
                steps.append(
                    ModifierStep(
                        ModifierOp.SORT, f"keys=[{keys}]", payload=tuple(query.order_by)
                    )
                )
        steps.append(ModifierStep(ModifierOp.PROJECT, ", ".join(names), payload=names))
        if query.distinct:
            steps.append(ModifierStep(ModifierOp.DISTINCT, payload=names))
        if query.limit is not None or query.offset is not None:
            detail = []
            if query.offset is not None:
                detail.append(f"offset={query.offset}")
            if query.limit is not None:
                detail.append(f"limit={query.limit}")
            steps.append(
                ModifierStep(
                    ModifierOp.SLICE,
                    " ".join(detail),
                    payload=(query.offset, query.limit),
                )
            )
        return steps

    # ------------------------------------------------------------------ #
    # property-path placement
    # ------------------------------------------------------------------ #

    def plan_paths(self, paths, bound_names: Set[str]) -> List[PathStep]:
        """Order the group's property-path patterns for bind-propagation.

        Paths join after the BGP (they cannot anchor a merge join), so the
        only planning freedom is their order: paths with a bound endpoint —
        a constant, or a variable the BGP already binds — run first (each
        upstream row prunes the BFS to one source), ranked by estimated
        rows ascending; unbound-unbound paths (full relation
        materializations) run last.  The heuristic planner shares this
        placement, just without the cost estimates.
        """
        if not paths:
            return []
        estimator = getattr(self, "estimator", None)
        cost_model = getattr(self, "cost_model", None)

        def endpoint_bound(slot) -> bool:
            if isinstance(slot, Variable):
                return slot.name in bound_names
            return True

        ranked = []
        for index, pattern in enumerate(paths):
            bound = endpoint_bound(pattern.subject) or endpoint_bound(pattern.object)
            rows = estimator.estimate_path(pattern) if estimator is not None else None
            ranked.append((0 if bound else 1, rows if rows is not None else 0.0, index, pattern))
            if isinstance(pattern.subject, Variable):
                bound_names = bound_names | {pattern.subject.name}
            if isinstance(pattern.object, Variable):
                bound_names = bound_names | {pattern.object.name}
        ranked.sort(key=lambda entry: (entry[0], entry[1], entry[2]))
        steps: List[PathStep] = []
        for boundedness, rows, index, pattern in ranked:
            estimated_cardinality = None
            estimated_cost = None
            if estimator is not None:
                estimated_cardinality = int(round(rows))
                scan = cost_model.pso_scan if cost_model is not None else 8.0
                per_row = cost_model.pso_row if cost_model is not None else 0.4
                estimated_cost = scan + rows * per_row
            steps.append(
                PathStep(
                    pattern_index=index,
                    pattern=pattern,
                    access_label=path_access_label(pattern.path),
                    estimated_cardinality=estimated_cardinality,
                    estimated_cost=estimated_cost,
                )
            )
        return steps

    @staticmethod
    def _pick_join_method(node: QueryNode, bound_variables: Set[str]) -> JoinMethod:
        """Merge joins apply when the new TP re-enumerates an ordered subject run.

        The PSO layout keeps subjects ordered inside a property run, so a
        star-shaped ``?s p ?o`` pattern whose subject variable is already
        bound by the prefix can be merge-joined; every other case falls back
        to bind propagation (index nested loop), as in the paper.
        """
        pattern = node.pattern
        subject_is_shared_variable = (
            isinstance(pattern.subject, Variable) and pattern.subject.name in bound_variables
        )
        object_unbound = isinstance(pattern.object, Variable) and pattern.object.name not in bound_variables
        predicate_bound = not isinstance(pattern.predicate, Variable)
        if subject_is_shared_variable and object_unbound and predicate_bound and not node.is_rdf_type:
            return JoinMethod.MERGE
        return JoinMethod.BIND_PROPAGATION


# --------------------------------------------------------------------------- #
# the paper's Algorithm 1 (heuristic planner)
# --------------------------------------------------------------------------- #


class HeuristicJoinOrderOptimizer(_PlannerBase):
    """The paper's greedy planner (Algorithm 1), kept for differential testing.

    Parameters
    ----------
    statistics:
        Per-entry occurrence counts recorded at dictionary creation time.
    runtime_estimator:
        Optional fallback invoked when the dictionary statistics cannot
        estimate a pattern.  The query engine wires this to
        ``TriplePatternEvaluator.estimate_cardinality``, which computes
        Algorithm-2 counts on the SDS rank/select directories — the same
        directories the batched evaluation kernels use, so the estimate
        comes for free.
    """

    def __init__(
        self,
        statistics: Optional[DictionaryStatistics] = None,
        runtime_estimator: Optional[Callable[[TriplePattern], int]] = None,
    ) -> None:
        self.statistics = statistics
        self.runtime_estimator = runtime_estimator

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def optimize(self, patterns: Sequence[TriplePattern]) -> PhysicalPlan:
        """Produce the physical plan (ordered steps) for ``patterns``."""
        if not patterns:
            return PhysicalPlan(steps=[], method="heuristic")
        graph = QueryGraph.from_patterns(patterns)
        order = self.order_patterns(graph)
        steps: List[PlanStep] = []
        done: Set[int] = set()
        bound_variables: Set[str] = set()
        for position, index in enumerate(order):
            node = graph.nodes[index]
            access_path = classify_access_path(node.pattern)
            join_type = ""
            join_method = JoinMethod.NONE
            cartesian = False
            if position > 0:
                edges = graph.edges_between(done, index)
                if edges:
                    join_type = min(edges[0].join_types, key=lambda t: _JOIN_RANK.get(t, 9))
                    join_method = self._pick_join_method(node, bound_variables)
                else:
                    # Disconnected pattern: an explicit cross product — the
                    # executor re-evaluates the pattern per prefix row.
                    join_method = JoinMethod.BIND_PROPAGATION
                    cartesian = True
            steps.append(
                PlanStep(
                    pattern_index=index,
                    pattern=node.pattern,
                    access_path=access_path,
                    join_method=join_method,
                    join_type=join_type,
                    estimated_cardinality=self._estimate(node),
                    cartesian=cartesian,
                )
            )
            done.add(index)
            bound_variables.update(node.pattern.variable_names())
        return PhysicalPlan(steps=steps, method="heuristic")

    def order_patterns(self, graph: QueryGraph) -> List[int]:
        """Algorithm 1: the execution order of the query-graph nodes."""
        if not graph.nodes:
            return []
        order: List[int] = []
        done: Set[int] = set()

        first = self._most_selective_start(graph)
        order.append(first)
        done.add(first)

        while len(done) < len(graph.nodes):
            next_node = self._most_selective_next(graph, done)
            order.append(next_node)
            done.add(next_node)
        return order

    # ------------------------------------------------------------------ #
    # getMostSelective — start node
    # ------------------------------------------------------------------ #

    def _most_selective_start(self, graph: QueryGraph) -> int:
        # Preferred start: an rdf:type TP attached to the rest through an SS join.
        candidates: List[Tuple[Tuple, int]] = []
        for node in graph.nodes:
            if not node.is_rdf_type:
                continue
            edges = graph.neighbours(node.index)
            has_ss = any("SS" in edge.join_types for _other, edge in edges)
            if edges and not has_ss:
                # Only SO-connected rdf:type patterns: de-prioritised by Algorithm 1.
                continue
            candidates.append((self._selectivity_key(node, graph), node.index))
        if candidates:
            return min(candidates)[1]
        # Fallback: any TP, ranked by heuristic shape then statistics.
        all_candidates = [(self._selectivity_key(node, graph), node.index) for node in graph.nodes]
        return min(all_candidates)[1]

    # ------------------------------------------------------------------ #
    # getMostSelective — next node given the current prefix
    # ------------------------------------------------------------------ #

    def _most_selective_next(self, graph: QueryGraph, done: Set[int]) -> int:
        connected: List[Tuple[Tuple, int]] = []
        disconnected: List[Tuple[Tuple, int]] = []
        for node in graph.nodes:
            if node.index in done:
                continue
            edges = graph.edges_between(done, node.index)
            key = self._selectivity_key(node, graph, edges_to_prefix=edges)
            if edges:
                connected.append((key, node.index))
            else:
                disconnected.append((key, node.index))
        if connected:
            return min(connected)[1]
        return min(disconnected)[1]

    # ------------------------------------------------------------------ #
    # ranking helpers
    # ------------------------------------------------------------------ #

    def _selectivity_key(
        self,
        node: QueryNode,
        graph: QueryGraph,
        edges_to_prefix: Optional[List] = None,
    ) -> Tuple:
        shape_rank = self._shape_rank(node)
        if edges_to_prefix:
            join_rank = min(
                _JOIN_RANK.get(label, 9)
                for edge in edges_to_prefix
                for label in edge.join_types
            )
        else:
            # Disconnected from the prefix: a cross product, ranked strictly
            # below every real join type.
            join_rank = 9
        cardinality = self._estimate(node)
        if cardinality is None:
            cardinality = 1 << 30
        return (shape_rank, join_rank, cardinality, node.index)

    def _shape_rank(self, node: QueryNode) -> int:
        pattern = node.pattern
        if node.is_rdf_type:
            # rdf:type patterns use the dedicated red-black-tree store, which is
            # cheaper than the SDS navigation — they rank above the PSO shapes:
            # (s, rdf:type, ?o) > (?s, rdf:type, o) > every non-type shape.
            if not isinstance(pattern.subject, Variable):
                return 0
            if not isinstance(pattern.object, Variable):
                return 1
            return 5
        return _SHAPE_RANK.get(pattern.shape(), 5)

    def _estimate(self, node: QueryNode) -> Optional[int]:
        estimate: Optional[int] = None
        if self.statistics is not None:
            pattern = node.pattern
            subject = None if isinstance(pattern.subject, Variable) else pattern.subject
            predicate = None if isinstance(pattern.predicate, Variable) else pattern.predicate
            obj = None if isinstance(pattern.object, Variable) else pattern.object
            estimate = self.statistics.triple_pattern_cardinality(
                subject=subject,
                predicate=predicate,  # type: ignore[arg-type]
                obj=obj,
                is_rdf_type=node.is_rdf_type,
            )
        if estimate is None and self.runtime_estimator is not None:
            estimate = self.runtime_estimator(node.pattern)
        return estimate


# --------------------------------------------------------------------------- #
# the cost-based DP planner
# --------------------------------------------------------------------------- #


@dataclass
class _DpEntry:
    """Best known way to evaluate one pattern subset."""

    cost: float
    cartesians: int
    state: JoinState
    order: Tuple[int, ...]

    def key(self) -> Tuple:
        # Deterministic comparison: cost first (rounded so float noise does
        # not flip plans between runs), then fewer cross products, then the
        # lexicographically smallest order.
        return (round(self.cost, 9), self.cartesians, self.order)


class CostBasedJoinOrderOptimizer(_PlannerBase):
    """Left-deep DP join enumeration under a kernel-call cost model.

    Parameters
    ----------
    statistics:
        The store's :class:`DictionaryStatistics`; the join profiles it
        carries feed the :class:`CardinalityEstimator`.
    runtime_estimator:
        Algorithm-2 fallback for patterns the statistics cannot estimate.
    cost_model:
        The :class:`CostModel` (defaults match LUBM-shaped stores; see
        :meth:`CostModel.calibrated`).
    reasoning:
        Must match the engine's reasoning mode — it decides whether
        predicate/concept constants expand over LiteMat intervals.
    dp_threshold:
        BGPs with more patterns fall back to the greedy Algorithm-1 order
        (the DP enumerates ``2^n`` subsets).
    """

    dp_threshold: int = 10

    def __init__(
        self,
        statistics: Optional[DictionaryStatistics] = None,
        runtime_estimator: Optional[Callable[[TriplePattern], int]] = None,
        cost_model: Optional[CostModel] = None,
        reasoning: bool = True,
        dp_threshold: Optional[int] = None,
    ) -> None:
        self.statistics = statistics
        self.runtime_estimator = runtime_estimator
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.reasoning = reasoning
        if dp_threshold is not None:
            self.dp_threshold = dp_threshold
        self.estimator = CardinalityEstimator(
            statistics, reasoning=reasoning, runtime_estimator=runtime_estimator
        )
        self._greedy = HeuristicJoinOrderOptimizer(
            statistics=statistics, runtime_estimator=runtime_estimator
        )

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def optimize(self, patterns: Sequence[TriplePattern]) -> PhysicalPlan:
        """Produce the costed physical plan for ``patterns``."""
        if not patterns:
            return PhysicalPlan(steps=[], method="cost-dp")
        graph = QueryGraph.from_patterns(patterns)
        # The star refinement is a pure function of the pattern subset (and
        # the statistics version, constant within one optimize() call); the
        # memo spares the DP its O(2^n · n) transitions each re-validating
        # the star shape and re-scanning the characteristic sets.
        star_memo: Dict[int, Optional[Tuple[str, float, float]]] = {}
        if len(graph.nodes) > self.dp_threshold:
            order = self._greedy.order_patterns(graph)
            method = "cost-greedy"
        else:
            order = self._dp_order(graph, star_memo)
            method = "cost-dp"
        return self._steps_for_order(graph, order, method, star_memo)

    # ------------------------------------------------------------------ #
    # DP enumeration
    # ------------------------------------------------------------------ #

    def _dp_order(
        self,
        graph: QueryGraph,
        star_memo: Dict[int, Optional[Tuple[str, float, float]]],
    ) -> List[int]:
        nodes = graph.nodes
        n = len(nodes)
        best: Dict[int, _DpEntry] = {}
        for node in nodes:
            estimate = self.estimator.estimate_pattern(node.pattern)
            state = self.estimator.initial_state(node.pattern)
            cost = self.cost_model.scan_cost(node.pattern, estimate)
            entry = _DpEntry(cost=cost, cartesians=0, state=state, order=(node.index,))
            best[1 << node.index] = entry
        full = (1 << n) - 1
        masks = sorted(range(1, full + 1), key=lambda m: (bin(m).count("1"), m))
        for mask in masks:
            if mask & (mask - 1) == 0:
                continue  # singletons seeded above
            chosen: Optional[_DpEntry] = None
            for node in nodes:
                bit = 1 << node.index
                if not mask & bit:
                    continue
                previous = best.get(mask ^ bit)
                if previous is None:
                    continue
                candidate = self._extend(graph, previous, node, mask, star_memo)
                if chosen is None or candidate.key() < chosen.key():
                    chosen = candidate
            assert chosen is not None
            best[mask] = chosen
        return list(best[full].order)

    def _extend(
        self,
        graph: QueryGraph,
        previous: _DpEntry,
        node: QueryNode,
        mask: int,
        star_memo: Dict[int, Optional[Tuple[str, float, float]]],
    ) -> _DpEntry:
        estimate = self.estimator.estimate_pattern(node.pattern)
        state, shared = self.estimator.join(previous.state, node.pattern)
        state = self._maybe_refine_star(graph, state, mask, star_memo)
        probe_bound = self._probe_bound(node.pattern, set(previous.state.var_distinct))
        step_cost = self.cost_model.join_step_cost(
            node.pattern,
            estimate,
            left_rows=previous.state.rows,
            out_rows=state.rows,
            probe_bound=probe_bound,
        )
        return _DpEntry(
            cost=previous.cost + step_cost,
            cartesians=previous.cartesians + (0 if shared else 1),
            state=state,
            order=previous.order + (node.index,),
        )

    _STAR_UNSET = object()

    def _maybe_refine_star(
        self,
        graph: QueryGraph,
        state: JoinState,
        mask: int,
        star_memo: Dict[int, Optional[Tuple[str, float, float]]],
    ) -> JoinState:
        answer = star_memo.get(mask, self._STAR_UNSET)
        if answer is self._STAR_UNSET:
            answer = self._star_answer(graph, mask)
            star_memo[mask] = answer
        if answer is None:
            return state
        subject_var, subjects, rows = answer
        return self.estimator.apply_star(state, subject_var, subjects, rows)

    def _star_answer(
        self, graph: QueryGraph, mask: int
    ) -> Optional[Tuple[str, float, float]]:
        patterns = [
            node.pattern for node in graph.nodes if mask & (1 << node.index)
        ]
        roots = set()
        for pattern in patterns:
            if not isinstance(pattern.subject, Variable):
                return None
            roots.add(pattern.subject.name)
            if len(roots) > 1:
                return None
        root = next(iter(roots))
        answer = self.estimator.star_answer(root, patterns)
        if answer is None:
            return None
        return (root, answer[0], answer[1])

    @staticmethod
    def _probe_bound(pattern: TriplePattern, bound: Set[str]) -> bool:
        subject_bound = not isinstance(pattern.subject, Variable) or pattern.subject.name in bound
        object_bound = not isinstance(pattern.object, Variable) or pattern.object.name in bound
        return subject_bound or object_bound

    # ------------------------------------------------------------------ #
    # plan construction (replays the chosen order through the estimator,
    # so the EXPLAIN numbers are exactly the numbers the choice was made on)
    # ------------------------------------------------------------------ #

    def _steps_for_order(
        self,
        graph: QueryGraph,
        order: List[int],
        method: str,
        star_memo: Dict[int, Optional[Tuple[str, float, float]]],
    ) -> PhysicalPlan:
        steps: List[PlanStep] = []
        done: Set[int] = set()
        bound_variables: Set[str] = set()
        state: Optional[JoinState] = None
        cumulative_cost = 0.0
        mask = 0
        for position, index in enumerate(order):
            node = graph.nodes[index]
            estimate = self.estimator.estimate_pattern(node.pattern)
            access_path = classify_access_path(node.pattern)
            join_type = ""
            join_method = JoinMethod.NONE
            cartesian = False
            mask |= 1 << index
            if position == 0:
                state = self.estimator.initial_state(node.pattern)
                state = self._maybe_refine_star(graph, state, mask, star_memo)
                cumulative_cost += self.cost_model.scan_cost(node.pattern, estimate)
            else:
                assert state is not None
                edges = graph.edges_between(done, index)
                new_state, shared = self.estimator.join(state, node.pattern)
                new_state = self._maybe_refine_star(graph, new_state, mask, star_memo)
                probe_bound = self._probe_bound(node.pattern, set(state.var_distinct))
                cumulative_cost += self.cost_model.join_step_cost(
                    node.pattern,
                    estimate,
                    left_rows=state.rows,
                    out_rows=new_state.rows,
                    probe_bound=probe_bound,
                )
                state = new_state
                if edges:
                    join_type = min(edges[0].join_types, key=lambda t: _JOIN_RANK.get(t, 9))
                    join_method = self._pick_join_method(node, bound_variables)
                else:
                    join_method = JoinMethod.BIND_PROPAGATION
                    cartesian = True
            steps.append(
                PlanStep(
                    pattern_index=index,
                    pattern=node.pattern,
                    access_path=access_path,
                    join_method=join_method,
                    join_type=join_type,
                    estimated_cardinality=int(round(estimate.rows)),
                    estimated_rows=int(round(state.rows)),
                    estimated_cost=cumulative_cost,
                    cartesian=cartesian,
                )
            )
            done.add(index)
            bound_variables.update(node.pattern.variable_names())
        return PhysicalPlan(steps=steps, method=method)


class JoinOrderOptimizer(CostBasedJoinOrderOptimizer):
    """The default planner (cost-based), under its historical name.

    Every engine constructs a ``JoinOrderOptimizer``; the paper's greedy
    planner remains available as :class:`HeuristicJoinOrderOptimizer` (the
    engines' ``planner="heuristic"`` knob) for differential testing and for
    the plan-quality benchmark.
    """


def create_optimizer(
    planner: str,
    statistics: Optional[DictionaryStatistics],
    runtime_estimator: Optional[Callable[[TriplePattern], int]],
    reasoning: bool,
    cost_model: Optional[CostModel] = None,
):
    """The planner instance for one engine (``"cost"`` or ``"heuristic"``)."""
    if planner == "heuristic":
        return HeuristicJoinOrderOptimizer(
            statistics=statistics, runtime_estimator=runtime_estimator
        )
    if planner == "cost":
        return JoinOrderOptimizer(
            statistics=statistics,
            runtime_estimator=runtime_estimator,
            reasoning=reasoning,
            cost_model=cost_model,
        )
    raise ValueError(f"unknown planner {planner!r} (expected 'cost' or 'heuristic')")
