"""Tests for SuccinctEdge store persistence (save / load round trips).

Covers both on-disk formats: the v3 varint stream (decoded and rebuilt at
load) and the v4 page-aligned store image (memory-mapped, zero-copy), plus
the v3-to-v4 upgrade path and the corruption error paths of each.
"""

from __future__ import annotations

import struct
import sys
import zlib

import pytest

from repro.store.persistence import (
    PersistenceError,
    dump_store,
    dump_store_image,
    load_store,
    load_store_from_bytes,
    save_store,
    save_store_image,
    serialized_size_in_bytes,
    upgrade_store_image,
)
from repro.store.succinct_edge import SuccinctEdge
from tests.conftest import EX


class TestRoundTrip:
    def test_bytes_round_trip_preserves_triples(self, toy_store, toy_data):
        payload = dump_store(toy_store)
        restored = load_store_from_bytes(payload)
        assert restored.triple_count == toy_store.triple_count
        assert set(restored.match(None, None, None)) == set(toy_data)

    def test_file_round_trip(self, toy_store, tmp_path):
        path = tmp_path / "store.sedg"
        written = save_store(toy_store, str(path))
        assert path.stat().st_size == written
        restored = load_store(str(path))
        assert restored.triple_count == toy_store.triple_count

    def test_queries_agree_after_reload(self, toy_store, toy_data):
        restored = load_store_from_bytes(dump_store(toy_store))
        queries = [
            ("SELECT ?x WHERE { ?x a <http://example.org/Person> }", True),
            ("SELECT ?x ?d WHERE { ?x <http://example.org/memberOf> ?d }", True),
            (
                "SELECT ?x ?n WHERE { ?x a <http://example.org/Department> . "
                "?y <http://example.org/memberOf> ?x . ?y <http://example.org/name> ?n }",
                False,
            ),
        ]
        for query, reasoning in queries:
            assert (
                restored.query(query, reasoning=reasoning).to_set()
                == toy_store.query(query, reasoning=reasoning).to_set()
            )

    def test_litemat_intervals_preserved(self, toy_store):
        restored = load_store_from_bytes(dump_store(toy_store))
        for concept in (EX.Person, EX.Student, EX.Department):
            assert restored.concepts.interval(concept) == toy_store.concepts.interval(concept)
        for prop in (EX.memberOf, EX.worksFor, EX.headOf):
            assert restored.properties.interval(prop) == toy_store.properties.interval(prop)

    def test_statistics_preserved(self, toy_store):
        restored = load_store_from_bytes(dump_store(toy_store))
        assert restored.statistics.concept_cardinality(EX.Person) == toy_store.statistics.concept_cardinality(EX.Person)
        assert restored.statistics.property_cardinality(EX.memberOf) == toy_store.statistics.property_cardinality(EX.memberOf)
        assert restored.statistics.instance_cardinality(EX.alice) == toy_store.statistics.instance_cardinality(EX.alice)

    def test_schema_preserved(self, toy_store):
        restored = load_store_from_bytes(dump_store(toy_store))
        assert restored.schema.is_subconcept_of(EX.GraduateStudent, EX.Person)
        assert restored.schema.is_subproperty_of(EX.headOf, EX.memberOf)

    def test_engie_store_round_trip(self, engie_store, engie_graph):
        restored = load_store_from_bytes(dump_store(engie_store))
        assert set(restored.match(None, None, None)) == set(engie_graph)

    def test_small_lubm_round_trip_counts(self, small_lubm_store):
        restored = load_store_from_bytes(dump_store(small_lubm_store))
        assert restored.lubm_style_summary() == small_lubm_store.lubm_style_summary()


class TestSizeAccounting:
    def test_serialized_size_matches_dump(self, toy_store):
        assert serialized_size_in_bytes(toy_store) == len(dump_store(toy_store))

    def test_serialized_size_grows_with_data(self, toy_store, engie_store):
        assert serialized_size_in_bytes(engie_store) > serialized_size_in_bytes(toy_store)


class TestErrorHandling:
    def test_bad_magic_rejected(self):
        with pytest.raises(PersistenceError):
            load_store_from_bytes(b"NOPE" + b"\x00" * 16)

    def test_truncated_payload_rejected(self, toy_store):
        payload = dump_store(toy_store)
        with pytest.raises(PersistenceError):
            load_store_from_bytes(payload[: len(payload) // 2])

    def test_wrong_version_rejected(self, toy_store):
        payload = bytearray(dump_store(toy_store))
        payload[4] = 99  # corrupt the version field
        with pytest.raises(PersistenceError):
            load_store_from_bytes(bytes(payload))

    def test_empty_store_round_trip(self):
        from repro.rdf.graph import Graph

        store = SuccinctEdge.from_graph(Graph())
        restored = load_store_from_bytes(dump_store(store))
        assert restored.triple_count == 0


# --------------------------------------------------------------------------- #
# v4 store images
# --------------------------------------------------------------------------- #


def _rewrite_image_checksum(data: bytearray) -> None:
    """Recompute the header checksum after patching a v4 image in a test."""
    toc_offset, meta_offset, meta_length = struct.unpack_from("<QQQ", data, 16)
    checksum = zlib.crc32(bytes(data[toc_offset : meta_offset + meta_length])) & 0xFFFFFFFF
    struct.pack_into("<Q", data, 48, checksum)


class TestV4RoundTrip:
    def test_image_bytes_round_trip(self, toy_store, toy_data):
        restored = load_store_from_bytes(dump_store_image(toy_store))
        assert restored.triple_count == toy_store.triple_count
        assert set(restored.match(None, None, None)) == set(toy_data)

    def test_image_file_round_trip_mapped(self, toy_store, toy_data, tmp_path):
        path = tmp_path / "store.sedg"
        written = save_store_image(toy_store, str(path))
        assert path.stat().st_size == written
        restored = load_store(str(path), mmap=True)
        assert restored.image is not None
        assert restored.image.mapped
        restored.image.validate()  # pristine file passes
        assert set(restored.match(None, None, None)) == set(toy_data)

    def test_image_file_round_trip_unmapped(self, toy_store, toy_data, tmp_path):
        path = tmp_path / "store.sedg"
        save_store_image(toy_store, str(path))
        restored = load_store(str(path), mmap=False)
        assert restored.image is not None
        assert not restored.image.mapped
        assert set(restored.match(None, None, None)) == set(toy_data)

    @pytest.mark.skipif(sys.byteorder != "little", reason="big-endian hosts copy+byteswap")
    def test_mapped_layouts_alias_the_image(self, toy_store, tmp_path):
        # The zero-copy claim, structurally: the succinct layouts' word
        # buffers are memoryview slices of the mapping, not decoded arrays.
        path = tmp_path / "store.sedg"
        save_store_image(toy_store, str(path))
        restored = load_store(str(path))
        assert isinstance(restored.object_store.bm_ps._words, memoryview)
        assert isinstance(restored.datatype_store.object_pointers._words, memoryview)

    def test_version_sniffing_dispatch(self, toy_store, tmp_path):
        # load_store reads either format transparently; the caller never
        # declares which one is on disk.
        v3_path, v4_path = tmp_path / "v3.sedg", tmp_path / "v4.sedg"
        save_store(toy_store, str(v3_path))
        save_store_image(toy_store, str(v4_path))
        from_v3 = load_store(str(v3_path))
        from_v4 = load_store(str(v4_path))
        assert from_v3.image is None
        assert from_v4.image is not None
        assert set(from_v3.match(None, None, None)) == set(from_v4.match(None, None, None))

    def test_queries_agree_after_mapped_reload(self, toy_store, tmp_path):
        path = tmp_path / "store.sedg"
        save_store_image(toy_store, str(path))
        restored = load_store(str(path))
        queries = [
            ("SELECT ?x WHERE { ?x a <http://example.org/Person> }", True),
            ("SELECT ?x ?d WHERE { ?x <http://example.org/memberOf> ?d }", True),
            (
                "SELECT ?x ?n WHERE { ?x a <http://example.org/Department> . "
                "?y <http://example.org/memberOf> ?x . ?y <http://example.org/name> ?n }",
                False,
            ),
        ]
        for query, reasoning in queries:
            assert (
                restored.query(query, reasoning=reasoning).to_set()
                == toy_store.query(query, reasoning=reasoning).to_set()
            )

    def test_join_profiles_survive_v4(self, toy_store):
        # v4 persists the cost-based planner's statistics (v3 predates them),
        # so a mapped store plans — and therefore orders rows — identically
        # to the builder output.
        restored = load_store_from_bytes(dump_store_image(toy_store))
        assert restored.statistics.has_profiles == toy_store.statistics.has_profiles
        assert (
            restored.statistics.profiled_property_ids()
            == toy_store.statistics.profiled_property_ids()
        )

    def test_upgrade_v3_to_v4(self, toy_store, toy_data, tmp_path):
        v3_path, v4_path = tmp_path / "old.sedg", tmp_path / "new.sedg"
        save_store(toy_store, str(v3_path))
        written = upgrade_store_image(str(v3_path), str(v4_path))
        assert v4_path.stat().st_size == written
        restored = load_store(str(v4_path))
        assert restored.image is not None
        assert set(restored.match(None, None, None)) == set(toy_data)

    def test_atomic_save_leaves_no_staging_file(self, toy_store, tmp_path):
        path = tmp_path / "store.sedg"
        save_store_image(toy_store, str(path), atomic=True)
        assert [entry.name for entry in tmp_path.iterdir()] == ["store.sedg"]
        assert load_store(str(path)).triple_count == toy_store.triple_count

    def test_facade_convenience_methods(self, toy_store, tmp_path):
        path = tmp_path / "store.sedg"
        toy_store.save_image(str(path), atomic=True)
        restored = SuccinctEdge.load(str(path))
        assert restored.image is not None
        assert restored.triple_count == toy_store.triple_count

    def test_empty_store_image_round_trip(self, tmp_path):
        from repro.rdf.graph import Graph

        store = SuccinctEdge.from_graph(Graph())
        path = tmp_path / "empty.sedg"
        save_store_image(store, str(path))
        restored = load_store(str(path))
        assert restored.triple_count == 0

    def test_engie_store_image_round_trip(self, engie_store, engie_graph):
        restored = load_store_from_bytes(dump_store_image(engie_store))
        assert set(restored.match(None, None, None)) == set(engie_graph)

    def test_mapped_store_rejects_writes(self, toy_store, tmp_path):
        from repro.rdf.terms import Triple, URI

        path = tmp_path / "store.sedg"
        save_store_image(toy_store, str(path))
        restored = load_store(str(path))
        with pytest.raises(TypeError):
            restored.insert(Triple(URI("http://x/s"), URI("http://x/p"), URI("http://x/o")))
        # ...but the delta overlay gives it a write path like any other store.
        live = restored.updatable()
        assert live.insert(Triple(URI("http://x/s"), URI("http://x/p"), URI("http://x/o")))


class TestV4ErrorHandling:
    @pytest.fixture()
    def image(self, toy_store):
        return bytearray(dump_store_image(toy_store))

    def test_truncated_header_rejected(self, image, tmp_path):
        path = tmp_path / "short.sedg"
        path.write_bytes(bytes(image[:40]))
        with pytest.raises(PersistenceError, match="truncated"):
            load_store(str(path))

    def test_truncated_heap_rejected(self, image, tmp_path):
        path = tmp_path / "cut.sedg"
        path.write_bytes(bytes(image[: len(image) - 64]))
        with pytest.raises(PersistenceError, match="truncated"):
            load_store(str(path))

    def test_bad_magic_rejected(self, image, tmp_path):
        image[:4] = b"NOPE"
        path = tmp_path / "magic.sedg"
        path.write_bytes(bytes(image))
        with pytest.raises(PersistenceError, match="bad magic"):
            load_store(str(path))

    def test_unknown_version_rejected(self, image, tmp_path):
        image[4] = 99  # version field, same offset as in the v3 stream
        path = tmp_path / "future.sedg"
        path.write_bytes(bytes(image))
        with pytest.raises(PersistenceError, match="version"):
            load_store(str(path))

    def test_checksum_mismatch_rejected(self, image, tmp_path):
        toc_offset = struct.unpack_from("<Q", image, 16)[0]
        image[toc_offset] ^= 0xFF  # corrupt the TOC without fixing the checksum
        path = tmp_path / "bitrot.sedg"
        path.write_bytes(bytes(image))
        with pytest.raises(PersistenceError, match="checksum"):
            load_store(str(path))

    def test_misaligned_section_rejected(self, image, tmp_path):
        # Bump the first section's offset off 8-byte alignment and re-sign
        # the header so the corruption reaches the alignment check.
        toc_offset = struct.unpack_from("<Q", image, 16)[0]
        offset = struct.unpack_from("<Q", image, toc_offset)[0]
        struct.pack_into("<Q", image, toc_offset, offset + 1)
        _rewrite_image_checksum(image)
        path = tmp_path / "skewed.sedg"
        path.write_bytes(bytes(image))
        with pytest.raises(PersistenceError, match="misaligned"):
            load_store(str(path))

    def test_out_of_bounds_section_rejected(self, image, tmp_path):
        toc_offset = struct.unpack_from("<Q", image, 16)[0]
        file_length = struct.unpack_from("<Q", image, 40)[0]
        struct.pack_into("<Q", image, toc_offset, file_length + 8)
        _rewrite_image_checksum(image)
        path = tmp_path / "oob.sedg"
        path.write_bytes(bytes(image))
        with pytest.raises(PersistenceError, match="outside the file"):
            load_store(str(path))

    def test_modification_underneath_detected(self, toy_store, tmp_path):
        # A writer rewriting the image in place (instead of atomically
        # replacing it) flips bytes under the live mapping; validate()
        # catches it through the remembered TOC/meta checksum.
        path = tmp_path / "live.sedg"
        save_store_image(toy_store, str(path))
        restored = load_store(str(path))
        restored.image.validate()
        toc_offset = 64
        with open(path, "r+b") as handle:
            handle.seek(toc_offset)
            original = handle.read(1)
            handle.seek(toc_offset)
            handle.write(bytes([original[0] ^ 0xFF]))
            handle.flush()
        with pytest.raises(PersistenceError, match="modified"):
            restored.image.validate()

    def test_load_failure_does_not_leak_the_mapping(self, image, tmp_path):
        # A rejected image must release its file handle/mapping so the
        # caller can delete or repair the file immediately (Windows-style
        # semantics; on Linux this pins the error-path cleanup).
        image[4] = 99
        path = tmp_path / "reject.sedg"
        path.write_bytes(bytes(image))
        with pytest.raises(PersistenceError):
            load_store(str(path))
        path.unlink()  # would fail on platforms with mandatory locks if leaked
