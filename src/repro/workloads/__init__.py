"""Workloads of the paper's evaluation (Section 7.2).

* :mod:`repro.workloads.lubm` — a deterministic LUBM(1)-style generator
  (>100k triples) with the univ-bench class/property hierarchies and the
  1K/5K/10K/25K/50K subset slicing used by the storage experiments;
* :mod:`repro.workloads.engie` — the ENGIE water-distribution sensor graphs
  (250 and 500 triples) of the motivating example, annotated with SOSA/QUDT;
* :mod:`repro.workloads.queries` — the 26 evaluation queries (S1-S15, M1-M5,
  R1-R6) instantiated against a generated dataset;
* :mod:`repro.workloads.adversarial` — deterministic property-path stress
  graphs (long chains, high-fanout hubs, deep hierarchies) with their
  worst-case closure query set.
"""

from repro.workloads.adversarial import AdversarialPathWorkload, PathQuery, scaled_workload
from repro.workloads.engie import (
    engie_ontology,
    water_distribution_graph,
    water_distribution_250,
    water_distribution_500,
)
from repro.workloads.lubm import LubmDataset, generate_lubm, lubm_ontology, lubm_subsets
from repro.workloads.queries import BenchmarkQuery, QueryCatalog
from repro.workloads.serving import ServingOp, ServingWorkload

__all__ = [
    "AdversarialPathWorkload",
    "BenchmarkQuery",
    "LubmDataset",
    "PathQuery",
    "QueryCatalog",
    "ServingOp",
    "ServingWorkload",
    "scaled_workload",
    "engie_ontology",
    "generate_lubm",
    "lubm_ontology",
    "lubm_subsets",
    "water_distribution_250",
    "water_distribution_500",
    "water_distribution_graph",
]
