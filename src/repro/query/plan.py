"""The unified plan IR: costed join steps, group operators, modifiers.

The optimizer produces a left-deep sequence of plan steps; each step records
the access path the executor will use (which storage layout and which of the
paper's algorithms), the join type linking it to the already-computed
prefix, and — since the cost-based planning rework — the estimated
cardinality, cumulative row count and cumulative cost in SDS-kernel-call
units.  Cross products are flagged explicitly (``CARTESIAN`` in the
rendering) so the hazard is visible in every EXPLAIN.

The IR has three layers, and the engines interpret it directly (one code
path from parser to server — ``explain()`` output and execution cannot
disagree):

* :class:`PhysicalPlan` — the BGP join order (a left-deep tree);
* :class:`GroupPlan` — one WHERE-clause group: its BGP plan plus the
  placement of UNION branches, OPTIONAL subgroups (each a nested
  :class:`GroupPlan`), VALUES blocks, BINDs and FILTERs, in evaluation
  order;
* :class:`PipelinePlan` — the full query: the root group plus the
  *solution-modifier pipeline* (:class:`ModifierStep`) — aggregation,
  ordering (with the top-k short circuit for ``ORDER BY ... LIMIT k``),
  projection, DISTINCT and the lazy OFFSET/LIMIT slice.  Each modifier step
  carries the typed payload the executor consumes, so the engine never
  reaches back into the AST mid-pipeline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.sparql.ast import TriplePattern, Variable


class AccessPath(enum.Enum):
    """How a triple pattern is evaluated against the storage layouts."""

    RDFTYPE_OS = "rdftype-os"          # (?s, rdf:type, C) — OS lookup in the red-black tree
    RDFTYPE_SO = "rdftype-so"          # (s, rdf:type, ?o) — SO lookup in the red-black tree
    RDFTYPE_SCAN = "rdftype-scan"      # (?s, rdf:type, ?o) — full scan of the type store
    PSO_SP = "pso-sp"                  # (s, p, ?o) — Algorithm 3
    PSO_PO = "pso-po"                  # (?s, p, o) — Algorithm 4
    PSO_P = "pso-p"                    # (?s, p, ?o) — property run scan
    PSO_FULL = "pso-full"              # unbound predicate — full scan
    LITERAL_SCAN = "literal-scan"      # datatype store scan for literal-bound objects


class JoinMethod(enum.Enum):
    """Join algorithm used to combine a step with the current intermediate result."""

    NONE = "none"                      # first step of the plan
    BIND_PROPAGATION = "bind"          # index nested-loop: propagate bindings into the TP
    MERGE = "merge"                    # merge join on ordered subject runs


@dataclass
class PlanStep:
    """One step of the left-deep plan.

    ``estimated_cardinality`` is the pattern's stand-alone estimate (the
    statistic Algorithm 1 ranks on); ``estimated_rows`` / ``estimated_cost``
    are cumulative — the expected intermediate-result size after this join
    and the total SDS-kernel-call budget spent up to and including it.
    ``cartesian`` flags a step with no join edge to the prefix: the executor
    falls back to re-evaluating the pattern per prefix row (an explicit,
    explicitly-costed cross product).
    """

    pattern_index: int
    pattern: TriplePattern
    access_path: AccessPath
    join_method: JoinMethod = JoinMethod.NONE
    join_type: str = ""
    estimated_cardinality: Optional[int] = None
    estimated_rows: Optional[int] = None
    estimated_cost: Optional[float] = None
    cartesian: bool = False

    def describe(self) -> str:
        """One-line human-readable description."""
        parts = [f"tp{self.pattern_index + 1} [{self.access_path.value}]"]
        if self.cartesian:
            parts.append("CARTESIAN")
        if self.join_method != JoinMethod.NONE:
            join_label = self.join_type or "×"
            parts.append(f"join={self.join_method.value}({join_label})")
        if self.estimated_cardinality is not None:
            parts.append(f"card~{self.estimated_cardinality}")
        if self.estimated_rows is not None:
            parts.append(f"rows~{self.estimated_rows}")
        if self.estimated_cost is not None:
            parts.append(f"cost~{self.estimated_cost:.1f}")
        parts.append(str(self.pattern))
        return " ".join(parts)


@dataclass
class PhysicalPlan:
    """Ordered sequence of plan steps (a left-deep join tree).

    ``method`` names the planner that produced the order (``"cost-dp"``,
    ``"cost-greedy"`` for the above-threshold fallback, ``"heuristic"`` for
    the paper's Algorithm 1); it is rendered in EXPLAIN output so plan
    regressions in review show *which* planner changed its mind.
    """

    steps: List[PlanStep] = field(default_factory=list)
    method: str = ""

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def order(self) -> List[int]:
        """Pattern indexes in execution order."""
        return [step.pattern_index for step in self.steps]

    @property
    def estimated_total_cost(self) -> Optional[float]:
        """Cumulative cost of the final step (``None`` when not costed)."""
        if not self.steps:
            return None
        return self.steps[-1].estimated_cost

    def explain(self) -> str:
        """Multi-line EXPLAIN-style description of the plan."""
        return "\n".join(step.describe() for step in self.steps)


@dataclass
class PathStep:
    """One property-path pattern, joined by bind propagation after the BGP.

    ``access_label`` names the algebra form and — for the transitive forms —
    whether the closure runs the id-level interval BFS or the term-level
    fallback (see :func:`repro.query.paths.path_access_label`).  The
    cardinality and cost figures come from
    :meth:`~repro.query.cardinality.CardinalityEstimator.estimate_path`;
    like BGP steps, cost is in SDS-kernel-call units.
    """

    pattern_index: int
    pattern: Any  # PropertyPathPattern (typed loosely to keep plan.py AST-light)
    access_label: str
    estimated_cardinality: Optional[int] = None
    estimated_cost: Optional[float] = None

    def describe(self) -> str:
        """One-line human-readable description."""
        parts = [f"path{self.pattern_index + 1} [{self.access_label}]"]
        if self.estimated_cardinality is not None:
            parts.append(f"card~{self.estimated_cardinality}")
        if self.estimated_cost is not None:
            parts.append(f"cost~{self.estimated_cost:.1f}")
        parts.append(str(self.pattern))
        return " ".join(parts)


class ModifierOp(enum.Enum):
    """Solution-modifier operators applied after the WHERE-clause pipeline."""

    AGGREGATE = "aggregate"        # GROUP BY + aggregate projection (blocking)
    EXTEND = "extend"              # non-aggregated (expr AS ?var) projections
    SORT = "sort"                  # full ORDER BY sort (blocking)
    TOP_K = "top-k"                # bounded ORDER BY ... LIMIT k selection
    PROJECT = "project"            # restrict to the projected variables
    DISTINCT = "distinct"          # duplicate-row elimination (streaming)
    SLICE = "slice"                # lazy OFFSET/LIMIT


@dataclass
class ModifierStep:
    """One solution-modifier operator with its parameters.

    ``payload`` carries the typed arguments the executor needs (order
    conditions, projected names, slice bounds, ...) so the engine interprets
    the step without consulting the AST; ``detail`` is its human-readable
    rendering.
    """

    op: ModifierOp
    detail: str = ""
    payload: Any = None

    def describe(self) -> str:
        """One-line human-readable description."""
        return f"{self.op.value}({self.detail})" if self.detail else self.op.value


@dataclass
class GroupPlan:
    """The plan of one WHERE-clause group, in evaluation order.

    The BGP join plan runs first; UNION combinations, OPTIONAL left-outer
    joins (each with its own nested :class:`GroupPlan`), VALUES joins, BINDs
    and FILTERs are applied in the order listed — exactly the order the
    streaming engine chains its operators, so the rendering *is* the
    execution.
    """

    bgp: PhysicalPlan
    #: Property-path steps, bind-joined right after the BGP.
    paths: List[PathStep] = field(default_factory=list)
    #: One entry per UNION: the plans of its branches.
    unions: List[List["GroupPlan"]] = field(default_factory=list)
    #: One nested plan per OPTIONAL group.
    optionals: List["GroupPlan"] = field(default_factory=list)
    #: VALUES blocks (AST references; rendered by their describe strings).
    values: List[Any] = field(default_factory=list)
    #: BIND clauses (AST references).
    binds: List[Any] = field(default_factory=list)
    #: FILTER constraints (AST references).
    filters: List[Any] = field(default_factory=list)

    def explain(self, indent: int = 0) -> str:
        """Indented EXPLAIN rendering of the group and its subgroups."""
        pad = "  " * indent
        lines: List[str] = []
        if self.bgp.steps:
            lines.extend(pad + line for line in self.bgp.explain().splitlines())
        for step in self.paths:
            lines.append(pad + step.describe())
        for union in self.unions:
            lines.append(pad + "union:")
            for branch in union:
                lines.append(pad + "  branch:")
                rendered = branch.explain(indent + 2)
                if rendered:
                    lines.append(rendered)
        for optional in self.optionals:
            lines.append(pad + "optional:")
            rendered = optional.explain(indent + 1)
            if rendered:
                lines.append(rendered)
        for block in self.values:
            names = ", ".join(f"?{v.name}" for v in getattr(block, "variables", []))
            rows = len(getattr(block, "rows", []) or [])
            lines.append(pad + f"values([{names}] rows={rows})")
        for bind in self.binds:
            lines.append(
                pad + f"bind({bind.expression} AS ?{bind.variable.name})"
            )
        for constraint in self.filters:
            lines.append(pad + f"filter({constraint.expression})")
        return "\n".join(lines)


@dataclass
class PipelinePlan:
    """The full query plan: the root group plus the modifier pipeline.

    ``where`` (the root group's BGP plan) is kept as a direct attribute for
    API continuity; ``group``, when present, is the complete WHERE-clause IR
    including OPTIONAL/VALUES/FILTER placement.
    """

    where: "PhysicalPlan"
    modifiers: List[ModifierStep] = field(default_factory=list)
    group: Optional[GroupPlan] = None

    def explain(self) -> str:
        """Multi-line EXPLAIN output covering the whole pipeline."""
        lines: List[str] = []
        if self.where.method:
            header = f"plan [{self.where.method}]"
            cost = self.where.estimated_total_cost
            if cost is not None:
                header += f" est-cost~{cost:.1f}"
            lines.append(header)
        if self.group is not None:
            rendered = self.group.explain()
            if rendered:
                lines.append(rendered)
        elif self.where.steps:
            lines.append(self.where.explain())
        lines.extend(step.describe() for step in self.modifiers)
        return "\n".join(lines)


def classify_access_path(pattern: TriplePattern) -> AccessPath:
    """Access path implied by the shape of a triple pattern."""
    subject_is_variable = isinstance(pattern.subject, Variable)
    object_is_variable = isinstance(pattern.object, Variable)
    predicate_is_variable = isinstance(pattern.predicate, Variable)
    if predicate_is_variable:
        return AccessPath.PSO_FULL
    if pattern.is_rdf_type:
        if not object_is_variable:
            return AccessPath.RDFTYPE_OS
        if not subject_is_variable:
            return AccessPath.RDFTYPE_SO
        return AccessPath.RDFTYPE_SCAN
    if not subject_is_variable and object_is_variable:
        return AccessPath.PSO_SP
    if subject_is_variable and not object_is_variable:
        return AccessPath.PSO_PO
    if subject_is_variable and object_is_variable:
        return AccessPath.PSO_P
    # Fully bound pattern: treated as an existence check through Algorithm 3.
    return AccessPath.PSO_SP
