"""Documentation must stay executable: doctests over docs/ and the README.

The CI docs job runs the same checks (`python -m doctest docs/*.md` plus the
quickstart smoke test); running them in tier-1 too means documentation rot
is caught before a PR is even pushed.
"""

from __future__ import annotations

import doctest
import pathlib

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DOC_FILES = sorted((REPO_ROOT / "docs").glob("*.md"))


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_docs_code_blocks_execute(path: pathlib.Path):
    results = doctest.testfile(str(path), module_relative=False)
    assert results.attempted > 0, f"{path.name} has no doctest examples"
    assert results.failed == 0


def test_docs_exist_and_are_linked_from_readme():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert DOC_FILES, "docs/ tree is empty"
    for name in ("architecture.md", "sparql_support.md", "update_lifecycle.md"):
        assert (REPO_ROOT / "docs" / name).is_file()
        assert name in readme, f"README does not link docs/{name}"


def test_live_updates_example_runs(capsys):
    # The CI docs job executes examples/live_updates.py as a subprocess; the
    # direct import keeps the live-update loop in the tier-1 suite too.
    import runpy
    import sys

    argv = sys.argv
    sys.argv = ["live_updates.py", "3"]
    try:
        runpy.run_path(str(REPO_ROOT / "examples" / "live_updates.py"), run_name="__main__")
    finally:
        sys.argv = argv
    captured = capsys.readouterr()
    assert "Explicit compaction" in captured.out


def test_quickstart_example_runs(capsys):
    # The CI docs job executes examples/quickstart.py as a subprocess; here a
    # direct import keeps it in the tier-1 suite without process overhead.
    import runpy

    runpy.run_path(str(REPO_ROOT / "examples" / "quickstart.py"), run_name="__main__")
    captured = capsys.readouterr()
    assert "ASK" in captured.out
