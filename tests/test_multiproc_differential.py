"""Differential tests: the process backend must equal the sequential engine.

The process pool's contract is the same as the thread executor's, only
harder to keep: *no observable difference* from the sequential engine even
though leaf scans and bind-join batches execute in worker processes that
attached to the store by ``mmap``-loading its v4 image (plus a replayed
delta-log suffix for live stores).  The matrix below checks byte-identity
(same variables, same rows, same order) on the full paper workload
(S1-S15, M1-M5, R1-R6) plus the A1-A6 analytics, at 1, 2 and 4 workers,
over both store layouts (monolithic image and a 4-shard directory), with a
live delta riding on a mapped base, and again after a compact-and-swap
image rotation happening *under* concurrent queries.

One :class:`~repro.query.multiproc.WorkerPool` per worker count is shared
across every engine in the module — tasks carry their own attach spec, so
a pool is store-agnostic; sharing it is exactly how the serving layer runs
it, and it keeps the matrix cheap (workers fork once per pool).
"""

from __future__ import annotations

import threading

import pytest

from repro.query.engine import QueryEngine
from repro.query.multiproc import ProcessPoolQueryEngine, WorkerPool
from repro.rdf.graph import Graph
from repro.sparql.bindings import AskResult
from repro.store.persistence import load_store, save_store_image
from repro.store.sharding import ShardedStore
from repro.store.succinct_edge import SuccinctEdge

ALL_QUERY_IDS = (
    [f"S{i}" for i in range(1, 16)]
    + [f"M{i}" for i in range(1, 6)]
    + [f"R{i}" for i in range(1, 7)]
    + [f"A{i}" for i in range(1, 7)]
)

WORKER_COUNTS = (1, 2, 4)


def _rows(result):
    if isinstance(result, AskResult):
        return result.boolean
    return (result.variables, result.to_tuples())


# --------------------------------------------------------------------------- #
# fixtures
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module", params=WORKER_COUNTS)
def pool(request):
    """One shared worker pool per worker count (workers fork lazily)."""
    pool = WorkerPool(max_workers=request.param)
    yield pool
    pool.close()


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    return str(tmp_path_factory.mktemp("multiproc-spill"))


@pytest.fixture(scope="module")
def mapped(small_lubm_store, tmp_path_factory):
    """The reference store saved as a v4 image and loaded back mapped.

    Workers attach to the very same image file, so coordinator and workers
    literally share pages.
    """
    path = tmp_path_factory.mktemp("images") / "small_lubm.sedg"
    save_store_image(small_lubm_store, str(path), atomic=True)
    store = load_store(str(path), mmap=True)
    assert store.image is not None and store.image.mapped
    return store


@pytest.fixture(scope="module")
def sharded(small_lubm_store):
    return ShardedStore.from_store(small_lubm_store, shards=4)


@pytest.fixture(scope="module")
def live_dataset(small_lubm):
    """~80/20 split: base graph plus the triples streamed in live."""
    base = Graph()
    live = []
    for index, triple in enumerate(small_lubm.graph):
        if index % 5 == 4:
            live.append(triple)
        else:
            base.add(triple)
    return base, live


@pytest.fixture(scope="module")
def live_reference(small_lubm, live_dataset):
    """Monolithic rebuild over base-then-live data (matches insert order)."""
    base, live = live_dataset
    merged = Graph()
    for triple in base:
        merged.add(triple)
    for triple in live:
        merged.add(triple)
    return SuccinctEdge.from_graph(merged, ontology=small_lubm.ontology)


def _mapped_live_store(small_lubm, live_dataset, directory):
    """A live store on a mapped base; deltas arrive through ``insert()``."""
    base, live = live_dataset
    built = SuccinctEdge.from_graph(base, ontology=small_lubm.ontology)
    path = str(directory / "base.sedg")
    save_store_image(built, path, atomic=True)
    store = load_store(path, mmap=True).updatable(ontology=small_lubm.ontology)
    inserted = sum(1 for triple in live if store.insert(triple))
    assert inserted == len(live)
    return store


@pytest.fixture(scope="module")
def mapped_live(small_lubm, live_dataset, tmp_path_factory):
    return _mapped_live_store(small_lubm, live_dataset, tmp_path_factory.mktemp("live"))


# --------------------------------------------------------------------------- #
# the differential matrix
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("identifier", ALL_QUERY_IDS)
def test_process_monolithic_byte_identical(
    pool, workspace, mapped, small_lubm_store, small_lubm_catalog, identifier
):
    # Workers mmap the same image file the coordinator mapped; the v4 meta
    # restores the planner statistics, so plans (and row order) agree.
    query = small_lubm_catalog.by_identifier()[identifier]
    sequential = QueryEngine(small_lubm_store, reasoning=query.requires_reasoning)
    process = ProcessPoolQueryEngine(
        mapped,
        reasoning=query.requires_reasoning,
        batch_size=7,
        pool=pool,
        workspace=workspace,
    )
    try:
        assert _rows(process.execute(query.sparql)) == _rows(sequential.execute(query.sparql))
    finally:
        process.close()


@pytest.mark.parametrize("identifier", ALL_QUERY_IDS)
def test_process_sharded_byte_identical(
    pool, workspace, sharded, small_lubm_store, small_lubm_catalog, identifier
):
    # Per-shard leaf scans execute in worker processes over the shard
    # images the engine auto-saved; the coordinator merges property-major,
    # shard-minor — the exact monolithic PSO/PS/SO order.
    query = small_lubm_catalog.by_identifier()[identifier]
    sequential = QueryEngine(small_lubm_store, reasoning=query.requires_reasoning)
    process = ProcessPoolQueryEngine(
        sharded,
        reasoning=query.requires_reasoning,
        batch_size=7,
        pool=pool,
        workspace=workspace,
    )
    try:
        assert _rows(process.execute(query.sparql)) == _rows(sequential.execute(query.sparql))
    finally:
        process.close()


@pytest.mark.parametrize("identifier", ALL_QUERY_IDS)
def test_process_live_delta_byte_identical(
    pool, workspace, mapped_live, live_reference, small_lubm_catalog, identifier
):
    # Workers attach by mapping the shipped base image and replaying the
    # delta-log suffix; the merged enumeration must equal a monolithic
    # rebuild over the same data.
    query = small_lubm_catalog.by_identifier()[identifier]
    sequential = QueryEngine(live_reference, reasoning=query.requires_reasoning)
    process = ProcessPoolQueryEngine(
        mapped_live,
        reasoning=query.requires_reasoning,
        batch_size=7,
        pool=pool,
        workspace=workspace,
    )
    try:
        assert _rows(process.execute(query.sparql)) == _rows(sequential.execute(query.sparql))
    finally:
        process.close()


def test_process_rotation_under_load(
    pool, small_lubm, live_dataset, live_reference, small_lubm_catalog, tmp_path
):
    """Compact-and-swap to a fresh image while process queries are running.

    The rotation bumps the store generation; engine attach specs re-sample
    on every dispatch, so workers re-attach to the rotated image on their
    next task — queries in flight during the swap and queries after it must
    all return exactly the sequential engine's results.
    """
    store = _mapped_live_store(small_lubm, live_dataset, tmp_path)
    catalog = small_lubm_catalog.by_identifier()
    probes = [catalog[identifier] for identifier in ("S1", "S9", "M2", "R2")]
    process = ProcessPoolQueryEngine(
        store, batch_size=7, pool=pool, workspace=str(tmp_path / "spill")
    )
    errors = []

    def hammer():
        try:
            for _ in range(3):
                for query in probes:
                    expected = _rows(
                        QueryEngine(
                            live_reference, reasoning=query.requires_reasoning
                        ).execute(query.sparql)
                    )
                    engine = ProcessPoolQueryEngine(
                        store,
                        reasoning=query.requires_reasoning,
                        batch_size=7,
                        pool=pool,
                        workspace=str(tmp_path / "spill"),
                    )
                    try:
                        assert _rows(engine.execute(query.sparql)) == expected
                    finally:
                        engine.close()
        except Exception as exc:  # pragma: no cover - surfaced via errors
            errors.append(exc)

    try:
        thread = threading.Thread(target=hammer)
        thread.start()
        report = store.compact(image_path=str(tmp_path / "rotated.sedg"), remap=True)
        thread.join()
        assert not errors, errors[0]
        assert report.epoch == 1
        assert store.image is not None and str(store.image.path).endswith("rotated.sedg")
        process.resync()
        # The post-rotation matrix: every paper query over the rotated image.
        for identifier in ALL_QUERY_IDS:
            query = catalog[identifier]
            expected = _rows(
                QueryEngine(live_reference, reasoning=query.requires_reasoning).execute(
                    query.sparql
                )
            )
            engine = ProcessPoolQueryEngine(
                store,
                reasoning=query.requires_reasoning,
                batch_size=7,
                pool=pool,
                workspace=str(tmp_path / "spill"),
            )
            try:
                assert _rows(engine.execute(query.sparql)) == expected
            finally:
                engine.close()
    finally:
        process.close()
