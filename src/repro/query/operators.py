"""Streaming (pull-based) physical operators for the query pipeline.

Each operator is a generator over :class:`~repro.sparql.bindings.Binding`
streams: it pulls solutions from its upstream operator only when the
downstream consumer asks for the next one.  A ``LIMIT`` therefore stops the
whole pipeline after the requested number of rows — the upstream
triple-pattern probes (and the SDS kernel calls behind them) for the
remaining rows never happen.  The operators sit on top of the batched
:class:`~repro.query.tp_eval.TriplePatternEvaluator` emission: one pulled
binding may expand into a whole batched answer run, which is then streamed
element by element.

Operators that are inherently blocking (sort, grouping, the right-hand side
of a merge join) materialize internally and say so in their docstring; the
``ORDER BY ... LIMIT k`` case avoids the full sort with a bounded top-k
selection (:func:`top_k`).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.rdf.terms import Term
from repro.sparql.algebra import order_key_function, values_bindings
from repro.sparql.ast import (
    Bind,
    Expression,
    GroupGraphPattern,
    InlineData,
    OrderCondition,
    SelectExpression,
    TriplePattern,
)
from repro.sparql.bindings import Binding
from repro.sparql.expressions import evaluate_bind, evaluate_filter

#: A group evaluator: ``(group, seed_binding) -> stream of solutions``.
#: The ``group`` argument is opaque to the operators — the streaming engine
#: passes compiled :class:`~repro.query.plan.GroupPlan` IR nodes, the
#: materializing oracle passes raw AST groups.
GroupEvaluator = Callable[[object, Binding], Iterator[Binding]]


# --------------------------------------------------------------------- #
# joins
# --------------------------------------------------------------------- #


def bind_join(
    evaluator,
    upstream: Iterable[Binding],
    pattern: TriplePattern,
) -> Iterator[Binding]:
    """Index nested-loop join: propagate each upstream binding into ``pattern``.

    Fully streaming — each upstream binding triggers one batched
    triple-pattern evaluation and its extensions are yielded immediately
    (:meth:`~repro.query.tp_eval.TriplePatternEvaluator.evaluate_many`).
    """
    yield from evaluator.evaluate_many(pattern, upstream)


def term_join_key(term: Optional[Term]) -> Tuple:
    """The merge-join sort key over one binding slot (unbound sorts last).

    The single source of truth for join-key ordering: both the streaming
    and the materializing engine sort merge-join inputs with this key, so
    their emission orders cannot diverge.
    """
    if term is None:
        return (9, "")
    return (0, term.n3() if hasattr(term, "n3") else str(term))


def merge_join(
    evaluator,
    left: Sequence[Binding],
    pattern: TriplePattern,
    join_name: str,
) -> Iterator[Binding]:
    """Sort-merge join on the single variable shared with the prefix.

    Blocking on both sides: the PSO layout delivers the right-hand side
    ordered by subject inside a property run, the left side is sorted on the
    join key, then both are merged.  Kept byte-compatible with the
    materializing engine's merge join (same key, same emission order).
    """
    right = list(evaluator.evaluate(pattern, Binding()))

    def key(binding: Binding) -> Tuple:
        return term_join_key(binding.get(join_name))

    left_sorted = sorted(left, key=key)
    right_sorted = sorted(right, key=key)
    left_index = 0
    right_index = 0
    while left_index < len(left_sorted) and right_index < len(right_sorted):
        left_key = key(left_sorted[left_index])
        right_key = key(right_sorted[right_index])
        if left_key < right_key:
            left_index += 1
            continue
        if right_key < left_key:
            right_index += 1
            continue
        # Equal keys: emit the cross product of the two equal runs.
        left_end = left_index
        while left_end < len(left_sorted) and key(left_sorted[left_end]) == left_key:
            left_end += 1
        right_end = right_index
        while right_end < len(right_sorted) and key(right_sorted[right_end]) == right_key:
            right_end += 1
        for i in range(left_index, left_end):
            for j in range(right_index, right_end):
                merged = left_sorted[i].merged(right_sorted[j])
                if merged is not None:
                    yield merged
        left_index = left_end
        right_index = right_end


def union_combine(
    upstream: Iterator[Binding],
    branch_solutions: Sequence[Binding],
) -> Iterator[Binding]:
    """Join the upstream stream with the materialized UNION branch solutions.

    Streams the left side; keeps the historical engine behaviour that an
    *empty* left side passes the union solutions through unchanged (the
    usual case: a group whose only content is the UNION).
    """
    if not branch_solutions:
        # Right side empty: only an empty left side produces output (the
        # pass-through above), which here is also empty.
        return
    first = next(upstream, None)
    if first is None:
        yield from branch_solutions
        return
    for left in itertools.chain([first], upstream):
        for right in branch_solutions:
            merged = left.merged(right)
            if merged is not None:
                yield merged


def optional_join(
    upstream: Iterable[Binding],
    group: object,
    evaluate_group: GroupEvaluator,
) -> Iterator[Binding]:
    """Left-outer join with an OPTIONAL group (SPARQL ``LeftJoin``).

    ``group`` may be an AST :class:`GroupGraphPattern` or a compiled
    :class:`~repro.query.plan.GroupPlan` — it is only ever handed back to
    ``evaluate_group``.

    For each upstream solution the optional group is evaluated *seeded* with
    that solution (its bound variables propagate into the group's triple
    patterns, so the evaluation stays index-driven).  Solutions of the group
    extend the upstream row; when the group yields nothing the upstream row
    passes through unchanged with the optional variables left unbound.
    """
    for binding in upstream:
        matched = False
        for extended in evaluate_group(group, binding):
            matched = True
            yield extended
        if not matched:
            yield binding


def values_join(
    upstream: Iterable[Binding],
    inline: InlineData,
) -> Iterator[Binding]:
    """Join the stream with a VALUES inline-data block (streaming left side)."""
    table = values_bindings(inline)
    for binding in upstream:
        for row in table:
            merged = binding.merged(row)
            if merged is not None:
                yield merged


# --------------------------------------------------------------------- #
# per-row operators
# --------------------------------------------------------------------- #


def filter_solutions(upstream: Iterable[Binding], expression: Expression) -> Iterator[Binding]:
    """FILTER: keep solutions whose effective boolean value is true."""
    for binding in upstream:
        if evaluate_filter(expression, binding):
            yield binding


def extend(upstream: Iterable[Binding], bind: Bind) -> Iterator[Binding]:
    """BIND: extend each solution with one computed variable (errors skip)."""
    for binding in upstream:
        value = evaluate_bind(bind.expression, binding)
        yield binding if value is None else binding.extended(bind.variable.name, value)


def extend_select(
    upstream: Iterable[Binding],
    expressions: Sequence[SelectExpression],
) -> Iterator[Binding]:
    """Evaluate non-aggregated ``(expr AS ?var)`` projection items per row."""
    for binding in upstream:
        current = binding
        for item in expressions:
            value = evaluate_bind(item.expression, current)
            if value is not None:
                current = current.extended(item.variable.name, value)
        yield current


def project(upstream: Iterable[Binding], names: Sequence[str]) -> Iterator[Binding]:
    """Projection: restrict every solution to the projected variable names."""
    for binding in upstream:
        yield binding.project(names)


def distinct(upstream: Iterable[Binding], names: Sequence[str]) -> Iterator[Binding]:
    """DISTINCT: drop duplicate projected rows, preserving first-seen order."""
    seen: Set[Tuple[Optional[Term], ...]] = set()
    for binding in upstream:
        row = tuple(binding.get(name) for name in names)
        if row not in seen:
            seen.add(row)
            yield binding


def slice_solutions(
    upstream: Iterable[Binding],
    offset: Optional[int],
    limit: Optional[int],
) -> Iterator[Binding]:
    """OFFSET/LIMIT: lazy slice — stops pulling upstream after the last row."""
    start = offset or 0
    stop = None if limit is None else start + limit
    return itertools.islice(upstream, start, stop)


# --------------------------------------------------------------------- #
# blocking operators: ORDER BY
# --------------------------------------------------------------------- #


def order(
    upstream: Iterable[Binding],
    conditions: Sequence[OrderCondition],
) -> List[Binding]:
    """Full ORDER BY sort (blocking; stable, giving a deterministic order)."""
    return sorted(upstream, key=order_key_function(conditions))


def top_k(
    upstream: Iterable[Binding],
    conditions: Sequence[OrderCondition],
    k: int,
) -> List[Binding]:
    """Bounded ``ORDER BY ... LIMIT k`` selection.

    ``heapq.nsmallest`` keeps only ``k`` candidates in memory and performs
    ``O(n log k)`` comparisons instead of the full ``O(n log n)`` sort; the
    result equals ``order(upstream)[:k]`` including stability.
    """
    return heapq.nsmallest(k, upstream, key=order_key_function(conditions))
