"""SPARQL SELECT execution over a SuccinctEdge store.

The engine glues together the optimizer (join ordering) and the triple-pattern
evaluator (SDS operations), and adds the relational operators the paper's
queries need: bind-propagation joins, merge joins over ordered subject runs,
FILTER / BIND evaluation, UNION branches, projection, DISTINCT and LIMIT.
"""

from __future__ import annotations

from typing import List, Optional, Union as TypingUnion

from repro.query.optimizer import JoinOrderOptimizer
from repro.query.plan import JoinMethod, PhysicalPlan
from repro.query.tp_eval import TriplePatternEvaluator
from repro.rdf.terms import Term
from repro.sparql.ast import GroupGraphPattern, SelectQuery, TriplePattern
from repro.sparql.bindings import Binding, ResultSet
from repro.sparql.expressions import evaluate_bind, evaluate_filter
from repro.sparql.parser import parse_query
from repro.store.succinct_edge import SuccinctEdge


class QueryEngine:
    """Executes SELECT queries (supported subset) against a SuccinctEdge store.

    Parameters
    ----------
    store:
        The SuccinctEdge instance to query.
    reasoning:
        When ``True`` (the paper's native mode), concept and property
        hierarchy inferences are answered through LiteMat identifier
        intervals at query time.
    join_strategy:
        ``"auto"`` follows the optimizer's choice (merge joins where the PSO
        order allows them, bind propagation otherwise); ``"bind"`` forces
        bind propagation everywhere; ``"merge"`` forces sort-merge joins where
        a single shared variable exists.  The ablation benchmark compares the
        strategies.
    """

    def __init__(
        self,
        store: SuccinctEdge,
        reasoning: bool = True,
        join_strategy: str = "auto",
    ) -> None:
        if join_strategy not in ("auto", "bind", "merge"):
            raise ValueError(f"unknown join strategy {join_strategy!r}")
        self.store = store
        self.reasoning = reasoning
        self.join_strategy = join_strategy
        self.evaluator = TriplePatternEvaluator(store, reasoning=reasoning)
        # Runtime estimates reuse the evaluator's Algorithm-2 counts on the
        # SDS rank/select directories when dictionary statistics draw a blank.
        self.optimizer = JoinOrderOptimizer(
            statistics=store.statistics,
            runtime_estimator=self.evaluator.estimate_cardinality,
        )

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def execute(self, query: TypingUnion[str, SelectQuery]) -> ResultSet:
        """Parse (if needed) and execute a SELECT query."""
        parsed = parse_query(query) if isinstance(query, str) else query
        bindings = self._evaluate_group(parsed.where)
        names = parsed.projected_names()
        projected = [binding.project(names) for binding in bindings]
        result = ResultSet(names, projected)
        if parsed.distinct:
            result = result.distinct()
        if parsed.limit is not None:
            result = ResultSet(result.variables, result.bindings[: parsed.limit])
        return result

    def plan(self, query: TypingUnion[str, SelectQuery]) -> PhysicalPlan:
        """The physical plan the engine would use for ``query`` (EXPLAIN)."""
        parsed = parse_query(query) if isinstance(query, str) else query
        return self.optimizer.optimize(list(parsed.where.bgp.patterns))

    # ------------------------------------------------------------------ #
    # group evaluation
    # ------------------------------------------------------------------ #

    def _evaluate_group(self, group: GroupGraphPattern) -> List[Binding]:
        bindings = self._evaluate_bgp(list(group.bgp.patterns))
        for union in group.unions:
            union_bindings: List[Binding] = []
            for branch in union.branches:
                union_bindings.extend(self._evaluate_group(branch))
            bindings = self._combine(bindings, union_bindings)
        for bind in group.binds:
            extended: List[Binding] = []
            for binding in bindings:
                value = evaluate_bind(bind.expression, binding)
                if value is None:
                    extended.append(binding)
                else:
                    extended.append(binding.extended(bind.variable.name, value))
            bindings = extended
        for constraint in group.filters:
            bindings = [b for b in bindings if evaluate_filter(constraint.expression, b)]
        return bindings

    @staticmethod
    def _combine(left: List[Binding], right: List[Binding]) -> List[Binding]:
        """Join two binding sets on their shared variables (nested loop)."""
        if not left:
            return right
        if not right:
            return []
        combined: List[Binding] = []
        for left_binding in left:
            for right_binding in right:
                merged = left_binding.merged(right_binding)
                if merged is not None:
                    combined.append(merged)
        return combined

    # ------------------------------------------------------------------ #
    # BGP evaluation (left-deep plan)
    # ------------------------------------------------------------------ #

    def _evaluate_bgp(self, patterns: List[TriplePattern]) -> List[Binding]:
        if not patterns:
            return [Binding()]
        plan = self.optimizer.optimize(patterns)
        current: List[Binding] = []
        for position, step in enumerate(plan.steps):
            if position == 0:
                current = list(self.evaluator.evaluate(step.pattern, Binding()))
                continue
            if not current:
                return []
            method = self._effective_join_method(step.join_method, step.pattern, current)
            if method == JoinMethod.MERGE:
                current = self._merge_join(current, step.pattern)
            else:
                current = self._bind_propagation_join(current, step.pattern)
        return current

    def _effective_join_method(
        self, planned: JoinMethod, pattern: TriplePattern, current: List[Binding]
    ) -> JoinMethod:
        if self.join_strategy == "bind":
            return JoinMethod.BIND_PROPAGATION
        if self.join_strategy == "merge":
            shared = self._shared_variables(pattern, current)
            return JoinMethod.MERGE if len(shared) == 1 else JoinMethod.BIND_PROPAGATION
        if planned == JoinMethod.MERGE:
            shared = self._shared_variables(pattern, current)
            if len(shared) != 1:
                return JoinMethod.BIND_PROPAGATION
            # A merge join enumerates the pattern's whole property run; it only
            # pays off when the intermediate result is at least comparable in
            # size (otherwise bind propagation probes far fewer entries).
            right_estimate = self.evaluator.estimate_cardinality(pattern)
            if right_estimate > 2 * len(current):
                return JoinMethod.BIND_PROPAGATION
            return JoinMethod.MERGE
        return planned

    @staticmethod
    def _shared_variables(pattern: TriplePattern, current: List[Binding]) -> List[str]:
        if not current:
            return []
        bound_names = set(current[0].as_dict())
        for binding in current[1:]:
            bound_names |= set(binding.as_dict())
        return [name for name in pattern.variable_names() if name in bound_names]

    def _bind_propagation_join(
        self, current: List[Binding], pattern: TriplePattern
    ) -> List[Binding]:
        """Index nested-loop join: propagate each binding into the pattern."""
        results: List[Binding] = []
        for binding in current:
            results.extend(self.evaluator.evaluate(pattern, binding))
        return results

    def _merge_join(self, current: List[Binding], pattern: TriplePattern) -> List[Binding]:
        """Sort-merge join on the single variable shared with the prefix.

        The PSO layout already delivers the right-hand side ordered by subject
        inside a property run; the left-hand side is sorted on the join key,
        then both sides are merged.
        """
        shared = self._shared_variables(pattern, current)
        if len(shared) != 1:
            return self._bind_propagation_join(current, pattern)
        join_name = shared[0]
        right = list(self.evaluator.evaluate(pattern, Binding()))

        def key(binding: Binding) -> tuple:
            value = binding.get(join_name)
            return _term_sort_key(value)

        left_sorted = sorted(current, key=key)
        right_sorted = sorted(right, key=key)
        results: List[Binding] = []
        left_index = 0
        right_index = 0
        while left_index < len(left_sorted) and right_index < len(right_sorted):
            left_key = key(left_sorted[left_index])
            right_key = key(right_sorted[right_index])
            if left_key < right_key:
                left_index += 1
                continue
            if right_key < left_key:
                right_index += 1
                continue
            # Equal keys: emit the cross product of the two equal runs.
            left_end = left_index
            while left_end < len(left_sorted) and key(left_sorted[left_end]) == left_key:
                left_end += 1
            right_end = right_index
            while right_end < len(right_sorted) and key(right_sorted[right_end]) == right_key:
                right_end += 1
            for i in range(left_index, left_end):
                for j in range(right_index, right_end):
                    merged = left_sorted[i].merged(right_sorted[j])
                    if merged is not None:
                        results.append(merged)
            left_index = left_end
            right_index = right_end
        return results


def _term_sort_key(term: Optional[Term]) -> tuple:
    if term is None:
        return (9, "")
    return (0, term.n3() if hasattr(term, "n3") else str(term))
