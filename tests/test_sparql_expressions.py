"""Tests for FILTER / BIND expression evaluation and solution bindings."""

from __future__ import annotations

import pytest

from repro.rdf.terms import Literal, URI
from repro.sparql.ast import FunctionCall
from repro.sparql.bindings import Binding, ResultSet
from repro.sparql.expressions import (
    ExpressionError,
    effective_boolean_value,
    evaluate,
    evaluate_bind,
    evaluate_filter,
    to_number,
    to_string,
    to_term,
)
from repro.sparql.parser import parse_query


def filter_expression(text: str):
    """Parse the FILTER expression out of a minimal query."""
    query = parse_query(f"SELECT ?v WHERE {{ ?x <http://p> ?v FILTER({text}) }}")
    return query.where.filters[0].expression


class TestComparisons:
    def test_numeric_comparisons(self):
        binding = Binding({"v": Literal(3.2)})
        assert evaluate_filter(filter_expression("?v > 3"), binding)
        assert evaluate_filter(filter_expression("?v < 4"), binding)
        assert not evaluate_filter(filter_expression("?v >= 4"), binding)
        assert evaluate_filter(filter_expression("?v != 5"), binding)

    def test_numeric_comparison_across_datatypes(self):
        binding = Binding({"v": Literal("42", datatype="http://www.w3.org/2001/XMLSchema#integer")})
        assert evaluate_filter(filter_expression("?v = 42.0"), binding)

    def test_string_comparison(self):
        binding = Binding({"v": Literal("Alice")})
        assert evaluate_filter(filter_expression('?v = "Alice"'), binding)
        assert not evaluate_filter(filter_expression('?v = "Bob"'), binding)

    def test_uri_comparison_via_str(self):
        binding = Binding({"v": URI("http://example.org/x")})
        assert evaluate_filter(filter_expression('str(?v) = "http://example.org/x"'), binding)

    def test_unbound_variable_makes_filter_false(self):
        assert not evaluate_filter(filter_expression("?missing > 1"), Binding())


class TestBooleanLogic:
    def test_or_and(self):
        binding = Binding({"v": Literal(10)})
        assert evaluate_filter(filter_expression("?v < 3 || ?v > 5"), binding)
        assert not evaluate_filter(filter_expression("?v < 3 && ?v > 5"), binding)
        assert evaluate_filter(filter_expression("?v > 3 && ?v < 50"), binding)

    def test_negation(self):
        binding = Binding({"v": Literal(10)})
        assert evaluate_filter(filter_expression("!(?v < 3)"), binding)

    def test_effective_boolean_value(self):
        assert effective_boolean_value(True) is True
        assert effective_boolean_value(0) is False
        assert effective_boolean_value("x") is True
        assert effective_boolean_value("") is False
        assert effective_boolean_value(Literal(0)) is False
        assert effective_boolean_value(URI("http://x")) is True
        assert effective_boolean_value(None) is None


class TestArithmetic:
    def test_basic_operations(self):
        binding = Binding({"v": Literal(8.0)})
        assert evaluate(filter_expression("?v + 2"), binding) == pytest.approx(10.0)
        assert evaluate(filter_expression("?v - 2"), binding) == pytest.approx(6.0)
        assert evaluate(filter_expression("?v * 2"), binding) == pytest.approx(16.0)
        assert evaluate(filter_expression("?v / 2"), binding) == pytest.approx(4.0)

    def test_division_by_zero_is_error(self):
        with pytest.raises(ExpressionError):
            evaluate(filter_expression("?v / 0"), Binding({"v": Literal(1)}))

    def test_filter_swallows_errors(self):
        assert not evaluate_filter(filter_expression("?v / 0 > 1"), Binding({"v": Literal(1)}))


class TestFunctions:
    def test_str_of_uri(self):
        binding = Binding({"u": URI("http://qudt.org/vocab/unit/BAR")})
        assert evaluate(filter_expression('regex(str(?u), "BAR")'), binding) is True

    def test_regex_case_insensitive_flag(self):
        binding = Binding({"v": Literal("Pressure")})
        assert evaluate(filter_expression('regex(?v, "pressure", "i")'), binding) is True

    def test_if_branches(self):
        binding = Binding({"v": Literal(3500.0), "u": URI("http://qudt.org/vocab/unit/HectoPA")})
        expression = filter_expression(
            'if(regex(str(?u), "BAR"), ?v, if(regex(str(?u), "HectoPA"), ?v / 1000, 0))'
        )
        assert evaluate(expression, binding) == pytest.approx(3.5)

    def test_bound(self):
        assert evaluate(filter_expression("bound(?v)"), Binding({"v": Literal(1)})) is True
        assert evaluate(filter_expression("bound(?v)"), Binding()) is False

    def test_abs(self):
        assert evaluate(filter_expression("abs(?v)"), Binding({"v": Literal(-4)})) == 4

    def test_isuri_isliteral(self):
        binding = Binding({"v": URI("http://x"), "w": Literal("x")})
        assert evaluate(filter_expression("isURI(?v)"), binding) is True
        assert evaluate(filter_expression("isLiteral(?w)"), binding) is True
        assert evaluate(filter_expression("isLiteral(?v)"), binding) is False

    def test_unknown_function_raises(self):
        with pytest.raises(ExpressionError):
            evaluate(FunctionCall(name="nosuchfunction", arguments=()), Binding())

    def test_wrong_arity_raises(self):
        with pytest.raises(ExpressionError):
            evaluate(FunctionCall(name="str", arguments=()), Binding())


class TestConversions:
    def test_to_number(self):
        assert to_number(Literal("2.5")) == pytest.approx(2.5)
        assert to_number("7") == 7
        assert to_number(Literal("abc")) is None
        assert to_number(True) is None

    def test_to_string(self):
        assert to_string(URI("http://x")) == "http://x"
        assert to_string(Literal("v")) == "v"
        assert to_string(False) == "false"
        assert to_string(None) is None

    def test_to_term(self):
        assert to_term(2.0) == Literal("2.0", datatype="http://www.w3.org/2001/XMLSchema#double")
        assert to_term(True).datatype.endswith("boolean")
        assert to_term(None) is None
        assert to_term(URI("http://x")) == URI("http://x")

    def test_evaluate_bind_returns_term(self):
        value = evaluate_bind(filter_expression("?v * 2"), Binding({"v": Literal(2)}))
        assert value is not None
        assert float(value.lexical) == pytest.approx(4.0)


class TestBindings:
    def test_extended_does_not_mutate(self):
        binding = Binding({"a": Literal(1)})
        extended = binding.extended("b", Literal(2))
        assert "b" not in binding
        assert extended["b"] == Literal(2)

    def test_merged_conflict_returns_none(self):
        left = Binding({"a": Literal(1)})
        right = Binding({"a": Literal(2)})
        assert left.merged(right) is None
        assert left.compatible(right) is False

    def test_merged_union(self):
        left = Binding({"a": Literal(1)})
        right = Binding({"b": Literal(2)})
        merged = left.merged(right)
        assert merged is not None
        assert set(merged) == {"a", "b"}

    def test_project(self):
        binding = Binding({"a": Literal(1), "b": Literal(2)})
        projected = binding.project(["a", "missing"])
        assert set(projected) == {"a"}

    def test_result_set_tuples_and_distinct(self):
        rows = [Binding({"x": Literal(1)}), Binding({"x": Literal(1)}), Binding({"x": Literal(2)})]
        result = ResultSet(["x"], rows)
        assert len(result) == 3
        assert len(result.distinct()) == 2
        assert result.to_set() == {(Literal(1),), (Literal(2),)}

    def test_binding_equality_and_hash(self):
        assert Binding({"a": Literal(1)}) == Binding({"a": Literal(1)})
        assert len({Binding({"a": Literal(1)}), Binding({"a": Literal(1)})}) == 1
