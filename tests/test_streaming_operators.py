"""Tests for the streaming operator pipeline and the SPARQL 1.1 operators.

Covers the OPTIONAL null-handling edge cases, ORDER BY total-order
stability, aggregate empty-group semantics, VALUES/ASK, the differential
check streaming-vs-materializing on the paper's query workload, and the
early-termination guarantees (LIMIT/ASK consume fewer SDS kernel calls than
full materialization).
"""

from __future__ import annotations

import itertools

import pytest

from repro.bench.measure import measure_call
from repro.query.engine import QueryEngine
from repro.query.materializing import MaterializingQueryEngine
from repro.query.plan import ModifierOp
from repro.rdf.terms import Literal
from repro.sparql.ast import AskQuery
from repro.sparql.bindings import AskResult
from repro.sparql.parser import parse_query
from tests.conftest import EX

NAME = f"<{EX.name}>"
AGE = f"<{EX.age}>"
MEMBER_OF = f"<{EX.memberOf}>"
ADVISOR = f"<{EX.advisor}>"


class TestOptional:
    def test_unmatched_rows_pass_with_unbound_variable(self, toy_store):
        result = toy_store.query(
            f"SELECT ?x ?a WHERE {{ ?x {NAME} ?n . OPTIONAL {{ ?x {AGE} ?a }} }}"
        )
        rows = dict(result.to_tuples())
        assert rows[EX.alice] == Literal(27)
        assert rows[EX.bob] == Literal(55)
        assert rows[EX.carol] is None  # carol has no age: unbound, row kept
        assert rows[EX.dave] is None

    def test_matched_rows_extend(self, toy_store):
        result = toy_store.query(
            f"SELECT ?x ?d WHERE {{ ?x {NAME} ?n . OPTIONAL {{ ?x {MEMBER_OF} ?d }} }}",
            reasoning=False,
        )
        rows = dict(result.to_tuples())
        assert rows[EX.alice] == EX.dept1
        assert rows[EX.bob] is None  # headOf only counts with reasoning

    def test_optional_respects_reasoning(self, toy_store):
        result = toy_store.query(
            f"SELECT ?x ?d WHERE {{ ?x {NAME} ?n . OPTIONAL {{ ?x {MEMBER_OF} ?d }} }}",
            reasoning=True,
        )
        rows = dict(result.to_tuples())
        assert rows[EX.bob] == EX.dept1  # headOf ⊑ worksFor ⊑ memberOf

    def test_filter_inside_optional_sees_outer_bindings(self, toy_store):
        result = toy_store.query(
            f"SELECT ?x ?a WHERE {{ ?x {NAME} ?n . "
            f"OPTIONAL {{ ?x {AGE} ?a . FILTER(?a > 30) }} }}"
        )
        rows = dict(result.to_tuples())
        assert rows[EX.alice] is None  # 27 filtered away inside the optional
        assert rows[EX.bob] == Literal(55)
        assert rows[EX.carol] is None

    def test_multi_pattern_optional_group(self, toy_store):
        result = toy_store.query(
            f"SELECT ?x ?an WHERE {{ ?x {NAME} ?n . "
            f"OPTIONAL {{ ?x {ADVISOR} ?adv . ?adv {NAME} ?an }} }}"
        )
        rows = dict(result.to_tuples())
        assert rows[EX.alice] == Literal("Bob")
        assert rows[EX.carol] == Literal("Dave")
        assert rows[EX.bob] is None and rows[EX.dave] is None

    def test_filter_on_unbound_optional_variable(self, toy_store):
        # bound() distinguishes matched from unmatched rows.
        result = toy_store.query(
            f"SELECT ?x WHERE {{ ?x {NAME} ?n . OPTIONAL {{ ?x {AGE} ?a }} "
            f"FILTER(!bound(?a)) }}"
        )
        assert result.to_set() == {(EX.carol,), (EX.dave,)}


class TestOrderBy:
    def test_ascending_numeric_order(self, toy_store):
        result = toy_store.query(f"SELECT ?x ?a WHERE {{ ?x {AGE} ?a }} ORDER BY ?a")
        assert [age.to_python() for _x, age in result.to_tuples()] == [27, 55]

    def test_descending_order(self, toy_store):
        result = toy_store.query(f"SELECT ?x ?a WHERE {{ ?x {AGE} ?a }} ORDER BY DESC(?a)")
        assert [age.to_python() for _x, age in result.to_tuples()] == [55, 27]

    def test_stability_on_equal_keys(self, toy_store):
        # All four people share the same (constant-free) key expression value
        # arity; sorting by a constant key must preserve the pipeline order.
        unsorted_result = toy_store.query(f"SELECT ?x ?n WHERE {{ ?x {NAME} ?n }}")
        sorted_result = toy_store.query(
            f"SELECT ?x ?n WHERE {{ ?x {NAME} ?n }} ORDER BY (1)"
        )
        assert sorted_result.to_tuples() == unsorted_result.to_tuples()

    def test_multi_key_mixed_directions(self, toy_store):
        result = toy_store.query(
            f"SELECT ?x ?a WHERE {{ ?x {NAME} ?n . OPTIONAL {{ ?x {AGE} ?a }} }} "
            "ORDER BY DESC(?a) ?x"
        )
        ages = [age.to_python() if age else None for _x, age in result.to_tuples()]
        assert ages == [55, 27, None, None]  # unbound sorts lowest, DESC puts it last
        tail = [x for x, age in result.to_tuples() if age is None]
        assert tail == sorted(tail)  # ties broken by the ascending second key

    def test_unbound_sorts_before_everything_ascending(self, toy_store):
        result = toy_store.query(
            f"SELECT ?x ?a WHERE {{ ?x {NAME} ?n . OPTIONAL {{ ?x {AGE} ?a }} }} "
            "ORDER BY ?a"
        )
        ages = [age for _x, age in result.to_tuples()]
        assert ages[0] is None and ages[1] is None

    def test_top_k_equals_sorted_prefix(self, small_lubm_store, small_lubm_catalog):
        query = small_lubm_catalog.by_identifier()["A2"].sparql  # ORDER BY ... LIMIT 10
        full = small_lubm_store.query(query.replace("LIMIT 10", ""))
        limited = small_lubm_store.query(query)
        assert limited.to_tuples() == full.to_tuples()[:10]

    def test_top_k_with_offset(self, toy_store):
        result = toy_store.query(
            f"SELECT ?n WHERE {{ ?x {NAME} ?n }} ORDER BY ?n LIMIT 2 OFFSET 1"
        )
        assert [n.lexical for (n,) in result.to_tuples()] == ["Bob", "Carol"]

    def test_order_by_limit_plans_top_k(self, toy_store):
        engine = QueryEngine(toy_store)
        plan = engine.pipeline_plan(
            f"SELECT ?n WHERE {{ ?x {NAME} ?n }} ORDER BY ?n LIMIT 2"
        )
        assert any(step.op == ModifierOp.TOP_K for step in plan.modifiers)
        # DISTINCT disables the top-k short circuit (full sort instead).
        plan = engine.pipeline_plan(
            f"SELECT DISTINCT ?n WHERE {{ ?x {NAME} ?n }} ORDER BY ?n LIMIT 2"
        )
        assert any(step.op == ModifierOp.SORT for step in plan.modifiers)
        assert all(step.op != ModifierOp.TOP_K for step in plan.modifiers)


class TestAggregates:
    def test_group_by_count(self, toy_store):
        result = toy_store.query(
            f"SELECT ?d (COUNT(?x) AS ?n) WHERE {{ ?x {MEMBER_OF} ?d }} "
            "GROUP BY ?d ORDER BY ?d",
            reasoning=True,
        )
        rows = [(d, n.to_python()) for d, n in result.to_tuples()]
        assert rows == [(EX.dept1, 2), (EX.dept2, 2)]

    def test_count_star_vs_count_var(self, toy_store):
        # COUNT(*) counts rows; COUNT(?a) skips rows where ?a is unbound.
        result = toy_store.query(
            f"SELECT (COUNT(*) AS ?rows) (COUNT(?a) AS ?ages) WHERE "
            f"{{ ?x {NAME} ?n . OPTIONAL {{ ?x {AGE} ?a }} }}"
        )
        ((rows, ages),) = result.to_tuples()
        assert (rows.to_python(), ages.to_python()) == (4, 2)

    def test_empty_group_semantics(self, toy_store):
        result = toy_store.query(
            "SELECT (COUNT(?v) AS ?c) (SUM(?v) AS ?s) (AVG(?v) AS ?av) "
            "(MIN(?v) AS ?mn) (MAX(?v) AS ?mx) (SAMPLE(?v) AS ?sm) "
            f"WHERE {{ ?x <{EX.noSuchProperty}> ?v }}"
        )
        ((count, total, avg, minimum, maximum, sample),) = result.to_tuples()
        assert count.to_python() == 0
        assert total.to_python() == 0
        assert avg.to_python() == 0
        assert minimum is None and maximum is None and sample is None

    def test_sum_avg_min_max(self, toy_store):
        result = toy_store.query(
            "SELECT (SUM(?a) AS ?s) (AVG(?a) AS ?av) (MIN(?a) AS ?mn) (MAX(?a) AS ?mx) "
            f"WHERE {{ ?x {AGE} ?a }}"
        )
        ((total, avg, minimum, maximum),) = result.to_tuples()
        assert total.to_python() == 82
        assert avg.to_python() == 41
        assert minimum.to_python() == 27
        assert maximum.to_python() == 55

    def test_non_numeric_sum_is_error(self, toy_store):
        result = toy_store.query(f"SELECT (SUM(?n) AS ?s) WHERE {{ ?x {NAME} ?n }}")
        ((total,),) = result.to_tuples()
        assert total is None  # type error: alias stays unbound

    def test_count_distinct(self, toy_store):
        result = toy_store.query(
            f"SELECT (COUNT(DISTINCT ?d) AS ?n) WHERE {{ ?x {MEMBER_OF} ?d }}",
            reasoning=True,
        )
        assert result.to_tuples()[0][0].to_python() == 2

    def test_count_distinct_star_counts_distinct_solutions(self, toy_store):
        # The UNION duplicates every solution; COUNT(DISTINCT *) must not.
        query = (
            f"SELECT (COUNT(DISTINCT *) AS ?d) (COUNT(*) AS ?n) WHERE "
            f"{{ {{ ?x {AGE} ?v }} UNION {{ ?x {AGE} ?v }} }}"
        )
        ((distinct_rows, rows),) = toy_store.query(query).to_tuples()
        assert distinct_rows.to_python() == 2
        assert rows.to_python() == 4

    def test_aggregate_expression_projection(self, toy_store):
        # Composite expression around an aggregate: (SUM(?a) / COUNT(?a)).
        result = toy_store.query(
            f"SELECT (SUM(?a) / COUNT(?a) AS ?mean) WHERE {{ ?x {AGE} ?a }}"
        )
        assert float(result.to_tuples()[0][0].lexical) == pytest.approx(41.0)

    def test_erroring_aggregate_does_not_alias_the_next_one(self, toy_store):
        # MAX over an empty set errors; the composite expression must come
        # out unbound — not silently reuse the next aggregate's value.
        result = toy_store.query(
            f"SELECT (MAX(?missing) + COUNT(*) AS ?z) (COUNT(*) AS ?n) "
            f"WHERE {{ ?x {NAME} ?n0 }}"
        )
        ((z, n),) = result.to_tuples()
        assert z is None
        assert n.to_python() == 4


class TestValuesAndAsk:
    def test_values_single_variable(self, toy_store):
        result = toy_store.query(
            f"SELECT ?x ?d WHERE {{ ?x {MEMBER_OF} ?d . VALUES ?d {{ <{EX.dept2}> }} }}",
            reasoning=False,
        )
        assert result.to_set() == {(EX.carol, EX.dept2)}

    def test_values_multi_variable_with_undef(self, toy_store):
        result = toy_store.query(
            f"SELECT ?x ?d WHERE {{ ?x {MEMBER_OF} ?d . "
            f"VALUES (?x ?d) {{ (<{EX.alice}> <{EX.dept1}>) (<{EX.carol}> UNDEF) }} }}",
            reasoning=False,
        )
        assert result.to_set() == {(EX.alice, EX.dept1), (EX.carol, EX.dept2)}

    def test_ask_true_and_false(self, toy_store):
        assert bool(toy_store.query(f"ASK {{ ?x {AGE} ?a . FILTER(?a > 50) }}"))
        assert not bool(toy_store.query(f"ASK {{ ?x {AGE} ?a . FILTER(?a > 99) }}"))
        assert toy_store.query(f"ASK {{ ?x {AGE} ?a }}") == AskResult(True)

    def test_ask_method_rejects_select(self, toy_store):
        engine = QueryEngine(toy_store)
        with pytest.raises(TypeError):
            engine.ask(f"SELECT ?x WHERE {{ ?x {AGE} ?a }}")
        assert isinstance(parse_query(f"ASK {{ ?x {AGE} ?a }}"), AskQuery)

    def test_baseline_ask_honours_reasoning(self, toy_data, toy_ontology):
        # ?x memberOf ?d only matches bob's headOf triple through the
        # property hierarchy — the baseline's ASK must apply the rewrite.
        from repro.baselines.multi_index_store import MultiIndexMemoryStore

        baseline = MultiIndexMemoryStore()
        baseline.load(toy_data, ontology=toy_ontology)
        ask = f"ASK {{ <{EX.bob}> {MEMBER_OF} ?d }}"
        assert not bool(baseline.query(ask, reasoning=False))
        assert bool(baseline.query(ask, reasoning=True))


class TestDifferentialStreamingVsMaterializing:
    """Streaming and materializing engines must agree byte-for-byte."""

    @pytest.fixture(scope="class")
    def engines(self, small_lubm_store):
        def pair(reasoning):
            return (
                QueryEngine(small_lubm_store, reasoning=reasoning),
                MaterializingQueryEngine(small_lubm_store, reasoning=reasoning),
            )

        return {True: pair(True), False: pair(False)}

    def test_paper_queries_byte_identical(self, engines, small_lubm_catalog):
        for query in small_lubm_catalog.all_queries():
            reasoning = query.requires_reasoning
            streaming, materializing = engines[reasoning]
            expected = materializing.execute(query.sparql)
            actual = streaming.execute(query.sparql)
            assert actual.variables == expected.variables, query.identifier
            assert actual.to_tuples() == expected.to_tuples(), query.identifier

    def test_analytics_queries_byte_identical(self, engines, small_lubm_catalog):
        for query in small_lubm_catalog.analytics_queries():
            streaming, materializing = engines[False]
            expected = materializing.execute(query.sparql)
            actual = streaming.execute(query.sparql)
            if isinstance(expected, AskResult):
                assert actual == expected, query.identifier
                continue
            assert actual.to_tuples() == expected.to_tuples(), query.identifier

    def test_join_strategies_still_agree(self, small_lubm_store, small_lubm_catalog):
        query = small_lubm_catalog.by_identifier()["M1"].sparql
        results = {
            strategy: QueryEngine(small_lubm_store, reasoning=False, join_strategy=strategy)
            .execute(query)
            .to_set()
            for strategy in ("auto", "bind", "merge")
        }
        assert results["auto"] == results["bind"] == results["merge"]


class TestEarlyTermination:
    """LIMIT/ASK pipelines must do less SDS work than full materialization."""

    @pytest.fixture(scope="class")
    def join_query(self):
        # A two-pattern join whose second pattern is probed once per left row:
        # early termination skips most of the probes.
        return (
            "PREFIX lubm: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
            "SELECT ?x ?n WHERE { ?x lubm:worksFor ?d . ?x lubm:name ?n } LIMIT 5"
        )

    def test_limit_uses_fewer_kernel_calls(self, small_lubm_store, join_query):
        streaming = QueryEngine(small_lubm_store, reasoning=False)
        materializing = MaterializingQueryEngine(small_lubm_store, reasoning=False)
        streamed = measure_call(lambda: streaming.execute(join_query))
        materialized = measure_call(lambda: materializing.execute(join_query))
        assert len(streamed.result) == len(materialized.result) == 5
        assert streamed.result.to_tuples() == materialized.result.to_tuples()
        assert streamed.kernel_calls < materialized.kernel_calls

    def test_ask_uses_fewer_kernel_calls(self, small_lubm_store):
        ask = (
            "PREFIX lubm: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
            "ASK { ?x lubm:worksFor ?d . ?x lubm:name ?n }"
        )
        streaming = QueryEngine(small_lubm_store, reasoning=False)
        materializing = MaterializingQueryEngine(small_lubm_store, reasoning=False)
        streamed = measure_call(lambda: streaming.execute(ask))
        materialized = measure_call(lambda: materializing.execute(ask))
        assert bool(streamed.result) and bool(materialized.result)
        assert streamed.kernel_calls < materialized.kernel_calls

    def test_stream_is_lazy(self, small_lubm_store, join_query):
        engine = QueryEngine(small_lubm_store, reasoning=False)
        full_query = join_query.replace(" LIMIT 5", "")
        prefix = measure_call(
            lambda: list(itertools.islice(engine.stream(full_query), 3))
        )
        full = measure_call(lambda: engine.execute(full_query))
        assert len(prefix.result) == 3
        assert len(full.result) > 3
        assert prefix.kernel_calls < full.kernel_calls

    def test_pipeline_construction_is_free(self, small_lubm_store):
        # Building the pipeline — UNION branches and merge-join prefixes
        # included — must not touch the store before the first pull.
        union_query = (
            "PREFIX lubm: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
            "SELECT ?x WHERE { { ?x lubm:worksFor ?d } UNION { ?x lubm:name ?n } }"
        )
        engine = QueryEngine(small_lubm_store, reasoning=False)
        construction = measure_call(lambda: engine.stream(union_query))
        assert construction.kernel_calls == 0
        first = measure_call(lambda: next(construction.result))
        assert first.kernel_calls > 0
