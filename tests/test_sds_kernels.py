"""Property-based and brute-force tests for the batched SDS kernels.

The vectorized hot path (sampled select directory, ``rank_many`` /
``select_many`` / ``select_range`` / ``scan_ones`` on bitvectors, batched
``access_range`` / ``range_search`` on wavelet trees, word-level builder
ingestion) must agree bit-for-bit with the naive single-call definitions.
Every test here checks a batched kernel against its brute-force reference.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sds.bitvector import BitVector, BitVectorBuilder
from repro.sds.int_sequence import IntSequence
from repro.sds.kernels import (
    kernel_counters,
    nth_set_bit,
    popcount,
    reset_kernel_counters,
    set_offsets,
    total_kernel_calls,
)
from repro.sds.wavelet_tree import WaveletTree

bit_lists = st.lists(st.integers(min_value=0, max_value=1), max_size=700)

# Mixed densities exercise both the dense (offset-list) and sparse
# (directory re-seek) paths of the select scan.
sparse_bits = st.integers(min_value=1, max_value=1500).flatmap(
    lambda n: st.lists(
        st.sampled_from([0, 0, 0, 0, 0, 0, 0, 1]), min_size=n, max_size=n
    )
)


class TestWordKernels:
    def test_popcount_matches_bin_count(self):
        for word in (0, 1, 0xFF, 0xDEADBEEF, (1 << 64) - 1, 0x8000000000000001):
            assert popcount(word) == bin(word).count("1")

    def test_nth_set_bit_positions(self):
        word = 0b10110010_00000001_10000000_00000000_00000000_00000000_00000000_00000101
        expected = [i for i in range(64) if (word >> i) & 1]
        for n, offset in enumerate(expected, start=1):
            assert nth_set_bit(word, n) == offset
        assert set_offsets(word) == expected

    def test_nth_set_bit_exhausted_raises(self):
        with pytest.raises(ValueError):
            nth_set_bit(0b101, 3)


class TestSampledSelect:
    """The sampled select directory must agree with the naive definition."""

    @settings(max_examples=80, deadline=None)
    @given(bits=bit_lists)
    def test_select_matches_naive_reference(self, bits):
        bv = BitVector(bits)
        for bit in (0, 1):
            positions = [i for i, b in enumerate(bits) if b == bit]
            for occurrence, expected in enumerate(positions, start=1):
                assert bv.select(occurrence, bit) == expected

    def test_select_spanning_many_sample_strides(self):
        # More set bits than one sample stride (512) on both sides.
        bits = ([1] * 1500) + ([0] * 700) + ([1] * 900)
        bv = BitVector(bits)
        assert bv.select(1500, 1) == 1499
        assert bv.select(1501, 1) == 2200
        assert bv.select(2400, 1) == 3099
        assert bv.select(1, 0) == 1500
        assert bv.select(700, 0) == 2199

    def test_select0_at_word_boundaries(self):
        # Zeros sitting exactly on 64-bit word edges.
        bits = ([1] * 63) + [0] + ([1] * 64) + [0] + ([1] * 63) + [0]
        bv = BitVector(bits)
        assert bv.select(1, 0) == 63
        assert bv.select(2, 0) == 128
        assert bv.select(3, 0) == 192

    def test_select0_ignores_trailing_word_padding(self):
        bits = [1] * 65  # one full word plus one bit; padding zeros follow
        bv = BitVector(bits)
        with pytest.raises(ValueError):
            bv.select(1, 0)


class TestBatchedBitVectorKernels:
    @settings(max_examples=60, deadline=None)
    @given(bits=bit_lists, data=st.data())
    def test_rank_many_matches_brute_force(self, bits, data):
        bv = BitVector(bits)
        indices = data.draw(
            st.lists(st.integers(min_value=0, max_value=len(bits)), max_size=30)
        )
        for bit in (0, 1):
            expected = [sum(1 for b in bits[:i] if b == bit) for i in indices]
            assert bv.rank_many(indices, bit) == expected

    @settings(max_examples=60, deadline=None)
    @given(bits=bit_lists, data=st.data())
    def test_scan_ones_matches_brute_force(self, bits, data):
        bv = BitVector(bits)
        start = data.draw(st.integers(min_value=0, max_value=len(bits)))
        stop = data.draw(st.integers(min_value=start, max_value=len(bits)))
        assert bv.scan_ones(start, stop) == [
            i for i in range(start, stop) if bits[i]
        ]

    @settings(max_examples=60, deadline=None)
    @given(bits=st.one_of(bit_lists, sparse_bits), data=st.data())
    def test_select_many_matches_repeated_select(self, bits, data):
        bv = BitVector(bits)
        for bit in (0, 1):
            total = bv.count(bit)
            if total == 0:
                continue
            occurrences = sorted(
                data.draw(
                    st.lists(
                        st.integers(min_value=1, max_value=total), max_size=40
                    )
                )
            )
            expected = [bv.select(j, bit) for j in occurrences]
            assert bv.select_many(occurrences, bit) == expected

    @settings(max_examples=60, deadline=None)
    @given(bits=bit_lists, data=st.data())
    def test_select_range_matches_repeated_select(self, bits, data):
        bv = BitVector(bits)
        for bit in (0, 1):
            total = bv.count(bit)
            if total == 0:
                continue
            first = data.draw(st.integers(min_value=1, max_value=total))
            last = data.draw(st.integers(min_value=first, max_value=total))
            expected = [bv.select(j, bit) for j in range(first, last + 1)]
            assert bv.select_range(first, last, bit) == expected

    def test_select_many_rejects_descending_occurrences(self):
        bv = BitVector([1] * 10)
        with pytest.raises(ValueError):
            bv.select_many([5, 3], 1)

    def test_select_many_beyond_population_raises(self):
        bv = BitVector([1, 0, 1])
        with pytest.raises(ValueError):
            bv.select_many([1, 3], 1)


class TestBuilderFastPaths:
    @settings(max_examples=50, deadline=None)
    @given(prefix=bit_lists, payload=bit_lists)
    def test_extend_bitvector_equals_per_bit_extend(self, prefix, payload):
        fast = BitVectorBuilder()
        fast.extend(prefix)
        fast.extend(BitVector(payload))  # word-level splice
        slow = BitVectorBuilder()
        slow.extend(prefix)
        for bit in payload:
            slow.append(bit)
        assert fast.build().to_list() == slow.build().to_list()

    @settings(max_examples=50, deadline=None)
    @given(prefix=bit_lists, payload=st.binary(max_size=40))
    def test_extend_bytes_little_endian_bit_order(self, prefix, payload):
        builder = BitVectorBuilder()
        builder.extend(prefix)
        builder.extend(payload)
        expected = prefix + [
            (byte >> offset) & 1 for byte in payload for offset in range(8)
        ]
        assert builder.build().to_list() == expected

    @settings(max_examples=50, deadline=None)
    @given(bits=bit_lists, run_bit=st.integers(min_value=0, max_value=1),
           run_length=st.integers(min_value=0, max_value=300))
    def test_append_run(self, bits, run_bit, run_length):
        builder = BitVectorBuilder()
        builder.extend(bits)
        builder.append_run(run_bit, run_length)
        assert builder.build().to_list() == bits + [run_bit] * run_length

    def test_extend_words_unaligned(self):
        builder = BitVectorBuilder()
        builder.append(1)  # misalign by one bit
        builder.extend_words([0xDEADBEEFCAFEBABE, 0x1FF], 73)
        expected = [1]
        for word, count in ((0xDEADBEEFCAFEBABE, 64), (0x1FF, 9)):
            expected.extend((word >> i) & 1 for i in range(count))
        assert builder.build().to_list() == expected

    def test_from_bytes_round_trip(self):
        payload = bytes(range(37))
        bv = BitVector.from_bytes(payload)
        assert len(bv) == len(payload) * 8
        assert bv.to_list() == [
            (byte >> offset) & 1 for byte in payload for offset in range(8)
        ]
        truncated = BitVector.from_bytes(payload, length=101)
        assert truncated.to_list() == bv.to_list()[:101]

    def test_builder_rejects_non_bits_in_fast_loop(self):
        builder = BitVectorBuilder()
        with pytest.raises(ValueError):
            builder.extend([0, 1, 2])


int_sequences = st.integers(min_value=1, max_value=18).flatmap(
    lambda width: st.tuples(
        st.just(width),
        st.lists(st.integers(min_value=0, max_value=(1 << width) - 1), max_size=300),
    )
)


class TestIntSequenceBatch:
    @settings(max_examples=60, deadline=None)
    @given(spec=int_sequences, data=st.data())
    def test_access_range_matches_slicing(self, spec, data):
        width, values = spec
        seq = IntSequence(values, width=width)
        assert seq.to_list() == values
        start = data.draw(st.integers(min_value=0, max_value=len(values)))
        stop = data.draw(st.integers(min_value=start, max_value=len(values)))
        assert seq.access_range(start, stop) == values[start:stop]

    def test_values_straddling_word_boundaries(self):
        values = [(1 << 13) - 1, 0, 4242, 8191, 1]
        seq = IntSequence(values, width=13)
        assert [seq.access(i) for i in range(len(values))] == values
        assert seq.access_range(0, len(values)) == values


wt_specs = st.integers(min_value=1, max_value=24).flatmap(
    lambda sigma: st.tuples(
        st.just(sigma),
        st.lists(st.integers(min_value=0, max_value=sigma - 1), max_size=300),
    )
)


class TestWaveletTreeBatch:
    @settings(max_examples=50, deadline=None)
    @given(spec=wt_specs, data=st.data())
    def test_access_range_matches_slicing(self, spec, data):
        sigma, values = spec
        wt = WaveletTree(values, alphabet_size=sigma)
        begin = data.draw(st.integers(min_value=0, max_value=len(values)))
        end = data.draw(st.integers(min_value=begin, max_value=len(values)))
        assert wt.access_range(begin, end) == values[begin:end]

    @settings(max_examples=50, deadline=None)
    @given(spec=wt_specs, data=st.data())
    def test_range_search_matches_brute_force(self, spec, data):
        sigma, values = spec
        wt = WaveletTree(values, alphabet_size=sigma)
        begin = data.draw(st.integers(min_value=0, max_value=len(values)))
        end = data.draw(st.integers(min_value=begin, max_value=len(values)))
        symbol = data.draw(st.integers(min_value=0, max_value=sigma - 1))
        assert wt.range_search(begin, end, symbol) == [
            i for i in range(begin, end) if values[i] == symbol
        ]

    @settings(max_examples=50, deadline=None)
    @given(spec=wt_specs, data=st.data())
    def test_rank_many_matches_repeated_rank(self, spec, data):
        sigma, values = spec
        wt = WaveletTree(values, alphabet_size=sigma)
        indices = data.draw(
            st.lists(st.integers(min_value=0, max_value=len(values)), max_size=25)
        )
        symbol = data.draw(st.integers(min_value=0, max_value=sigma - 1))
        assert wt.rank_many(indices, symbol) == [
            wt.rank(i, symbol) for i in indices
        ]

    @settings(max_examples=50, deadline=None)
    @given(spec=wt_specs, data=st.data())
    def test_range_search_symbols_matches_brute_force(self, spec, data):
        sigma, values = spec
        wt = WaveletTree(values, alphabet_size=sigma)
        begin = data.draw(st.integers(min_value=0, max_value=len(values)))
        end = data.draw(st.integers(min_value=begin, max_value=len(values)))
        lo = data.draw(st.integers(min_value=0, max_value=sigma))
        hi = data.draw(st.integers(min_value=0, max_value=sigma))
        assert wt.range_search_symbols(begin, end, lo, hi) == [
            (i, values[i]) for i in range(begin, end) if lo <= values[i] < hi
        ]

    @settings(max_examples=40, deadline=None)
    @given(spec=wt_specs, data=st.data())
    def test_select_range_matches_repeated_select(self, spec, data):
        sigma, values = spec
        wt = WaveletTree(values, alphabet_size=sigma)
        symbol = data.draw(st.integers(min_value=0, max_value=sigma - 1))
        total = wt.count(symbol)
        if total == 0:
            assert wt.select_range(1, 0, symbol) == []
            return
        first = data.draw(st.integers(min_value=1, max_value=total))
        last = data.draw(st.integers(min_value=first, max_value=total))
        assert wt.select_range(first, last, symbol) == [
            wt.select(j, symbol) for j in range(first, last + 1)
        ]


class TestKernelCounters:
    def test_batched_call_counts_once(self):
        bv = BitVector([1, 0, 1, 1, 0, 1, 0, 1] * 40)
        reset_kernel_counters()
        bv.scan_ones(0, len(bv))
        counters = kernel_counters()
        assert counters.get("scan") == 1
        assert total_kernel_calls() == 1
        reset_kernel_counters()
        assert total_kernel_calls() == 0

    def test_measurement_records_kernel_calls(self):
        from repro.bench.measure import measure_call

        bv = BitVector([1, 0] * 100)
        measurement = measure_call(lambda: bv.rank_many(range(0, 200, 7), 1))
        assert measurement.kernel_calls >= 1
        assert "rank_many" in measurement.kernel_breakdown
