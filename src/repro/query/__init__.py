"""Query optimization and processing (paper Section 5).

* :mod:`repro.query.query_graph` — the query graph (TP nodes, SS/SO join edges);
* :mod:`repro.query.optimizer` — Algorithm 1: heuristic + statistics join ordering;
* :mod:`repro.query.plan` — the left-deep physical plan description;
* :mod:`repro.query.tp_eval` — triple-pattern evaluation as SDS operations
  (Algorithms 3 and 4) with LiteMat interval reasoning;
* :mod:`repro.query.engine` — the full SELECT pipeline (BGP joins, FILTER,
  BIND, UNION, projection);
* :mod:`repro.query.rewriter` — the "high-level concept" query helper of the
  paper's contribution (iv).
"""

from repro.query.engine import QueryEngine
from repro.query.optimizer import JoinOrderOptimizer
from repro.query.plan import AccessPath, PhysicalPlan, PlanStep
from repro.query.query_graph import JoinEdge, QueryGraph, QueryNode

__all__ = [
    "AccessPath",
    "JoinEdge",
    "JoinOrderOptimizer",
    "PhysicalPlan",
    "PlanStep",
    "QueryEngine",
    "QueryGraph",
    "QueryNode",
]
