"""Streaming SPARQL SELECT/ASK execution over a SuccinctEdge store.

The engine is a thin **interpreter of the plan IR** (:mod:`repro.query.plan`):
a parsed query is compiled — through the cost-based planner by default — into
a :class:`~repro.query.plan.GroupPlan` (BGP join steps plus OPTIONAL / UNION
/ VALUES / BIND / FILTER placement) and a modifier pipeline whose steps carry
typed payloads, and execution walks exactly those steps.  ``explain()``
renders the same IR, so the printed plan *is* the executed plan.

Operators come from :mod:`repro.query.operators`: triple-pattern scans and
bind-propagation joins stream bindings one at a time on top of the batched
SDS kernels.  Because consumers pull, a ``LIMIT 10`` stops every upstream
operator after ten rows — the remaining triple-pattern probes (and their SDS
kernel calls) never execute — and ``ASK`` stops after the first solution.

Compiled plans are cached per BGP and invalidated on the statistics version
(every delta write bumps it), so live updates re-plan with fresh
cardinalities instead of replaying stale orders.

The previous list-materializing evaluation survives as
:class:`~repro.query.materializing.MaterializingQueryEngine`; the
differential tests check that the two return byte-identical results.  Both
engines accept ``planner="heuristic"`` to run the paper's Algorithm 1
instead of the cost-based planner (the plan-quality benchmark compares
them).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Set, Union as TypingUnion

from repro.caching import LruCache
from repro.query import operators as ops
from repro.query.optimizer import CostModel, create_optimizer
from repro.query.plan import (
    GroupPlan,
    JoinMethod,
    ModifierOp,
    PhysicalPlan,
    PipelinePlan,
)
from repro.query.tp_eval import TriplePatternEvaluator
from repro.sparql.algebra import group_solutions
from repro.sparql.ast import (
    AskQuery,
    GroupGraphPattern,
    Query,
    SelectQuery,
    TriplePattern,
)
from repro.sparql.bindings import AskResult, Binding, ResultSet
from repro.sparql.parser import parse_query
from repro.store.succinct_edge import SuccinctEdge

#: Bound on the per-engine compiled-BGP plan cache.
_PLAN_CACHE_CAPACITY = 256


class QueryEngine:
    """Executes SELECT/ASK queries (supported subset) against a SuccinctEdge store.

    Parameters
    ----------
    store:
        The SuccinctEdge instance to query.
    reasoning:
        When ``True`` (the paper's native mode), concept and property
        hierarchy inferences are answered through LiteMat identifier
        intervals at query time.
    join_strategy:
        ``"auto"`` follows the optimizer's choice (merge joins where the PSO
        order allows them, bind propagation otherwise); ``"bind"`` forces
        bind propagation everywhere; ``"merge"`` forces sort-merge joins where
        a single shared variable exists.  The ablation benchmark compares the
        strategies.
    planner:
        ``"cost"`` (default) uses the DP cost-based planner;
        ``"heuristic"`` the paper's Algorithm 1.
    cost_model:
        Optional :class:`~repro.query.optimizer.CostModel` override for the
        cost-based planner (e.g. one calibrated on this store).
    """

    def __init__(
        self,
        store: SuccinctEdge,
        reasoning: bool = True,
        join_strategy: str = "auto",
        planner: str = "cost",
        cost_model: Optional[CostModel] = None,
    ) -> None:
        if join_strategy not in ("auto", "bind", "merge"):
            raise ValueError(f"unknown join strategy {join_strategy!r}")
        self.store = store
        self.reasoning = reasoning
        self.join_strategy = join_strategy
        self.planner = planner
        self.evaluator = TriplePatternEvaluator(store, reasoning=reasoning)
        # Runtime estimates reuse the evaluator's Algorithm-2 counts on the
        # SDS rank/select directories when dictionary statistics draw a blank.
        self.optimizer = create_optimizer(
            planner,
            statistics=store.statistics,
            runtime_estimator=self.evaluator.estimate_cardinality,
            reasoning=reasoning,
            cost_model=cost_model,
        )
        # Compiled plans per BGP, keyed on (patterns, statistics version):
        # OPTIONAL groups are re-evaluated seeded once per upstream row, so
        # without the cache every row would re-run the planner — and keying
        # on the statistics version re-plans after every applied write
        # instead of replaying orders chosen under stale cardinalities.
        self._plan_cache = LruCache(_PLAN_CACHE_CAPACITY)

    def _path_evaluator(self):
        """The (lazily created) property-path evaluator over this engine's backend.

        Created on first use and re-created if :attr:`evaluator` has been
        replaced since — the parallel / process / cluster engines install
        their executor *after* ``super().__init__``, and the path evaluator
        must drive that executor's ``expand_frontier`` hook, not the plain
        sequential one captured at construction.
        """
        cached = getattr(self, "_paths", None)
        if cached is None or cached.evaluator is not self.evaluator:
            from repro.query.paths import PathEvaluator

            cached = PathEvaluator(self.evaluator)
            self._paths = cached
        return cached

    def _statistics_version(self) -> Optional[int]:
        statistics = self.store.statistics
        return None if statistics is None else statistics.version

    def _plan_bgp(self, patterns: List[TriplePattern]) -> PhysicalPlan:
        """The (cached) physical plan for one BGP."""
        key = (tuple(patterns), self._statistics_version())
        hit, plan = self._plan_cache.get(key)
        if not hit:
            plan = self.optimizer.optimize(patterns)
            self._plan_cache.put(key, plan)
        return plan

    # ------------------------------------------------------------------ #
    # plan compilation (the parser-to-server IR)
    # ------------------------------------------------------------------ #

    def compile_group(self, group: GroupGraphPattern) -> GroupPlan:
        """Compile one WHERE-clause group into its :class:`GroupPlan` IR.

        The same compilation feeds execution and ``explain()`` — there is no
        second code path that could disagree with the rendering.
        """
        bgp_plan = self._plan_bgp(list(group.bgp.patterns))
        bound = {
            name
            for step in bgp_plan.steps
            for name in step.pattern.variable_names()
        }
        return GroupPlan(
            bgp=bgp_plan,
            paths=self.optimizer.plan_paths(list(group.paths), bound),
            unions=[
                [self.compile_group(branch) for branch in union.branches]
                for union in group.unions
            ],
            optionals=[self.compile_group(optional) for optional in group.optionals],
            values=list(group.values),
            binds=list(group.binds),
            filters=list(group.filters),
        )

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def execute(
        self, query: TypingUnion[str, Query]
    ) -> TypingUnion[ResultSet, AskResult]:
        """Parse (if needed) and execute a query.

        Returns a :class:`~repro.sparql.bindings.ResultSet` for SELECT
        queries and an :class:`~repro.sparql.bindings.AskResult` (truthy iff
        the pattern has a solution) for ASK queries.  Execution is lazy
        end-to-end: the result is materialized here, but upstream operators
        only ever produce the rows the solution modifiers actually consume.
        """
        parsed = parse_query(query) if isinstance(query, str) else query
        if isinstance(parsed, AskQuery):
            return self.ask(parsed)
        assert isinstance(parsed, SelectQuery)
        names = parsed.projected_names()
        return ResultSet(names, self.stream(parsed))

    def ask(self, query: TypingUnion[str, AskQuery]) -> AskResult:
        """Execute an ASK query, stopping at the first solution found."""
        parsed = parse_query(query) if isinstance(query, str) else query
        if not isinstance(parsed, AskQuery):
            raise TypeError(f"ask() needs an ASK query, got {type(parsed).__name__}")
        solutions = self._group_stream(parsed.where, Binding())
        return AskResult(next(solutions, None) is not None)

    def stream(self, query: TypingUnion[str, SelectQuery]) -> Iterator[Binding]:
        """The streaming entry point: yield projected solutions one by one.

        The returned iterator drives the whole operator pipeline lazily —
        consuming only a prefix (e.g. ``itertools.islice``) evaluates only
        that prefix, which is what the edge server uses to serve paginated
        results without computing full answer sets.

        The modifier pipeline is interpreted step by step from the plan IR:
        each :class:`~repro.query.plan.ModifierStep` carries its typed
        payload, so nothing here reaches back into the AST.
        """
        parsed = parse_query(query) if isinstance(query, str) else query
        if not isinstance(parsed, SelectQuery):
            raise TypeError(f"stream() needs a SELECT query, got {type(parsed).__name__}")
        stream: Iterator[Binding] = self._group_stream(parsed.where, Binding())
        for step in self.optimizer.plan_modifiers(parsed):
            if step.op == ModifierOp.AGGREGATE:
                stream = iter(group_solutions(step.payload, list(stream)))
            elif step.op == ModifierOp.EXTEND:
                stream = ops.extend_select(stream, list(step.payload))
            elif step.op == ModifierOp.SORT:
                stream = iter(ops.order(stream, list(step.payload)))
            elif step.op == ModifierOp.TOP_K:
                conditions, fetch = step.payload
                stream = iter(ops.top_k(stream, list(conditions), fetch))
            elif step.op == ModifierOp.PROJECT:
                stream = ops.project(stream, list(step.payload))
            elif step.op == ModifierOp.DISTINCT:
                stream = ops.distinct(stream, list(step.payload))
            elif step.op == ModifierOp.SLICE:
                offset, limit = step.payload
                stream = ops.slice_solutions(stream, offset, limit)
        return stream

    def plan(self, query: TypingUnion[str, Query]) -> PhysicalPlan:
        """The physical plan for the query's top-level BGP (EXPLAIN).

        Covers the WHERE clause's basic graph pattern only — the join order,
        access paths and join methods.  Use :meth:`pipeline_plan` for the
        full IR including nested groups and the solution-modifier pipeline.
        """
        parsed = parse_query(query) if isinstance(query, str) else query
        return self._plan_bgp(list(parsed.where.bgp.patterns))

    def pipeline_plan(self, query: TypingUnion[str, Query]) -> PipelinePlan:
        """The full execution plan: the WHERE-clause IR plus modifier steps."""
        parsed = parse_query(query) if isinstance(query, str) else query
        group = self.compile_group(parsed.where)
        if isinstance(parsed, SelectQuery):
            modifiers = self.optimizer.plan_modifiers(parsed)
        else:
            modifiers = []
        return PipelinePlan(where=group.bgp, modifiers=modifiers, group=group)

    def explain(self, query: TypingUnion[str, Query]) -> str:
        """Multi-line EXPLAIN output for the full pipeline."""
        return self.pipeline_plan(query).explain()

    # ------------------------------------------------------------------ #
    # group evaluation (streaming interpretation of the GroupPlan IR)
    # ------------------------------------------------------------------ #

    def _group_stream(self, group: GroupGraphPattern, seed: Binding) -> Iterator[Binding]:
        """Compile ``group`` (cached per BGP) and interpret its plan."""
        return self._execute_group(self.compile_group(group), seed)

    def _execute_group(self, plan: GroupPlan, seed: Binding) -> Iterator[Binding]:
        """Interpret one :class:`GroupPlan`: the WHERE-clause pipeline.

        Operators are chained exactly in the IR's order: BGP joins, UNION
        combination, OPTIONAL left-outer joins, VALUES, BINDs, then FILTERs.
        ``seed`` pre-binds variables (used by OPTIONAL evaluation, where the
        outer solution propagates into the group's patterns).

        This is a generator function, so *nothing* — including UNION branch
        materialization — happens before the first solution is pulled;
        ``ASK``/``LIMIT`` early termination survives pipeline construction.
        """
        stream = self._bgp_stream(plan.bgp, seed)
        if plan.paths:
            paths = self._path_evaluator()
            for step in plan.paths:
                stream = paths.evaluate_many(step.pattern, stream)
        for union in plan.unions:
            branch_solutions: List[Binding] = []
            for branch in union:
                branch_solutions.extend(self._execute_group(branch, Binding()))
            stream = ops.union_combine(stream, branch_solutions)
        for optional in plan.optionals:
            stream = ops.optional_join(stream, optional, self._execute_group)
        for block in plan.values:
            stream = ops.values_join(stream, block)
        for bind in plan.binds:
            stream = ops.extend(stream, bind)
        for constraint in plan.filters:
            stream = ops.filter_solutions(stream, constraint.expression)
        yield from stream

    # ------------------------------------------------------------------ #
    # BGP evaluation (left-deep streaming pipeline)
    # ------------------------------------------------------------------ #

    def _bgp_stream(self, plan: PhysicalPlan, seed: Binding) -> Iterator[Binding]:
        """Chain the planned BGP steps into a lazy left-deep join pipeline.

        Bind-propagation joins stream; a merge join materializes the pipeline
        prefix first (it needs the whole left side anyway, and the merge
        decision compares its size against the pattern's cardinality
        estimate, mirroring the materializing engine step for step).  A
        generator function, so even that materialization waits for the
        first pull.
        """
        if not plan.steps:
            yield seed
            return
        stream: Iterator[Binding] = iter([seed])
        bound: Set[str] = set(seed)
        for position, step in enumerate(plan.steps):
            if position == 0:
                stream = ops.bind_join(self.evaluator, stream, step.pattern)
            else:
                stream = self._join_step(stream, step.pattern, step.join_method, bound)
            bound.update(step.pattern.variable_names())
        yield from stream

    def _join_step(
        self,
        stream: Iterator[Binding],
        pattern: TriplePattern,
        planned: JoinMethod,
        bound: Set[str],
    ) -> Iterator[Binding]:
        """One join of the left-deep plan, honouring the join-strategy knob."""
        shared = [name for name in pattern.variable_names() if name in bound]
        if self.join_strategy == "bind":
            return ops.bind_join(self.evaluator, stream, pattern)
        if self.join_strategy == "merge":
            if len(shared) != 1:
                return ops.bind_join(self.evaluator, stream, pattern)
            left = list(stream)
            return ops.merge_join(self.evaluator, left, pattern, shared[0])
        if planned == JoinMethod.MERGE and len(shared) == 1:
            # The merge decision needs the left cardinality: a merge join
            # enumerates the pattern's whole property run, which only pays
            # off when the prefix is at least comparable in size.  The
            # prefix is materialized here — the merge join would have to
            # buffer it anyway.
            left = list(stream)
            if not left:
                return iter(())
            right_estimate = self.evaluator.estimate_cardinality(pattern)
            if right_estimate > 2 * len(left):
                return ops.bind_join(self.evaluator, iter(left), pattern)
            return ops.merge_join(self.evaluator, left, pattern, shared[0])
        return ops.bind_join(self.evaluator, stream, pattern)
