"""Datatype-property triple store.

Datatype properties relate an individual to a literal (a measurement value,
a timestamp, a name...).  Creating dictionary entries for every literal would
be wasteful — sensors emit a practically unbounded stream of distinct values —
so SuccinctEdge stores them as-is in a flat literal store and keeps only
positional pointers in the PS layout (paper Section 4, "Datatype-triple-store").

The layout mirrors :class:`~repro.store.triple_store.ObjectTripleStore` for
the property and subject layers (``wt_p``, ``bm_ps``, ``wt_s``, ``bm_so``) but
the object layer is an :class:`~repro.sds.int_sequence.IntSequence` of
positions into the shared :class:`~repro.dictionary.literal_store.LiteralStore`.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.dictionary.literal_store import LiteralStore
from repro.rdf.terms import Literal
from repro.sds.bitvector import BitVector, BitVectorBuilder
from repro.sds.int_sequence import IntSequence
from repro.sds.wavelet_tree import WaveletTree

#: An encoded datatype triple ``(property_id, subject_id, literal)``.
EncodedDatatypeTriple = Tuple[int, int, Literal]


class DatatypeTripleStore:
    """Immutable PS(+flat literal) store over datatype-property triples."""

    def __init__(
        self,
        triples: Sequence[EncodedDatatypeTriple],
        literal_store: Optional[LiteralStore] = None,
    ) -> None:
        self.literals = literal_store if literal_store is not None else LiteralStore()
        # Sort by (property, subject); keep literal insertion order within a pair.
        ordered = sorted(triples, key=lambda triple: (triple[0], triple[1]))
        self._triple_count = len(ordered)

        property_layer: List[int] = []
        subject_layer: List[int] = []
        literal_pointers: List[int] = []
        ps_bits = BitVectorBuilder()
        so_bits = BitVectorBuilder()

        previous_property: Optional[int] = None
        previous_pair: Optional[Tuple[int, int]] = None
        for prop, subject, literal in ordered:
            if prop != previous_property:
                property_layer.append(prop)
                previous_property = prop
                new_property = True
            else:
                new_property = False
            pair = (prop, subject)
            if pair != previous_pair:
                subject_layer.append(subject)
                ps_bits.append(1 if new_property else 0)
                previous_pair = pair
                new_pair = True
            else:
                new_pair = False
            literal_pointers.append(self.literals.append(literal))
            so_bits.append(1 if new_pair else 0)
        ps_bits.append(1)
        so_bits.append(1)

        max_symbol = max(property_layer + subject_layer, default=0)
        alphabet = max_symbol + 1
        self.wt_p = WaveletTree(property_layer, alphabet_size=alphabet)
        self.wt_s = WaveletTree(subject_layer, alphabet_size=alphabet)
        self.object_pointers = IntSequence(literal_pointers)
        self.bm_ps: BitVector = ps_bits.build()
        self.bm_so: BitVector = so_bits.build()

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._triple_count

    def __repr__(self) -> str:
        return f"DatatypeTripleStore({self._triple_count} triples, {len(self.wt_p)} properties)"

    @property
    def properties(self) -> List[int]:
        """Distinct datatype-property identifiers, ascending."""
        return self.wt_p.to_list()

    def has_property(self, property_id: int) -> bool:
        """Whether the store holds at least one triple with ``property_id``."""
        return self.wt_p.count(property_id) > 0

    # ------------------------------------------------------------------ #
    # navigation primitives
    # ------------------------------------------------------------------ #

    def _property_index(self, property_id: int) -> Optional[int]:
        if self.wt_p.count(property_id) == 0:
            return None
        return self.wt_p.select(1, property_id)

    def _subject_run(self, property_index: int) -> Tuple[int, int]:
        begin = self.bm_ps.select(property_index + 1, 1)
        end = self.bm_ps.select(property_index + 2, 1)
        return begin, end

    def _object_run(self, subject_index: int) -> Tuple[int, int]:
        begin = self.bm_so.select(subject_index + 1, 1)
        end = self.bm_so.select(subject_index + 2, 1)
        return begin, end

    def count_triples_with_property(self, property_id: int) -> int:
        """Algorithm 2 applied to the datatype layout."""
        property_index = self._property_index(property_id)
        if property_index is None:
            return 0
        subject_begin, subject_end = self._subject_run(property_index)
        object_begin = self.bm_so.select(subject_begin + 1, 1)
        object_end = self.bm_so.select(subject_end + 1, 1)
        return object_end - object_begin

    def count_subjects_with_property(self, property_id: int) -> int:
        """Number of distinct subjects attached to ``property_id``."""
        property_index = self._property_index(property_id)
        if property_index is None:
            return 0
        subject_begin, subject_end = self._subject_run(property_index)
        return subject_end - subject_begin

    # ------------------------------------------------------------------ #
    # triple pattern evaluation
    # ------------------------------------------------------------------ #

    def literals_for(self, subject_id: int, property_id: int) -> List[Literal]:
        """Literal objects of ``(subject, property, ?o)``."""
        property_index = self._property_index(property_id)
        if property_index is None:
            return []
        subject_begin, subject_end = self._subject_run(property_index)
        results: List[Literal] = []
        for subject_index in self.wt_s.range_search(subject_begin, subject_end, subject_id):
            object_begin, object_end = self._object_run(subject_index)
            for object_index in range(object_begin, object_end):
                results.append(self.literals.get(self.object_pointers.access(object_index)))
        return results

    def subjects_for(self, property_id: int, literal: Literal) -> List[int]:
        """Subjects of ``(?s, property, literal)``.

        Literals are not dictionary-encoded, so this scans the property's
        object run and compares values — the paper accepts this cost because
        literal-bound patterns are rare in its IoT workload.
        """
        property_index = self._property_index(property_id)
        if property_index is None:
            return []
        subject_begin, subject_end = self._subject_run(property_index)
        results: List[int] = []
        for subject_index in range(subject_begin, subject_end):
            object_begin, object_end = self._object_run(subject_index)
            for object_index in range(object_begin, object_end):
                if self.literals.get(self.object_pointers.access(object_index)) == literal:
                    results.append(self.wt_s.access(subject_index))
                    break
        return results

    def pairs_for_property(self, property_id: int) -> Iterator[Tuple[int, Literal]]:
        """All ``(subject, literal)`` pairs of ``(?s, property, ?o)``, in PS order."""
        property_index = self._property_index(property_id)
        if property_index is None:
            return
        subject_begin, subject_end = self._subject_run(property_index)
        for subject_index in range(subject_begin, subject_end):
            subject_id = self.wt_s.access(subject_index)
            object_begin, object_end = self._object_run(subject_index)
            for object_index in range(object_begin, object_end):
                yield subject_id, self.literals.get(self.object_pointers.access(object_index))

    def pairs_for_property_interval(
        self, property_low: int, property_high: int
    ) -> Iterator[Tuple[int, int, Literal]]:
        """All ``(property, subject, literal)`` triples whose property identifier
        falls in the LiteMat interval ``[property_low, property_high)``."""
        for position, property_id in self.wt_p.range_search_symbols(
            0, len(self.wt_p), property_low, property_high
        ):
            subject_begin, subject_end = self._subject_run(position)
            for subject_index in range(subject_begin, subject_end):
                subject_id = self.wt_s.access(subject_index)
                object_begin, object_end = self._object_run(subject_index)
                for object_index in range(object_begin, object_end):
                    literal = self.literals.get(self.object_pointers.access(object_index))
                    yield property_id, subject_id, literal

    def iter_triples(self) -> Iterator[EncodedDatatypeTriple]:
        """All stored triples in PS order."""
        for position in range(len(self.wt_p)):
            property_id = self.wt_p.access(position)
            subject_begin, subject_end = self._subject_run(position)
            for subject_index in range(subject_begin, subject_end):
                subject_id = self.wt_s.access(subject_index)
                object_begin, object_end = self._object_run(subject_index)
                for object_index in range(object_begin, object_end):
                    literal = self.literals.get(self.object_pointers.access(object_index))
                    yield property_id, subject_id, literal

    # ------------------------------------------------------------------ #
    # storage accounting
    # ------------------------------------------------------------------ #

    def size_in_bytes(self, include_literals: bool = True) -> int:
        """Approximate storage footprint (optionally excluding literal payload)."""
        total = (
            self.wt_p.size_in_bytes()
            + self.wt_s.size_in_bytes()
            + self.object_pointers.size_in_bytes()
            + self.bm_ps.size_in_bytes()
            + self.bm_so.size_in_bytes()
        )
        if include_literals:
            total += self.literals.size_in_bytes()
        return total
