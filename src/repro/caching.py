"""Shared bounded, thread-safe LRU cache.

One implementation serves every cache in the system: the serving layer's
result and plan caches (:mod:`repro.serve.cache` re-exports it under its
historical home), the query engines' compiled-plan cache
(:mod:`repro.query.engine`) and the parallel executor's per-shard count
cache (:mod:`repro.query.parallel`).  All of them follow the same
invalidation idiom — the key embeds a version/epoch component that moves on
every write, so stale entries miss and age out through the LRU bound with
no explicit invalidation pass.
"""

from __future__ import annotations

import os
import threading
import weakref
from collections import OrderedDict
from typing import Hashable, Optional, Tuple

#: Returned by :meth:`LruCache.get` on a miss (``None`` is a valid value).
_MISS = object()

#: Every live cache, tracked so a forked child can repair them all (see
#: :func:`_reset_caches_after_fork`).
_LIVE_CACHES: "weakref.WeakSet" = weakref.WeakSet()


class LruCache:
    """A bounded, thread-safe LRU mapping of cache keys to values."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        _LIVE_CACHES.add(self)

    def get(self, key: Hashable) -> Tuple[bool, Optional[object]]:
        """``(True, value)`` on a hit, ``(False, None)`` on a miss."""
        with self._lock:
            value = self._entries.get(key, _MISS)
            if value is _MISS:
                self.misses += 1
                return False, None
            self._entries.move_to_end(key)
            self.hits += 1
            return True, value

    def put(self, key: Hashable, value: object) -> None:
        """Insert ``value``, evicting the least recently used entry if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            self._entries[key] = value
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Hits over lookups since construction (0.0 with no lookups)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def info(self) -> dict:
        """One consistent snapshot of the counters."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": round(self.hit_rate, 4),
            }

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({len(self)}/{self.capacity} entries, "
            f"{self.hits} hits, {self.misses} misses)"
        )


def _reset_caches_after_fork() -> None:
    """Repair every cache in a freshly forked child process.

    A fork can catch a cache mid-``put`` in another thread: the child then
    inherits a lock that is held forever (its owner thread does not exist
    in the child — the classic fork deadlock) and possibly a half-mutated
    ``OrderedDict``.  Each cache gets a brand-new lock and an empty entry
    map; entries repopulate on demand, which is the caches' normal miss
    path.  Runs single-threaded (Python forks replicate only the calling
    thread), so touching the attributes without the old lock is safe.
    """
    for cache in list(_LIVE_CACHES):
        cache._lock = threading.Lock()
        cache._entries = OrderedDict()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reset_caches_after_fork)
