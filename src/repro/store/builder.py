"""Store builder: dictionaries, LiteMat encoding and triple partitioning.

The builder reproduces the construction pipeline of the paper's Figure 4:

1. the ontology is turned into an :class:`~repro.ontology.schema.OntologySchema`
   and LiteMat-encoded (concept and property dictionaries);
2. individuals receive sequential identifiers in the instance dictionary;
3. triples are partitioned into the three storage layouts — ``rdf:type``
   triples, object-property triples and datatype-property triples;
4. occurrence statistics are recorded for the query optimizer;
5. the SDS structures are built and wrapped into a
   :class:`~repro.store.succinct_edge.SuccinctEdge` instance.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.dictionary.literal_store import LiteralStore
from repro.dictionary.statistics import DictionaryStatistics, profile_triples
from repro.dictionary.term_dictionary import (
    ConceptDictionary,
    InstanceDictionary,
    PropertyDictionary,
)
from repro.ontology.litemat import LiteMatEncoder
from repro.ontology.schema import OntologySchema
from repro.rdf.graph import Graph
from repro.rdf.namespaces import (
    RDF_TYPE,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASSOF,
    RDFS_SUBPROPERTYOF,
)
from repro.rdf.terms import Literal, URI
from repro.store.datatype_store import DatatypeTripleStore
from repro.store.rdftype_store import RDFTypeStore
from repro.store.triple_store import ObjectTripleStore

_SCHEMA_PREDICATES = {RDFS_SUBCLASSOF, RDFS_SUBPROPERTYOF, RDFS_DOMAIN, RDFS_RANGE}


class StoreBuilder:
    """Builds a :class:`~repro.store.succinct_edge.SuccinctEdge` from graphs.

    Parameters
    ----------
    ontology:
        Optional ontology graph (TBox).  Its hierarchy axioms drive the
        LiteMat encoding; in the paper's deployment this encoding happens on
        the central server and the resulting dictionaries are broadcast to
        the edge devices.
    include_schema_triples:
        When ``True``, schema triples found in the *data* graph are also
        stored as regular triples; by default they only feed the schema
        (LUBM's data files are pure ABox, like the paper's datasets).
    """

    def __init__(
        self,
        ontology: Optional[Graph] = None,
        include_schema_triples: bool = False,
    ) -> None:
        self.ontology = ontology
        self.include_schema_triples = include_schema_triples

    def build(self, data: Graph) -> "SuccinctEdge":
        """Build a fully-loaded SuccinctEdge instance from ``data``."""
        from repro.store.succinct_edge import SuccinctEdge  # deferred: avoids an import cycle

        schema = OntologySchema()
        if self.ontology is not None:
            schema = OntologySchema.from_graph(self.ontology)
        # One pass feeds schema axioms shipped inside the data graph into the
        # hierarchy AND collects the concepts/properties the data mentions.
        data_concepts, data_properties = self._collect_terms(
            data,
            schema=schema,
            include_schema_predicates=self.include_schema_triples,
        )
        encoder = LiteMatEncoder(schema)
        concept_encoding = encoder.encode_concepts(extra_concepts=data_concepts)
        property_encoding = encoder.encode_properties(extra_properties=data_properties)

        concepts = ConceptDictionary(concept_encoding)
        properties = PropertyDictionary(property_encoding)
        instances = InstanceDictionary()

        type_triples: List[Tuple[int, int]] = []
        object_triples: List[Tuple[int, int, int]] = []
        datatype_triples: List[Tuple[int, int, Literal]] = []
        skipped = 0

        for triple in data:
            subject, predicate, obj = triple
            if predicate in _SCHEMA_PREDICATES and not self.include_schema_triples:
                continue
            if predicate == RDF_TYPE:
                if not isinstance(obj, URI) or obj not in concepts:
                    skipped += 1
                    continue
                subject_id = instances.add(subject)
                concept_id = concepts.locate(obj)
                type_triples.append((subject_id, concept_id))
                concepts.record_occurrence(concept_id)
                instances.record_occurrence(subject_id)
                continue
            property_id = properties.locate(predicate)
            subject_id = instances.add(subject)
            properties.record_occurrence(property_id)
            instances.record_occurrence(subject_id)
            if isinstance(obj, Literal):
                datatype_triples.append((property_id, subject_id, obj))
            else:
                object_id = instances.add(obj)
                instances.record_occurrence(object_id)
                object_triples.append((property_id, subject_id, object_id))

        literal_store = LiteralStore()
        object_store = ObjectTripleStore(object_triples)
        datatype_store = DatatypeTripleStore(datatype_triples, literal_store)
        type_store = RDFTypeStore(type_triples)
        statistics = DictionaryStatistics(concepts, properties, instances)
        # Join-aware statistics for the cost-based planner: one profiling
        # pass over the already-encoded triples (distinct subject/object
        # counts per property, characteristic sets per subject).
        profiles, characteristic_sets = profile_triples(
            object_triples, datatype_triples, type_triples
        )
        statistics.register_profiles(
            profiles, characteristic_sets, type_triple_count=len(type_triples)
        )

        return SuccinctEdge(
            schema=schema,
            concepts=concepts,
            properties=properties,
            instances=instances,
            object_store=object_store,
            datatype_store=datatype_store,
            type_store=type_store,
            statistics=statistics,
            skipped_triples=skipped,
        )

    @staticmethod
    def _collect_terms(
        data: Graph,
        schema: Optional[OntologySchema] = None,
        include_schema_predicates: bool = False,
    ) -> Tuple[List[URI], List[URI]]:
        """Concepts and properties mentioned by the data but maybe not declared.

        When ``schema`` is given, schema axioms found in the data graph are
        ingested into it during the same pass (the seed implementation walked
        the graph twice).
        """
        concepts: List[URI] = []
        seen_concepts = set()
        properties: List[URI] = []
        seen_properties = set()
        for triple in data:
            if triple.predicate in _SCHEMA_PREDICATES:
                if schema is not None:
                    schema._ingest(triple)  # noqa: SLF001 — builder is a friend of the schema
                if not include_schema_predicates:
                    continue
            if triple.predicate == RDF_TYPE:
                if isinstance(triple.object, URI) and triple.object not in seen_concepts:
                    seen_concepts.add(triple.object)
                    concepts.append(triple.object)
                continue
            if triple.predicate not in seen_properties:
                seen_properties.add(triple.predicate)
                properties.append(triple.predicate)
        return concepts, properties
