"""Differential tests: property paths must be byte-identical everywhere.

The property-path tentpole promises one observable semantics for every
execution tier.  The ground truth is :class:`NaivePathOracle` — the naive
repeated-join fixpoint inside the materializing engine, written without any
of the production machinery (no interval frontiers, no probe-vs-scan, no
id-level stepping).  The matrix below checks **byte-identity** (same
variables, same rows, same order) between that oracle and

* the sequential streaming engine (interval-frontier BFS),
* the thread-parallel engine over a 4-shard store (frontier scatter),
* the process-pool engine over both the monolithic store and the 4-shard
  layout (``"expand"`` work units in mmap-attached workers),
* the cluster coordinator over HTTP replicas (epoch-pinned path units),

first on the base graph, then with a live delta overlay riding on an
updatable store (including a write that closes the whole chain into one
big cycle), and once more after compact-and-swap folded the delta.

The graph is adversarial on purpose: a chain feeding a cycle (the fixpoint
must terminate and not double-count), a high-fanout hub with a back edge
(a 2-cycle), literal-valued edges (datatype-layout frontiers), an rdf:type
hierarchy and a subproperty axiom (reasoning-aware link expansion).
"""

from __future__ import annotations

import pytest

from repro.query.engine import QueryEngine
from repro.query.materializing import MaterializingQueryEngine
from repro.query.multiproc import ProcessPoolQueryEngine, WorkerPool
from repro.query.parallel import ParallelQueryEngine
from repro.rdf.graph import Graph
from repro.rdf.namespaces import RDF, RDFS, Namespace
from repro.rdf.terms import Literal, Triple
from repro.serve.cluster import (
    ClusterQueryEngine,
    ClusterReplica,
    HttpReplicationClient,
    ReplicaSet,
    ReplicationSource,
)
from repro.serve.server import QueryServer
from repro.serve.service import QueryService
from repro.sparql.bindings import AskResult
from repro.store.delta import MANUAL_COMPACTION
from repro.store.sharding import ShardedStore
from repro.store.succinct_edge import SuccinctEdge
from repro.store.updatable import UpdatableSuccinctEdge
from types import SimpleNamespace

P = Namespace("http://paths.example.org/")

PREFIXES = (
    f"PREFIX p: <{P.prefix}>\n"
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
)

#: Every path form of the grammar, plus the shapes that historically break
#: transitive-closure engines: bound/unbound endpoint mixes, the diagonal,
#: zero-length on a term absent from the graph, literal-reaching sequences,
#: rdf:type inside a path, and negated sets with inverse members.
PATH_QUERIES = {
    "plus-unbound": "SELECT ?s ?o WHERE { ?s p:next+ ?o }",
    "plus-bound-subject": "SELECT ?o WHERE { p:n0 p:next+ ?o }",
    "plus-bound-object": "SELECT ?s WHERE { ?s p:next+ p:c1 }",
    "star-bound-subject": "SELECT ?o WHERE { p:n0 p:next* ?o }",
    "star-unbound": "SELECT ?s ?o WHERE { ?s p:next* ?o }",
    "star-diagonal": "SELECT ?x WHERE { ?x p:next* ?x }",
    "star-absent-subject": "SELECT ?o WHERE { p:ghost p:next* ?o }",
    "opt-unbound": "SELECT ?x ?o WHERE { ?x p:alt? ?o }",
    "opt-bound-object": "SELECT ?x WHERE { ?x (p:next|p:alt)? p:n3 }",
    "seq": "SELECT ?x ?y WHERE { ?x p:next/p:next ?y }",
    "seq-closure-literal": "SELECT ?x ?l WHERE { ?x p:next+/p:label ?l }",
    "alt": "SELECT ?x ?y WHERE { ?x (p:next|p:alt) ?y }",
    "alt-closure": "SELECT ?o WHERE { p:hub (p:link|p:next)+ ?o }",
    "inverse": "SELECT ?x ?y WHERE { ?x ^p:next ?y }",
    "inverse-bound": "SELECT ?s WHERE { ?s ^p:link p:hub }",
    "inverse-closure": "SELECT ?s WHERE { ?s (^p:next)+ p:n0 }",
    "nps": "SELECT ?s ?o WHERE { ?s !(p:label|p:size|rdf:type) ?o }",
    "nps-inverse": "SELECT ?x ?y WHERE { ?x !(^p:next|p:label) ?y }",
    "nps-pure-inverse": "SELECT ?x ?y WHERE { ?x !(^p:label|^p:alt) ?y }",
    "nps-bound-object": "SELECT ?x WHERE { ?x !(p:next|p:label) p:n3 }",
    "type-seq": "SELECT ?x ?c WHERE { ?x p:next/rdf:type ?c }",
    "type-inverse-seq": "SELECT ?x ?y WHERE { ?x rdf:type/^rdf:type ?y }",
    "subprop-closure": "SELECT ?o WHERE { p:n0 p:edge+ ?o }",
    "bgp-then-path": (
        "SELECT ?x ?o WHERE { ?x rdf:type p:CycleNode . ?x p:next+ ?o }"
    ),
    "path-ask": "ASK { p:n0 p:next+ p:c2 }",
}

ALL_QUERY_IDS = sorted(PATH_QUERIES)


def _rows(result):
    if isinstance(result, AskResult):
        return result.boolean
    return (result.variables, result.to_tuples())


def _sparql(identifier: str) -> str:
    return PREFIXES + PATH_QUERIES[identifier]


def build_path_graph():
    """Base graph, live triples and the ontology for the path matrix."""
    data = Graph()
    triples = [
        # A 5-node chain feeding a 3-cycle: n0 → … → n4 → c0 → c1 → c2 → c0.
        (P.n0, P.next, P.n1),
        (P.n1, P.next, P.n2),
        (P.n2, P.next, P.n3),
        (P.n3, P.next, P.n4),
        (P.n4, P.next, P.c0),
        (P.c0, P.next, P.c1),
        (P.c1, P.next, P.c2),
        (P.c2, P.next, P.c0),
        # A hub with fanout and one back edge (a 2-cycle through leaf0).
        (P.hub, P.link, P.leaf0),
        (P.hub, P.link, P.leaf1),
        (P.hub, P.link, P.leaf2),
        (P.hub, P.link, P.leaf3),
        (P.leaf0, P.link, P.hub),
        (P.leaf1, P.next, P.n0),
        # Alternation-only edges.
        (P.n0, P.alt, P.n3),
        (P.leaf2, P.alt, P.c1),
        # Literal-valued edges (datatype layout).
        (P.n0, P.label, Literal("n0")),
        (P.c0, P.label, Literal("c0")),
        (P.leaf1, P.label, Literal("leaf1")),
        (P.n1, P.size, Literal(5)),
        # Types under a small hierarchy.
        (P.n0, RDF.type, P.Node),
        (P.n1, RDF.type, P.Node),
        (P.c0, RDF.type, P.CycleNode),
        (P.c1, RDF.type, P.CycleNode),
        (P.hub, RDF.type, P.Hub),
    ]
    for subject, predicate, obj in triples:
        data.add(Triple(subject, predicate, obj))
    live = [
        # Closes the whole chain into one strongly connected component …
        Triple(P.c2, P.next, P.n0),
        # … grows the hub, and extends the literal frontier.
        Triple(P.hub, P.link, P.leaf4),
        Triple(P.leaf4, P.next, P.c2),
        Triple(P.n4, P.label, Literal("n4")),
        Triple(P.leaf4, RDF.type, P.CycleNode),
    ]
    ontology = Graph()
    ontology.add(Triple(P.CycleNode, RDFS.subClassOf, P.Node))
    ontology.add(Triple(P.Hub, RDFS.subClassOf, P.Node))
    ontology.add(Triple(P.next, RDFS.subPropertyOf, P.edge))
    ontology.add(Triple(P.link, RDFS.subPropertyOf, P.edge))
    return data, live, ontology


# --------------------------------------------------------------------------- #
# fixtures
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def dataset():
    return build_path_graph()


@pytest.fixture(scope="module")
def base_store(dataset):
    base, _, ontology = dataset
    return SuccinctEdge.from_graph(base, ontology=ontology)


@pytest.fixture(scope="module")
def live_store(dataset):
    """An updatable store with the live triples sitting in the delta."""
    base, live, ontology = dataset
    store = UpdatableSuccinctEdge.from_graph(
        base, ontology=ontology, policy=MANUAL_COMPACTION
    )
    for triple in live:
        assert store.insert(triple)
    assert store.delta_operation_count > 0
    return store


@pytest.fixture(scope="module")
def compacted_store(dataset):
    """The same live data after compact-and-swap folded the delta."""
    base, live, ontology = dataset
    store = UpdatableSuccinctEdge.from_graph(
        base, ontology=ontology, policy=MANUAL_COMPACTION
    )
    for triple in live:
        assert store.insert(triple)
    store.compact()
    assert store.delta_operation_count == 0
    return store


@pytest.fixture(scope="module")
def sharded_store(base_store):
    return ShardedStore.from_store(base_store, shards=4)


@pytest.fixture(scope="module")
def worker_pool():
    pool = WorkerPool(max_workers=2)
    yield pool
    pool.close()


@pytest.fixture(scope="module")
def cluster(dataset, tmp_path_factory):
    """Sharded updatable primary + shipping source + two HTTP replicas."""
    base, live, ontology = dataset
    store = ShardedStore.from_graph(base, ontology=ontology, shards=2, updatable=True)
    source = ReplicationSource(store, workspace=str(tmp_path_factory.mktemp("ship")))
    primary = QueryServer(QueryService(store), routes=source.routes()).start()
    replicas = []
    servers = []
    for index in range(2):
        workdir = str(tmp_path_factory.mktemp(f"replica{index}"))
        replica = ClusterReplica(HttpReplicationClient(primary.url), workdir).bootstrap()
        replicas.append(replica)
        servers.append(replica.serve())
    replica_set = ReplicaSet([server.url for server in servers])
    state = SimpleNamespace(
        store=store,
        source=source,
        primary=primary,
        replicas=replicas,
        servers=servers,
        replica_set=replica_set,
        live=live,
    )
    yield state
    replica_set.close()
    for server in servers:
        server.service.close()
        server.stop()
    primary.service.close()
    primary.stop()
    source.close()


def _cluster_engine(cluster, reasoning: bool) -> ClusterQueryEngine:
    # batch_size=7 forces several scatter rounds per closure fixpoint.
    return ClusterQueryEngine(
        cluster.store,
        cluster.replica_set,
        cluster.source,
        reasoning=reasoning,
        batch_size=7,
    )


# --------------------------------------------------------------------------- #
# sequential engine vs the naive oracle
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("reasoning", [False, True], ids=["plain", "reasoning"])
@pytest.mark.parametrize("identifier", ALL_QUERY_IDS)
def test_streaming_matches_oracle(base_store, identifier, reasoning):
    # The strongest single check: interval-frontier BFS against the naive
    # repeated-join fixpoint, under both reasoning modes.
    oracle = MaterializingQueryEngine(base_store, reasoning=reasoning)
    streaming = QueryEngine(base_store, reasoning=reasoning)
    assert _rows(streaming.execute(_sparql(identifier))) == _rows(
        oracle.execute(_sparql(identifier))
    )


@pytest.mark.parametrize("identifier", ALL_QUERY_IDS)
def test_streaming_matches_oracle_on_live_delta(live_store, identifier):
    # Same contract with every path step seeing base + delta overlay rows —
    # including the write that fused chain and cycle into one SCC.
    oracle = MaterializingQueryEngine(live_store, reasoning=True)
    streaming = QueryEngine(live_store, reasoning=True)
    assert _rows(streaming.execute(_sparql(identifier))) == _rows(
        oracle.execute(_sparql(identifier))
    )


@pytest.mark.parametrize("identifier", ALL_QUERY_IDS)
def test_compact_and_swap_preserves_results(live_store, compacted_store, identifier):
    # Folding the delta must not change a single byte of any path answer.
    before = QueryEngine(live_store, reasoning=True)
    after = QueryEngine(compacted_store, reasoning=True)
    assert _rows(before.execute(_sparql(identifier))) == _rows(
        after.execute(_sparql(identifier))
    )


# --------------------------------------------------------------------------- #
# parallel / process backends
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("identifier", ALL_QUERY_IDS)
def test_parallel_sharded_byte_identical(sharded_store, base_store, identifier):
    sequential = QueryEngine(base_store, reasoning=True)
    parallel = ParallelQueryEngine(sharded_store, reasoning=True, batch_size=7)
    try:
        assert _rows(parallel.execute(_sparql(identifier))) == _rows(
            sequential.execute(_sparql(identifier))
        )
    finally:
        parallel.close()


@pytest.mark.parametrize("identifier", ALL_QUERY_IDS)
def test_process_monolithic_byte_identical(worker_pool, base_store, identifier):
    sequential = QueryEngine(base_store, reasoning=True)
    process = ProcessPoolQueryEngine(
        base_store, reasoning=True, batch_size=7, pool=worker_pool
    )
    try:
        assert _rows(process.execute(_sparql(identifier))) == _rows(
            sequential.execute(_sparql(identifier))
        )
    finally:
        process.close()


@pytest.mark.parametrize("identifier", ALL_QUERY_IDS)
def test_process_sharded_byte_identical(worker_pool, sharded_store, base_store, identifier):
    # Path "expand" units fan out per holding shard; the coordinator merges
    # the interval replies and must still equal the monolithic run.
    sequential = QueryEngine(base_store, reasoning=True)
    process = ProcessPoolQueryEngine(
        sharded_store, reasoning=True, batch_size=7, pool=worker_pool
    )
    try:
        assert _rows(process.execute(_sparql(identifier))) == _rows(
            sequential.execute(_sparql(identifier))
        )
    finally:
        process.close()


@pytest.mark.parametrize("identifier", ALL_QUERY_IDS)
def test_process_live_delta_byte_identical(worker_pool, live_store, identifier):
    # Workers attach to the auto-saved base image and replay the delta-log
    # suffix, so their frontiers see exactly the coordinator's overlay.
    sequential = QueryEngine(live_store, reasoning=True)
    process = ProcessPoolQueryEngine(
        live_store, reasoning=True, batch_size=7, pool=worker_pool
    )
    try:
        assert _rows(process.execute(_sparql(identifier))) == _rows(
            sequential.execute(_sparql(identifier))
        )
    finally:
        process.close()


# --------------------------------------------------------------------------- #
# the cluster coordinator
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("identifier", ALL_QUERY_IDS)
def test_cluster_base_byte_identical(cluster, base_store, identifier):
    sequential = QueryEngine(base_store, reasoning=True)
    engine = _cluster_engine(cluster, reasoning=True)
    try:
        assert _rows(engine.execute(_sparql(identifier))) == _rows(
            sequential.execute(_sparql(identifier))
        )
    finally:
        engine.close()


def test_cluster_live_byte_identical(cluster):
    # Stream the live triples into the primary with a closure probe between
    # every write, so each path fixpoint runs against a fresher epoch and
    # the replicas converge through suffix replay mid-workload.
    probe_ids = ["plus-unbound", "star-unbound", "seq-closure-literal", "nps"]
    for index, triple in enumerate(cluster.live):
        assert cluster.store.insert(triple)
        identifier = probe_ids[index % len(probe_ids)]
        sequential = QueryEngine(cluster.store, reasoning=True)
        engine = _cluster_engine(cluster, reasoning=True)
        try:
            assert _rows(engine.execute(_sparql(identifier))) == _rows(
                sequential.execute(_sparql(identifier))
            )
        finally:
            engine.close()
    # After the write stream, the full matrix must agree on the live data.
    oracle = MaterializingQueryEngine(cluster.store, reasoning=True)
    for identifier in ALL_QUERY_IDS:
        engine = _cluster_engine(cluster, reasoning=True)
        try:
            assert _rows(engine.execute(_sparql(identifier))) == _rows(
                oracle.execute(_sparql(identifier))
            ), identifier
        finally:
            engine.close()
