"""RDFS schema (concept and property hierarchies) extraction.

An :class:`OntologySchema` holds the ``rdfs:subClassOf`` / ``rdfs:subPropertyOf``
hierarchies plus ``rdfs:domain`` / ``rdfs:range`` assertions of an ontology
graph — the ρdf subset the paper reasons over.  It is the input of the LiteMat
encoder and of the UNION query rewriter used by the baseline systems.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.rdf.graph import Graph
from repro.rdf.namespaces import (
    OWL_THING,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASSOF,
    RDFS_SUBPROPERTYOF,
)
from repro.rdf.terms import Triple, URI


class OntologySchema:
    """Concept and property hierarchies of an RDFS ontology.

    The hierarchies are forests rooted (conceptually) at ``owl:Thing`` for
    concepts and at a virtual top property for properties; multiple
    inheritance is reduced to the first declared parent (the restriction the
    original LiteMat encoding also makes — its multiple-inheritance extension
    is future work in the paper).
    """

    def __init__(self) -> None:
        self._concept_parent: Dict[URI, Optional[URI]] = {}
        self._property_parent: Dict[URI, Optional[URI]] = {}
        self._domains: Dict[URI, URI] = {}
        self._ranges: Dict[URI, URI] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_graph(cls, graph: Graph) -> "OntologySchema":
        """Extract the schema from an ontology graph."""
        schema = cls()
        for triple in graph:
            schema._ingest(triple)
        return schema

    @classmethod
    def from_triples(cls, triples: Iterable[Triple]) -> "OntologySchema":
        """Extract the schema from an iterable of triples."""
        schema = cls()
        for triple in triples:
            schema._ingest(triple)
        return schema

    def _ingest(self, triple: Triple) -> None:
        subject, predicate, obj = triple
        if not isinstance(subject, URI) or not isinstance(obj, URI):
            return
        if predicate == RDFS_SUBCLASSOF:
            self.add_subclass(subject, obj)
        elif predicate == RDFS_SUBPROPERTYOF:
            self.add_subproperty(subject, obj)
        elif predicate == RDFS_DOMAIN:
            self._domains[subject] = obj
            self.add_property(subject)
            self.add_concept(obj)
        elif predicate == RDFS_RANGE:
            self._ranges[subject] = obj
            self.add_property(subject)
            self.add_concept(obj)

    def add_concept(self, concept: URI, parent: Optional[URI] = None) -> None:
        """Declare ``concept`` (optionally under ``parent``)."""
        if parent is not None:
            self.add_subclass(concept, parent)
        else:
            self._concept_parent.setdefault(concept, None)

    def add_subclass(self, child: URI, parent: URI) -> None:
        """Declare ``child rdfs:subClassOf parent``."""
        if parent == OWL_THING:
            self._concept_parent.setdefault(child, None)
            return
        self._concept_parent.setdefault(parent, None)
        existing = self._concept_parent.get(child)
        if existing is None:
            self._concept_parent[child] = parent

    def add_property(self, prop: URI, parent: Optional[URI] = None) -> None:
        """Declare ``prop`` (optionally under ``parent``)."""
        if parent is not None:
            self.add_subproperty(prop, parent)
        else:
            self._property_parent.setdefault(prop, None)

    def add_subproperty(self, child: URI, parent: URI) -> None:
        """Declare ``child rdfs:subPropertyOf parent``."""
        self._property_parent.setdefault(parent, None)
        existing = self._property_parent.get(child)
        if existing is None:
            self._property_parent[child] = parent

    def add_domain(self, prop: URI, concept: URI) -> None:
        """Declare ``prop rdfs:domain concept``."""
        self._domains[prop] = concept
        self.add_property(prop)
        self.add_concept(concept)

    def add_range(self, prop: URI, concept: URI) -> None:
        """Declare ``prop rdfs:range concept``."""
        self._ranges[prop] = concept
        self.add_property(prop)
        self.add_concept(concept)

    # ------------------------------------------------------------------ #
    # hierarchy queries
    # ------------------------------------------------------------------ #

    @property
    def concepts(self) -> List[URI]:
        """All declared concepts."""
        return list(self._concept_parent)

    @property
    def properties(self) -> List[URI]:
        """All declared properties."""
        return list(self._property_parent)

    def concept_parent(self, concept: URI) -> Optional[URI]:
        """Direct parent concept, or ``None`` for hierarchy roots."""
        return self._concept_parent.get(concept)

    def property_parent(self, prop: URI) -> Optional[URI]:
        """Direct parent property, or ``None`` for hierarchy roots."""
        return self._property_parent.get(prop)

    def concept_children(self, concept: URI) -> List[URI]:
        """Direct sub-concepts, in declaration order."""
        return [child for child, parent in self._concept_parent.items() if parent == concept]

    def property_children(self, prop: URI) -> List[URI]:
        """Direct sub-properties, in declaration order."""
        return [child for child, parent in self._property_parent.items() if parent == prop]

    def concept_roots(self) -> List[URI]:
        """Concepts without a declared parent (direct children of owl:Thing)."""
        return [concept for concept, parent in self._concept_parent.items() if parent is None]

    def property_roots(self) -> List[URI]:
        """Properties without a declared parent."""
        return [prop for prop, parent in self._property_parent.items() if parent is None]

    def subconcepts(self, concept: URI, include_self: bool = True) -> List[URI]:
        """All direct and indirect sub-concepts (the reasoning closure)."""
        return self._descendants(concept, self.concept_children, include_self)

    def subproperties(self, prop: URI, include_self: bool = True) -> List[URI]:
        """All direct and indirect sub-properties."""
        return self._descendants(prop, self.property_children, include_self)

    def superconcepts(self, concept: URI, include_self: bool = False) -> List[URI]:
        """All ancestors of ``concept`` walking up the hierarchy."""
        return self._ancestors(concept, self.concept_parent, include_self)

    def superproperties(self, prop: URI, include_self: bool = False) -> List[URI]:
        """All ancestors of ``prop`` walking up the hierarchy."""
        return self._ancestors(prop, self.property_parent, include_self)

    def domain_of(self, prop: URI) -> Optional[URI]:
        """The declared ``rdfs:domain`` of ``prop``."""
        return self._domains.get(prop)

    def range_of(self, prop: URI) -> Optional[URI]:
        """The declared ``rdfs:range`` of ``prop``."""
        return self._ranges.get(prop)

    def is_subconcept_of(self, child: URI, ancestor: URI) -> bool:
        """Whether ``child`` is ``ancestor`` or one of its descendants."""
        return ancestor in self.superconcepts(child, include_self=True)

    def is_subproperty_of(self, child: URI, ancestor: URI) -> bool:
        """Whether ``child`` is ``ancestor`` or one of its descendants."""
        return ancestor in self.superproperties(child, include_self=True)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    @staticmethod
    def _descendants(start: URI, children_of, include_self: bool) -> List[URI]:
        result: List[URI] = [start] if include_self else []
        seen: Set[URI] = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop(0)
            for child in children_of(node):
                if child not in seen:
                    seen.add(child)
                    result.append(child)
                    frontier.append(child)
        return result

    @staticmethod
    def _ancestors(start: URI, parent_of, include_self: bool) -> List[URI]:
        result: List[URI] = [start] if include_self else []
        seen: Set[URI] = {start}
        node = parent_of(start)
        while node is not None and node not in seen:
            result.append(node)
            seen.add(node)
            node = parent_of(node)
        return result

    def __repr__(self) -> str:
        return (
            f"OntologySchema(concepts={len(self._concept_parent)}, "
            f"properties={len(self._property_parent)})"
        )
