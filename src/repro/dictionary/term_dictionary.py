"""Concept, property and instance dictionaries.

Every dictionary provides the two basic operations the paper requires —
``string-to-id`` (*locate*) and ``id-to-string`` (*extract*) — plus per-entry
occurrence counters that feed the query optimizer's statistics (paper
Section 5.1: "each dictionary persists the number of occurrences of each of
its entries").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.ontology.litemat import LiteMatEncoding
from repro.rdf.terms import Term, URI


class _BaseDictionary:
    """Shared bidirectional mapping with occurrence counters."""

    def __init__(self) -> None:
        self._term_to_id: Dict[Term, int] = {}
        self._id_to_term: Dict[int, Term] = {}
        self._occurrences: Dict[int, int] = {}

    # locate / extract --------------------------------------------------- #

    def locate(self, term: Term) -> int:
        """string-to-id: identifier of ``term``; raises :class:`KeyError` if absent."""
        return self._term_to_id[term]

    def try_locate(self, term: Term) -> Optional[int]:
        """string-to-id, returning ``None`` for unknown terms."""
        return self._term_to_id.get(term)

    def extract(self, identifier: int) -> Term:
        """id-to-string: term carrying ``identifier``; raises :class:`KeyError` if absent."""
        return self._id_to_term[identifier]

    def try_extract(self, identifier: int) -> Optional[Term]:
        """id-to-string, returning ``None`` for unknown identifiers."""
        return self._id_to_term.get(identifier)

    def __contains__(self, term: Term) -> bool:
        return term in self._term_to_id

    def __len__(self) -> int:
        return len(self._term_to_id)

    def terms(self) -> List[Term]:
        """All terms in the dictionary."""
        return list(self._term_to_id)

    def identifiers(self) -> List[int]:
        """All identifiers in the dictionary."""
        return list(self._id_to_term)

    # occurrence statistics ---------------------------------------------- #

    def record_occurrence(self, identifier: int, count: int = 1) -> None:
        """Increment the occurrence counter of ``identifier``."""
        self._occurrences[identifier] = self._occurrences.get(identifier, 0) + count

    def occurrences(self, identifier: int) -> int:
        """Number of recorded occurrences of ``identifier``."""
        return self._occurrences.get(identifier, 0)

    def occurrences_of_term(self, term: Term) -> int:
        """Number of recorded occurrences of ``term`` (0 when unknown)."""
        identifier = self.try_locate(term)
        return 0 if identifier is None else self.occurrences(identifier)

    # storage accounting -------------------------------------------------- #

    def size_in_bytes(self) -> int:
        """Approximate serialised size: term strings + fixed-size id entries."""
        total = 0
        for term, identifier in self._term_to_id.items():
            total += len(str(term).encode("utf-8"))
            total += 8  # identifier
            total += 4  # occurrence counter
        return total

    def _register(self, term: Term, identifier: int) -> None:
        if term in self._term_to_id:
            existing = self._term_to_id[term]
            if existing != identifier:
                raise ValueError(f"term {term} already mapped to {existing}, cannot remap to {identifier}")
            return
        if identifier in self._id_to_term:
            raise ValueError(f"identifier {identifier} already used by {self._id_to_term[identifier]}")
        self._term_to_id[term] = identifier
        self._id_to_term[identifier] = term


class _EncodedDictionary(_BaseDictionary):
    """Shared base of the LiteMat-keyed dictionaries (concepts, properties).

    The LiteMat identifier space is fixed at encoding time, so terms that
    arrive *after* construction (live inserts of never-seen IRIs, see
    ``docs/update_lifecycle.md``) cannot receive hierarchy-aware interval
    identifiers.  They go into an **overflow table** instead: sequential
    identifiers starting at ``2 ** total_length`` — strictly above every
    encoded identifier and outside every LiteMat interval — with a degenerate
    one-element interval ``[id, id + 1)``.  Interval reasoning stays sound
    (an overflow term subsumes exactly itself); a full re-encode
    (``UpdatableSuccinctEdge.rebuild``) folds overflow terms back into the
    hierarchy.
    """

    def __init__(self, encoding: LiteMatEncoding) -> None:
        super().__init__()
        self._encoding = encoding
        for term in encoding.terms():
            self._register(term, encoding.encode(term))
        self._overflow: Dict[URI, int] = {}
        self._merged: Dict[URI, int] = {}
        self._next_overflow_id = 1 << encoding.total_length
        self._merged_overflow_count = 0

    @property
    def encoding(self) -> LiteMatEncoding:
        """The underlying LiteMat encoding."""
        return self._encoding

    # overflow table ------------------------------------------------------ #

    def add_overflow(self, term: URI) -> int:
        """Identifier of ``term``, allocating an overflow identifier if new.

        Encoded terms return their LiteMat identifier; never-seen terms are
        appended to the overflow table.
        """
        existing = self.try_locate(term)
        if existing is not None:
            return existing
        identifier = self._next_overflow_id
        self._next_overflow_id += 1
        self._register(term, identifier)
        self._overflow[term] = identifier
        return identifier

    def is_overflow(self, term: URI) -> bool:
        """Whether ``term`` lives in the overflow table (no LiteMat interval)."""
        return term in self._overflow

    @property
    def overflow_count(self) -> int:
        """Number of terms currently in the overflow table."""
        return len(self._overflow)

    @property
    def merged_overflow_count(self) -> int:
        """Overflow terms adopted as permanent entries by past compactions."""
        return self._merged_overflow_count

    def merge_overflow(self) -> int:
        """Adopt the overflow terms as permanent entries (compaction hook).

        Identifiers are stable across the merge — only the bookkeeping moves:
        merged terms stop counting towards :attr:`overflow_count` while
        keeping their degenerate ``[id, id + 1)`` interval.  Returns the
        number of terms merged.
        """
        merged = len(self._overflow)
        self._merged_overflow_count += merged
        self._merged.update(self._overflow)
        self._overflow = {}
        return merged

    def overflow_entries(self) -> Dict[URI, int]:
        """Every non-LiteMat entry (pending *and* merged), term -> identifier.

        This is what persistence must save besides the encoding — the
        triples may reference these identifiers.
        """
        entries = dict(self._merged)
        entries.update(self._overflow)
        return entries

    def restore_overflow(self, term: URI, identifier: int) -> None:
        """Re-register a persisted overflow term under its original identifier."""
        self._register(term, identifier)
        self._merged[term] = identifier
        self._merged_overflow_count += 1
        if identifier >= self._next_overflow_id:
            self._next_overflow_id = identifier + 1

    def interval(self, term: URI) -> Tuple[int, int]:
        """Identifier interval ``[lower, upper)`` of ``term`` and its descendants.

        Overflow terms (and terms merged from the overflow table) have no
        LiteMat prefix, so their interval degenerates to the term itself.
        """
        identifier = self._overflow.get(term)
        if identifier is None:
            identifier = self._merged.get(term)
        if identifier is not None:
            return identifier, identifier + 1
        return self._encoding.interval(term)


class ConceptDictionary(_EncodedDictionary):
    """Dictionary of ontology concepts, keyed by LiteMat identifiers.

    Besides locate/extract it exposes the LiteMat metadata needed at query
    time (identifier intervals for subsumption reasoning).
    """

    def hierarchical_occurrences(self, concept: URI) -> int:
        """Occurrences of ``concept`` plus all of its sub-concepts.

        This is the paper's hierarchy-aware statistic: the count for a concept
        is the sum over its whole sub-hierarchy (Section 5.1).
        """
        lower, upper = self.interval(concept)
        return sum(
            count
            for identifier, count in self._occurrences.items()
            if lower <= identifier < upper
        )


class PropertyDictionary(_EncodedDictionary):
    """Dictionary of properties, keyed by LiteMat identifiers."""

    def hierarchical_occurrences(self, prop: URI) -> int:
        """Occurrences of ``prop`` plus all of its sub-properties."""
        lower, upper = self.interval(prop)
        return sum(
            count
            for identifier, count in self._occurrences.items()
            if lower <= identifier < upper
        )


class InstanceDictionary(_BaseDictionary):
    """Dictionary of individuals (URIs and blank nodes).

    Each distinct entry receives an arbitrary, sequential integer identifier
    (paper Section 3.2, last paragraph).  Identifiers start at 1; 0 is
    reserved as the "unknown" sentinel.
    """

    def __init__(self) -> None:
        super().__init__()
        self._next_id = 1

    def add(self, term: Term) -> int:
        """Add ``term`` if absent; return its identifier either way."""
        existing = self.try_locate(term)
        if existing is not None:
            return existing
        identifier = self._next_id
        self._next_id += 1
        self._register(term, identifier)
        return identifier

    def add_all(self, terms: Iterable[Term]) -> None:
        """Add every term of ``terms``."""
        for term in terms:
            self.add(term)

    @property
    def capacity(self) -> int:
        """Smallest integer strictly greater than every assigned identifier."""
        return self._next_id
